file(REMOVE_RECURSE
  "CMakeFiles/bench_shared_exclusive.dir/bench_shared_exclusive.cpp.o"
  "CMakeFiles/bench_shared_exclusive.dir/bench_shared_exclusive.cpp.o.d"
  "bench_shared_exclusive"
  "bench_shared_exclusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shared_exclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
