# Empty dependencies file for bench_shared_exclusive.
# This may be replaced when dependencies are built.
