# Empty compiler generated dependencies file for bench_long_txn.
# This may be replaced when dependencies are built.
