file(REMOVE_RECURSE
  "CMakeFiles/bench_long_txn.dir/bench_long_txn.cpp.o"
  "CMakeFiles/bench_long_txn.dir/bench_long_txn.cpp.o.d"
  "bench_long_txn"
  "bench_long_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_long_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
