# Empty compiler generated dependencies file for bench_depth_sharing.
# This may be replaced when dependencies are built.
