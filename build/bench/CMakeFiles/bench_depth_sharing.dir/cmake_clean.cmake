file(REMOVE_RECURSE
  "CMakeFiles/bench_depth_sharing.dir/bench_depth_sharing.cpp.o"
  "CMakeFiles/bench_depth_sharing.dir/bench_depth_sharing.cpp.o.d"
  "bench_depth_sharing"
  "bench_depth_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_depth_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
