file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_access.dir/bench_partial_access.cpp.o"
  "CMakeFiles/bench_partial_access.dir/bench_partial_access.cpp.o.d"
  "bench_partial_access"
  "bench_partial_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
