# Empty compiler generated dependencies file for bench_partial_access.
# This may be replaced when dependencies are built.
