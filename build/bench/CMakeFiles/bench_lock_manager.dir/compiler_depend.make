# Empty compiler generated dependencies file for bench_lock_manager.
# This may be replaced when dependencies are built.
