# Empty dependencies file for bench_authorization.
# This may be replaced when dependencies are built.
