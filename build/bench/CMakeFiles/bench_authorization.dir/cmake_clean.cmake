file(REMOVE_RECURSE
  "CMakeFiles/bench_authorization.dir/bench_authorization.cpp.o"
  "CMakeFiles/bench_authorization.dir/bench_authorization.cpp.o.d"
  "bench_authorization"
  "bench_authorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_authorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
