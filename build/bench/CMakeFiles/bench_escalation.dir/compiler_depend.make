# Empty compiler generated dependencies file for bench_escalation.
# This may be replaced when dependencies are built.
