file(REMOVE_RECURSE
  "CMakeFiles/bench_deadlock_policy.dir/bench_deadlock_policy.cpp.o"
  "CMakeFiles/bench_deadlock_policy.dir/bench_deadlock_policy.cpp.o.d"
  "bench_deadlock_policy"
  "bench_deadlock_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadlock_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
