# Empty compiler generated dependencies file for bench_deadlock_policy.
# This may be replaced when dependencies are built.
