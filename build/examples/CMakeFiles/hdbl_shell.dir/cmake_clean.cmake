file(REMOVE_RECURSE
  "CMakeFiles/hdbl_shell.dir/hdbl_shell.cpp.o"
  "CMakeFiles/hdbl_shell.dir/hdbl_shell.cpp.o.d"
  "hdbl_shell"
  "hdbl_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdbl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
