# Empty compiler generated dependencies file for hdbl_shell.
# This may be replaced when dependencies are built.
