# Empty dependencies file for part_library.
# This may be replaced when dependencies are built.
