file(REMOVE_RECURSE
  "CMakeFiles/part_library.dir/part_library.cpp.o"
  "CMakeFiles/part_library.dir/part_library.cpp.o.d"
  "part_library"
  "part_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
