# Empty compiler generated dependencies file for long_transactions.
# This may be replaced when dependencies are built.
