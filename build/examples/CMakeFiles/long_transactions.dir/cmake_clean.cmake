file(REMOVE_RECURSE
  "CMakeFiles/long_transactions.dir/long_transactions.cpp.o"
  "CMakeFiles/long_transactions.dir/long_transactions.cpp.o.d"
  "long_transactions"
  "long_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
