file(REMOVE_RECURSE
  "CMakeFiles/manufacturing_cells.dir/manufacturing_cells.cpp.o"
  "CMakeFiles/manufacturing_cells.dir/manufacturing_cells.cpp.o.d"
  "manufacturing_cells"
  "manufacturing_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturing_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
