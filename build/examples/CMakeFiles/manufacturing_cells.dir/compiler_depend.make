# Empty compiler generated dependencies file for manufacturing_cells.
# This may be replaced when dependencies are built.
