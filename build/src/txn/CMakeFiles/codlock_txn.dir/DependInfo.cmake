
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/txn_manager.cc" "src/txn/CMakeFiles/codlock_txn.dir/txn_manager.cc.o" "gcc" "src/txn/CMakeFiles/codlock_txn.dir/txn_manager.cc.o.d"
  "/root/repo/src/txn/undo_log.cc" "src/txn/CMakeFiles/codlock_txn.dir/undo_log.cc.o" "gcc" "src/txn/CMakeFiles/codlock_txn.dir/undo_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/codlock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/codlock_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/authz/CMakeFiles/codlock_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/nf2/CMakeFiles/codlock_nf2.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
