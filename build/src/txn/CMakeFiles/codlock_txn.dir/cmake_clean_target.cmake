file(REMOVE_RECURSE
  "libcodlock_txn.a"
)
