# Empty compiler generated dependencies file for codlock_txn.
# This may be replaced when dependencies are built.
