file(REMOVE_RECURSE
  "CMakeFiles/codlock_txn.dir/txn_manager.cc.o"
  "CMakeFiles/codlock_txn.dir/txn_manager.cc.o.d"
  "CMakeFiles/codlock_txn.dir/undo_log.cc.o"
  "CMakeFiles/codlock_txn.dir/undo_log.cc.o.d"
  "libcodlock_txn.a"
  "libcodlock_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
