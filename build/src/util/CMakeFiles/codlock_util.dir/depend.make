# Empty dependencies file for codlock_util.
# This may be replaced when dependencies are built.
