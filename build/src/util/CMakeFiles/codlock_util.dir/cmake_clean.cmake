file(REMOVE_RECURSE
  "CMakeFiles/codlock_util.dir/metrics.cc.o"
  "CMakeFiles/codlock_util.dir/metrics.cc.o.d"
  "CMakeFiles/codlock_util.dir/status.cc.o"
  "CMakeFiles/codlock_util.dir/status.cc.o.d"
  "libcodlock_util.a"
  "libcodlock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
