file(REMOVE_RECURSE
  "libcodlock_util.a"
)
