file(REMOVE_RECURSE
  "libcodlock_idx.a"
)
