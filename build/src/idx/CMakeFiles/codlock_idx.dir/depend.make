# Empty dependencies file for codlock_idx.
# This may be replaced when dependencies are built.
