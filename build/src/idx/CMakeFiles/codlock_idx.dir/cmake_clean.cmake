file(REMOVE_RECURSE
  "CMakeFiles/codlock_idx.dir/key_index.cc.o"
  "CMakeFiles/codlock_idx.dir/key_index.cc.o.d"
  "libcodlock_idx.a"
  "libcodlock_idx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_idx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
