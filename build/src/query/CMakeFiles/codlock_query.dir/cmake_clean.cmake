file(REMOVE_RECURSE
  "CMakeFiles/codlock_query.dir/executor.cc.o"
  "CMakeFiles/codlock_query.dir/executor.cc.o.d"
  "CMakeFiles/codlock_query.dir/parser.cc.o"
  "CMakeFiles/codlock_query.dir/parser.cc.o.d"
  "CMakeFiles/codlock_query.dir/planner.cc.o"
  "CMakeFiles/codlock_query.dir/planner.cc.o.d"
  "CMakeFiles/codlock_query.dir/query.cc.o"
  "CMakeFiles/codlock_query.dir/query.cc.o.d"
  "CMakeFiles/codlock_query.dir/statistics.cc.o"
  "CMakeFiles/codlock_query.dir/statistics.cc.o.d"
  "libcodlock_query.a"
  "libcodlock_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
