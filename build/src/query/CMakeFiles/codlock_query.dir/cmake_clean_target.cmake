file(REMOVE_RECURSE
  "libcodlock_query.a"
)
