# Empty dependencies file for codlock_query.
# This may be replaced when dependencies are built.
