# Empty compiler generated dependencies file for codlock_proto.
# This may be replaced when dependencies are built.
