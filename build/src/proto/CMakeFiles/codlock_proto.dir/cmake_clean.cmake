file(REMOVE_RECURSE
  "CMakeFiles/codlock_proto.dir/co_protocol.cc.o"
  "CMakeFiles/codlock_proto.dir/co_protocol.cc.o.d"
  "CMakeFiles/codlock_proto.dir/protocol.cc.o"
  "CMakeFiles/codlock_proto.dir/protocol.cc.o.d"
  "CMakeFiles/codlock_proto.dir/sysr_protocol.cc.o"
  "CMakeFiles/codlock_proto.dir/sysr_protocol.cc.o.d"
  "CMakeFiles/codlock_proto.dir/validator.cc.o"
  "CMakeFiles/codlock_proto.dir/validator.cc.o.d"
  "libcodlock_proto.a"
  "libcodlock_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
