file(REMOVE_RECURSE
  "libcodlock_proto.a"
)
