file(REMOVE_RECURSE
  "libcodlock_sim.a"
)
