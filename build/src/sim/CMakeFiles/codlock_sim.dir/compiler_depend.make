# Empty compiler generated dependencies file for codlock_sim.
# This may be replaced when dependencies are built.
