file(REMOVE_RECURSE
  "CMakeFiles/codlock_sim.dir/engine.cc.o"
  "CMakeFiles/codlock_sim.dir/engine.cc.o.d"
  "CMakeFiles/codlock_sim.dir/fixtures.cc.o"
  "CMakeFiles/codlock_sim.dir/fixtures.cc.o.d"
  "CMakeFiles/codlock_sim.dir/harness.cc.o"
  "CMakeFiles/codlock_sim.dir/harness.cc.o.d"
  "CMakeFiles/codlock_sim.dir/open_workload.cc.o"
  "CMakeFiles/codlock_sim.dir/open_workload.cc.o.d"
  "libcodlock_sim.a"
  "libcodlock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
