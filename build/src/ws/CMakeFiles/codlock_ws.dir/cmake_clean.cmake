file(REMOVE_RECURSE
  "CMakeFiles/codlock_ws.dir/server.cc.o"
  "CMakeFiles/codlock_ws.dir/server.cc.o.d"
  "libcodlock_ws.a"
  "libcodlock_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
