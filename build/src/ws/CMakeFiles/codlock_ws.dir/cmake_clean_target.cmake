file(REMOVE_RECURSE
  "libcodlock_ws.a"
)
