# Empty compiler generated dependencies file for codlock_ws.
# This may be replaced when dependencies are built.
