file(REMOVE_RECURSE
  "CMakeFiles/codlock_lock.dir/lock_manager.cc.o"
  "CMakeFiles/codlock_lock.dir/lock_manager.cc.o.d"
  "CMakeFiles/codlock_lock.dir/long_lock_store.cc.o"
  "CMakeFiles/codlock_lock.dir/long_lock_store.cc.o.d"
  "CMakeFiles/codlock_lock.dir/mode.cc.o"
  "CMakeFiles/codlock_lock.dir/mode.cc.o.d"
  "libcodlock_lock.a"
  "libcodlock_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
