# Empty dependencies file for codlock_lock.
# This may be replaced when dependencies are built.
