file(REMOVE_RECURSE
  "libcodlock_lock.a"
)
