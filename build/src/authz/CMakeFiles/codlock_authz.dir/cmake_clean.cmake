file(REMOVE_RECURSE
  "CMakeFiles/codlock_authz.dir/authz.cc.o"
  "CMakeFiles/codlock_authz.dir/authz.cc.o.d"
  "libcodlock_authz.a"
  "libcodlock_authz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_authz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
