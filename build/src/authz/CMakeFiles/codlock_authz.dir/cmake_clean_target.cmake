file(REMOVE_RECURSE
  "libcodlock_authz.a"
)
