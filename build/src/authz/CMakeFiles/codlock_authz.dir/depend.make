# Empty dependencies file for codlock_authz.
# This may be replaced when dependencies are built.
