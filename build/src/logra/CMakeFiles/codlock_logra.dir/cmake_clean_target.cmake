file(REMOVE_RECURSE
  "libcodlock_logra.a"
)
