# Empty dependencies file for codlock_logra.
# This may be replaced when dependencies are built.
