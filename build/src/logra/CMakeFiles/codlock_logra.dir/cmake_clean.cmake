file(REMOVE_RECURSE
  "CMakeFiles/codlock_logra.dir/lock_graph.cc.o"
  "CMakeFiles/codlock_logra.dir/lock_graph.cc.o.d"
  "libcodlock_logra.a"
  "libcodlock_logra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_logra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
