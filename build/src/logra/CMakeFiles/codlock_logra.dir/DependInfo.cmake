
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logra/lock_graph.cc" "src/logra/CMakeFiles/codlock_logra.dir/lock_graph.cc.o" "gcc" "src/logra/CMakeFiles/codlock_logra.dir/lock_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/codlock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nf2/CMakeFiles/codlock_nf2.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/codlock_lock.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
