file(REMOVE_RECURSE
  "CMakeFiles/codlock_nf2.dir/schema.cc.o"
  "CMakeFiles/codlock_nf2.dir/schema.cc.o.d"
  "CMakeFiles/codlock_nf2.dir/serialize.cc.o"
  "CMakeFiles/codlock_nf2.dir/serialize.cc.o.d"
  "CMakeFiles/codlock_nf2.dir/store.cc.o"
  "CMakeFiles/codlock_nf2.dir/store.cc.o.d"
  "CMakeFiles/codlock_nf2.dir/value.cc.o"
  "CMakeFiles/codlock_nf2.dir/value.cc.o.d"
  "libcodlock_nf2.a"
  "libcodlock_nf2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_nf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
