# Empty compiler generated dependencies file for codlock_nf2.
# This may be replaced when dependencies are built.
