
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf2/schema.cc" "src/nf2/CMakeFiles/codlock_nf2.dir/schema.cc.o" "gcc" "src/nf2/CMakeFiles/codlock_nf2.dir/schema.cc.o.d"
  "/root/repo/src/nf2/serialize.cc" "src/nf2/CMakeFiles/codlock_nf2.dir/serialize.cc.o" "gcc" "src/nf2/CMakeFiles/codlock_nf2.dir/serialize.cc.o.d"
  "/root/repo/src/nf2/store.cc" "src/nf2/CMakeFiles/codlock_nf2.dir/store.cc.o" "gcc" "src/nf2/CMakeFiles/codlock_nf2.dir/store.cc.o.d"
  "/root/repo/src/nf2/value.cc" "src/nf2/CMakeFiles/codlock_nf2.dir/value.cc.o" "gcc" "src/nf2/CMakeFiles/codlock_nf2.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/codlock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
