file(REMOVE_RECURSE
  "libcodlock_nf2.a"
)
