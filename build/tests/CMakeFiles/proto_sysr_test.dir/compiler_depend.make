# Empty compiler generated dependencies file for proto_sysr_test.
# This may be replaced when dependencies are built.
