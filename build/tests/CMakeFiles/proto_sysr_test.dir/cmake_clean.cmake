file(REMOVE_RECURSE
  "CMakeFiles/proto_sysr_test.dir/proto_sysr_test.cc.o"
  "CMakeFiles/proto_sysr_test.dir/proto_sysr_test.cc.o.d"
  "proto_sysr_test"
  "proto_sysr_test.pdb"
  "proto_sysr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_sysr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
