# Empty dependencies file for nf2_store_test.
# This may be replaced when dependencies are built.
