file(REMOVE_RECURSE
  "CMakeFiles/nf2_store_test.dir/nf2_store_test.cc.o"
  "CMakeFiles/nf2_store_test.dir/nf2_store_test.cc.o.d"
  "nf2_store_test"
  "nf2_store_test.pdb"
  "nf2_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
