file(REMOVE_RECURSE
  "CMakeFiles/proto_nested_test.dir/proto_nested_test.cc.o"
  "CMakeFiles/proto_nested_test.dir/proto_nested_test.cc.o.d"
  "proto_nested_test"
  "proto_nested_test.pdb"
  "proto_nested_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
