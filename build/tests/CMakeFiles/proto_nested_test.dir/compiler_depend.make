# Empty compiler generated dependencies file for proto_nested_test.
# This may be replaced when dependencies are built.
