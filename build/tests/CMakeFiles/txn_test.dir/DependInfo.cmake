
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/txn_test.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/txn_test.dir/txn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/codlock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ws/CMakeFiles/codlock_ws.dir/DependInfo.cmake"
  "/root/repo/build/src/idx/CMakeFiles/codlock_idx.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/codlock_query.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/codlock_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/logra/CMakeFiles/codlock_logra.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/codlock_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/authz/CMakeFiles/codlock_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/codlock_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/nf2/CMakeFiles/codlock_nf2.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/codlock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
