file(REMOVE_RECURSE
  "CMakeFiles/proto_co_test.dir/proto_co_test.cc.o"
  "CMakeFiles/proto_co_test.dir/proto_co_test.cc.o.d"
  "proto_co_test"
  "proto_co_test.pdb"
  "proto_co_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_co_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
