# Empty dependencies file for proto_co_test.
# This may be replaced when dependencies are built.
