# Empty dependencies file for nf2_serialize_test.
# This may be replaced when dependencies are built.
