file(REMOVE_RECURSE
  "CMakeFiles/nf2_serialize_test.dir/nf2_serialize_test.cc.o"
  "CMakeFiles/nf2_serialize_test.dir/nf2_serialize_test.cc.o.d"
  "nf2_serialize_test"
  "nf2_serialize_test.pdb"
  "nf2_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
