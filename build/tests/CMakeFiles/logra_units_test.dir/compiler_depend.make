# Empty compiler generated dependencies file for logra_units_test.
# This may be replaced when dependencies are built.
