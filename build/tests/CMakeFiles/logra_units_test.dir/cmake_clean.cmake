file(REMOVE_RECURSE
  "CMakeFiles/logra_units_test.dir/logra_units_test.cc.o"
  "CMakeFiles/logra_units_test.dir/logra_units_test.cc.o.d"
  "logra_units_test"
  "logra_units_test.pdb"
  "logra_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logra_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
