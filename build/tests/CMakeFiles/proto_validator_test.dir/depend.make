# Empty dependencies file for proto_validator_test.
# This may be replaced when dependencies are built.
