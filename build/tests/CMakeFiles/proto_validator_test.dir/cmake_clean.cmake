file(REMOVE_RECURSE
  "CMakeFiles/proto_validator_test.dir/proto_validator_test.cc.o"
  "CMakeFiles/proto_validator_test.dir/proto_validator_test.cc.o.d"
  "proto_validator_test"
  "proto_validator_test.pdb"
  "proto_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
