# Empty dependencies file for proto_figure7_test.
# This may be replaced when dependencies are built.
