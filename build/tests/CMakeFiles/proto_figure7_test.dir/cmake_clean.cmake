file(REMOVE_RECURSE
  "CMakeFiles/proto_figure7_test.dir/proto_figure7_test.cc.o"
  "CMakeFiles/proto_figure7_test.dir/proto_figure7_test.cc.o.d"
  "proto_figure7_test"
  "proto_figure7_test.pdb"
  "proto_figure7_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_figure7_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
