file(REMOVE_RECURSE
  "CMakeFiles/idx_test.dir/idx_test.cc.o"
  "CMakeFiles/idx_test.dir/idx_test.cc.o.d"
  "idx_test"
  "idx_test.pdb"
  "idx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
