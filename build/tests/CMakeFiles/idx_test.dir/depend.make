# Empty dependencies file for idx_test.
# This may be replaced when dependencies are built.
