# Empty compiler generated dependencies file for logra_builder_test.
# This may be replaced when dependencies are built.
