file(REMOVE_RECURSE
  "CMakeFiles/logra_builder_test.dir/logra_builder_test.cc.o"
  "CMakeFiles/logra_builder_test.dir/logra_builder_test.cc.o.d"
  "logra_builder_test"
  "logra_builder_test.pdb"
  "logra_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logra_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
