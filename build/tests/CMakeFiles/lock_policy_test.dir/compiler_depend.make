# Empty compiler generated dependencies file for lock_policy_test.
# This may be replaced when dependencies are built.
