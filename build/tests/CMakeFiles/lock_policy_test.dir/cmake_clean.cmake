file(REMOVE_RECURSE
  "CMakeFiles/lock_policy_test.dir/lock_policy_test.cc.o"
  "CMakeFiles/lock_policy_test.dir/lock_policy_test.cc.o.d"
  "lock_policy_test"
  "lock_policy_test.pdb"
  "lock_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
