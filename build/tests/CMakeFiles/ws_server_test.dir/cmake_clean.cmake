file(REMOVE_RECURSE
  "CMakeFiles/ws_server_test.dir/ws_server_test.cc.o"
  "CMakeFiles/ws_server_test.dir/ws_server_test.cc.o.d"
  "ws_server_test"
  "ws_server_test.pdb"
  "ws_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
