# Empty dependencies file for ws_server_test.
# This may be replaced when dependencies are built.
