file(REMOVE_RECURSE
  "CMakeFiles/open_workload_test.dir/open_workload_test.cc.o"
  "CMakeFiles/open_workload_test.dir/open_workload_test.cc.o.d"
  "open_workload_test"
  "open_workload_test.pdb"
  "open_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
