# Empty dependencies file for open_workload_test.
# This may be replaced when dependencies are built.
