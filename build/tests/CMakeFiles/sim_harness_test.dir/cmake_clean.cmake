file(REMOVE_RECURSE
  "CMakeFiles/sim_harness_test.dir/sim_harness_test.cc.o"
  "CMakeFiles/sim_harness_test.dir/sim_harness_test.cc.o.d"
  "sim_harness_test"
  "sim_harness_test.pdb"
  "sim_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
