file(REMOVE_RECURSE
  "CMakeFiles/query_planner_test.dir/query_planner_test.cc.o"
  "CMakeFiles/query_planner_test.dir/query_planner_test.cc.o.d"
  "query_planner_test"
  "query_planner_test.pdb"
  "query_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
