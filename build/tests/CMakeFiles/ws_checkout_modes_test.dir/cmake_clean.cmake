file(REMOVE_RECURSE
  "CMakeFiles/ws_checkout_modes_test.dir/ws_checkout_modes_test.cc.o"
  "CMakeFiles/ws_checkout_modes_test.dir/ws_checkout_modes_test.cc.o.d"
  "ws_checkout_modes_test"
  "ws_checkout_modes_test.pdb"
  "ws_checkout_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_checkout_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
