# Empty compiler generated dependencies file for ws_checkout_modes_test.
# This may be replaced when dependencies are built.
