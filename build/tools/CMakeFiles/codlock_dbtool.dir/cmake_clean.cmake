file(REMOVE_RECURSE
  "CMakeFiles/codlock_dbtool.dir/codlock_dbtool.cpp.o"
  "CMakeFiles/codlock_dbtool.dir/codlock_dbtool.cpp.o.d"
  "codlock_dbtool"
  "codlock_dbtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codlock_dbtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
