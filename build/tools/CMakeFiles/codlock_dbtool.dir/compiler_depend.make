# Empty compiler generated dependencies file for codlock_dbtool.
# This may be replaced when dependencies are built.
