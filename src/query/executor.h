/// \file executor.h
/// \brief Query execution: navigate, lock per plan, touch data.
///
/// §4.1: "During query execution, the stored granule and mode information
/// are obtained from the query-specific lock graphs, and locks are
/// requested from a lock manager ... If a lock is granted, the
/// corresponding data may be accessed."
///
/// The executor drives any `LockProtocol`, so the same workload can run
/// under the paper's protocol, the System R baselines, and any granule
/// policy — the comparisons of §3 and §4.6.

#ifndef CODLOCK_QUERY_EXECUTOR_H_
#define CODLOCK_QUERY_EXECUTOR_H_

#include "proto/protocol.h"
#include "query/planner.h"
#include "query/query.h"

namespace codlock::query {

/// \brief What a query execution touched.
struct QueryResult {
  size_t objects_visited = 0;
  /// Target-granule locks taken (excl. intentions and propagation).
  size_t target_locks = 0;
  size_t values_read = 0;
  size_t values_written = 0;
};

/// \brief Executes queries through a lock protocol against the store.
class QueryExecutor {
 public:
  struct Options {
    /// Actually increment int leaves under X locks (used by integration
    /// tests to prove mutual exclusion; benchmarks measure lock behaviour
    /// and leave data untouched).
    bool apply_writes = false;
    /// > 0 enables *run-time* lock escalation (the strategy [HDKS89]'s
    /// anticipation replaces): per-element plans escalate to the
    /// collection HoLU after this many element locks — a mid-flight
    /// upgrade that is the classic deadlock source the planner's
    /// anticipation avoids.  Escalations are counted in
    /// `LockStats::escalations`.
    uint32_t runtime_escalation_threshold = 0;
    /// Statistics sink for escalation counting (usually the lock
    /// manager's; may be null).
    LockStats* stats = nullptr;
    /// Undo sink: when set (together with apply_writes), every mutation
    /// logs its before-image so TxnManager::Abort can roll back.
    txn::UndoLog* undo = nullptr;
  };

  QueryExecutor(const logra::LockGraph* graph, const nf2::Catalog* catalog,
                nf2::InstanceStore* store, proto::LockProtocol* protocol,
                Options options)
      : graph_(graph),
        catalog_(catalog),
        store_(store),
        protocol_(protocol),
        options_(options),
        stats_(options.stats) {}

  QueryExecutor(const logra::LockGraph* graph, const nf2::Catalog* catalog,
                nf2::InstanceStore* store, proto::LockProtocol* protocol)
      : QueryExecutor(graph, catalog, store, protocol, Options()) {}

  /// Runs \p query under \p plan on behalf of \p txn.  On a lock failure
  /// (deadlock/timeout) the error is returned and the caller is expected
  /// to abort \p txn.
  Result<QueryResult> Execute(txn::Transaction& txn, const Query& query,
                              const QueryPlan& plan);

  /// Inserts \p elem into the collection at \p coll_path of the object
  /// keyed \p object_key.  Phantom protection: the collection HoLU is
  /// X-locked, which conflicts with the IS/S any scanner of the
  /// collection holds — no transaction can observe the member set change
  /// mid-flight.  The new element's references to common data are locked
  /// *before* the element becomes reachable (rule 3/4 visibility).
  /// Returns the new element's instance id.
  Result<nf2::Iid> ExecuteInsert(txn::Transaction& txn,
                                 nf2::RelationId relation,
                                 const std::string& object_key,
                                 const nf2::Path& coll_path, nf2::Value elem);

  /// Deletes the element keyed \p elem_key from the collection at
  /// \p coll_path.  The collection HoLU is X-locked (phantom protection);
  /// per §4.5 the deleted element's referenced common data is *not*
  /// accessed and therefore not locked.
  Status ExecuteErase(txn::Transaction& txn, nf2::RelationId relation,
                      const std::string& object_key,
                      const nf2::Path& coll_path, const std::string& elem_key);

 private:
  Status ExecuteOnObject(txn::Transaction& txn, const Query& query,
                         const QueryPlan& plan, nf2::ObjectId obj,
                         QueryResult* result);

  /// Reads (and for writes optionally mutates) the subtree of \p v,
  /// following references when the query semantics imply it.
  void Touch(txn::Transaction& txn, const nf2::Value& v, bool write,
             bool follow_refs, QueryResult* result);

  const logra::LockGraph* graph_;
  const nf2::Catalog* catalog_;
  nf2::InstanceStore* store_;
  proto::LockProtocol* protocol_;
  Options options_;
  LockStats* stats_;
};

}  // namespace codlock::query

#endif  // CODLOCK_QUERY_EXECUTOR_H_
