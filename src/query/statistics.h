/// \file statistics.h
/// \brief Structural statistics feeding the lock planner.
///
/// §4.5 / [HDKS89]: "the lock granules and the corresponding lock modes
/// are determined automatically from a query and additional structural and
/// statistical information."  The statistics are per-attribute averages
/// collected by scanning the instance store (a real system would maintain
/// them in the catalog).

#ifndef CODLOCK_QUERY_STATISTICS_H_
#define CODLOCK_QUERY_STATISTICS_H_

#include <unordered_map>

#include "nf2/schema.h"
#include "nf2/store.h"

namespace codlock::query {

/// \brief Per-attribute structural statistics.
struct Statistics {
  /// Average element count of each collection attribute.
  std::unordered_map<nf2::AttrId, double> avg_cardinality;
  /// Average number of value nodes in the subtree of each attribute.
  std::unordered_map<nf2::AttrId, double> avg_subtree_size;
  /// Objects per relation.
  std::unordered_map<nf2::RelationId, double> relation_cardinality;

  /// Cardinality estimate for \p attr (fallback if never observed).
  double CardinalityOf(nf2::AttrId attr, double fallback = 1.0) const {
    auto it = avg_cardinality.find(attr);
    return it != avg_cardinality.end() ? it->second : fallback;
  }

  double SubtreeSizeOf(nf2::AttrId attr, double fallback = 1.0) const {
    auto it = avg_subtree_size.find(attr);
    return it != avg_subtree_size.end() ? it->second : fallback;
  }

  /// Collects statistics by a full scan of \p store.
  static Statistics Collect(const nf2::Catalog& catalog,
                            const nf2::InstanceStore& store);
};

}  // namespace codlock::query

#endif  // CODLOCK_QUERY_STATISTICS_H_
