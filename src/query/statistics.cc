#include "query/statistics.h"

namespace codlock::query {

namespace {

struct Accum {
  double sum = 0;
  uint64_t n = 0;
  void Add(double v) {
    sum += v;
    ++n;
  }
  double Avg() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

/// Walks one value tree, accumulating per-attribute cardinality and
/// subtree-size observations.  Returns the subtree size of \p v.
size_t Walk(const nf2::Catalog& catalog, nf2::AttrId attr,
            const nf2::Value& v,
            std::unordered_map<nf2::AttrId, Accum>* card,
            std::unordered_map<nf2::AttrId, Accum>* size) {
  size_t subtree = 1;
  if (!v.is_atomic() && !v.is_ref()) {
    const nf2::AttrDef& def = catalog.attr(attr);
    if (nf2::IsCollection(def.kind)) {
      (*card)[attr].Add(static_cast<double>(v.children().size()));
      for (const nf2::Value& child : v.children()) {
        subtree += Walk(catalog, def.children[0], child, card, size);
      }
    } else {  // tuple
      for (size_t i = 0; i < v.children().size(); ++i) {
        subtree +=
            Walk(catalog, def.children[i], v.children()[i], card, size);
      }
    }
  }
  (*size)[attr].Add(static_cast<double>(subtree));
  return subtree;
}

}  // namespace

Statistics Statistics::Collect(const nf2::Catalog& catalog,
                               const nf2::InstanceStore& store) {
  std::unordered_map<nf2::AttrId, Accum> card;
  std::unordered_map<nf2::AttrId, Accum> size;
  Statistics out;
  for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
    std::vector<nf2::ObjectId> objects = store.ObjectsOf(rel);
    out.relation_cardinality[rel] = static_cast<double>(objects.size());
    for (nf2::ObjectId obj : objects) {
      Result<const nf2::Object*> o = store.Get(rel, obj);
      if (!o.ok()) continue;
      Walk(catalog, catalog.relation(rel).root, (*o)->root, &card, &size);
    }
  }
  for (const auto& [attr, acc] : card) out.avg_cardinality[attr] = acc.Avg();
  for (const auto& [attr, acc] : size) out.avg_subtree_size[attr] = acc.Avg();
  return out;
}

}  // namespace codlock::query
