#include "query/planner.h"

#include <cmath>
#include <sstream>

namespace codlock::query {

std::string_view GranulePolicyName(GranulePolicy policy) {
  switch (policy) {
    case GranulePolicy::kWholeObject:
      return "whole-object";
    case GranulePolicy::kTuple:
      return "tuple";
    case GranulePolicy::kOptimal:
      return "optimal";
  }
  return "?";
}

std::string QuerySpecificLockGraph::ToString(
    const logra::LockGraph& graph) const {
  std::ostringstream os;
  for (const Entry& e : entries) {
    os << "  " << graph.NodeName(e.node) << " <- "
       << lock::LockModeName(e.mode);
    if (e.per_element) os << " (per element)";
    os << '\n';
  }
  return os.str();
}

Result<QueryPlan> LockPlanner::Plan(const Query& query) const {
  if (query.relation == nf2::kInvalidRelation ||
      query.relation >= catalog_->num_relations()) {
    return Status::InvalidArgument("query names an unknown relation");
  }
  // Validate the path against the schema early (query analysis).
  Result<nf2::AttrId> target_attr =
      ResolvePathAttr(*catalog_, query.relation, query.path);
  if (!target_attr.ok()) return target_attr.status();

  QueryPlan plan;
  plan.policy = options_.policy;
  plan.target_mode = query.is_write() ? LockMode::kX : LockMode::kS;
  plan.access_implies_refs = query.access_implies_refs;

  switch (options_.policy) {
    case GranulePolicy::kWholeObject:
      // The whole complex object, references included, behind one lock.
      plan.lock_path = {};
      plan.per_element = false;
      plan.expected_target_locks = 1.0;
      break;

    case GranulePolicy::kTuple: {
      plan.lock_path = query.path;
      const nf2::AttrDef& def = catalog_->attr(*target_attr);
      // "Locking each single tuple individually": a collection target is
      // locked element by element, regardless of how many there are.
      plan.per_element = nf2::IsCollection(def.kind);
      plan.expected_target_locks =
          plan.per_element
              ? std::max(1.0, query.selectivity *
                                  stats_->CardinalityOf(*target_attr))
              : 1.0;
      break;
    }

    case GranulePolicy::kOptimal: {
      plan.lock_path = query.path;
      const nf2::AttrDef& def = catalog_->attr(*target_attr);
      if (nf2::IsCollection(def.kind)) {
        // Anticipated escalation: estimate the fine-granule lock count;
        // if it exceeds θ, lock the collection HoLU up-front instead.
        double expected = std::max(
            1.0, query.selectivity * stats_->CardinalityOf(*target_attr));
        if (expected <= options_.escalation_threshold) {
          plan.per_element = true;
          plan.expected_target_locks = expected;
        } else {
          plan.per_element = false;
          plan.expected_target_locks = 1.0;
        }
      } else {
        plan.per_element = false;
        plan.expected_target_locks = 1.0;
      }
      // Whole-object accesses collapse to the complex-object granule.
      if (query.path.empty()) {
        plan.lock_path = {};
        plan.per_element = false;
      }
      break;
    }
  }

  BuildQslg(query, &plan);
  return plan;
}

void LockPlanner::BuildQslg(const Query& query, QueryPlan* plan) const {
  const nf2::RelationDef& rdef = catalog_->relation(query.relation);
  const LockMode intention = lock::IntentionFor(plan->target_mode);
  auto add = [plan](logra::NodeId node, LockMode mode, bool per_element) {
    plan->qslg.entries.push_back(
        QuerySpecificLockGraph::Entry{node, mode, per_element});
  };

  // Path from the outer unit's root to the target (rule 5 order).
  add(graph_->DatabaseNode(rdef.database), intention, false);
  add(graph_->SegmentNode(rdef.segment), intention, false);
  add(graph_->RelationNode(query.relation), intention, false);

  nf2::AttrId cur = rdef.root;
  std::vector<nf2::AttrId> attr_chain{cur};
  for (const nf2::PathStep& step : query.path) {
    Result<nf2::AttrId> field = catalog_->FindField(cur, step.attr_name);
    if (!field.ok()) return;  // Plan() validated already
    cur = *field;
    attr_chain.push_back(cur);
    if (step.selects_element()) {
      Result<nf2::AttrId> elem = catalog_->ElementAttr(cur);
      if (!elem.ok()) return;
      cur = *elem;
      attr_chain.push_back(cur);
    }
  }

  // Intention locks on the chain; the last node gets the target mode —
  // unless per-element locking is planned, in which case the collection
  // node keeps its intention mode and the element node is marked.
  for (size_t i = 0; i < attr_chain.size(); ++i) {
    logra::NodeId node = graph_->NodeForAttr(attr_chain[i]);
    const bool last = i + 1 == attr_chain.size();
    if (!last) {
      add(node, intention, false);
      continue;
    }
    if (plan->per_element) {
      add(node, intention, false);
      Result<nf2::AttrId> elem = catalog_->ElementAttr(attr_chain[i]);
      if (elem.ok()) {
        add(graph_->NodeForAttr(*elem), plan->target_mode, true);
      }
    } else {
      add(node, plan->target_mode, false);
    }
  }

  // Anticipated downward propagation: entry points of shared relations
  // reachable from the target node appear in the query-specific lock
  // graph with the mode rule 4/4′ will request (shown as S here; the
  // protocol decides S vs X per transaction rights at run time).
  if (plan->access_implies_refs &&
      (plan->target_mode == LockMode::kS || plan->target_mode == LockMode::kX)) {
    logra::NodeId target_node = plan->qslg.entries.back().node;
    for (nf2::RelationId shared :
         graph_->ReachableSharedRelations(target_node)) {
      const nf2::RelationDef& sdef = catalog_->relation(shared);
      add(graph_->DatabaseNode(sdef.database), LockMode::kIS, false);
      add(graph_->SegmentNode(sdef.segment), LockMode::kIS, false);
      add(graph_->RelationNode(shared), LockMode::kIS, false);
      add(graph_->ComplexObjectNode(shared), LockMode::kS, false);
    }
  }
}

}  // namespace codlock::query
