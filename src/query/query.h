/// \file query.h
/// \brief The query model: path queries over complex objects.
///
/// Queries mirror the HDBL-style examples of Fig. 3:
///
/// \code
///   Q1: SELECT o FROM c IN cells, o IN c.c_objects
///       WHERE c.cell_id = 'c1' FOR READ
///   Q2: SELECT r FROM c IN cells, r IN c.robots
///       WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
/// \endcode
///
/// A query names a relation, selects objects (by key, or all), navigates a
/// path below the object root, and declares its access kind.  This is
/// exactly the information the lock planner needs (§4.1: "Each query ...
/// is first analyzed to find out which attributes will be accessed, and
/// which kind of access ... will be done").

#ifndef CODLOCK_QUERY_QUERY_H_
#define CODLOCK_QUERY_QUERY_H_

#include <string>

#include "nf2/schema.h"
#include "nf2/value.h"
#include "util/result.h"

namespace codlock::query {

/// Kind of access a query performs on its target.
enum class AccessKind : uint8_t {
  kRead,    ///< FOR READ
  kUpdate,  ///< FOR UPDATE (in-place modification of the target subtree)
  kDelete,  ///< deletion of the target (a §4.5 example: the common data a
            ///< deleted object references is itself not accessed)
};

std::string_view AccessKindName(AccessKind kind);

/// \brief A path query over one relation.
struct Query {
  std::string name;  ///< label for reports ("Q1", ...)
  nf2::RelationId relation = nf2::kInvalidRelation;
  /// Key of the selected complex object; empty selects all objects.
  std::string object_key;
  /// Navigation below the object root; empty accesses the whole object.
  nf2::Path path;
  AccessKind kind = AccessKind::kRead;
  /// When the path ends at a collection without element selection: the
  /// expected fraction of its elements the query touches (WHERE-clause
  /// selectivity estimate).  1.0 = all elements.
  double selectivity = 1.0;
  /// False when the query's semantics guarantee the referenced common
  /// data is not accessed (§4.5).
  bool access_implies_refs = true;

  bool is_write() const { return kind != AccessKind::kRead; }

  std::string ToString() const;
};

/// Schema attribute a path resolves to below \p rel's root tuple (the
/// element attribute when the final step selects a collection element).
Result<nf2::AttrId> ResolvePathAttr(const nf2::Catalog& catalog,
                                    nf2::RelationId rel,
                                    const nf2::Path& path);

/// The three example queries of Fig. 3 against the Fig. 1 schema.
Query MakeQ1(nf2::RelationId cells);
Query MakeQ2(nf2::RelationId cells);
Query MakeQ3(nf2::RelationId cells);

}  // namespace codlock::query

#endif  // CODLOCK_QUERY_QUERY_H_
