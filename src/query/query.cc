#include "query/query.h"

namespace codlock::query {

std::string_view AccessKindName(AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead:
      return "READ";
    case AccessKind::kUpdate:
      return "UPDATE";
    case AccessKind::kDelete:
      return "DELETE";
  }
  return "?";
}

std::string Query::ToString() const {
  std::string out = name.empty() ? "query" : name;
  out += ": relation " + std::to_string(relation);
  if (!object_key.empty()) out += " object '" + object_key + "'";
  if (!path.empty()) out += " path " + nf2::PathToString(path);
  out += " FOR " + std::string(AccessKindName(kind));
  if (selectivity < 1.0) {
    out += " (selectivity " + std::to_string(selectivity) + ")";
  }
  return out;
}

Result<nf2::AttrId> ResolvePathAttr(const nf2::Catalog& catalog,
                                    nf2::RelationId rel,
                                    const nf2::Path& path) {
  nf2::AttrId cur = catalog.relation(rel).root;
  for (const nf2::PathStep& step : path) {
    Result<nf2::AttrId> field = catalog.FindField(cur, step.attr_name);
    if (!field.ok()) return field.status();
    cur = *field;
    if (step.selects_element()) {
      Result<nf2::AttrId> elem = catalog.ElementAttr(cur);
      if (!elem.ok()) return elem.status();
      cur = *elem;
    }
  }
  return cur;
}

Query MakeQ1(nf2::RelationId cells) {
  Query q;
  q.name = "Q1";
  q.relation = cells;
  q.object_key = "c1";
  q.path = {nf2::PathStep::Field("c_objects")};
  q.kind = AccessKind::kRead;
  return q;
}

Query MakeQ2(nf2::RelationId cells) {
  Query q;
  q.name = "Q2";
  q.relation = cells;
  q.object_key = "c1";
  q.path = {nf2::PathStep::Elem("robots", "r1")};
  q.kind = AccessKind::kUpdate;
  return q;
}

Query MakeQ3(nf2::RelationId cells) {
  Query q;
  q.name = "Q3";
  q.relation = cells;
  q.object_key = "c1";
  q.path = {nf2::PathStep::Elem("robots", "r2")};
  q.kind = AccessKind::kUpdate;
  return q;
}

}  // namespace codlock::query
