#include "query/parser.h"

#include <cctype>
#include <vector>

namespace codlock::query {

namespace {

enum class TokKind { kIdent, kString, kComma, kDot, kEquals, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
};

/// Tokenizer for the HDBL fragment: identifiers, 'string' literals and
/// the punctuation , . =
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, ""};
    char c = text_[pos_];
    if (c == ',') {
      ++pos_;
      return Token{TokKind::kComma, ","};
    }
    if (c == '.') {
      ++pos_;
      return Token{TokKind::kDot, "."};
    }
    if (c == '=') {
      ++pos_;
      return Token{TokKind::kEquals, "="};
    }
    if (c == '\'') {
      size_t end = text_.find('\'', pos_ + 1);
      if (end == std::string::npos) {
        return Status::InvalidArgument("unterminated string literal");
      }
      Token t{TokKind::kString, text_.substr(pos_ + 1, end - pos_ - 1)};
      pos_ = end + 1;
      return t;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return Token{TokKind::kIdent, text_.substr(start, pos_ - start)};
    }
    return Status::InvalidArgument(std::string("unexpected character '") +
                                   c + "' in query");
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

bool IsKeyword(const Token& t, const char* kw) {
  return t.kind == TokKind::kIdent && Upper(t.text) == kw;
}

/// One range variable of the FROM clause.
struct Binding {
  std::string var;
  int parent = -1;            ///< index of the source binding (-1: relation)
  std::string attr_name;      ///< collection attribute (parent bindings)
  nf2::AttrId elem_attr = nf2::kInvalidAttr;  ///< bound element type
  std::string elem_key;       ///< set by a WHERE key predicate
};

}  // namespace

Result<Query> ParseQuery(const nf2::Catalog& catalog,
                         const std::string& text) {
  Lexer lexer(text);
  auto next = [&lexer]() { return lexer.Next(); };

  Result<Token> tok = next();
  if (!tok.ok()) return tok.status();
  if (!IsKeyword(*tok, "SELECT")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  tok = next();
  if (!tok.ok()) return tok.status();
  if (tok->kind != TokKind::kIdent) {
    return Status::InvalidArgument("SELECT needs a range variable");
  }
  const std::string select_var = tok->text;

  tok = next();
  if (!tok.ok()) return tok.status();
  if (!IsKeyword(*tok, "FROM")) {
    return Status::InvalidArgument("expected FROM after SELECT <var>");
  }

  // --- FROM clause: bindings. ---
  Query q;
  std::vector<Binding> bindings;
  while (true) {
    tok = next();
    if (!tok.ok()) return tok.status();
    if (tok->kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected range variable in FROM");
    }
    Binding b;
    b.var = tok->text;
    tok = next();
    if (!tok.ok()) return tok.status();
    if (!IsKeyword(*tok, "IN")) {
      return Status::InvalidArgument("expected IN after range variable '" +
                                     b.var + "'");
    }
    tok = next();
    if (!tok.ok()) return tok.status();
    if (tok->kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected relation or path after IN");
    }
    std::string first = tok->text;

    tok = next();
    if (!tok.ok()) return tok.status();
    if (tok->kind == TokKind::kDot) {
      // v IN w.attr — range over a collection of an earlier binding.
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected attribute after '" + first +
                                       ".'");
      }
      int parent = -1;
      for (size_t i = 0; i < bindings.size(); ++i) {
        if (bindings[i].var == first) parent = static_cast<int>(i);
      }
      if (parent < 0) {
        return Status::InvalidArgument("unknown range variable '" + first +
                                       "' in FROM");
      }
      // Resolve the collection attribute from the parent's tuple type.
      nf2::AttrId parent_tuple = bindings[static_cast<size_t>(parent)]
                                     .elem_attr;
      Result<nf2::AttrId> coll = catalog.FindField(parent_tuple, tok->text);
      if (!coll.ok()) return coll.status();
      Result<nf2::AttrId> elem = catalog.ElementAttr(*coll);
      if (!elem.ok()) {
        return Status::InvalidArgument("'" + tok->text +
                                       "' is not a set or list attribute");
      }
      b.parent = parent;
      b.attr_name = tok->text;
      b.elem_attr = *elem;
      bindings.push_back(b);
      tok = next();
      if (!tok.ok()) return tok.status();
    } else {
      // v IN relation — only legal for the first binding.
      if (!bindings.empty()) {
        return Status::InvalidArgument(
            "only the first FROM binding may range over a relation "
            "(joins are outside the lock-relevant fragment)");
      }
      Result<nf2::RelationId> rel = catalog.FindRelation(first);
      if (!rel.ok()) return rel.status();
      q.relation = *rel;
      b.parent = -1;
      b.elem_attr = catalog.relation(*rel).root;
      bindings.push_back(b);
    }

    if (tok->kind == TokKind::kComma) continue;
    // Past the FROM clause; tok is WHERE, FOR or end.
    break;
  }

  // --- WHERE clause: key-equality conjunctions. ---
  if (IsKeyword(*tok, "WHERE")) {
    while (true) {
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected <var>.<attr> in WHERE");
      }
      std::string var = tok->text;
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kDot) {
        return Status::InvalidArgument("expected '.' after '" + var +
                                       "' in WHERE");
      }
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected attribute in WHERE");
      }
      std::string attr_name = tok->text;
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kEquals) {
        return Status::InvalidArgument(
            "only equality predicates are supported");
      }
      tok = next();
      if (!tok.ok()) return tok.status();
      if (tok->kind != TokKind::kString) {
        return Status::InvalidArgument("expected 'literal' in WHERE");
      }
      std::string literal = tok->text;

      int bi = -1;
      for (size_t i = 0; i < bindings.size(); ++i) {
        if (bindings[i].var == var) bi = static_cast<int>(i);
      }
      if (bi < 0) {
        return Status::InvalidArgument("unknown range variable '" + var +
                                       "' in WHERE");
      }
      Binding& b = bindings[static_cast<size_t>(bi)];
      Result<nf2::AttrId> field = catalog.FindField(b.elem_attr, attr_name);
      if (!field.ok()) return field.status();
      if (!catalog.attr(*field).is_key) {
        return Status::InvalidArgument(
            "'" + attr_name +
            "' is not a key attribute; only key-equality predicates are in "
            "the supported fragment");
      }
      if (bi == 0) {
        q.object_key = literal;
      } else {
        b.elem_key = literal;
      }

      tok = next();
      if (!tok.ok()) return tok.status();
      if (IsKeyword(*tok, "AND")) continue;
      break;
    }
  }

  // --- FOR clause. ---
  if (!IsKeyword(*tok, "FOR")) {
    return Status::InvalidArgument("expected FOR READ/UPDATE/DELETE");
  }
  tok = next();
  if (!tok.ok()) return tok.status();
  std::string kind = Upper(tok->text);
  if (kind == "READ") {
    q.kind = AccessKind::kRead;
  } else if (kind == "UPDATE") {
    q.kind = AccessKind::kUpdate;
  } else if (kind == "DELETE") {
    q.kind = AccessKind::kDelete;
  } else {
    return Status::InvalidArgument("FOR must be READ, UPDATE or DELETE");
  }
  tok = next();
  if (!tok.ok()) return tok.status();
  if (tok->kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing input after FOR " + kind);
  }

  // --- Lower the selected variable to a navigation path. ---
  int target = -1;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].var == select_var) target = static_cast<int>(i);
  }
  if (target < 0) {
    return Status::InvalidArgument("SELECT variable '" + select_var +
                                   "' is not bound in FROM");
  }
  // Chain from the relation binding down to the target.
  std::vector<int> chain;
  for (int cur = target; cur > 0;
       cur = bindings[static_cast<size_t>(cur)].parent) {
    chain.push_back(cur);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Binding& b = bindings[static_cast<size_t>(*it)];
    const bool last = (*it == target);
    if (!b.elem_key.empty()) {
      q.path.push_back(nf2::PathStep::Elem(b.attr_name, b.elem_key));
    } else if (last) {
      // Unselected final collection: the query ranges over all elements.
      q.path.push_back(nf2::PathStep::Field(b.attr_name));
    } else {
      return Status::InvalidArgument(
          "intermediate range variable '" + b.var +
          "' must be selected by a key predicate");
    }
  }
  q.name = text;
  return q;
}

}  // namespace codlock::query
