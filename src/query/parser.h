/// \file parser.h
/// \brief Parser for the paper's HDBL-style query notation (Fig. 3).
///
/// The paper writes its examples "in a query language which is an
/// extension of SQL" (HDBL, the query language of AIM-P).  This parser
/// accepts exactly the shape of those examples:
///
/// \code
///   SELECT o FROM c IN cells, o IN c.c_objects
///     WHERE c.cell_id = 'c1' FOR READ
///   SELECT r FROM c IN cells, r IN c.robots
///     WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
/// \endcode
///
/// and lowers them to `query::Query` (relation + object selection +
/// navigation path + access kind), i.e. precisely the information query
/// analysis needs (§4.1).  Supported subset:
///
///  * `FROM v IN relation` — the range over a relation (first binding),
///  * `FROM ... , v IN w.attr` — range over a collection attribute of an
///    earlier binding (navigation),
///  * `WHERE v.keyattr = 'literal'` — equality on *key* attributes, which
///    select either the complex object (root key) or one collection
///    element (element key); conjunctions with AND,
///  * `FOR READ | FOR UPDATE | FOR DELETE`.
///
/// Anything else (non-key predicates, joins, projections with
/// expressions) is outside the lock-relevant fragment and rejected with a
/// clear error.

#ifndef CODLOCK_QUERY_PARSER_H_
#define CODLOCK_QUERY_PARSER_H_

#include <string>

#include "nf2/schema.h"
#include "query/query.h"
#include "util/result.h"

namespace codlock::query {

/// Parses \p text against \p catalog into a `Query`.
Result<Query> ParseQuery(const nf2::Catalog& catalog,
                         const std::string& text);

}  // namespace codlock::query

#endif  // CODLOCK_QUERY_PARSER_H_
