/// \file planner.h
/// \brief Determination of "optimal" lock requests (§4.5, [HDKS89]).
///
/// The planner runs during query analysis — before any data is accessed —
/// and produces a **query-specific lock graph**: for every lock-graph node
/// the query will traverse, the mode to request, and for the query's
/// target the chosen granule.  The mechanism is the *anticipation of lock
/// escalations*: from structural statistics the planner estimates how many
/// fine-granule locks a query would take; when that count exceeds the
/// escalation threshold θ it requests the coarser granule up-front, so no
/// run-time escalation (with its overhead and deadlock risk) ever occurs.
/// Granules are "neither too coarse (data would be blocked unnecessarily)
/// nor too small (high overhead would result)"; modes are the least
/// restrictive necessary.
///
/// Besides the paper's optimal policy the planner implements the two
/// baseline granule policies of §3:
///  * whole-object locking (XSQL's "complex object" granule),
///  * tuple-level locking ("locking each single tuple individually").

#ifndef CODLOCK_QUERY_PLANNER_H_
#define CODLOCK_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "lock/mode.h"
#include "logra/lock_graph.h"
#include "query/query.h"
#include "query/statistics.h"

namespace codlock::query {

using lock::LockMode;

/// Granule selection policy.
enum class GranulePolicy : uint8_t {
  kWholeObject,  ///< always lock the complex object as a whole (§3.1 XSQL)
  kTuple,        ///< always lock the finest granules (element tuples)
  kOptimal,      ///< anticipated-escalation optimum (§4.5)
};

std::string_view GranulePolicyName(GranulePolicy policy);

/// \brief The query-specific lock graph: granule and mode information
/// determined during query analysis, consumed during query execution
/// (§4.1, §4.6 advantage 6).
struct QuerySpecificLockGraph {
  struct Entry {
    logra::NodeId node = logra::kInvalidNode;
    LockMode mode = LockMode::kNL;
    /// True: this collection's *elements* are locked individually in
    /// `mode` (the node itself receives the matching intention mode).
    bool per_element = false;
  };
  /// Root-to-leaf order (rule 5: locks are requested in this order).
  std::vector<Entry> entries;

  std::string ToString(const logra::LockGraph& graph) const;
};

/// \brief Executable lock plan for one query.
struct QueryPlan {
  GranulePolicy policy = GranulePolicy::kOptimal;
  /// Mode for the target granule (S for READ, X for UPDATE/DELETE).
  LockMode target_mode = LockMode::kS;
  /// Where to place the target lock: a prefix of (or the whole) query
  /// path.  Empty path = the complex-object node.
  nf2::Path lock_path;
  /// If the lock path ends at a collection: lock each touched element
  /// individually instead of the collection HoLU.
  bool per_element = false;
  /// Planner's estimate of target locks per object.
  double expected_target_locks = 1.0;
  /// Forwarded from the query (§4.5 semantics hook).
  bool access_implies_refs = true;
  /// The stored granule+mode information.
  QuerySpecificLockGraph qslg;
};

/// \brief Plans lock requests for queries.
class LockPlanner {
 public:
  struct Options {
    GranulePolicy policy = GranulePolicy::kOptimal;
    /// Escalation threshold θ: the planner never plans more than θ
    /// fine-granule target locks; above that it escalates in advance.
    double escalation_threshold = 16.0;
  };

  LockPlanner(const logra::LockGraph* graph, const nf2::Catalog* catalog,
              const Statistics* stats, Options options)
      : graph_(graph), catalog_(catalog), stats_(stats), options_(options) {}

  LockPlanner(const logra::LockGraph* graph, const nf2::Catalog* catalog,
              const Statistics* stats)
      : LockPlanner(graph, catalog, stats, Options()) {}

  /// Analyzes \p query and produces its plan + query-specific lock graph.
  Result<QueryPlan> Plan(const Query& query) const;

  const Options& options() const { return options_; }

 private:
  void BuildQslg(const Query& query, QueryPlan* plan) const;

  const logra::LockGraph* graph_;
  const nf2::Catalog* catalog_;
  const Statistics* stats_;
  Options options_;
};

}  // namespace codlock::query

#endif  // CODLOCK_QUERY_PLANNER_H_
