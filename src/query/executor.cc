#include "query/executor.h"

#include <cmath>

namespace codlock::query {

Result<nf2::Iid> QueryExecutor::ExecuteInsert(txn::Transaction& txn,
                                              nf2::RelationId relation,
                                              const std::string& object_key,
                                              const nf2::Path& coll_path,
                                              nf2::Value elem) {
  Result<const nf2::Object*> obj = store_->FindByKey(relation, object_key);
  if (!obj.ok()) return obj.status();
  Result<nf2::ResolvedPath> resolved =
      store_->Navigate(relation, (*obj)->id, coll_path);
  if (!resolved.ok()) return resolved.status();
  // Schema-level check: never dereference pre-lock value pointers.
  if (!nf2::IsCollection(catalog_->attr(resolved->target_attr()).kind)) {
    return Status::InvalidArgument("insert target is not a collection");
  }
  proto::LockTarget target = proto::MakeTarget(*graph_, *catalog_, *resolved);
  // The insert does not read the existing elements' common data — only
  // the new element's references are locked below.
  target.access_implies_refs = false;
  CODLOCK_RETURN_IF_ERROR(protocol_->Lock(txn, target, lock::LockMode::kX));
  CODLOCK_RETURN_IF_ERROR(
      protocol_->LockNewValueRefs(txn, elem, lock::LockMode::kX));
  // Extract the element's key for the undo record before the move.
  std::string elem_key;
  Result<nf2::AttrId> elem_attr = catalog_->ElementAttr(resolved->target_attr());
  if (elem_attr.ok() && elem.is_tuple()) {
    const nf2::AttrDef& edef = catalog_->attr(*elem_attr);
    for (size_t i = 0; i < edef.children.size(); ++i) {
      if (catalog_->attr(edef.children[i]).is_key &&
          elem.children()[i].kind() == nf2::AttrKind::kString) {
        elem_key = elem.children()[i].as_string();
        break;
      }
    }
  }
  Result<nf2::Iid> inserted =
      store_->AddElement(relation, (*obj)->id, coll_path, std::move(elem));
  if (inserted.ok() && options_.undo != nullptr && !elem_key.empty()) {
    options_.undo->RecordInsert(txn.id(), relation, (*obj)->id, coll_path,
                                elem_key);
  }
  return inserted;
}

Status QueryExecutor::ExecuteErase(txn::Transaction& txn,
                                   nf2::RelationId relation,
                                   const std::string& object_key,
                                   const nf2::Path& coll_path,
                                   const std::string& elem_key) {
  Result<const nf2::Object*> obj = store_->FindByKey(relation, object_key);
  if (!obj.ok()) return obj.status();
  Result<nf2::ResolvedPath> resolved =
      store_->Navigate(relation, (*obj)->id, coll_path);
  if (!resolved.ok()) return resolved.status();
  if (!nf2::IsCollection(catalog_->attr(resolved->target_attr()).kind)) {
    return Status::InvalidArgument("erase target is not a collection");
  }
  proto::LockTarget target = proto::MakeTarget(*graph_, *catalog_, *resolved);
  // §4.5: the deleted element's referenced common data is not accessed.
  target.access_implies_refs = false;
  CODLOCK_RETURN_IF_ERROR(protocol_->Lock(txn, target, lock::LockMode::kX));
  if (options_.undo != nullptr) {
    // Before-image for rollback: copy the element prior to removal.
    nf2::Path epath = coll_path;
    if (!epath.empty()) {
      epath.back().elem_key = elem_key;
    }
    Result<nf2::ResolvedPath> before =
        store_->Navigate(relation, (*obj)->id, epath);
    if (before.ok()) {
      options_.undo->RecordRemove(txn.id(), relation, (*obj)->id, coll_path,
                                  *before->target());
    }
  }
  return store_->RemoveElement(relation, (*obj)->id, coll_path, elem_key);
}

Result<QueryResult> QueryExecutor::Execute(txn::Transaction& txn,
                                           const Query& query,
                                           const QueryPlan& plan) {
  QueryResult result;
  if (!query.object_key.empty()) {
    Result<const nf2::Object*> obj =
        store_->FindByKey(query.relation, query.object_key);
    if (!obj.ok()) return obj.status();
    CODLOCK_RETURN_IF_ERROR(
        ExecuteOnObject(txn, query, plan, (*obj)->id, &result));
  } else {
    for (nf2::ObjectId obj : store_->ObjectsOf(query.relation)) {
      CODLOCK_RETURN_IF_ERROR(
          ExecuteOnObject(txn, query, plan, obj, &result));
    }
  }
  return result;
}

Status QueryExecutor::ExecuteOnObject(txn::Transaction& txn,
                                      const Query& query,
                                      const QueryPlan& plan,
                                      nf2::ObjectId obj,
                                      QueryResult* result) {
  Result<nf2::ResolvedPath> resolved =
      store_->Navigate(query.relation, obj, plan.lock_path);
  if (!resolved.ok()) return resolved.status();
  ++result->objects_visited;

  const bool write = query.is_write();
  proto::LockTarget target = proto::MakeTarget(*graph_, *catalog_, *resolved);
  target.access_implies_refs = plan.access_implies_refs;

  // NOTE on pointer stability: navigation above ran *before* any locks
  // were taken, so a conflicting structural update we wait for during
  // lock acquisition may relocate (or remove) the resolved value nodes.
  // Instance ids are stable, so after the locks are granted we re-resolve
  // the target through the store's iid index; from that point structural
  // changes are excluded by the held locks (inserts/erases need X on the
  // covering collection, incompatible with our IS/IX/S/X).
  auto refresh = [&](const nf2::Value** out) -> Status {
    Result<nf2::InstanceStore::IidInfo> fresh =
        store_->FindIid(target.target_iid());
    if (!fresh.ok()) {
      return Status::NotFound("target vanished while waiting for its lock");
    }
    *out = fresh->value;
    return Status::OK();
  };

  if (!plan.per_element) {
    CODLOCK_RETURN_IF_ERROR(protocol_->Lock(txn, target, plan.target_mode));
    ++result->target_locks;
    const nf2::Value* value = nullptr;
    CODLOCK_RETURN_IF_ERROR(refresh(&value));
    // The lock may cover more than the query touches (anticipated
    // escalation): the access itself still only visits the selected slice
    // of a collection target.
    if (value->is_collection() && query.selectivity < 1.0) {
      const auto& elems = value->children();
      const size_t k = std::min(
          elems.size(),
          static_cast<size_t>(std::ceil(
              query.selectivity * static_cast<double>(elems.size()))));
      ++result->values_read;  // the collection node itself
      for (size_t i = 0; i < k; ++i) {
        Touch(txn, elems[i], write, plan.access_implies_refs, result);
      }
    } else {
      Touch(txn, *value, write, plan.access_implies_refs, result);
    }
    return Status::OK();
  }

  // Per-element locking: intention on the collection, then the touched
  // elements individually.
  CODLOCK_RETURN_IF_ERROR(protocol_->Lock(
      txn, target, lock::IntentionFor(plan.target_mode)));

  const nf2::Value* coll_ptr = nullptr;
  CODLOCK_RETURN_IF_ERROR(refresh(&coll_ptr));
  const nf2::Value& coll = *coll_ptr;
  if (!coll.is_collection()) {
    return Status::Internal("per-element plan on a non-collection target");
  }
  Result<nf2::AttrId> elem_attr =
      catalog_->ElementAttr(resolved->target_attr());
  if (!elem_attr.ok()) return elem_attr.status();
  logra::NodeId elem_node = graph_->NodeForAttr(*elem_attr);

  const size_t n = coll.children().size();
  const size_t k = std::min(
      n, static_cast<size_t>(std::ceil(query.selectivity *
                                       static_cast<double>(n))));
  for (size_t i = 0; i < k; ++i) {
    const nf2::Value& elem = coll.children()[i];
    if (options_.runtime_escalation_threshold > 0 &&
        i >= options_.runtime_escalation_threshold) {
      // Run-time escalation: trade the element locks taken so far for one
      // coarse lock on the collection — a mid-flight upgrade (IX → S/X on
      // the HoLU) that can deadlock against a peer doing the same.  This
      // is exactly what anticipated escalation (§4.5) avoids.
      CODLOCK_RETURN_IF_ERROR(
          protocol_->Lock(txn, target, plan.target_mode));
      if (stats_ != nullptr) stats_->escalations.Add();
      ++result->target_locks;
      for (size_t j = i; j < k; ++j) {
        Touch(txn, coll.children()[j], write, plan.access_implies_refs,
              result);
      }
      return Status::OK();
    }
    proto::LockTarget elem_target = target;
    elem_target.path.emplace_back(elem_node, elem.iid());
    elem_target.value = &elem;
    CODLOCK_RETURN_IF_ERROR(
        protocol_->Lock(txn, elem_target, plan.target_mode));
    ++result->target_locks;
    Touch(txn, elem, write, plan.access_implies_refs, result);
  }
  return Status::OK();
}

void QueryExecutor::Touch(txn::Transaction& txn, const nf2::Value& v,
                          bool write, bool follow_refs,
                          QueryResult* result) {
  ++result->values_read;
  if (write) ++result->values_written;
  if (v.is_ref()) {
    if (!follow_refs) return;
    Result<const nf2::Object*> obj = store_->Deref(v.as_ref());
    if (obj.ok()) {
      // Referenced common data is read-only for this access unless the
      // transaction explicitly X-locked it; reads only here.
      Touch(txn, (*obj)->root, /*write=*/false, follow_refs, result);
    }
    return;
  }
  if (v.is_atomic()) {
    if (write && options_.apply_writes && v.kind() == nf2::AttrKind::kInt) {
      // Safe under a sound protocol: the covering X lock grants exclusive
      // access to this leaf.  (Integration tests use this to demonstrate
      // mutual exclusion; the value is owned by the store.)
      auto* mutable_v = const_cast<nf2::Value*>(&v);
      if (options_.undo != nullptr) {
        options_.undo->RecordIntUpdate(txn.id(), v.iid(), v.as_int());
      }
      mutable_v->set_int(mutable_v->as_int() + 1);
    }
    return;
  }
  for (const nf2::Value& child : v.children()) {
    Touch(txn, child, write, follow_refs, result);
  }
}

}  // namespace codlock::query
