/// \file co_protocol.h
/// \brief The paper's lock protocol for disjoint and non-disjoint complex
/// objects (§4.4.2).
///
/// Rules implemented (numbering as in the paper):
///
///  1./2. **IS/IX** — on the root of an outer unit (the database node): no
///        prior locks needed.  On a non-root node: all immediate parents
///        (along the access path; units are hierarchical) must hold at
///        least IS/IX.  On an inner unit's entry point: the *referencing*
///        node must hold at least IS/IX, and the concurrency control
///        manager itself locks the entry point's immediate parents up to
///        the root of the superunit ("implicit upward propagation").
///
///  3./4. **S/X** — same parent conditions; additionally, before granting
///        S/X on any node, the concurrency control manager locks all entry
///        points of lower (dependent) inner units *accessible via the
///        requested node* in S/X ("implicit downward propagation").  This
///        makes locks on common data visible to from-the-side accessors.
///
///  4′.   **authorization-aware X** — during downward propagation of an X
///        request, entry points of inner units the transaction is *not*
///        entitled to modify are locked **S** instead of X, and modifiable
///        ones X.  (Solves the authorization-oriented problem; Q2 ∥ Q3.)
///
///  5.    Locks are requested root-to-leaf (the `Lock` call acquires the
///        access path in that order); release is at EOT via the
///        transaction manager (or leaf-to-root manually).
///
/// For disjoint complex objects (no references) no inner units exist and
/// the protocol degenerates to the classical DAG protocol of [GLPT76].

#ifndef CODLOCK_PROTO_CO_PROTOCOL_H_
#define CODLOCK_PROTO_CO_PROTOCOL_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "authz/authz.h"
#include "proto/protocol.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace codlock::proto {

/// \brief The proposed protocol.
class ComplexObjectProtocol : public LockProtocol {
 public:
  struct Options {
    /// Use rule 4′ (authorization-aware downward propagation).  With
    /// false, plain rule 4 is used: X propagates X onto every reachable
    /// entry point (the E4 benchmark's ablation).
    bool use_rule4_prime = true;
    /// Acquire options forwarded to the lock manager.
    bool wait = true;
    uint64_t timeout_ms = 0;
    /// Pass the transaction's held-lock cache to the lock manager (the
    /// acquisition fast path).  The model checker explores every workload
    /// with the cache both on and off: the observable schedules and
    /// verdicts must not differ.
    bool use_txn_cache = true;
  };

  ComplexObjectProtocol(const logra::LockGraph* graph,
                        const nf2::InstanceStore* store,
                        lock::LockManager* lock_manager,
                        const authz::AuthorizationManager* authz,
                        Options options)
      : graph_(graph),
        store_(store),
        lm_(lock_manager),
        authz_(authz),
        options_(options) {}

  ComplexObjectProtocol(const logra::LockGraph* graph,
                        const nf2::InstanceStore* store,
                        lock::LockManager* lock_manager,
                        const authz::AuthorizationManager* authz)
      : ComplexObjectProtocol(graph, store, lock_manager, authz, Options()) {}

  std::string_view name() const override {
    return options_.use_rule4_prime ? "complex-object(4')" : "complex-object";
  }

  Status Lock(txn::Transaction& txn, const LockTarget& target,
              LockMode mode) override;

  Status LockEntryPoint(txn::Transaction& txn, const LockTarget& ref_path,
                        LockMode mode) override;

  Status LockNewValueRefs(txn::Transaction& txn, const nf2::Value& v,
                          LockMode mode) override;

  /// De-escalation (§5 future work: "the efficient release of locks"):
  /// the transaction holds \p coarse (a collection HoLU) in S or X and
  /// narrows it — the elements at \p keep_indices are locked individually
  /// in the coarse mode, then the coarse lock is downgraded to the
  /// matching intention mode, releasing the rest of the collection for
  /// other transactions *before* EOT.
  Status Deescalate(txn::Transaction& txn, const LockTarget& coarse,
                    const std::vector<size_t>& keep_indices);

  /// Key of (relation, object) in visited sets and the propagation memo.
  ///
  /// A full-avalanche mix of both components: the earlier
  /// `(rel << 48) ^ obj` aliased systematically whenever object ids used
  /// bit 48 and above (e.g. (rel=1, obj=0) and (rel=0, obj=1<<48) mapped to
  /// the same key, silently skipping a propagation step).  Packing 96 bits
  /// into 64 cannot be injective, but the mix turns residual collisions
  /// into data-independent birthday-bound events instead of structural
  /// ones.  Public so tests can assert the old colliding pairs now differ.
  static constexpr uint64_t VisitKey(nf2::RelationId rel, nf2::ObjectId obj) {
    return Mix64(Mix64(static_cast<uint64_t>(rel) + 0x9E3779B97F4A7C15ULL) ^
                 Mix64(obj + 0xBF58476D1CE4E5B9ULL));
  }

 private:
  using Visited = std::unordered_set<uint64_t>;

  /// splitmix64 finalizer (bijective on uint64).
  static constexpr uint64_t Mix64(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  lock::TxnLockCache* CacheOf(txn::Transaction& txn) const {
    return options_.use_txn_cache ? &txn.lock_cache() : nullptr;
  }

  lock::AcquireOptions AcquireOpts(const txn::Transaction& txn) const {
    lock::AcquireOptions o;
    o.duration = txn.lock_duration();
    o.wait = options_.wait;
    o.timeout_ms = options_.timeout_ms;
    return o;
  }

  /// Implicit downward propagation (§4.4.2): locks all entry points of
  /// lower inner units reachable from value \p v, recursing through nested
  /// common data.  \p mode is the S/X mode being granted on the covering
  /// node.
  Status PropagateDown(txn::Transaction& txn, const nf2::Value& v,
                       LockMode mode, Visited* visited);

  /// Locks a single entry point including implicit upward propagation and
  /// the downward recursion into its own referenced data.
  Status LockEntryPointInternal(txn::Transaction& txn,
                                const nf2::RefValue& ref, LockMode mode,
                                Visited* visited);

  /// Downward propagation from a singleton granule (relation/segment/
  /// database level S/X lock): covers every object in scope.
  Status PropagateDownFromSingleton(txn::Transaction& txn,
                                    logra::NodeId node, LockMode mode,
                                    Visited* visited);

  /// The distinct refs contained in (rel, obj)'s value tree, memoized per
  /// (relation, object) and revalidated against the store's mutation
  /// epoch.  Precondition: the calling transaction holds an S/X lock
  /// covering the object (the entry point itself, or a relation/segment/
  /// database singleton above it), so no writer can be mutating the value
  /// tree — which is what makes a fill safe to share across transactions.
  Result<std::vector<nf2::RefValue>> ObjectRefs(nf2::RelationId rel,
                                                nf2::ObjectId obj);

  /// Superunit chain of \p node in root-first acquisition order, memoized
  /// (the lock graph is immutable, so entries never invalidate).
  const std::vector<logra::NodeId>& ChainRootFirst(logra::NodeId node);

  const logra::LockGraph* graph_;
  const nf2::InstanceStore* store_;
  lock::LockManager* lm_;
  const authz::AuthorizationManager* authz_;
  Options options_;

  /// Guards the propagation memo below.  Leaf mutex: taken only from
  /// protocol code with no lock-manager mutex held.
  mutable Mutex memo_mu_;
  /// store_->mutation_epoch() value the refs memo was filled under; a
  /// mismatch at lookup means stored values may have changed and the whole
  /// table is dropped.
  uint64_t memo_epoch_ CODLOCK_GUARDED_BY(memo_mu_) = 0;
  /// VisitKey(rel, obj) → distinct refs in the object's value tree.
  std::unordered_map<uint64_t, std::vector<nf2::RefValue>> refs_memo_
      CODLOCK_GUARDED_BY(memo_mu_);
  /// Lock-graph node → superunit chain, root first (schema-static).
  std::unordered_map<logra::NodeId, std::vector<logra::NodeId>> chain_memo_
      CODLOCK_GUARDED_BY(memo_mu_);
};

}  // namespace codlock::proto

#endif  // CODLOCK_PROTO_CO_PROTOCOL_H_
