#include "proto/validator.h"

namespace codlock::proto {

std::string Violation::ToString() const {
  return "txn " + std::to_string(writer) + " writes iid " +
         std::to_string(iid) + " while txn " + std::to_string(other) +
         (write_write ? " also writes it" : " reads it") +
         " (conflict undetected by the lock protocol)";
}

void ProtocolValidator::CoverSolid(const nf2::Value& v,
                                   std::unordered_set<nf2::Iid>* out) const {
  out->insert(v.iid());
  if (!v.is_atomic() && !v.is_ref()) {
    for (const nf2::Value& child : v.children()) CoverSolid(child, out);
  }
}

void ProtocolValidator::CoverWithRefs(
    const nf2::Value& v, std::unordered_set<nf2::Iid>* out,
    std::unordered_set<uint64_t>* visited) const {
  out->insert(v.iid());
  if (v.is_ref()) {
    const nf2::RefValue& ref = v.as_ref();
    uint64_t key = (static_cast<uint64_t>(ref.relation) << 48) ^ ref.object;
    if (!visited->insert(key).second) return;
    Result<const nf2::Object*> obj = store_->Get(ref.relation, ref.object);
    if (obj.ok()) CoverWithRefs((*obj)->root, out, visited);
    return;
  }
  if (!v.is_atomic()) {
    for (const nf2::Value& child : v.children()) {
      CoverWithRefs(child, out, visited);
    }
  }
}

void ProtocolValidator::Expand(const lock::LongLockRecord& rec,
                               Coverage* cov) const {
  using lock::LockMode;
  if (rec.mode == LockMode::kIS || rec.mode == LockMode::kIX ||
      rec.mode == LockMode::kNL) {
    return;  // pure intention locks cover nothing by themselves
  }
  const bool is_write = rec.mode == LockMode::kX;

  // Collect the value roots the resource denotes.
  std::vector<const nf2::Value*> roots;
  if (rec.resource.instance == 0) {
    const logra::Node& node = graph_->node(rec.resource.node);
    const nf2::Catalog& catalog = store_->catalog();
    for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
      const nf2::RelationDef& rdef = catalog.relation(rel);
      bool in_scope = false;
      switch (node.level) {
        case logra::NodeLevel::kDatabase:
          in_scope = rdef.database == node.database;
          break;
        case logra::NodeLevel::kSegment:
          in_scope = rdef.segment == node.segment;
          break;
        case logra::NodeLevel::kRelation:
          in_scope = rel == node.relation;
          break;
        default:
          break;
      }
      if (!in_scope) continue;
      for (nf2::ObjectId obj : store_->ObjectsOf(rel)) {
        Result<const nf2::Object*> o = store_->Get(rel, obj);
        if (o.ok()) roots.push_back(&(*o)->root);
      }
    }
  } else {
    Result<nf2::InstanceStore::IidInfo> info =
        store_->FindIid(rec.resource.instance);
    if (info.ok()) roots.push_back(info->value);
  }

  std::unordered_set<uint64_t> visited;
  for (const nf2::Value* root : roots) {
    CoverWithRefs(*root, &cov->reads, &visited);
    if (is_write) CoverSolid(*root, &cov->writes);
  }
}

std::vector<Violation> ProtocolValidator::Check(
    const lock::LockManager& lm) const {
  std::unordered_map<lock::TxnId, Coverage> by_txn;
  for (const lock::LongLockRecord& rec : lm.SnapshotAllLocks()) {
    Expand(rec, &by_txn[rec.txn]);
  }

  std::vector<Violation> out;
  for (auto wi = by_txn.begin(); wi != by_txn.end(); ++wi) {
    const Coverage& w = wi->second;
    if (w.writes.empty()) continue;
    for (auto oi = by_txn.begin(); oi != by_txn.end(); ++oi) {
      if (oi == wi) continue;
      const Coverage& o = oi->second;
      for (nf2::Iid iid : w.writes) {
        bool ww = o.writes.contains(iid);
        if (ww || o.reads.contains(iid)) {
          // Report each write-write pair once (ordered by txn id).
          if (ww && wi->first > oi->first) continue;
          Violation v;
          v.writer = wi->first;
          v.other = oi->first;
          v.iid = iid;
          v.write_write = ww;
          out.push_back(v);
        }
      }
    }
  }
  return out;
}

}  // namespace codlock::proto
