#include "proto/validator.h"

#include <algorithm>

namespace codlock::proto {

std::string Violation::ToString() const {
  return "txn " + std::to_string(writer) + " writes iid " +
         std::to_string(iid) + " while txn " + std::to_string(other) +
         (write_write ? " also writes it" : " reads it") +
         " (conflict undetected by the lock protocol)";
}

namespace {

void CoverSolid(const nf2::Value& v, std::unordered_set<nf2::Iid>* out) {
  out->insert(v.iid());
  if (!v.is_atomic() && !v.is_ref()) {
    for (const nf2::Value& child : v.children()) CoverSolid(child, out);
  }
}

void CoverWithRefs(const nf2::InstanceStore& store, const nf2::Value& v,
                   std::unordered_set<nf2::Iid>* out,
                   std::unordered_set<uint64_t>* visited) {
  out->insert(v.iid());
  if (v.is_ref()) {
    const nf2::RefValue& ref = v.as_ref();
    uint64_t key = (static_cast<uint64_t>(ref.relation) << 48) ^ ref.object;
    if (!visited->insert(key).second) return;
    Result<const nf2::Object*> obj = store.Get(ref.relation, ref.object);
    if (obj.ok()) CoverWithRefs(store, (*obj)->root, out, visited);
    return;
  }
  if (!v.is_atomic()) {
    for (const nf2::Value& child : v.children()) {
      CoverWithRefs(store, child, out, visited);
    }
  }
}

}  // namespace

LockCoverage ExpandLockCoverage(const logra::LockGraph& graph,
                                const nf2::InstanceStore& store,
                                const lock::ResourceId& resource,
                                lock::LockMode mode) {
  using lock::LockMode;
  LockCoverage cov;
  if (mode == LockMode::kIS || mode == LockMode::kIX ||
      mode == LockMode::kNL) {
    return cov;  // pure intention locks cover nothing by themselves
  }
  const bool is_write = mode == LockMode::kX;

  // Collect the value roots the resource denotes.
  std::vector<const nf2::Value*> roots;
  if (resource.instance == 0) {
    const logra::Node& node = graph.node(resource.node);
    const nf2::Catalog& catalog = store.catalog();
    for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
      const nf2::RelationDef& rdef = catalog.relation(rel);
      bool in_scope = false;
      switch (node.level) {
        case logra::NodeLevel::kDatabase:
          in_scope = rdef.database == node.database;
          break;
        case logra::NodeLevel::kSegment:
          in_scope = rdef.segment == node.segment;
          break;
        case logra::NodeLevel::kRelation:
          in_scope = rel == node.relation;
          break;
        default:
          break;
      }
      if (!in_scope) continue;
      for (nf2::ObjectId obj : store.ObjectsOf(rel)) {
        Result<const nf2::Object*> o = store.Get(rel, obj);
        if (o.ok()) roots.push_back(&(*o)->root);
      }
    }
  } else {
    Result<nf2::InstanceStore::IidInfo> info =
        store.FindIid(resource.instance);
    if (info.ok()) roots.push_back(info->value);
  }

  std::unordered_set<uint64_t> visited;
  for (const nf2::Value* root : roots) {
    CoverWithRefs(store, *root, &cov.reads, &visited);
    if (is_write) CoverSolid(*root, &cov.writes);
  }
  return cov;
}

SerializabilityVerdict CheckConflictSerializable(
    const std::vector<HistoryOp>& history,
    const std::unordered_set<lock::TxnId>& committed) {
  SerializabilityVerdict verdict;

  // Precedence edges Ti -> Tj for each conflicting pair (earlier Ti op,
  // later Tj op) between distinct committed transactions.
  std::unordered_map<lock::TxnId, std::unordered_set<lock::TxnId>> edges;
  auto intersects = [](const std::unordered_set<nf2::Iid>& a,
                       const std::unordered_set<nf2::Iid>& b) {
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    return std::any_of(small.begin(), small.end(),
                       [&](nf2::Iid i) { return large.contains(i); });
  };
  for (size_t i = 0; i < history.size(); ++i) {
    const HistoryOp& early = history[i];
    if (!committed.contains(early.txn)) continue;
    for (size_t j = i + 1; j < history.size(); ++j) {
      const HistoryOp& late = history[j];
      if (late.txn == early.txn || !committed.contains(late.txn)) continue;
      const bool conflict = intersects(early.cov.writes, late.cov.reads) ||
                            intersects(early.cov.writes, late.cov.writes) ||
                            intersects(early.cov.reads, late.cov.writes);
      if (conflict) edges[early.txn].insert(late.txn);
    }
  }

  // Recursive DFS with colors; a gray-to-gray edge closes a cycle.  The
  // graph has one node per committed transaction — a handful in every
  // caller — so recursion depth is trivially bounded.
  enum class Color : uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<lock::TxnId, Color> color;
  std::vector<lock::TxnId> path;
  auto dfs = [&](auto&& self, lock::TxnId t) -> bool {
    color[t] = Color::kGray;
    path.push_back(t);
    for (lock::TxnId next : edges[t]) {
      Color c = color.contains(next) ? color[next] : Color::kWhite;
      if (c == Color::kGray) {
        // Found a cycle: report the path segment from `next` onwards.
        verdict.serializable = false;
        auto it = std::find(path.begin(), path.end(), next);
        verdict.cycle.assign(it, path.end());
        verdict.cycle.push_back(next);
        return true;
      }
      if (c == Color::kWhite && self(self, next)) return true;
    }
    path.pop_back();
    color[t] = Color::kBlack;
    return false;
  };
  std::vector<lock::TxnId> roots;
  roots.reserve(edges.size());
  for (const auto& [t, _] : edges) roots.push_back(t);
  for (lock::TxnId root : roots) {
    Color c = color.contains(root) ? color[root] : Color::kWhite;
    if (c == Color::kWhite && dfs(dfs, root)) return verdict;
  }
  return verdict;
}

std::vector<Violation> ProtocolValidator::Check(
    const lock::LockManager& lm) const {
  std::unordered_map<lock::TxnId, LockCoverage> by_txn;
  for (const lock::LongLockRecord& rec : lm.SnapshotAllLocks()) {
    by_txn[rec.txn].MergeFrom(
        ExpandLockCoverage(*graph_, *store_, rec.resource, rec.mode));
  }

  std::vector<Violation> out;
  for (auto wi = by_txn.begin(); wi != by_txn.end(); ++wi) {
    const LockCoverage& w = wi->second;
    if (w.writes.empty()) continue;
    for (auto oi = by_txn.begin(); oi != by_txn.end(); ++oi) {
      if (oi == wi) continue;
      const LockCoverage& o = oi->second;
      for (nf2::Iid iid : w.writes) {
        bool ww = o.writes.contains(iid);
        if (ww || o.reads.contains(iid)) {
          // Report each write-write pair once (ordered by txn id).
          if (ww && wi->first > oi->first) continue;
          Violation v;
          v.writer = wi->first;
          v.other = oi->first;
          v.iid = iid;
          v.write_write = ww;
          out.push_back(v);
        }
      }
    }
  }
  return out;
}

}  // namespace codlock::proto
