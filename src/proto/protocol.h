/// \file protocol.h
/// \brief Lock protocol interface and lock targets.
///
/// A lock protocol implements the *rules for explicitly requesting locks*
/// (§4.4): given a target granule (a lock-graph node instance reached via a
/// concrete access path) and a requested mode, it acquires the target lock
/// plus every ancillary lock its rules demand (intention locks on parents,
/// implicit upward/downward propagation, ...).
///
/// Which granule to request in which mode is *not* the protocol's decision:
/// that is the query layer's granule policy / query-specific lock graph
/// (§4.5).  Keeping the two concerns separate lets benchmarks combine any
/// protocol with any granule policy — exactly the comparisons of the
/// paper's §3/§4.6.

#ifndef CODLOCK_PROTO_PROTOCOL_H_
#define CODLOCK_PROTO_PROTOCOL_H_

#include <string_view>
#include <utility>
#include <vector>

#include "lock/lock_manager.h"
#include "lock/mode.h"
#include "logra/lock_graph.h"
#include "nf2/store.h"
#include "txn/txn_manager.h"
#include "util/status.h"

namespace codlock::proto {

using lock::LockMode;

/// \brief A concrete lock target: a lock-graph node instance plus the full
/// access path from the database root used to reach it.
///
/// `path[0]` is always the database node (instance 0); the last element is
/// the target itself.  The path never crosses a dashed (reference) edge —
/// entering an inner unit is a separate `LockEntryPoint` call, mirroring
/// the unit boundary of the lock graphs.
struct LockTarget {
  /// (lock-graph node, instance id) pairs, database node first.
  std::vector<std::pair<logra::NodeId, nf2::Iid>> path;
  /// Relation/object context of the value-level part of the path
  /// (kInvalidRelation for database/segment/relation-level targets).
  nf2::RelationId relation = nf2::kInvalidRelation;
  nf2::ObjectId object = nf2::kInvalidObject;
  /// Value node backing the target (nullptr for singleton granules).
  const nf2::Value* value = nullptr;
  /// §4.5 query-semantics hook: when false, accessing this target does
  /// *not* imply accessing the referenced common data (e.g. deleting a
  /// robot without the right to delete effectors), so a protocol may skip
  /// downward propagation entirely.
  bool access_implies_refs = true;

  logra::NodeId target_node() const { return path.back().first; }
  nf2::Iid target_iid() const { return path.back().second; }
};

/// Builds a `LockTarget` from a resolved navigation path: the database,
/// segment and relation chain followed by one entry per resolved step.
LockTarget MakeTarget(const logra::LockGraph& graph,
                      const nf2::Catalog& catalog,
                      const nf2::ResolvedPath& resolved);

/// Builds the singleton target for a database/segment/relation node.
LockTarget MakeSingletonTarget(const logra::LockGraph& graph,
                               logra::NodeId node);

/// Builds the target for the *whole complex object* \p obj of \p rel
/// (the complex-object HeLU instance — XSQL's "complex object" granule).
Result<LockTarget> MakeObjectTarget(const logra::LockGraph& graph,
                                    const nf2::Catalog& catalog,
                                    const nf2::InstanceStore& store,
                                    nf2::RelationId rel, nf2::ObjectId obj);

/// \brief Abstract lock protocol (rules for explicitly requesting locks).
class LockProtocol {
 public:
  virtual ~LockProtocol() = default;

  /// Protocol name for reports ("complex-object", "sysr-dag", ...).
  virtual std::string_view name() const = 0;

  /// Acquires \p mode (IS, IX, S or X) on the target of \p path for
  /// transaction \p txn, plus all ancillary locks the protocol requires.
  ///
  /// On failure (deadlock, timeout) locks already acquired remain held and
  /// the caller is expected to abort the transaction, which releases
  /// everything (strict 2PL).
  virtual Status Lock(txn::Transaction& txn, const LockTarget& target,
                      LockMode mode) = 0;

  /// Crosses a dashed edge: acquires \p mode on the entry point of the
  /// inner unit referenced by \p ref_path's target (which must be a ref
  /// BLU), plus whatever the protocol's rules require.
  virtual Status LockEntryPoint(txn::Transaction& txn,
                                const LockTarget& ref_path,
                                LockMode mode) = 0;

  /// Locks the common data referenced by a value that is *about to be
  /// inserted* (structural update): the new references must be visible to
  /// from-the-side accessors before the element becomes reachable.  The
  /// default is a no-op — the traditional protocols never propagate.
  virtual Status LockNewValueRefs(txn::Transaction& txn, const nf2::Value& v,
                                  LockMode mode) {
    (void)txn;
    (void)v;
    (void)mode;
    return Status::OK();
  }
};

/// \brief Effective (explicit + implicit) mode a transaction holds on the
/// last node of \p path: the explicit mode there, joined with S/X coverage
/// inherited from ancestors along the path (S and SIX cover descendants in
/// S; X covers them in X).
LockMode EffectiveModeOnPath(const lock::LockManager& lm, lock::TxnId txn,
                             const LockTarget& path);

}  // namespace codlock::proto

#endif  // CODLOCK_PROTO_PROTOCOL_H_
