#include "proto/protocol.h"

namespace codlock::proto {

LockTarget MakeTarget(const logra::LockGraph& graph,
                      const nf2::Catalog& catalog,
                      const nf2::ResolvedPath& resolved) {
  LockTarget t;
  const nf2::RelationDef& rdef = catalog.relation(resolved.relation);
  t.relation = resolved.relation;
  t.object = resolved.object;
  t.path.emplace_back(graph.DatabaseNode(rdef.database), 0);
  t.path.emplace_back(graph.SegmentNode(rdef.segment), 0);
  t.path.emplace_back(graph.RelationNode(resolved.relation), 0);
  for (const nf2::ResolvedStep& step : resolved.steps) {
    // Use the latched-captured iid: step.value may already dangle if a
    // structural writer intervened after navigation (see ResolvedStep).
    t.path.emplace_back(graph.NodeForAttr(step.attr), step.iid);
  }
  t.value = resolved.target();
  return t;
}

LockTarget MakeSingletonTarget(const logra::LockGraph& graph,
                               logra::NodeId node) {
  LockTarget t;
  std::vector<logra::NodeId> chain = graph.SuperunitChain(node);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    t.path.emplace_back(*it, 0);
  }
  t.path.emplace_back(node, 0);
  const logra::Node& n = graph.node(node);
  if (n.level == logra::NodeLevel::kRelation) t.relation = n.relation;
  return t;
}

Result<LockTarget> MakeObjectTarget(const logra::LockGraph& graph,
                                    const nf2::Catalog& catalog,
                                    const nf2::InstanceStore& store,
                                    nf2::RelationId rel, nf2::ObjectId obj) {
  Result<nf2::ResolvedPath> resolved = store.Navigate(rel, obj, {});
  if (!resolved.ok()) return resolved.status();
  return MakeTarget(graph, catalog, *resolved);
}

LockMode EffectiveModeOnPath(const lock::LockManager& lm, lock::TxnId txn,
                             const LockTarget& path) {
  using lock::LockMode;
  LockMode inherited = LockMode::kNL;
  LockMode effective = LockMode::kNL;
  for (size_t i = 0; i < path.path.size(); ++i) {
    lock::ResourceId res{path.path[i].first, path.path[i].second};
    LockMode explicit_mode = lm.HeldMode(txn, res);
    effective = lock::Supremum(explicit_mode, inherited);
    // S/SIX cover descendants in S; X covers them in X.
    switch (effective) {
      case LockMode::kX:
        inherited = LockMode::kX;
        break;
      case LockMode::kS:
      case LockMode::kSIX:
        inherited = lock::Supremum(inherited, LockMode::kS);
        break;
      default:
        break;
    }
  }
  return effective;
}

}  // namespace codlock::proto
