/// \file sysr_protocol.h
/// \brief Straightforward application of the traditional DAG lock protocol
/// [GLP75, GLPT76] to (non-disjoint) complex objects — the baseline whose
/// shortcomings §3.2.2 analyzes.
///
/// Two variants:
///
///  * **kAllParents** (the letter of the DAG protocol): before X/IX on a
///    node within common data, *all* parent nodes — i.e. every ref BLU of
///    every complex object referencing it, plus their ancestor chains —
///    must be IX-locked.  Finding those parents without backward pointers
///    requires scanning all potentially-referencing objects; the scan cost
///    is recorded in `LockStats::parent_searches`.  This variant is sound
///    but pays the "intolerable overhead" of §3.2.2.
///
///  * **kPathOnly** (the DAG requirement "given up"): only the parents on
///    the access path actually used are locked.  This is cheap but
///    *unsound* for non-disjoint objects: implicit locks set via one path
///    are invisible to transactions accessing the shared data from the
///    side, so conflicting grants can coexist.  The `ProtocolValidator`
///    counts these undetected conflicts (benchmark E3).
///
/// Neither variant performs downward propagation — that is the paper's
/// contribution, not System R's.

#ifndef CODLOCK_PROTO_SYSR_PROTOCOL_H_
#define CODLOCK_PROTO_SYSR_PROTOCOL_H_

#include "proto/protocol.h"

namespace codlock::proto {

/// \brief Traditional DAG protocol baseline.
class SystemRDagProtocol : public LockProtocol {
 public:
  enum class Variant {
    kAllParents,  ///< sound; scans for and locks all referencing parents
    kPathOnly     ///< unsound on shared data; locks the used path only
  };

  struct Options {
    Variant variant = Variant::kAllParents;
    bool wait = true;
    uint64_t timeout_ms = 0;
  };

  SystemRDagProtocol(const logra::LockGraph* graph,
                     const nf2::InstanceStore* store,
                     lock::LockManager* lock_manager, Options options)
      : graph_(graph), store_(store), lm_(lock_manager), options_(options) {}

  SystemRDagProtocol(const logra::LockGraph* graph,
                     const nf2::InstanceStore* store,
                     lock::LockManager* lock_manager)
      : SystemRDagProtocol(graph, store, lock_manager, Options()) {}

  std::string_view name() const override {
    return options_.variant == Variant::kAllParents ? "sysr-dag(all-parents)"
                                                    : "sysr-dag(path-only)";
  }

  Status Lock(txn::Transaction& txn, const LockTarget& target,
              LockMode mode) override;

  Status LockEntryPoint(txn::Transaction& txn, const LockTarget& ref_path,
                        LockMode mode) override;

 private:
  lock::AcquireOptions AcquireOpts(const txn::Transaction& txn) const {
    lock::AcquireOptions o;
    o.duration = txn.lock_duration();
    o.wait = options_.wait;
    o.timeout_ms = options_.timeout_ms;
    return o;
  }

  /// GLPT76 rule 2 for shared nodes: IX-lock *all* parents of the target
  /// object — every referencing path found by a store scan.
  Status LockAllParents(txn::Transaction& txn, nf2::RelationId rel,
                        nf2::ObjectId obj);

  const logra::LockGraph* graph_;
  const nf2::InstanceStore* store_;
  lock::LockManager* lm_;
  Options options_;
};

}  // namespace codlock::proto

#endif  // CODLOCK_PROTO_SYSR_PROTOCOL_H_
