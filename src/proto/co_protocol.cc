#include "proto/co_protocol.h"

namespace codlock::proto {

using lock::LockMode;

Status ComplexObjectProtocol::Lock(txn::Transaction& txn,
                                   const LockTarget& target, LockMode mode) {
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot request mode NL");
  }
  const lock::AcquireOptions opts = AcquireOpts(txn);
  const LockMode intention = lock::IntentionFor(mode);

  // Rule 5: request root-to-leaf.  Rules 1–4 parent conditions: every
  // immediate parent along the path gets (at least) the matching intention
  // mode.  The root of the outer unit (database node) needs no prior locks.
  for (size_t i = 0; i + 1 < target.path.size(); ++i) {
    lock::ResourceId res{target.path[i].first, target.path[i].second};
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(txn.id(), res, intention, opts));
  }
  lock::ResourceId res{target.target_node(), target.target_iid()};
  CODLOCK_RETURN_IF_ERROR(lm_->Acquire(txn.id(), res, mode, opts));

  // Rules 3/4/4′: implicit downward propagation for S and X.  Skipped when
  // the query's semantics guarantee the referenced common data is not
  // accessed (§4.5), and — a schema-level test — when no ref BLU exists
  // below the target node at all: "In case of disjoint complex objects no
  // inner units exist.  So, for disjoint complex objects the above lock
  // protocol is identical to the traditional one" (§4.4.2.1).
  if ((mode == LockMode::kS || mode == LockMode::kX) &&
      target.access_implies_refs &&
      !graph_->RefBlusUnder(target.target_node()).empty()) {
    Visited visited;
    if (target.value != nullptr) {
      // Re-resolve the value by its (stable) instance id: the caller
      // navigated *before* this lock was granted, and a structural change
      // by a conflicting transaction we just waited for may have moved —
      // or removed — the value node.  Now that the lock is held, no
      // further structural change can touch this subtree.
      Result<nf2::InstanceStore::IidInfo> fresh =
          store_->FindIid(target.target_iid());
      if (!fresh.ok()) {
        return Status::NotFound(
            "target vanished while waiting for its lock");
      }
      return PropagateDown(txn, *fresh->value, mode, &visited);
    }
    return PropagateDownFromSingleton(txn, target.target_node(), mode,
                                      &visited);
  }
  return Status::OK();
}

Status ComplexObjectProtocol::PropagateDown(txn::Transaction& txn,
                                            const nf2::Value& v,
                                            LockMode mode, Visited* visited) {
  for (const nf2::RefValue& ref : nf2::InstanceStore::CollectRefs(v)) {
    CODLOCK_RETURN_IF_ERROR(LockEntryPointInternal(txn, ref, mode, visited));
  }
  return Status::OK();
}

Status ComplexObjectProtocol::PropagateDownFromSingleton(
    txn::Transaction& txn, logra::NodeId node, LockMode mode,
    Visited* visited) {
  const logra::Node& n = graph_->node(node);
  switch (n.level) {
    case logra::NodeLevel::kRelation: {
      // S/X on a relation covers every object: their referenced inner
      // units must become visible too.
      for (nf2::ObjectId obj : store_->ObjectsOf(n.relation)) {
        Result<const nf2::Object*> o = store_->Get(n.relation, obj);
        if (!o.ok()) continue;  // concurrently erased
        CODLOCK_RETURN_IF_ERROR(
            PropagateDown(txn, (*o)->root, mode, visited));
      }
      return Status::OK();
    }
    case logra::NodeLevel::kDatabase:
    case logra::NodeLevel::kSegment: {
      // Cover every relation in scope.
      const nf2::Catalog& catalog = store_->catalog();
      for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
        const nf2::RelationDef& rdef = catalog.relation(rel);
        if (n.level == logra::NodeLevel::kDatabase &&
            rdef.database != n.database) {
          continue;
        }
        if (n.level == logra::NodeLevel::kSegment &&
            rdef.segment != n.segment) {
          continue;
        }
        CODLOCK_RETURN_IF_ERROR(PropagateDownFromSingleton(
            txn, graph_->RelationNode(rel), mode, visited));
      }
      return Status::OK();
    }
    default:
      return Status::Internal(
          "singleton downward propagation from a value-level node");
  }
}

Status ComplexObjectProtocol::LockEntryPointInternal(txn::Transaction& txn,
                                                     const nf2::RefValue& ref,
                                                     LockMode mode,
                                                     Visited* visited) {
  if (!visited->insert(VisitKey(ref.relation, ref.object)).second) {
    return Status::OK();  // diamond sharing: already covered in this call
  }

  // Rule 4′: an X being propagated onto a non-modifiable inner unit is
  // weakened to S ("at least S lock all roots of lower (dependent)
  // non-modifiable inner units").
  LockMode ep_mode = mode;
  if (mode == LockMode::kX && options_.use_rule4_prime &&
      !authz_->CanModify(txn.user(), ref.relation)) {
    ep_mode = LockMode::kS;
  }

  const lock::AcquireOptions opts = AcquireOpts(txn);
  const LockMode intention = lock::IntentionFor(ep_mode);

  // Implicit upward propagation: the concurrency control manager locks all
  // immediate parents of the entry point up to the root of the superunit,
  // root first.  (Never crosses a unit boundary upward.)
  logra::NodeId ep_node = graph_->ComplexObjectNode(ref.relation);
  std::vector<logra::NodeId> chain = graph_->SuperunitChain(ep_node);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{*it, 0}, intention, opts));
    lm_->stats().upward_propagations.Add();
  }

  Result<nf2::Iid> root_iid = store_->RootIid(ref.relation, ref.object);
  if (!root_iid.ok()) return root_iid.status();
  CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
      txn.id(), lock::ResourceId{ep_node, *root_iid}, ep_mode, opts));
  lm_->stats().downward_propagations.Add();

  // Common data may again contain common data: recurse.  The scan over the
  // object's references happens while the data is read anyway (§4.4.2.1).
  if (ep_mode == LockMode::kS || ep_mode == LockMode::kX) {
    Result<const nf2::Object*> obj = store_->Get(ref.relation, ref.object);
    if (!obj.ok()) return obj.status();
    return PropagateDown(txn, (*obj)->root, ep_mode, visited);
  }
  return Status::OK();
}

Status ComplexObjectProtocol::LockNewValueRefs(txn::Transaction& txn,
                                               const nf2::Value& v,
                                               LockMode mode) {
  if (mode != LockMode::kS && mode != LockMode::kX) {
    return Status::InvalidArgument("LockNewValueRefs requires S or X");
  }
  Visited visited;
  return PropagateDown(txn, v, mode, &visited);
}

Status ComplexObjectProtocol::Deescalate(txn::Transaction& txn,
                                         const LockTarget& coarse,
                                         const std::vector<size_t>& keep_indices) {
  if (coarse.value == nullptr || !coarse.value->is_collection()) {
    return Status::InvalidArgument(
        "de-escalation target must be a collection HoLU");
  }
  lock::ResourceId res{coarse.target_node(), coarse.target_iid()};
  const LockMode held = lm_->HeldMode(txn.id(), res);
  if (held != LockMode::kS && held != LockMode::kX) {
    return Status::FailedPrecondition(
        "de-escalation requires the collection to be held S or X (holds " +
        std::string(lock::LockModeName(held)) + ")");
  }
  // The element node is the collection node's single solid child.
  const logra::Node& coll_node = graph_->node(coarse.target_node());
  if (coll_node.solid_children.size() != 1) {
    return Status::Internal("collection HoLU must have one element node");
  }
  logra::NodeId elem_node = coll_node.solid_children[0];

  // Lock the kept elements individually first (never a window in which
  // they are unprotected), then downgrade the coarse lock.
  const lock::AcquireOptions opts = AcquireOpts(txn);
  const std::vector<nf2::Value>& elems = coarse.value->children();
  for (size_t idx : keep_indices) {
    if (idx >= elems.size()) {
      return Status::InvalidArgument("keep index " + std::to_string(idx) +
                                     " out of range");
    }
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{elem_node, elems[idx].iid()}, held, opts));
  }
  CODLOCK_RETURN_IF_ERROR(
      lm_->Downgrade(txn.id(), res, lock::IntentionFor(held)));
  lm_->stats().deescalations.Add();
  return Status::OK();
}

Status ComplexObjectProtocol::LockEntryPoint(txn::Transaction& txn,
                                             const LockTarget& ref_path,
                                             LockMode mode) {
  if (ref_path.value == nullptr || !ref_path.value->is_ref()) {
    return Status::InvalidArgument(
        "LockEntryPoint requires a ref BLU target");
  }
  // Rule precondition: "the node which references that entry point must be
  // (at least) IS/IX locked by the transaction".
  const LockMode needed = lock::IntentionFor(mode) == LockMode::kIX
                              ? LockMode::kIX
                              : LockMode::kIS;
  LockMode effective = EffectiveModeOnPath(*lm_, txn.id(), ref_path);
  if (!lock::Covers(effective, needed)) {
    return Status::FailedPrecondition(
        "referencing node holds " +
        std::string(lock::LockModeName(effective)) + ", needs >= " +
        std::string(lock::LockModeName(needed)));
  }
  Visited visited;
  return LockEntryPointInternal(txn, ref_path.value->as_ref(), mode,
                                &visited);
}

}  // namespace codlock::proto
