#include "proto/co_protocol.h"

#include <algorithm>

#include "util/mutation_points.h"

namespace codlock::proto {

using lock::LockMode;

Status ComplexObjectProtocol::Lock(txn::Transaction& txn,
                                   const LockTarget& target, LockMode mode) {
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot request mode NL");
  }
  const lock::AcquireOptions opts = AcquireOpts(txn);

  // Rule 5: request root-to-leaf.  Rules 1–4 parent conditions: every
  // immediate parent along the path gets (at least) the matching intention
  // mode.  The root of the outer unit (database node) needs no prior locks.
  // AcquirePath batches the whole path — resources the transaction's lock
  // cache already covers are skipped, the rest are grouped per lock shard.
  std::vector<lock::ResourceId> path;
  path.reserve(target.path.size());
  for (const auto& [node, iid] : target.path) {
    path.push_back(lock::ResourceId{node, iid});
  }
  CODLOCK_RETURN_IF_ERROR(
      lm_->AcquirePath(txn.id(), path, mode, opts, CacheOf(txn)));

  // Rules 3/4/4′: implicit downward propagation for S and X.  Skipped when
  // the query's semantics guarantee the referenced common data is not
  // accessed (§4.5), and — a schema-level test — when no ref BLU exists
  // below the target node at all: "In case of disjoint complex objects no
  // inner units exist.  So, for disjoint complex objects the above lock
  // protocol is identical to the traditional one" (§4.4.2.1).
  if ((mode == LockMode::kS || mode == LockMode::kX) &&
      target.access_implies_refs &&
      // Mutation point (kill-suite only): rules 3/4 dropped — locks on
      // common data are never propagated, recreating the §3.2.2 protocol
      // defect the visibility oracle exists to catch.
      !mutation::Enabled(mutation::Mutant::kSkipDownwardPropagation) &&
      !graph_->RefBlusUnder(target.target_node()).empty()) {
    Visited visited;
    if (target.value != nullptr) {
      // Re-resolve the value by its (stable) instance id: the caller
      // navigated *before* this lock was granted, and a structural change
      // by a conflicting transaction we just waited for may have moved —
      // or removed — the value node.  Now that the lock is held, no
      // further structural change can touch this subtree.
      Result<nf2::InstanceStore::IidInfo> fresh =
          store_->FindIid(target.target_iid());
      if (!fresh.ok()) {
        return Status::NotFound(
            "target vanished while waiting for its lock");
      }
      return PropagateDown(txn, *fresh->value, mode, &visited);
    }
    return PropagateDownFromSingleton(txn, target.target_node(), mode,
                                      &visited);
  }
  return Status::OK();
}

namespace {

/// Deterministic propagation order: every batch of references is entered
/// sorted by (relation DESCENDING, object), so any two transactions
/// acquire shared entry points in one global order — the invariant the
/// static acquisition-order analysis (`logra/prove`) verifies
/// schema-wide.  Descending relation id is a topological order of the
/// reference DAG (a Ref can only name an already-created relation, so
/// target id < source id): outer units are always entered before the
/// units they reference, matching the order of explicit root-to-leaf
/// traversals through reference chains.
void SortRefs(std::vector<nf2::RefValue>& refs) {
  std::sort(refs.begin(), refs.end(),
            [](const nf2::RefValue& a, const nf2::RefValue& b) {
              return a.relation != b.relation ? a.relation > b.relation
                                              : a.object < b.object;
            });
}

}  // namespace

Status ComplexObjectProtocol::PropagateDown(txn::Transaction& txn,
                                            const nf2::Value& v,
                                            LockMode mode, Visited* visited) {
  std::vector<nf2::RefValue> refs = nf2::InstanceStore::CollectRefs(v);
  SortRefs(refs);
  for (const nf2::RefValue& ref : refs) {
    CODLOCK_RETURN_IF_ERROR(LockEntryPointInternal(txn, ref, mode, visited));
  }
  return Status::OK();
}

Status ComplexObjectProtocol::PropagateDownFromSingleton(
    txn::Transaction& txn, logra::NodeId node, LockMode mode,
    Visited* visited) {
  const logra::Node& n = graph_->node(node);
  switch (n.level) {
    case logra::NodeLevel::kRelation: {
      // S/X on a relation covers every object: their referenced inner
      // units must become visible too.  The caller's singleton lock keeps
      // each object's ref adjacency stable, so the memo applies.  The
      // whole batch is sorted before entry — per-object order would let
      // two relation-level propagations interleave shared relations in
      // opposite orders.
      std::vector<nf2::RefValue> batch;
      for (nf2::ObjectId obj : store_->ObjectsOf(n.relation)) {
        Result<std::vector<nf2::RefValue>> refs =
            ObjectRefs(n.relation, obj);
        if (!refs.ok()) continue;  // concurrently erased
        batch.insert(batch.end(), refs->begin(), refs->end());
      }
      SortRefs(batch);
      for (const nf2::RefValue& ref : batch) {
        CODLOCK_RETURN_IF_ERROR(
            LockEntryPointInternal(txn, ref, mode, visited));
      }
      return Status::OK();
    }
    case logra::NodeLevel::kDatabase:
    case logra::NodeLevel::kSegment: {
      // Cover every relation in scope.  One batch across the whole scope:
      // per-relation batches would interleave with the iteration order and
      // break the single global (relation desc, object) entry order.
      const nf2::Catalog& catalog = store_->catalog();
      std::vector<nf2::RefValue> batch;
      for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
        const nf2::RelationDef& rdef = catalog.relation(rel);
        if (n.level == logra::NodeLevel::kDatabase &&
            rdef.database != n.database) {
          continue;
        }
        if (n.level == logra::NodeLevel::kSegment &&
            rdef.segment != n.segment) {
          continue;
        }
        for (nf2::ObjectId obj : store_->ObjectsOf(rel)) {
          Result<std::vector<nf2::RefValue>> refs = ObjectRefs(rel, obj);
          if (!refs.ok()) continue;  // concurrently erased
          batch.insert(batch.end(), refs->begin(), refs->end());
        }
      }
      SortRefs(batch);
      for (const nf2::RefValue& ref : batch) {
        CODLOCK_RETURN_IF_ERROR(
            LockEntryPointInternal(txn, ref, mode, visited));
      }
      return Status::OK();
    }
    default:
      return Status::Internal(
          "singleton downward propagation from a value-level node");
  }
}

Status ComplexObjectProtocol::LockEntryPointInternal(txn::Transaction& txn,
                                                     const nf2::RefValue& ref,
                                                     LockMode mode,
                                                     Visited* visited) {
  if (!visited->insert(VisitKey(ref.relation, ref.object)).second) {
    return Status::OK();  // diamond sharing: already covered in this call
  }

  // Rule 4′: an X being propagated onto a non-modifiable inner unit is
  // weakened to S ("at least S lock all roots of lower (dependent)
  // non-modifiable inner units").
  LockMode ep_mode = mode;
  if (mode == LockMode::kX && options_.use_rule4_prime &&
      !authz_->CanModify(txn.user(), ref.relation)) {
    ep_mode = LockMode::kS;
  }

  lock::AcquireOptions opts = AcquireOpts(txn);
  // Downward propagation is the one workload where concurrent transactions
  // systematically pile onto the *same* shards (shared entry-point chains,
  // acquired in one global order): publish each per-shard batch into the
  // shard's flat-combining mailbox so one mutex holder applies many
  // propagators' batches.
  opts.combine = true;

  // Implicit upward propagation: the concurrency control manager locks all
  // immediate parents of the entry point up to the root of the superunit,
  // root first (never crossing a unit boundary upward), then the entry
  // point itself.  One batched AcquirePath covers the whole chain: the
  // prefix gets IntentionFor(ep_mode), the entry point ep_mode, and each
  // lock shard is visited at most once.
  logra::NodeId ep_node = graph_->ComplexObjectNode(ref.relation);
  const std::vector<logra::NodeId>& chain = ChainRootFirst(ep_node);
  Result<nf2::Iid> root_iid = store_->RootIid(ref.relation, ref.object);
  if (!root_iid.ok()) return root_iid.status();

  std::vector<lock::ResourceId> path;
  path.reserve(chain.size() + 1);
  // Mutation point (kill-suite only): rules 1/2 dropped — the entry point
  // is locked without its superunit chain, so a relation/segment-level
  // request no longer conflicts with the inner unit's use.
  if (!mutation::Enabled(mutation::Mutant::kSkipUpwardPropagation)) {
    for (logra::NodeId node : chain) {
      path.push_back(lock::ResourceId{node, 0});
    }
  }
  path.push_back(lock::ResourceId{ep_node, *root_iid});
  CODLOCK_RETURN_IF_ERROR(
      lm_->AcquirePath(txn.id(), path, ep_mode, opts, CacheOf(txn)));
  lm_->stats().upward_propagations.Add(chain.size());
  lm_->stats().downward_propagations.Add();

  // Common data may again contain common data: recurse.  The scan over the
  // object's references happens while the data is read anyway (§4.4.2.1);
  // with the S/X on the entry point held, the object's ref adjacency is
  // stable and comes from the propagation memo.
  if (ep_mode == LockMode::kS || ep_mode == LockMode::kX) {
    Result<std::vector<nf2::RefValue>> refs =
        ObjectRefs(ref.relation, ref.object);
    if (!refs.ok()) return refs.status();
    for (const nf2::RefValue& r : *refs) {
      CODLOCK_RETURN_IF_ERROR(
          LockEntryPointInternal(txn, r, ep_mode, visited));
    }
  }
  return Status::OK();
}

const std::vector<logra::NodeId>& ComplexObjectProtocol::ChainRootFirst(
    logra::NodeId node) {
  MutexLock lk(memo_mu_);
  auto it = chain_memo_.find(node);
  if (it == chain_memo_.end()) {
    std::vector<logra::NodeId> chain = graph_->SuperunitChain(node);
    std::reverse(chain.begin(), chain.end());
    it = chain_memo_.emplace(node, std::move(chain)).first;
  }
  // References into the node-based map stay valid across later inserts,
  // and entries are never erased or overwritten.
  return it->second;
}

Result<std::vector<nf2::RefValue>> ComplexObjectProtocol::ObjectRefs(
    nf2::RelationId rel, nf2::ObjectId obj) {
  const uint64_t key = VisitKey(rel, obj);
  const uint64_t before = store_->mutation_epoch();
  {
    MutexLock lk(memo_mu_);
    if (memo_epoch_ == before) {
      auto it = refs_memo_.find(key);
      if (it != refs_memo_.end()) return it->second;
    }
  }
  Result<const nf2::Object*> o = store_->Get(rel, obj);
  if (!o.ok()) return o.status();
  std::vector<nf2::RefValue> refs =
      nf2::InstanceStore::CollectRefs((*o)->root);
  SortRefs(refs);
  const uint64_t after = store_->mutation_epoch();
  MutexLock lk(memo_mu_);
  if (memo_epoch_ != after) {
    refs_memo_.clear();
    memo_epoch_ = after;
  }
  // Cache only walks no mutator overlapped: the caller's covering S/X lock
  // rules out writers of *this* object, but an unrelated mutation mid-walk
  // would leave the fill attributable to neither epoch.
  if (before == after) refs_memo_[key] = refs;
  return refs;
}

Status ComplexObjectProtocol::LockNewValueRefs(txn::Transaction& txn,
                                               const nf2::Value& v,
                                               LockMode mode) {
  if (mode != LockMode::kS && mode != LockMode::kX) {
    return Status::InvalidArgument("LockNewValueRefs requires S or X");
  }
  Visited visited;
  return PropagateDown(txn, v, mode, &visited);
}

Status ComplexObjectProtocol::Deescalate(txn::Transaction& txn,
                                         const LockTarget& coarse,
                                         const std::vector<size_t>& keep_indices) {
  if (coarse.value == nullptr || !coarse.value->is_collection()) {
    return Status::InvalidArgument(
        "de-escalation target must be a collection HoLU");
  }
  lock::ResourceId res{coarse.target_node(), coarse.target_iid()};
  const LockMode held = lm_->HeldMode(txn.id(), res);
  if (held != LockMode::kS && held != LockMode::kX) {
    return Status::FailedPrecondition(
        "de-escalation requires the collection to be held S or X (holds " +
        std::string(lock::LockModeName(held)) + ")");
  }
  // The element node is the collection node's single solid child.
  const logra::Node& coll_node = graph_->node(coarse.target_node());
  if (coll_node.solid_children.size() != 1) {
    return Status::Internal("collection HoLU must have one element node");
  }
  logra::NodeId elem_node = coll_node.solid_children[0];

  // Lock the kept elements individually first (never a window in which
  // they are unprotected), then downgrade the coarse lock.
  const lock::AcquireOptions opts = AcquireOpts(txn);
  const std::vector<nf2::Value>& elems = coarse.value->children();
  for (size_t idx : keep_indices) {
    if (idx >= elems.size()) {
      return Status::InvalidArgument("keep index " + std::to_string(idx) +
                                     " out of range");
    }
    CODLOCK_RETURN_IF_ERROR(
        lm_->Acquire(txn.id(), lock::ResourceId{elem_node, elems[idx].iid()},
                     held, opts, CacheOf(txn)));
  }
  CODLOCK_RETURN_IF_ERROR(lm_->Downgrade(txn.id(), res,
                                         lock::IntentionFor(held),
                                         CacheOf(txn)));
  lm_->stats().deescalations.Add();
  return Status::OK();
}

Status ComplexObjectProtocol::LockEntryPoint(txn::Transaction& txn,
                                             const LockTarget& ref_path,
                                             LockMode mode) {
  if (ref_path.value == nullptr || !ref_path.value->is_ref()) {
    return Status::InvalidArgument(
        "LockEntryPoint requires a ref BLU target");
  }
  // Rule precondition: "the node which references that entry point must be
  // (at least) IS/IX locked by the transaction".
  const LockMode needed = lock::IntentionFor(mode) == LockMode::kIX
                              ? LockMode::kIX
                              : LockMode::kIS;
  LockMode effective = EffectiveModeOnPath(*lm_, txn.id(), ref_path);
  if (!lock::Covers(effective, needed)) {
    return Status::FailedPrecondition(
        "referencing node holds " +
        std::string(lock::LockModeName(effective)) + ", needs >= " +
        std::string(lock::LockModeName(needed)));
  }
  Visited visited;
  return LockEntryPointInternal(txn, ref_path.value->as_ref(), mode,
                                &visited);
}

}  // namespace codlock::proto
