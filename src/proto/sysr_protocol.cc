#include "proto/sysr_protocol.h"

namespace codlock::proto {

using lock::LockMode;

Status SystemRDagProtocol::Lock(txn::Transaction& txn,
                                const LockTarget& target, LockMode mode) {
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot request mode NL");
  }
  const lock::AcquireOptions opts = AcquireOpts(txn);
  const LockMode intention = lock::IntentionFor(mode);

  for (size_t i = 0; i + 1 < target.path.size(); ++i) {
    lock::ResourceId res{target.path[i].first, target.path[i].second};
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(txn.id(), res, intention, opts));
  }

  // GLPT76 rule 2: X/IX on a node requires *all* parents IX-locked.  For a
  // node inside common data the parents include every referencing ref BLU
  // in other complex objects, which must first be found by scanning.
  const bool exclusive =
      mode == LockMode::kX || mode == LockMode::kIX || mode == LockMode::kSIX;
  const logra::Node& node = graph_->node(target.target_node());
  const bool target_is_shared =
      node.relation != nf2::kInvalidRelation &&
      graph_->IsEntryPoint(graph_->ComplexObjectNode(node.relation));
  if (exclusive && target_is_shared &&
      options_.variant == Variant::kAllParents &&
      target.object != nf2::kInvalidObject) {
    CODLOCK_RETURN_IF_ERROR(
        LockAllParents(txn, target.relation, target.object));
  }

  lock::ResourceId res{target.target_node(), target.target_iid()};
  return lm_->Acquire(txn.id(), res, mode, opts);
}

Status SystemRDagProtocol::LockAllParents(txn::Transaction& txn,
                                          nf2::RelationId rel,
                                          nf2::ObjectId obj) {
  const lock::AcquireOptions opts = AcquireOpts(txn);
  uint64_t scanned = 0;
  std::vector<nf2::BackRefPath> parents =
      store_->FindReferencing(rel, obj, &scanned);
  lm_->stats().parent_searches.Add(scanned);

  const nf2::Catalog& catalog = store_->catalog();
  for (const nf2::BackRefPath& parent : parents) {
    const nf2::RelationDef& rdef = catalog.relation(parent.relation);
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(),
        lock::ResourceId{graph_->DatabaseNode(rdef.database), 0},
        LockMode::kIX, opts));
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{graph_->SegmentNode(rdef.segment), 0},
        LockMode::kIX, opts));
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{graph_->RelationNode(parent.relation), 0},
        LockMode::kIX, opts));
    for (const auto& [attr, iid] : parent.chain) {
      CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
          txn.id(), lock::ResourceId{graph_->NodeForAttr(attr), iid},
          LockMode::kIX, opts));
    }
  }
  return Status::OK();
}

Status SystemRDagProtocol::LockEntryPoint(txn::Transaction& txn,
                                          const LockTarget& ref_path,
                                          LockMode mode) {
  if (ref_path.value == nullptr || !ref_path.value->is_ref()) {
    return Status::InvalidArgument(
        "LockEntryPoint requires a ref BLU target");
  }
  const nf2::RefValue& ref = ref_path.value->as_ref();
  const lock::AcquireOptions opts = AcquireOpts(txn);
  logra::NodeId ep_node = graph_->ComplexObjectNode(ref.relation);

  Result<nf2::Iid> root_iid = store_->RootIid(ref.relation, ref.object);
  if (!root_iid.ok()) return root_iid.status();

  const bool exclusive =
      mode == LockMode::kX || mode == LockMode::kIX || mode == LockMode::kSIX;
  if (exclusive && options_.variant == Variant::kAllParents) {
    // All parents of the shared node must be IX-locked first — including
    // the relation chain of the shared relation itself.
    const nf2::Catalog& catalog = store_->catalog();
    const nf2::RelationDef& rdef = catalog.relation(ref.relation);
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{graph_->DatabaseNode(rdef.database), 0},
        LockMode::kIX, opts));
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{graph_->SegmentNode(rdef.segment), 0},
        LockMode::kIX, opts));
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire(
        txn.id(), lock::ResourceId{graph_->RelationNode(ref.relation), 0},
        LockMode::kIX, opts));
    CODLOCK_RETURN_IF_ERROR(LockAllParents(txn, ref.relation, ref.object));
  }
  // kPathOnly (and the S side of kAllParents): the used path's ref BLU is
  // "a parent" and is already intention-locked — GLPT76 rule 1 is
  // satisfied with a single locked parent.
  return lm_->Acquire(txn.id(), lock::ResourceId{ep_node, *root_iid}, mode,
                      opts);
}

}  // namespace codlock::proto
