/// \file validator.h
/// \brief Audits the global grant set for undetected conflicts.
///
/// §3.2.2: under a straightforward DAG protocol, "the second transaction
/// would not see the implicit locks on the requested node within the first
/// graph, and possible lock conflicts would not be detected.  So, the
/// database could be transformed into an inconsistent state."
///
/// The validator makes that failure measurable.  It expands every held
/// lock into the *data coverage* it semantically grants:
///
///  * **read coverage** — S/SIX/X on a node covers the node's solid
///    subtree *plus* the referenced common data (the paper's assumption
///    §4.5: access to a reference implies access to the referenced data);
///  * **write coverage** — X on a node covers the node's solid subtree
///    only: writing *shared* data always requires an explicit lock on the
///    inner unit's entry point (which then covers that unit's subtree).
///
/// Two concurrently granted lock sets are in conflict when one
/// transaction's write coverage intersects another's read or write
/// coverage.  A sound protocol (the paper's, or the all-parents DAG
/// variant) never lets such grant sets coexist; the path-only DAG variant
/// does — those are the undetected from-the-side conflicts benchmark E3
/// counts.
///
/// Beyond the live grant-set audit, the same coverage expansion feeds a
/// *history* check: `CheckConflictSerializable` decides conflict-
/// serializability of a committed schedule by precedence-graph cycle
/// detection (the classical criterion strict 2PL is supposed to
/// guarantee).  The model checker (`src/mc`) replays every explored
/// interleaving through both checks.

#ifndef CODLOCK_PROTO_VALIDATOR_H_
#define CODLOCK_PROTO_VALIDATOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/lock_manager.h"
#include "logra/lock_graph.h"
#include "nf2/store.h"

namespace codlock::proto {

/// \brief One undetected conflict between two concurrently granted locks.
struct Violation {
  lock::TxnId writer = lock::kInvalidTxn;
  lock::TxnId other = lock::kInvalidTxn;
  nf2::Iid iid = nf2::kInvalidIid;
  /// True if `other` also holds write coverage (write-write conflict).
  bool write_write = false;

  std::string ToString() const;
};

/// \brief The instance data one granted lock semantically covers.
struct LockCoverage {
  std::unordered_set<nf2::Iid> reads;
  std::unordered_set<nf2::Iid> writes;

  void MergeFrom(const LockCoverage& o) {
    reads.insert(o.reads.begin(), o.reads.end());
    writes.insert(o.writes.begin(), o.writes.end());
  }
};

/// Expands one granted lock — \p mode held on \p resource — into the data
/// coverage it grants (see file comment).  Intention modes cover nothing.
/// The store must not be structurally modified during the call.
LockCoverage ExpandLockCoverage(const logra::LockGraph& graph,
                                const nf2::InstanceStore& store,
                                const lock::ResourceId& resource,
                                lock::LockMode mode);

/// \brief One logical data operation of a schedule: transaction \p txn
/// accessed \p cov.reads for reading and \p cov.writes for writing, in
/// the position of the history this record occupies.
struct HistoryOp {
  lock::TxnId txn = lock::kInvalidTxn;
  LockCoverage cov;
};

/// \brief Outcome of the conflict-serializability test.
struct SerializabilityVerdict {
  bool serializable = true;
  /// Witness when not serializable: transaction ids along one precedence
  /// cycle (first element repeated at the end).
  std::vector<lock::TxnId> cycle;
};

/// Conflict-serializability of \p history via precedence-graph cycle
/// detection: an edge Ti → Tj exists when an earlier op of Ti conflicts
/// with a later op of Tj (write/read, read/write or write/write on a
/// common iid).  Only transactions in \p committed participate — aborted
/// transactions' operations are undone and impose no ordering.
SerializabilityVerdict CheckConflictSerializable(
    const std::vector<HistoryOp>& history,
    const std::unordered_set<lock::TxnId>& committed);

/// \brief Offline grant-set auditor.
///
/// `Check` inspects a snapshot of the lock manager; it is intended to be
/// called at quiescent points or under a workload barrier (the store must
/// not be structurally modified during the call).
class ProtocolValidator {
 public:
  ProtocolValidator(const logra::LockGraph* graph,
                    const nf2::InstanceStore* store)
      : graph_(graph), store_(store) {}

  /// Returns all undetected conflicts in the current grant set.
  std::vector<Violation> Check(const lock::LockManager& lm) const;

 private:
  const logra::LockGraph* graph_;
  const nf2::InstanceStore* store_;
};

}  // namespace codlock::proto

#endif  // CODLOCK_PROTO_VALIDATOR_H_
