/// \file validator.h
/// \brief Audits the global grant set for undetected conflicts.
///
/// §3.2.2: under a straightforward DAG protocol, "the second transaction
/// would not see the implicit locks on the requested node within the first
/// graph, and possible lock conflicts would not be detected.  So, the
/// database could be transformed into an inconsistent state."
///
/// The validator makes that failure measurable.  It expands every held
/// lock into the *data coverage* it semantically grants:
///
///  * **read coverage** — S/SIX/X on a node covers the node's solid
///    subtree *plus* the referenced common data (the paper's assumption
///    §4.5: access to a reference implies access to the referenced data);
///  * **write coverage** — X on a node covers the node's solid subtree
///    only: writing *shared* data always requires an explicit lock on the
///    inner unit's entry point (which then covers that unit's subtree).
///
/// Two concurrently granted lock sets are in conflict when one
/// transaction's write coverage intersects another's read or write
/// coverage.  A sound protocol (the paper's, or the all-parents DAG
/// variant) never lets such grant sets coexist; the path-only DAG variant
/// does — those are the undetected from-the-side conflicts benchmark E3
/// counts.

#ifndef CODLOCK_PROTO_VALIDATOR_H_
#define CODLOCK_PROTO_VALIDATOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/lock_manager.h"
#include "logra/lock_graph.h"
#include "nf2/store.h"

namespace codlock::proto {

/// \brief One undetected conflict between two concurrently granted locks.
struct Violation {
  lock::TxnId writer = lock::kInvalidTxn;
  lock::TxnId other = lock::kInvalidTxn;
  nf2::Iid iid = nf2::kInvalidIid;
  /// True if `other` also holds write coverage (write-write conflict).
  bool write_write = false;

  std::string ToString() const;
};

/// \brief Offline grant-set auditor.
///
/// `Check` inspects a snapshot of the lock manager; it is intended to be
/// called at quiescent points or under a workload barrier (the store must
/// not be structurally modified during the call).
class ProtocolValidator {
 public:
  ProtocolValidator(const logra::LockGraph* graph,
                    const nf2::InstanceStore* store)
      : graph_(graph), store_(store) {}

  /// Returns all undetected conflicts in the current grant set.
  std::vector<Violation> Check(const lock::LockManager& lm) const;

 private:
  struct Coverage {
    std::unordered_set<nf2::Iid> reads;
    std::unordered_set<nf2::Iid> writes;
  };

  /// Adds the solid subtree of \p v to \p out.
  void CoverSolid(const nf2::Value& v, std::unordered_set<nf2::Iid>* out) const;

  /// Adds the solid subtree plus the dashed closure of \p v to \p out.
  void CoverWithRefs(const nf2::Value& v, std::unordered_set<nf2::Iid>* out,
                     std::unordered_set<uint64_t>* visited) const;

  /// Expands one held lock into \p cov.
  void Expand(const lock::LongLockRecord& rec, Coverage* cov) const;

  const logra::LockGraph* graph_;
  const nf2::InstanceStore* store_;
};

}  // namespace codlock::proto

#endif  // CODLOCK_PROTO_VALIDATOR_H_
