/// \file handle.h
/// \brief Per-client-process handle onto the host's job ring, plus the
/// wire format of the job frames.
///
/// The oidadb `edbl` split (SNIPPETS.md snippets 1–2): the *host* owns
/// the lock tables; each client process holds a *handle* that serializes
/// its check-out operations into shared-memory job frames and waits for
/// the host's response.  The handle is where the client-side robustness
/// policy lives:
///
///  * `Status::Shed` from admission control is retried with the PR 4
///    `RetryPolicy` (seeded jitter; in deterministic mode the backoff is
///    *recorded*, never slept — the sweep and the tests stay clock-free);
///  * a fenced response (`Status::Fenced`) is terminal for the handle's
///    epoch: the client must re-`Attach` before the host accepts it
///    again;
///  * the chaos entry points (`Die`, `SubmitNoWait`, `PublishFault`)
///    let the fleet driver and the fault points model clients that die
///    mid-publish, wedge without draining responses, or act as zombies.
///
/// Everything the host needs to execute a job travels *in the frame*
/// (the full query, the full ticket with its fencing epochs), so a host
/// that crashed between jobs can serve the next frame from durable state
/// alone.  The bulk `QueryResult` payload is NOT serialized — per the
/// paper's check-out model the data lands in the workstation's private
/// database out of band; the frames carry control traffic only.
#ifndef CODLOCK_WS_HANDLE_H_
#define CODLOCK_WS_HANDLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/retry.h"
#include "util/rng.h"
#include "ws/server.h"
#include "ws/shm_ring.h"

namespace codlock::ws {

class Host;

/// \brief What a client process holds after attaching to the host.
///
/// `epoch` is the handle's fencing epoch: the dead-handle sweep bumps it
/// when it fences the handle, after which every submit carrying the old
/// epoch fails with kFenced.  `incarnation` names the host instance the
/// handle attached to (seeded from the durable `LongLockStore`
/// generation); a host restart invalidates it, so pre-crash handles are
/// zombies until they re-attach.
struct HandleInfo {
  uint64_t handle_id = 0;
  uint64_t epoch = 0;
  uint64_t incarnation = 0;
};

namespace wire {

/// Operations a handle can ask the host to run.
enum class JobOp : uint8_t {
  kPing = 0,   ///< heartbeat only (bumps the handle's liveness)
  kCheckOut,   ///< user + mode + query → ticket
  kCheckIn,    ///< ticket → status
  kCancel,     ///< ticket → status
  kRenew,      ///< ticket → status
  kResume,     ///< ticket → fresh ticket
};

std::string_view JobOpName(JobOp op);

/// Bounded little-endian byte writer (no allocation surprises: strings
/// carry a u32 length, numbers are fixed-width).
class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(std::string_view s);
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Matching reader; any overrun flips `ok()` sticky-false and zero-fills
/// (a torn or hostile frame must never read out of bounds).
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}
  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  double F64();
  std::string Str();
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const uint8_t* Need(size_t n);
  std::string_view in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void EncodeQuery(Writer& w, const query::Query& q);
bool DecodeQuery(Reader& r, query::Query* q);
/// Ticket without its bulk data (control fields + fencing epochs only).
void EncodeTicket(Writer& w, const CheckOutTicket& t);
bool DecodeTicket(Reader& r, CheckOutTicket* t);

/// Request frame: op tag + op-specific body.
std::string EncodeCheckOutRequest(authz::UserId user, CheckOutMode mode,
                                  const query::Query& q);
std::string EncodeTicketRequest(JobOp op, const CheckOutTicket& t);
std::string EncodePingRequest();

struct Request {
  JobOp op = JobOp::kPing;
  authz::UserId user = authz::kInvalidUser;
  CheckOutMode mode = CheckOutMode::kShared;
  query::Query query;
  CheckOutTicket ticket;
};
bool DecodeRequest(std::string_view frame, Request* req);

/// Response frame: status (code + message) + optional ticket.
std::string EncodeResponse(const Status& status, const CheckOutTicket* ticket);
Status DecodeResponse(std::string_view frame, CheckOutTicket* ticket);

}  // namespace wire

/// \brief Client-side options.
struct HandleOptions {
  /// Backoff/retry for Status::Shed (admission control) — PR 4's policy.
  RetryPolicy retry;
  uint64_t seed = 1;
  /// When true, shed backoff really sleeps (threaded operation); when
  /// false the backoff is recorded in stats only (deterministic sims).
  bool real_backoff = false;
  /// How long a call waits for its response when host workers are
  /// running (threaded operation).  In steppable mode the handle pumps
  /// the host instead and this does not apply.
  uint64_t response_timeout_us = 2'000'000;
  /// Called with the jittered backoff (µs) before each shed retry.
  /// Deterministic tests hook this to advance the virtual clock and run
  /// the host sweeps — the retriable condition clears without sleeping.
  std::function<void(uint64_t)> on_backoff;
};

/// \brief A per-client-process handle checked out against the host.
class Handle {
 public:
  explicit Handle(Host* host, HandleOptions options = {});

  /// Registers with the host (or re-registers after a host restart — a
  /// handle that skips this after a restart is a zombie and every submit
  /// fails with kFenced).
  Status Attach();
  Status Detach();

  // --- the check-out API, proxied through the ring -----------------
  Result<CheckOutTicket> CheckOut(authz::UserId user, const query::Query& q,
                                  CheckOutMode mode);
  Status CheckIn(const CheckOutTicket& ticket);
  Status Cancel(const CheckOutTicket& ticket);
  Status Renew(const CheckOutTicket& ticket);
  Result<CheckOutTicket> Resume(const CheckOutTicket& ticket);
  Status Ping();

  // --- chaos entry points (fleet driver, fault sweeps) -------------

  /// Publishes a job and abandons it: no wait, no response pickup — the
  /// wedged-client model.  The slot stays in flight until the host
  /// executes it and the dead-handle sweep reclaims the response.
  /// \p fault additionally injects a torn or stranded publish.
  Status SubmitNoWait(wire::JobOp op, const CheckOutTicket* ticket,
                      PublishFault fault = PublishFault::kNone);

  /// Simulated process death: forgets all in-flight jobs and stops
  /// operating.  Ring slots and leases are reclaimed by the host sweeps.
  void Die();
  bool dead() const { return dead_; }

  uint64_t id() const { return info_.handle_id; }
  uint64_t epoch() const { return info_.epoch; }
  const HandleInfo& info() const { return info_; }

  struct Stats {
    uint64_t calls = 0;
    uint64_t sheds_seen = 0;       ///< kShed responses/rejections observed
    uint64_t retries = 0;          ///< re-submissions after a shed
    uint64_t backoff_us_total = 0; ///< jittered backoff budget accumulated
    uint64_t fenced = 0;           ///< kFenced rejections observed
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Publish → (pump | wait) → take → decode; sheds retried per policy.
  /// \p ticket_out receives the response ticket when the op returns one.
  Status Call(std::string request, CheckOutTicket* ticket_out);

  Host* host_;
  HandleOptions options_;
  Rng rng_;
  HandleInfo info_;
  uint64_t next_job_ = 1;
  bool dead_ = false;
  Stats stats_;
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_HANDLE_H_
