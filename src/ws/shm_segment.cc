#include "ws/shm_segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include "fault/fault_injector.h"
#include "util/crc32.h"

namespace codlock::ws {

namespace {

// shm_open refuses the segment name (permissions, exhausted namespace).
fault::FaultPoint g_fault_shm_open{"ws.shm.open", fault::FaultKind::kError};
// ftruncate cannot reserve the segment's size (tmpfs full).
fault::FaultPoint g_fault_shm_truncate{"ws.shm.truncate",
                                       fault::FaultKind::kError};
// The host dies between reserving the segment and publishing a valid
// superblock: a name exists whose contents are garbage.  Create() of the
// next incarnation must unlink and start fresh.
fault::FaultPoint g_fault_shm_map{"ws.shm.map", fault::FaultKind::kCrash};

constexpr char kMagic[8] = {'C', 'O', 'D', 'S', 'H', 'M', '1', '\0'};
constexpr uint32_t kVersion = 1;

// One 128-byte superblock copy as it lies in the segment.  The CRC is the
// last word and covers everything before it, so any torn or flipped byte
// in the copy invalidates it as a whole.
struct SuperblockImage {
  char magic[8];
  uint32_t version;
  uint32_t header_bytes;
  uint64_t payload_bytes;
  uint64_t generation;
  uint64_t incarnation;
  uint32_t user32[8];
  uint8_t reserved[52];
  uint32_t crc;
};
static_assert(sizeof(SuperblockImage) == ShmSegment::kSuperblockBytes,
              "superblock image must be exactly one copy slot");
static_assert(std::is_trivially_copyable_v<SuperblockImage>,
              "superblock image lives in raw shared memory");

uint32_t ImageCrc(const SuperblockImage& sb) {
  return Crc32(std::string_view(reinterpret_cast<const char*>(&sb),
                                offsetof(SuperblockImage, crc)));
}

bool ValidImage(const SuperblockImage& sb) {
  if (std::memcmp(sb.magic, kMagic, sizeof(kMagic)) != 0) return false;
  if (sb.version != kVersion) return false;
  if (sb.header_bytes != ShmSegment::kHeaderBytes) return false;
  if (sb.payload_bytes == 0) return false;
  return sb.crc == ImageCrc(sb);
}

SuperblockImage* CopyAt(uint8_t* base, size_t index) {
  return reinterpret_cast<SuperblockImage*>(
      base + index * ShmSegment::kSuperblockBytes);
}

void WriteImage(SuperblockImage* dst, const SegmentConfig& cfg,
                uint64_t generation) {
  SuperblockImage sb;
  std::memset(&sb, 0, sizeof(sb));
  std::memcpy(sb.magic, kMagic, sizeof(kMagic));
  sb.version = kVersion;
  sb.header_bytes = ShmSegment::kHeaderBytes;
  sb.payload_bytes = cfg.payload_bytes;
  sb.generation = generation;
  sb.incarnation = cfg.incarnation;
  std::memcpy(sb.user32, cfg.user32, sizeof(sb.user32));
  sb.crc = ImageCrc(sb);
  std::memcpy(dst, &sb, sizeof(sb));
}

}  // namespace

ShmSegment::~ShmSegment() { Close(); }

Status ShmSegment::MapByName(const std::string& name, bool create,
                             size_t total_bytes) {
  if (name.empty() || name[0] != '/') {
    return Status::InvalidArgument("shm segment name must start with '/': \"" +
                                   name + "\"");
  }
  if (fault::FireResult fr = g_fault_shm_open.Fire()) {
    return fault::StatusFor(fr, "ws.shm.open");
  }
  int fd = -1;
  if (create) {
    // Fresh means fresh: a leftover name from a crashed incarnation is
    // unlinked, never adopted (its contents are untrusted by definition).
    if (shm_unlink(name.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("shm_unlink(\"" + name + "\")", errno);
    }
    fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  } else {
    fd = shm_open(name.c_str(), O_RDWR, 0);
  }
  if (fd < 0) {
    const int err = errno;
    if (!create && err == ENOENT) {
      return Status::NotFound("shm segment \"" + name + "\" does not exist");
    }
    return ErrnoStatus("shm_open(\"" + name + "\")", err);
  }
  if (create) {
    if (fault::FireResult fr = g_fault_shm_truncate.Fire()) {
      close(fd);
      shm_unlink(name.c_str());
      return fault::StatusFor(fr, "ws.shm.truncate");
    }
    if (ftruncate(fd, static_cast<off_t>(total_bytes)) != 0) {
      const int err = errno;
      close(fd);
      shm_unlink(name.c_str());
      return ErrnoStatus("ftruncate(\"" + name + "\", " +
                             std::to_string(total_bytes) + ")",
                         err);
    }
  } else {
    struct stat st;
    if (fstat(fd, &st) != 0) {
      const int err = errno;
      close(fd);
      return ErrnoStatus("fstat(\"" + name + "\")", err);
    }
    total_bytes = static_cast<size_t>(st.st_size);
    if (total_bytes < kHeaderBytes) {
      close(fd);
      return Status::Corrupt("shm segment \"" + name + "\" is " +
                             std::to_string(total_bytes) +
                             " bytes, shorter than its 256-byte header");
    }
  }
  if (fault::FireResult fr = g_fault_shm_map.Fire()) {
    // Crash between reserve and map: the name survives with unpublished
    // contents.  Close the fd and report the injected death.
    close(fd);
    return fault::StatusFor(fr, "ws.shm.map");
  }
  void* mem = mmap(nullptr, total_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  const int map_err = errno;
  close(fd);  // the mapping keeps the segment alive
  if (mem == MAP_FAILED) {
    if (create) shm_unlink(name.c_str());
    return ErrnoStatus("mmap(\"" + name + "\", " +
                           std::to_string(total_bytes) + ")",
                       map_err);
  }
  base_ = static_cast<uint8_t*>(mem);
  mapped_bytes_ = total_bytes;
  return Status::OK();
}

Status ShmSegment::Create(const SegmentConfig& cfg) {
  if (mapped()) return Status::FailedPrecondition("segment already mapped");
  if (cfg.payload_bytes == 0) {
    return Status::InvalidArgument("segment payload_bytes must be > 0");
  }
  CODLOCK_RETURN_IF_ERROR(
      MapByName(cfg.name, /*create=*/true, kHeaderBytes + cfg.payload_bytes));
  cfg_ = cfg;
  generation_ = 1;
  // Copy A carries generation 1; copy B stays zeroed (invalid) until the
  // first StampIncarnation ping-pongs onto it.
  WriteImage(CopyAt(base_, 0), cfg_, generation_);
  return Status::OK();
}

Status ShmSegment::Attach(const std::string& name,
                          uint64_t expected_incarnation) {
  if (mapped()) return Status::FailedPrecondition("segment already mapped");
  CODLOCK_RETURN_IF_ERROR(MapByName(name, /*create=*/false, 0));
  // Salvage: newest valid copy wins; a torn superblock update corrupts at
  // most one copy, so a single valid copy is still a healthy segment.
  const SuperblockImage* best = nullptr;
  for (size_t i = 0; i < 2; ++i) {
    const SuperblockImage* sb = CopyAt(base_, i);
    if (!ValidImage(*sb)) continue;
    if (best == nullptr || sb->generation > best->generation) best = sb;
  }
  if (best == nullptr) {
    Close();
    return Status::Corrupt("shm segment \"" + name +
                           "\" has no valid superblock copy");
  }
  if (mapped_bytes_ < kHeaderBytes + best->payload_bytes) {
    // Copy out of the mapping before Close() unmaps it from under `best`
    // (and zeroes mapped_bytes_).
    const size_t mapped = mapped_bytes_;
    const uint64_t promised = kHeaderBytes + best->payload_bytes;
    Close();
    return Status::Corrupt("shm segment \"" + name + "\" is truncated: " +
                           std::to_string(mapped) +
                           " bytes mapped, superblock promises " +
                           std::to_string(promised));
  }
  if (expected_incarnation != 0 && best->incarnation != expected_incarnation) {
    const uint64_t found = best->incarnation;
    Close();
    return Status::Fenced("shm segment \"" + name + "\" is incarnation " +
                          std::to_string(found) + ", caller expected " +
                          std::to_string(expected_incarnation));
  }
  cfg_.name = name;
  cfg_.payload_bytes = best->payload_bytes;
  cfg_.incarnation = best->incarnation;
  std::memcpy(cfg_.user32, best->user32, sizeof(cfg_.user32));
  generation_ = best->generation;
  return Status::OK();
}

Status ShmSegment::StampIncarnation(uint64_t incarnation) {
  if (!mapped()) return Status::FailedPrecondition("segment not mapped");
  cfg_.incarnation = incarnation;
  // Ping-pong: overwrite the copy that does NOT hold the newest valid
  // generation, so a torn write strands the update, never the segment.
  size_t newest = 0;
  uint64_t newest_gen = 0;
  for (size_t i = 0; i < 2; ++i) {
    const SuperblockImage* sb = CopyAt(base_, i);
    if (ValidImage(*sb) && sb->generation >= newest_gen) {
      newest = i;
      newest_gen = sb->generation;
    }
  }
  ++generation_;
  if (generation_ <= newest_gen) generation_ = newest_gen + 1;
  WriteImage(CopyAt(base_, 1 - newest), cfg_, generation_);
  return Status::OK();
}

void ShmSegment::Close() {
  if (base_ != nullptr) {
    munmap(base_, mapped_bytes_);
    base_ = nullptr;
    mapped_bytes_ = 0;
  }
}

Status ShmSegment::Unlink() { return UnlinkName(cfg_.name); }

Status ShmSegment::UnlinkName(const std::string& name) {
  if (shm_unlink(name.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("shm_unlink(\"" + name + "\")", errno);
  }
  return Status::OK();
}

}  // namespace codlock::ws
