#include "ws/handle.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "fault/fault_injector.h"
#include "ws/host.h"

namespace codlock::ws {

namespace {
// The client process dies between deciding to call and publishing: from
// the host's perspective it simply falls silent and the dead-handle
// sweep fences it.
fault::FaultPoint g_fault_handle_die{"ws.handle.die",
                                     fault::FaultKind::kCrash};
// The client publishes a job and then wedges: it never drains the
// response, so the kDone slot sits occupied until the sweep reclaims it.
fault::FaultPoint g_fault_handle_wedge{"ws.handle.wedge",
                                       fault::FaultKind::kError};
}  // namespace

namespace wire {

std::string_view JobOpName(JobOp op) {
  switch (op) {
    case JobOp::kPing:
      return "ping";
    case JobOp::kCheckOut:
      return "check-out";
    case JobOp::kCheckIn:
      return "check-in";
    case JobOp::kCancel:
      return "cancel";
    case JobOp::kRenew:
      return "renew";
    case JobOp::kResume:
      return "resume";
  }
  return "?";
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

const uint8_t* Reader::Need(size_t n) {
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in_.data()) + pos_;
  pos_ += n;
  return p;
}

uint8_t Reader::U8() {
  const uint8_t* p = Need(1);
  return p ? *p : 0;
}

uint32_t Reader::U32() {
  const uint8_t* p = Need(4);
  if (!p) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t Reader::U64() {
  const uint8_t* p = Need(8);
  if (!p) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double Reader::F64() {
  const uint64_t bits = U64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::Str() {
  const uint32_t n = U32();
  // A hostile/torn length must not allocate past the frame.
  if (!ok_ || in_.size() - pos_ < n) {
    ok_ = false;
    return {};
  }
  std::string s(in_.substr(pos_, n));
  pos_ += n;
  return s;
}

void EncodeQuery(Writer& w, const query::Query& q) {
  w.Str(q.name);
  w.U32(q.relation);
  w.Str(q.object_key);
  w.U32(static_cast<uint32_t>(q.path.size()));
  for (const nf2::PathStep& step : q.path) {
    w.Str(step.attr_name);
    w.Str(step.elem_key);
    w.U64(static_cast<uint64_t>(step.index));
  }
  w.U8(static_cast<uint8_t>(q.kind));
  w.F64(q.selectivity);
  w.U8(q.access_implies_refs ? 1 : 0);
}

bool DecodeQuery(Reader& r, query::Query* q) {
  q->name = r.Str();
  q->relation = r.U32();
  q->object_key = r.Str();
  const uint32_t steps = r.U32();
  q->path.clear();
  for (uint32_t i = 0; i < steps && r.ok(); ++i) {
    nf2::PathStep step;
    step.attr_name = r.Str();
    step.elem_key = r.Str();
    step.index = static_cast<int64_t>(r.U64());
    q->path.push_back(std::move(step));
  }
  q->kind = static_cast<query::AccessKind>(r.U8());
  q->selectivity = r.F64();
  q->access_implies_refs = r.U8() != 0;
  return r.ok();
}

void EncodeTicket(Writer& w, const CheckOutTicket& t) {
  w.U64(t.txn);
  w.U64(t.user);
  w.U8(static_cast<uint8_t>(t.mode));
  EncodeQuery(w, t.query);
  w.U64(t.lease_deadline_ms);
  w.U64(t.lease_grace_ms);
  w.U32(static_cast<uint32_t>(t.fence.size()));
  for (const RootFence& f : t.fence) {
    w.U32(f.root.node);
    w.U64(f.root.instance);
    w.U64(f.epoch);
  }
}

bool DecodeTicket(Reader& r, CheckOutTicket* t) {
  t->txn = r.U64();
  t->user = r.U64();
  t->mode = static_cast<CheckOutMode>(r.U8());
  if (!DecodeQuery(r, &t->query)) return false;
  t->lease_deadline_ms = r.U64();
  t->lease_grace_ms = r.U64();
  const uint32_t fences = r.U32();
  t->fence.clear();
  for (uint32_t i = 0; i < fences && r.ok(); ++i) {
    RootFence f;
    f.root.node = r.U32();
    f.root.instance = r.U64();
    f.epoch = r.U64();
    t->fence.push_back(f);
  }
  // The bulk data never travels in the frame (see file header): a
  // decoded ticket carries control fields + fencing epochs only.
  t->data = {};
  return r.ok();
}

std::string EncodeCheckOutRequest(authz::UserId user, CheckOutMode mode,
                                  const query::Query& q) {
  Writer w;
  w.U8(static_cast<uint8_t>(JobOp::kCheckOut));
  w.U64(user);
  w.U8(static_cast<uint8_t>(mode));
  EncodeQuery(w, q);
  return w.Take();
}

std::string EncodeTicketRequest(JobOp op, const CheckOutTicket& t) {
  Writer w;
  w.U8(static_cast<uint8_t>(op));
  EncodeTicket(w, t);
  return w.Take();
}

std::string EncodePingRequest() {
  Writer w;
  w.U8(static_cast<uint8_t>(JobOp::kPing));
  return w.Take();
}

bool DecodeRequest(std::string_view frame, Request* req) {
  Reader r(frame);
  const uint8_t op = r.U8();
  if (!r.ok() || op > static_cast<uint8_t>(JobOp::kResume)) return false;
  req->op = static_cast<JobOp>(op);
  switch (req->op) {
    case JobOp::kPing:
      break;
    case JobOp::kCheckOut:
      req->user = r.U64();
      req->mode = static_cast<CheckOutMode>(r.U8());
      if (!DecodeQuery(r, &req->query)) return false;
      break;
    case JobOp::kCheckIn:
    case JobOp::kCancel:
    case JobOp::kRenew:
    case JobOp::kResume:
      if (!DecodeTicket(r, &req->ticket)) return false;
      break;
  }
  return r.ok() && r.AtEnd();
}

std::string EncodeResponse(const Status& status, const CheckOutTicket* ticket) {
  Writer w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  w.U8(ticket != nullptr ? 1 : 0);
  if (ticket != nullptr) EncodeTicket(w, *ticket);
  return w.Take();
}

Status DecodeResponse(std::string_view frame, CheckOutTicket* ticket) {
  Reader r(frame);
  const uint8_t code = r.U8();
  std::string message = r.Str();
  const bool has_ticket = r.U8() != 0;
  if (has_ticket) {
    CheckOutTicket t;
    if (!DecodeTicket(r, &t)) {
      return Status::Internal("malformed response frame (ticket)");
    }
    if (ticket != nullptr) *ticket = std::move(t);
  }
  if (!r.ok() || code > static_cast<uint8_t>(StatusCode::kFenced)) {
    return Status::Internal("malformed response frame");
  }
  if (static_cast<StatusCode>(code) == StatusCode::kOk) return Status::OK();
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace wire

Handle::Handle(Host* host, HandleOptions options)
    : host_(host),
      options_(std::move(options)),
      rng_(options_.seed ^ 0xA5A5A5A5DEADBEEFULL) {}

Status Handle::Attach() {
  if (dead_) return Status::FailedPrecondition("handle is dead");
  if (info_.handle_id == 0) {
    info_ = host_->Attach();
    return Status::OK();
  }
  Result<HandleInfo> fresh = host_->Reattach(info_.handle_id);
  if (!fresh.ok()) {
    if (fresh.status().IsFenced()) ++stats_.fenced;
    return fresh.status();
  }
  info_ = *fresh;
  return Status::OK();
}

Status Handle::Detach() {
  if (info_.handle_id == 0) {
    return Status::FailedPrecondition("handle not attached");
  }
  Status s = host_->Detach(info_.handle_id);
  info_ = {};
  return s;
}

Status Handle::Call(std::string request, CheckOutTicket* ticket_out) {
  if (dead_) return Status::FailedPrecondition("handle is dead");
  if (info_.handle_id == 0) {
    return Status::FailedPrecondition("handle not attached");
  }
  ++stats_.calls;
  int attempts_made = 0;
  for (;;) {
    ++attempts_made;
    if (fault::FireResult fr = g_fault_handle_die.Fire()) {
      Die();
      return fault::StatusFor(fr, "ws.handle.die");
    }
    const uint64_t job = next_job_++;
    Result<size_t> slot = host_->Submit(info_, job, request);
    Status s = slot.ok() ? Status::OK() : slot.status();
    if (s.ok()) {
      if (fault::FireResult fr = g_fault_handle_wedge.Fire()) {
        // Published but never drained: the wedged-client model.  The
        // host still executes the job; the sweep reclaims the response.
        return fault::StatusFor(fr, "ws.handle.wedge");
      }
      if (host_->workers_running()) {
        if (!host_->ring().WaitDone(*slot, job, options_.response_timeout_us)) {
          return Status::Timeout("no response for job " + std::to_string(job) +
                                 " within " +
                                 std::to_string(options_.response_timeout_us) +
                                 "us");
        }
      } else {
        // Steppable mode: the caller's thread pumps the host itself.  An
        // injected host crash surfaces here and is not retriable.
        Result<size_t> drained = host_->Drain();
        if (!drained.ok()) return drained.status();
      }
      Result<std::string> response = host_->Take(info_, *slot, job);
      if (!response.ok()) {
        s = response.status();
      } else {
        s = wire::DecodeResponse(*response, ticket_out);
        if (s.ok()) return s;
      }
    }
    if (s.IsFenced()) {
      ++stats_.fenced;
      return s;
    }
    if (!s.IsShed()) return s;
    // Admission control (or the server's own shedding) pushed back:
    // retry with the seeded-jitter policy.
    ++stats_.sheds_seen;
    if (!options_.retry.ShouldRetry(s, attempts_made)) return s;
    ++stats_.retries;
    const uint64_t backoff_us = options_.retry.BackoffUs(attempts_made, rng_);
    stats_.backoff_us_total += backoff_us;
    if (options_.on_backoff) options_.on_backoff(backoff_us);
    if (options_.real_backoff && backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

Result<CheckOutTicket> Handle::CheckOut(authz::UserId user,
                                        const query::Query& q,
                                        CheckOutMode mode) {
  CheckOutTicket ticket;
  Status s = Call(wire::EncodeCheckOutRequest(user, mode, q), &ticket);
  if (!s.ok()) return s;
  return ticket;
}

Status Handle::CheckIn(const CheckOutTicket& ticket) {
  return Call(wire::EncodeTicketRequest(wire::JobOp::kCheckIn, ticket),
              nullptr);
}

Status Handle::Cancel(const CheckOutTicket& ticket) {
  return Call(wire::EncodeTicketRequest(wire::JobOp::kCancel, ticket),
              nullptr);
}

Status Handle::Renew(const CheckOutTicket& ticket) {
  return Call(wire::EncodeTicketRequest(wire::JobOp::kRenew, ticket), nullptr);
}

Result<CheckOutTicket> Handle::Resume(const CheckOutTicket& ticket) {
  CheckOutTicket fresh;
  Status s =
      Call(wire::EncodeTicketRequest(wire::JobOp::kResume, ticket), &fresh);
  if (!s.ok()) return s;
  return fresh;
}

Status Handle::Ping() { return Call(wire::EncodePingRequest(), nullptr); }

Status Handle::SubmitNoWait(wire::JobOp op, const CheckOutTicket* ticket,
                            PublishFault fault) {
  if (dead_) return Status::FailedPrecondition("handle is dead");
  if (info_.handle_id == 0) {
    return Status::FailedPrecondition("handle not attached");
  }
  std::string request;
  if (op == wire::JobOp::kPing) {
    request = wire::EncodePingRequest();
  } else if (ticket != nullptr) {
    request = wire::EncodeTicketRequest(op, *ticket);
  } else {
    return Status::InvalidArgument(
        std::string("SubmitNoWait needs a ticket for ") +
        std::string(wire::JobOpName(op)));
  }
  ++stats_.calls;
  Result<size_t> slot = host_->Submit(info_, next_job_++, request, fault);
  if (!slot.ok()) {
    if (slot.status().IsShed()) ++stats_.sheds_seen;
    if (slot.status().IsFenced()) ++stats_.fenced;
    return slot.status();
  }
  return Status::OK();
}

void Handle::Die() { dead_ = true; }

}  // namespace codlock::ws
