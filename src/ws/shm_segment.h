/// \file shm_segment.h
/// \brief A real POSIX shared-memory segment with a crash-robust,
/// double-buffered superblock.
///
/// This is the memory the job ring (shm_ring.h) lives in when serving
/// crosses process boundaries: `shm_open` + `ftruncate` + `mmap`, visible
/// to every process that attaches by name.  Because any party can be
/// SIGKILLed mid-write, the segment header follows the same discipline as
/// the PR 4 `LongLockStore`:
///
///  * two 128-byte **superblock copies** (A at offset 0, B at offset 128),
///    each CRC32-framed with a monotonically increasing generation.  An
///    update always rewrites the *older* copy with `generation+1`, so a
///    torn header write corrupts at most one copy and attach salvages the
///    newest valid one;
///  * a **version + geometry** block (payload size, eight caller-defined
///    geometry words) validated against the actual file size at attach —
///    a truncated segment fails closed with `Status::Corrupt` instead of
///    faulting on a short mapping;
///  * a host **incarnation stamp**: attachers that pass their expected
///    incarnation are fenced (`Status::Fenced`) when the host has
///    restarted since — the cross-process analogue of the PR 5 fencing
///    epochs, and the reason a zombie handle can never re-enter a rebuilt
///    ring.
///
/// Every syscall failure surfaces as a `Status` with errno context
/// (`ErrnoStatus`); nothing aborts, nothing falls through silently.

#ifndef CODLOCK_WS_SHM_SEGMENT_H_
#define CODLOCK_WS_SHM_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace codlock::ws {

/// Geometry + identity of a segment, as carried by the superblock.
struct SegmentConfig {
  /// shm name ("/codlock-<something>"); must start with '/'.
  std::string name;
  /// Usable payload bytes after the 256-byte header.
  uint64_t payload_bytes = 0;
  /// Host incarnation stamped into the superblock.
  uint64_t incarnation = 0;
  /// Caller-defined geometry words (the ring stores slot count, payload
  /// capacity, ... here so attachers need no out-of-band configuration).
  uint32_t user32[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};

/// \brief One mapped segment.  Value type owned by its ring; default
/// constructed empty, populated by Create() or Attach(), unmapped on
/// destruction.  The underlying shm name persists until Unlink().
class ShmSegment {
 public:
  /// Total bytes reserved for the two superblock copies.
  static constexpr size_t kHeaderBytes = 256;
  /// Size of one superblock copy.
  static constexpr size_t kSuperblockBytes = 128;

  ShmSegment() = default;
  ~ShmSegment();

  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  /// Creates a fresh segment of `kHeaderBytes + cfg.payload_bytes` bytes
  /// (any existing segment of the same name is unlinked first: create
  /// means *fresh*, never adopt a dead host's memory), writes superblock
  /// copy A at generation 1 and maps the whole thing.  The payload starts
  /// zeroed.  Fault points: `ws.shm.open`, `ws.shm.truncate`,
  /// `ws.shm.map`.
  Status Create(const SegmentConfig& cfg);

  /// Maps an existing segment by name and validates it: both superblock
  /// copies are CRC-checked and the newest valid one wins; no valid copy
  /// (or a file shorter than the geometry it promises) fails closed with
  /// `Status::Corrupt`.  When \p expected_incarnation is non-zero and the
  /// superblock carries a different incarnation, fails with
  /// `Status::Fenced` — the host restarted since the caller last knew it.
  Status Attach(const std::string& name, uint64_t expected_incarnation);

  /// Rewrites the older superblock copy with `generation+1` and the new
  /// incarnation (geometry unchanged).  Crash-robust: a torn write here
  /// leaves the previous copy intact for salvage.
  Status StampIncarnation(uint64_t incarnation);

  /// Unmaps (idempotent; does not unlink the name).
  void Close();

  /// Removes the shm name from the namespace (mapping stays valid for
  /// already-attached processes until they Close()).
  Status Unlink();
  static Status UnlinkName(const std::string& name);

  bool mapped() const { return base_ != nullptr; }
  const std::string& name() const { return cfg_.name; }
  uint64_t payload_bytes() const { return cfg_.payload_bytes; }
  uint64_t incarnation() const { return cfg_.incarnation; }
  uint32_t user32(size_t i) const { return cfg_.user32[i]; }
  /// First payload byte (header excluded).  Valid while mapped().
  uint8_t* payload() const { return base_ + kHeaderBytes; }

 private:
  Status MapByName(const std::string& name, bool create, size_t total_bytes);

  SegmentConfig cfg_;
  uint8_t* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  /// Generation of the newest valid superblock (for ping-pong updates).
  uint64_t generation_ = 0;
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_SHM_SEGMENT_H_
