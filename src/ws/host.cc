#include "ws/host.h"

#include <signal.h>

#include <algorithm>
#include <cerrno>

#include "fault/fault_injector.h"

namespace codlock::ws {

namespace {
// The host process dies between consuming a frame and executing it: the
// job strands in kExecuting and the ring must be rebuilt by the restart.
fault::FaultPoint g_fault_host_crash{"ws.host.crash",
                                     fault::FaultKind::kCrash};

// True when the PID verifiably names no live process.  kill(pid, 0)
// costs nothing and needs no pidfd plumbing; EPERM means "alive but not
// ours", which is NOT dead.  A reaped-but-unwaited child is still a
// zombie process entry, so the parent must waitpid before relying on
// this — the procchaos harness does.
bool ProcessDead(int64_t pid) {
  if (pid <= 0) return false;
  if (kill(static_cast<pid_t>(pid), 0) == 0) return false;
  return errno == ESRCH;
}
}  // namespace

Host::Host(const nf2::Catalog* catalog, nf2::InstanceStore* store,
           HostOptions options)
    : options_(std::move(options)),
      server_(catalog, store, options_.server),
      ring_(options_.ring) {
  ring_.SetStats(&server_.lock_manager().stats());
  uint64_t incarnation = 0;
  {
    MutexLock lk(mu_);
    // Seed the incarnation from durable state so a Host rebuilt over an
    // existing store file also invalidates handles of its predecessor.
    incarnation_ = server_.stable_storage().generation() + 1;
    incarnation = incarnation_;
  }
  // Publish the incarnation in the segment superblock so out-of-process
  // attachers are fenced against stale expectations without asking us.
  ring_.StampIncarnation(incarnation);
}

Host::~Host() { StopWorkers(); }

HandleInfo Host::Attach() {
  MutexLock lk(mu_);
  const uint64_t id = next_handle_id_++;
  HandleEntry entry;
  entry.last_seen_ms = server_.clock().NowMs();
  handles_[id] = entry;
  return {id, entry.epoch, incarnation_};
}

Status Host::BindPid(uint64_t handle_id, int64_t pid) {
  MutexLock lk(mu_);
  auto it = handles_.find(handle_id);
  if (it == handles_.end()) {
    return Status::NotFound("unknown handle " + std::to_string(handle_id));
  }
  it->second.pid = pid;
  it->second.pid_dead = false;
  return Status::OK();
}

Result<HandleInfo> Host::Reattach(uint64_t handle_id) {
  MutexLock lk(mu_);
  auto it = handles_.find(handle_id);
  if (it == handles_.end()) {
    return Status::NotFound("unknown handle " + std::to_string(handle_id));
  }
  HandleEntry& e = it->second;
  if (e.fenced) {
    return Status::Fenced("handle " + std::to_string(handle_id) +
                          " was fenced; attach anew and re-check out");
  }
  // Fresh epoch: any frame still floating under the old epoch is
  // answered kFenced by the executor.
  ++e.epoch;
  e.stale = false;
  e.inflight = 0;
  e.last_seen_ms = server_.clock().NowMs();
  return HandleInfo{handle_id, e.epoch, incarnation_};
}

Status Host::Detach(uint64_t handle_id) {
  size_t freed = 0;
  {
    MutexLock lk(mu_);
    auto it = handles_.find(handle_id);
    if (it == handles_.end()) {
      return Status::NotFound("unknown handle " + std::to_string(handle_id));
    }
    freed = ring_.ReclaimHandleSlots(handle_id);
    total_inflight_ -= std::min(total_inflight_,
                                std::max(freed, it->second.inflight));
    handles_.erase(it);
  }
  (void)freed;
  return Status::OK();
}

Result<size_t> Host::Submit(const HandleInfo& who, uint64_t job_id,
                            std::string_view request, PublishFault fault) {
  const size_t total_cap = options_.max_inflight_total != 0
                               ? options_.max_inflight_total
                               : options_.ring.slots;
  {
    MutexLock lk(mu_);
    auto it = handles_.find(who.handle_id);
    if (it == handles_.end()) {
      return Status::Fenced("unknown handle " +
                            std::to_string(who.handle_id));
    }
    HandleEntry& e = it->second;
    if (e.fenced || e.stale || who.epoch != e.epoch ||
        who.incarnation != incarnation_) {
      return Status::Fenced(
          "handle " + std::to_string(who.handle_id) +
          " is a zombie (fenced, or attached to a dead host incarnation); "
          "re-attach required");
    }
    if (e.inflight >= options_.max_inflight_per_handle ||
        total_inflight_ >= total_cap) {
      ++e.sheds;
      LockStats& stats = server_.lock_manager().stats();
      stats.sheds.Add();
      stats.jobs_shed_per_handle.Add();
      return Status::Shed(
          "ring admission: handle " + std::to_string(who.handle_id) +
          " has " + std::to_string(e.inflight) + "/" +
          std::to_string(options_.max_inflight_per_handle) +
          " jobs in flight, " + std::to_string(total_inflight_) + "/" +
          std::to_string(total_cap) + " globally");
    }
    // Reserve the slot in the accounting before touching the ring; the
    // publish outcome below settles it.
    ++e.inflight;
    ++total_inflight_;
  }

  FrameHeader header;
  header.handle_id = who.handle_id;
  header.handle_epoch = who.epoch;
  header.job_id = job_id;
  Result<size_t> slot = ring_.Publish(header, request, fault);
  if (!slot.ok()) {
    const Status& s = slot.status();
    // A death mid-write strands the slot — it stays attributed to the
    // handle until the sweep reclaims it.  Every other failure left no
    // slot behind: release the reservation.
    const bool stranded = fault::IsInjectedCrash(s) || s.IsAborted();
    if (!stranded) {
      MutexLock lk(mu_);
      auto it = handles_.find(who.handle_id);
      if (it != handles_.end() && it->second.inflight > 0) {
        --it->second.inflight;
      }
      if (total_inflight_ > 0) --total_inflight_;
    }
  }
  return slot;
}

Result<std::string> Host::Take(const HandleInfo& who, size_t slot,
                               uint64_t job_id) {
  Result<std::string> response = ring_.TakeResponse(slot, job_id);
  if (response.ok()) {
    MutexLock lk(mu_);
    auto it = handles_.find(who.handle_id);
    if (it != handles_.end()) {
      if (it->second.inflight > 0) --it->second.inflight;
      it->second.last_seen_ms = server_.clock().NowMs();
    }
    if (total_inflight_ > 0) --total_inflight_;
  }
  return response;
}

void Host::NoteSalvaged(const std::vector<ShmRing::SalvagedFrame>& salvaged) {
  if (salvaged.empty()) return;
  MutexLock lk(mu_);
  for (const ShmRing::SalvagedFrame& f : salvaged) {
    auto it = handles_.find(f.handle_id);
    if (it != handles_.end() && it->second.inflight > 0) {
      --it->second.inflight;
    }
    if (total_inflight_ > 0) --total_inflight_;
  }
}

Result<bool> Host::Step() {
  std::vector<ShmRing::SalvagedFrame> salvaged;
  Result<ShmRing::Job> job = ring_.Consume(&salvaged);
  NoteSalvaged(salvaged);
  if (!job.ok()) {
    if (job.status().IsNotFound()) return false;
    return job.status();  // injected worker death (ws.ring.consume)
  }
  if (fault::FireResult fr = g_fault_host_crash.Fire()) {
    // Host dies holding the claim: the job strands in kExecuting.
    return fault::StatusFor(fr, "ws.host.crash");
  }
  ExecuteJob(*job);
  return true;
}

Result<size_t> Host::Drain() {
  size_t executed = 0;
  for (;;) {
    Result<bool> stepped = Step();
    if (!stepped.ok()) return stepped.status();
    if (!*stepped) return executed;
    ++executed;
  }
}

void Host::ExecuteJob(const ShmRing::Job& job) {
  // Re-check the publishing handle's epoch at execution time: the handle
  // may have been fenced between publish and consume — its in-flight
  // jobs are aborted here, with kFenced, before touching the server.
  bool fenced = false;
  {
    MutexLock lk(mu_);
    auto it = handles_.find(job.header.handle_id);
    if (it == handles_.end() || it->second.fenced || it->second.stale ||
        it->second.epoch != job.header.handle_epoch) {
      fenced = true;
    } else {
      // Executed work is the liveness signal: a handle whose jobs flow
      // is not dead, however long its wall-clock attach is.
      it->second.last_seen_ms = server_.clock().NowMs();
    }
  }
  std::string response;
  if (fenced) {
    response = wire::EncodeResponse(
        Status::Fenced("handle " + std::to_string(job.header.handle_id) +
                       " was fenced; in-flight job " +
                       std::to_string(job.header.job_id) + " aborted"),
        nullptr);
  } else {
    wire::Request req;
    if (!wire::DecodeRequest(job.payload, &req)) {
      response = wire::EncodeResponse(
          Status::InvalidArgument("malformed job frame"), nullptr);
    } else {
      response = RunJob(req, job.header.handle_id);
    }
  }
  ring_.Complete(job.slot, response);
}

std::string Host::RunJob(const wire::Request& req, uint64_t handle_id) {
  (void)handle_id;
  switch (req.op) {
    case wire::JobOp::kPing:
      return wire::EncodeResponse(Status::OK(), nullptr);
    case wire::JobOp::kCheckOut: {
      Result<CheckOutTicket> ticket =
          server_.CheckOut(req.user, req.query, req.mode);
      if (!ticket.ok()) return wire::EncodeResponse(ticket.status(), nullptr);
      return wire::EncodeResponse(Status::OK(), &ticket.value());
    }
    case wire::JobOp::kCheckIn:
      return wire::EncodeResponse(server_.CheckIn(req.ticket), nullptr);
    case wire::JobOp::kCancel:
      return wire::EncodeResponse(server_.CancelCheckOut(req.ticket), nullptr);
    case wire::JobOp::kRenew:
      return wire::EncodeResponse(server_.RenewLease(req.ticket), nullptr);
    case wire::JobOp::kResume: {
      Result<CheckOutTicket> fresh = server_.ResumeSession(req.ticket);
      if (!fresh.ok()) return wire::EncodeResponse(fresh.status(), nullptr);
      return wire::EncodeResponse(Status::OK(), &fresh.value());
    }
  }
  return wire::EncodeResponse(
      Status::InvalidArgument("unknown job op"), nullptr);
}

void Host::WorkerLoop() {
  while (!stop_workers_.load(std::memory_order_acquire)) {
    if (!ring_.WaitForPublished(10'000, &stop_workers_)) continue;
    for (;;) {
      if (stop_workers_.load(std::memory_order_acquire)) return;
      Result<bool> stepped = Step();
      // Injected crashes are driven from steppable sweeps, not worker
      // threads; a worker treats them as "nothing consumed".
      if (!stepped.ok() || !*stepped) break;
    }
  }
}

void Host::StartWorkers(int n) {
  StopWorkers();
  stop_workers_.store(false, std::memory_order_release);
  workers_running_.store(true, std::memory_order_release);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Host::StopWorkers() {
  stop_workers_.store(true, std::memory_order_release);
  ring_.WakeAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  workers_running_.store(false, std::memory_order_release);
}

bool Host::workers_running() const {
  return workers_running_.load(std::memory_order_acquire);
}

size_t Host::SweepDeadHandles() {
  const uint64_t now = server_.clock().NowMs();
  size_t newly_fenced = 0;
  {
    MutexLock lk(mu_);
    for (auto& [id, e] : handles_) {
      // The PID probe rides every pass: once the bound process is gone
      // the reclaim may safely widen to kTaking strands (no live thread
      // of the owner can be inside TakeResponse).
      if (e.pid != 0 && !e.pid_dead && ProcessDead(e.pid)) {
        e.pid_dead = true;
      }
      const ReclaimScope scope{/*taking=*/e.pid_dead, /*executing=*/false};
      if (e.fenced) {
        // Later passes mop up slots that were kExecuting during the
        // fencing pass and have since completed.
        const size_t freed = ring_.ReclaimHandleSlots(id, scope);
        const size_t dec = std::min(e.inflight, freed);
        e.inflight -= dec;
        total_inflight_ -= std::min(total_inflight_, static_cast<size_t>(dec));
        continue;
      }
      if (e.stale) continue;  // awaiting reattach; its ring died already
      // A verifiably dead process is fenced immediately — the lease
      // timeout exists for *silent* clients, not corpses.
      if (!e.pid_dead && now < e.last_seen_ms + options_.handle_lease_ms) {
        continue;
      }
      // Fence: bump the epoch first so no further submit or in-flight
      // execution can pass the epoch check, then reclaim the slots.
      e.fenced = true;
      ++e.epoch;
      ++newly_fenced;
      server_.lock_manager().stats().handles_fenced.Add();
      const size_t freed = ring_.ReclaimHandleSlots(id, scope);
      const size_t dec = std::min(e.inflight, freed);
      e.inflight -= dec;
      total_inflight_ -= std::min(total_inflight_, static_cast<size_t>(dec));
    }
  }
  // The dead clients' check-outs have stopped renewing: the existing
  // lease sweep releases their long locks and bumps the root fencing
  // epochs once the clock passes deadline + grace.
  server_.SweepExpiredLeases();
  return newly_fenced;
}

Status Host::CrashAndRestart() {
  StopWorkers();
  Status restored = server_.CrashAndRestart();
  // The shared memory died with the host: reinitialize the ring (lost
  // frames are accounted by Reset) and repoint its stats mirror at the
  // rebuilt lock manager.
  ring_.Reset();
  ring_.SetStats(&server_.lock_manager().stats());
  uint64_t incarnation = 0;
  {
    MutexLock lk(mu_);
    incarnation_ =
        std::max(incarnation_ + 1, server_.stable_storage().generation() + 1);
    incarnation = incarnation_;
    total_inflight_ = 0;
    for (auto& [id, e] : handles_) {
      (void)id;
      e.stale = true;
      e.inflight = 0;
    }
  }
  // New incarnation goes into the superblock: attachers still expecting
  // the dead incarnation are fenced at the segment boundary.
  ring_.StampIncarnation(incarnation);
  return restored;
}

uint64_t Host::incarnation() const {
  MutexLock lk(mu_);
  return incarnation_;
}

std::vector<Host::HandleView> Host::HandleTable() const {
  MutexLock lk(mu_);
  std::vector<HandleView> table;
  table.reserve(handles_.size());
  for (const auto& [id, e] : handles_) {
    HandleView row;
    row.handle_id = id;
    row.epoch = e.epoch;
    row.fenced = e.fenced;
    row.stale = e.stale;
    row.inflight = e.inflight;
    row.sheds = e.sheds;
    row.last_seen_ms = e.last_seen_ms;
    row.pid = e.pid;
    table.push_back(row);
  }
  return table;
}

size_t Host::LiveHandles() const {
  MutexLock lk(mu_);
  size_t live = 0;
  for (const auto& [id, e] : handles_) {
    (void)id;
    if (!e.fenced && !e.stale) ++live;
  }
  return live;
}

size_t Host::TotalInFlight() const {
  MutexLock lk(mu_);
  return total_inflight_;
}

}  // namespace codlock::ws
