/// \file lease.h
/// \brief Lease-based liveness for workstation check-outs.
///
/// The paper's workstation–server model (§1/§3.1) hands long S/X locks to
/// workstations for the lifetime of a check-out.  PR 4 made those locks
/// survive *server* crashes; this subsystem handles the dual failure: a
/// *workstation* that crashes, hangs or partitions while holding long
/// locks would strand lock capacity forever.  The cure is the standard
/// lock-service discipline (cf. the check-out disciplines of [LoPl83,
/// KSUW85]): every check-out ticket carries a **lease** the workstation
/// must renew; a lease that runs past its deadline enters a **grace
/// window** (reconnection is still possible — session resume); beyond the
/// grace window a reclamation sweep revokes the ticket's long locks
/// according to a per-`CheckOutMode` policy, and the checked-out roots'
/// **fencing epochs** are bumped so any later operation by the zombie
/// workstation deterministically fails with `StatusCode::kFenced` instead
/// of silently clobbering a re-granted object.
///
/// Everything is driven by a `VirtualClock` that only moves when told to:
/// the subsystem composes with the deterministic sim harness, the fault
/// sweeps and the model checker — no wall-clock time, no timer threads,
/// and a steppable sweep (`ws::Server::SweepExpiredLeases`) instead of a
/// background reaper.

#ifndef CODLOCK_WS_LEASE_H_
#define CODLOCK_WS_LEASE_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lock/resource.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace codlock::ws {

enum class CheckOutMode : uint8_t;  // server.h

/// \brief Deterministic time source for the lease subsystem.
///
/// Milliseconds since an arbitrary origin; advances only when a driver
/// (test, sim harness, sweep tool) says so.  Thread-safe.
class VirtualClock {
 public:
  uint64_t NowMs() const { return now_ms_.load(std::memory_order_acquire); }
  void AdvanceMs(uint64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> now_ms_{0};
};

/// What the reclamation sweep does with an expired *exclusive* check-out.
/// Shared and derivation check-outs hold only long S locks — releasing
/// them can never lose workstation work, so they are always reclaimed.
enum class ExpiredExclusivePolicy : uint8_t {
  /// Abort the check-out transaction and release its long locks; the
  /// central database keeps its pre-check-out state (an exclusive
  /// check-in re-applies the workstation's changes, so nothing has been
  /// written back yet).  The zombie is fenced.  Default.
  kReclaimAbort,
  /// Keep the locks and mark the lease orphaned: capacity stays stranded
  /// until an operator (or the returning workstation) resolves it, but a
  /// slow workstation's work is never thrown away.  The ticket is *not*
  /// fenced — a late check-in still succeeds.
  kOrphanHold,
};

std::string_view ExpiredExclusivePolicyName(ExpiredExclusivePolicy policy);

/// \brief Lease parameters (virtual-clock milliseconds).
struct LeaseOptions {
  /// Lease length from grant/renewal to deadline.
  uint64_t duration_ms = 30'000;
  /// Reconnection window past the deadline: a workstation presenting its
  /// ticket (with a valid fencing epoch) inside deadline + grace resumes
  /// its session; the sweep only reclaims beyond it.
  uint64_t grace_ms = 10'000;
  ExpiredExclusivePolicy exclusive_policy =
      ExpiredExclusivePolicy::kReclaimAbort;
};

/// Lifecycle of a lease, as judged against the virtual clock.
enum class LeaseState : uint8_t {
  kActive,    ///< now < deadline
  kInGrace,   ///< deadline <= now < deadline + grace (resume possible)
  kExpired,   ///< now >= deadline + grace (sweep will reclaim)
  kOrphaned,  ///< expired exclusive under kOrphanHold (locks kept)
};

std::string_view LeaseStateName(LeaseState state);

/// \brief A checked-out root with the fencing epoch it was granted under.
///
/// The ticket carries these as its fencing token: the server compares the
/// presented epochs against `LongLockStore::FenceEpochOf` on every
/// check-in / renew / resume.
struct RootFence {
  lock::ResourceId root;
  uint64_t epoch = 0;
};

/// \brief One live lease.
struct LeaseRecord {
  lock::TxnId txn = lock::kInvalidTxn;
  CheckOutMode mode;
  uint64_t granted_at_ms = 0;
  uint64_t deadline_ms = 0;
  uint64_t renewals = 0;
  bool orphaned = false;
  /// The check-out's root resources (non-intention long locks) and the
  /// fencing epochs they were granted under.
  std::vector<RootFence> fence;
};

/// \brief Bookkeeping for all check-out leases of one server.
///
/// Pure deterministic state machine over the virtual clock: no I/O, no
/// threads.  Lock revocation, fencing-epoch persistence and policy
/// execution live in `ws::Server` (which owns the lock manager and the
/// `LongLockStore`); the manager answers *which* leases are in which
/// state and keeps the deadlines.
class LeaseManager {
 public:
  LeaseManager(const VirtualClock* clock, LeaseOptions options)
      : clock_(clock), options_(options) {}

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Issues a lease for check-out transaction \p txn.  \p fence carries
  /// the checked-out roots with their current fencing epochs.
  LeaseRecord Grant(lock::TxnId txn, CheckOutMode mode,
                    std::vector<RootFence> fence);

  /// Extends the lease to now + duration.  Allowed while the lease is
  /// active or in its grace window (that *is* session resume); fails with
  /// kFailedPrecondition once expired or orphaned, kNotFound when no
  /// lease exists (already reclaimed and dropped).
  Status Renew(lock::TxnId txn);

  /// Drops the lease on check-in / cancel.  kNotFound when absent.
  Status Release(lock::TxnId txn);

  /// Drops the lease after the sweep reclaimed its locks.
  void Drop(lock::TxnId txn);

  /// Marks an expired exclusive lease orphaned (kOrphanHold policy): it
  /// stays visible, keeps its locks, and is skipped by later sweeps.
  void MarkOrphaned(lock::TxnId txn);

  /// Post-crash session recovery: every surviving lease gets a fresh
  /// deadline (now + duration) so reconnecting workstations have a full
  /// window to resume after the outage; renewal counts are kept.
  void ReissueAll();

  bool Has(lock::TxnId txn) const;
  Result<LeaseRecord> Get(lock::TxnId txn) const;

  /// State of \p record as of the clock's current time.
  LeaseState StateOf(const LeaseRecord& record) const;

  /// Leases past deadline + grace that are not orphaned — the sweep's
  /// work list, in ascending txn order (deterministic).
  std::vector<LeaseRecord> ExpiredBeyondGrace() const;

  /// All leases, ascending txn order.
  std::vector<LeaseRecord> Snapshot() const;

  size_t size() const;
  uint64_t NowMs() const { return clock_->NowMs(); }
  const LeaseOptions& options() const { return options_; }

 private:
  const VirtualClock* clock_;
  const LeaseOptions options_;
  mutable Mutex mu_;
  std::unordered_map<lock::TxnId, LeaseRecord> leases_
      CODLOCK_GUARDED_BY(mu_);
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_LEASE_H_
