#include "ws/server.h"

#include <chrono>
#include <thread>

#include "fault/fault_injector.h"
#include "util/rng.h"

namespace codlock::ws {

namespace {
// Server dies between the transaction outcome and the Save reaching
// stable storage (the classic window a crash-consistency story must
// close).
fault::FaultPoint g_fault_persist{"ws/persist", fault::FaultKind::kCrash};
// Sweep windows: the server dies right as it picks up an expired lease
// (before any reclamation effect) ...
fault::FaultPoint g_fault_lease_expire{"ws.lease.expire",
                                       fault::FaultKind::kCrash};
// ... or after reclaiming in memory (epochs bumped, locks released,
// lease dropped) but before the persist — restart must re-converge.
fault::FaultPoint g_fault_lease_reclaim{"ws.lease.reclaim",
                                        fault::FaultKind::kCrash};
// The server dies at the very moment a stale fencing epoch is detected;
// the fenced ticket must stay fenced across the restart.
fault::FaultPoint g_fault_checkin_fenced{"ws.checkin.fenced",
                                         fault::FaultKind::kCrash};
}  // namespace

Server::Server(const nf2::Catalog* catalog, nf2::InstanceStore* store,
               Options options)
    : catalog_(catalog),
      store_(store),
      options_(options),
      graph_(logra::LockGraph::Build(*catalog)),
      stats_(query::Statistics::Collect(*catalog, *store)),
      leases_(&clock_, options_.lease) {
  RebuildEngine();
  if (!options_.storage_path.empty()) {
    long_store_.SetBackingFile(options_.storage_path);
    // Continue an existing file's generation sequence (salvaging load; a
    // missing file just means a fresh store).
    long_store_.LoadFromFile(options_.storage_path);
  }
}

void Server::RebuildEngine() {
  // Destruction order matters on rebuild: every component below holds a
  // raw pointer into the current lock manager (the TxnManager's
  // destructor, for one, detaches its per-transaction lock caches from
  // it), so the dependents must die before the manager they point into.
  executor_.reset();
  planner_.reset();
  protocol_.reset();
  txns_.reset();
  lm_ = std::make_unique<lock::LockManager>(options_.lock_manager);
  txns_ = std::make_unique<txn::TxnManager>(lm_.get(), &undo_, store_);
  protocol_ = std::make_unique<proto::ComplexObjectProtocol>(
      &graph_, store_, lm_.get(), &authz_, options_.protocol);
  planner_ = std::make_unique<query::LockPlanner>(&graph_, catalog_, &stats_,
                                                  options_.planner);
  query::QueryExecutor::Options exec_opts;
  exec_opts.apply_writes = true;  // check-in applies workstation changes
  exec_opts.undo = &undo_;
  executor_ = std::make_unique<query::QueryExecutor>(
      &graph_, catalog_, store_, protocol_.get(), exec_opts);
}

std::string_view CheckOutModeName(CheckOutMode mode) {
  switch (mode) {
    case CheckOutMode::kExclusive:
      return "exclusive";
    case CheckOutMode::kShared:
      return "shared";
    case CheckOutMode::kDerive:
      return "derive";
  }
  return "?";
}

Result<CheckOutTicket> Server::CheckOut(authz::UserId user,
                                        const query::Query& query,
                                        CheckOutMode mode) {
  // Shared and derivation check-outs only ever read the original.
  query::Query checkout_query = query;
  if (mode != CheckOutMode::kExclusive) {
    checkout_query.kind = query::AccessKind::kRead;
  }
  Result<query::QueryPlan> plan = planner_->Plan(checkout_query);
  if (!plan.ok()) return plan.status();

  txn::Transaction* txn = txns_->Begin(user, txn::TxnKind::kLong);
  Result<query::QueryResult> data =
      executor_->Execute(*txn, checkout_query, *plan);
  if (!data.ok()) {
    txns_->Abort(txn);
    return data.status();
  }
  {
    MutexLock lk(tickets_mu_);
    long_txn_users_[txn->id()] = user;
  }
  // Long locks must reach stable storage before the ticket exists: a
  // check-out whose locks were never persisted would not survive the very
  // crash it is supposed to survive, so a persist failure aborts it.
  if (Status persisted = PersistLongLocks(); !persisted.ok()) {
    {
      MutexLock lk(tickets_mu_);
      long_txn_users_.erase(txn->id());
    }
    txns_->Abort(txn);
    // Best effort: bring stable storage back in line with the abort (if
    // the fault cleared); a second failure changes nothing durable.
    PersistLongLocks();
    return persisted;
  }

  CheckOutTicket ticket;
  ticket.txn = txn->id();
  ticket.user = user;
  ticket.mode = mode;
  ticket.query = query;
  ticket.data = *data;
  // Fencing token: the check-out's roots with their *current* epochs.
  // Epochs only move when locks are reclaimed, so concurrent shared
  // check-outs of the same object see the same epoch and never fence
  // each other.
  for (const lock::ResourceId& root : RootsOf(ticket.txn)) {
    ticket.fence.push_back({root, long_store_.FenceEpochOf(root)});
  }
  const LeaseRecord lease =
      leases_.Grant(ticket.txn, mode, ticket.fence);
  ticket.lease_deadline_ms = lease.deadline_ms;
  ticket.lease_grace_ms = options_.lease.grace_ms;
  lm_->stats().leases_granted.Add();
  return ticket;
}

std::vector<lock::ResourceId> Server::RootsOf(lock::TxnId txn) const {
  std::vector<lock::ResourceId> roots;
  for (const lock::HeldLock& held : lm_->LocksOf(txn)) {
    if (held.duration == lock::LockDuration::kLong &&
        !lock::IsIntention(held.mode)) {
      roots.push_back(held.resource);
    }
  }
  return roots;
}

Status Server::CheckFence(const CheckOutTicket& ticket) {
  for (const RootFence& f : ticket.fence) {
    const uint64_t current = long_store_.FenceEpochOf(f.root);
    if (current == f.epoch) continue;
    if (fault::FireResult fr = g_fault_checkin_fenced.Fire()) {
      return fault::StatusFor(fr, "ws.checkin.fenced");
    }
    lm_->stats().fenced_checkins.Add();
    return Status::Fenced("ticket of txn " + std::to_string(ticket.txn) +
                          " is fenced: root " + f.root.ToString() +
                          " was granted at epoch " + std::to_string(f.epoch) +
                          ", store is at epoch " + std::to_string(current));
  }
  return Status::OK();
}

Status Server::RenewLease(const CheckOutTicket& ticket) {
  CODLOCK_RETURN_IF_ERROR(CheckFence(ticket));
  CODLOCK_RETURN_IF_ERROR(leases_.Renew(ticket.txn));
  lm_->stats().leases_renewed.Add();
  return Status::OK();
}

Result<CheckOutTicket> Server::ResumeSession(const CheckOutTicket& ticket) {
  CODLOCK_RETURN_IF_ERROR(CheckFence(ticket));
  // Renewal doubles as the liveness gate: it fails once the lease is
  // past its grace window, orphaned, or already reclaimed.
  CODLOCK_RETURN_IF_ERROR(leases_.Renew(ticket.txn));
  lm_->stats().leases_renewed.Add();
  Result<txn::Transaction*> txn = txns_->Get(ticket.txn);
  if (!txn.ok()) return txn.status();
  // Hand the workstation a fresh copy of its data (its private database
  // may not have survived whatever killed the session).  The long locks
  // are still held, so this read-only re-execution cannot block.
  query::Query reread = ticket.query;
  reread.kind = query::AccessKind::kRead;
  Result<query::QueryPlan> plan = planner_->Plan(reread);
  if (!plan.ok()) return plan.status();
  Result<query::QueryResult> data = executor_->Execute(**txn, reread, *plan);
  if (!data.ok()) return data.status();

  CheckOutTicket fresh = ticket;
  fresh.data = *data;
  Result<LeaseRecord> lease = leases_.Get(ticket.txn);
  if (lease.ok()) fresh.lease_deadline_ms = lease->deadline_ms;
  fresh.lease_grace_ms = options_.lease.grace_ms;
  return fresh;
}

size_t Server::SweepExpiredLeases() {
  // Lifecycle exclusion: a sweep must never interleave with
  // CrashAndRestart's engine teardown (see lifecycle_mu_ in server.h).
  MutexLock lifecycle(lifecycle_mu_);
  size_t reaped = 0;
  for (const LeaseRecord& rec : leases_.ExpiredBeyondGrace()) {
    if (fault::FireResult fr = g_fault_lease_expire.Fire()) {
      // Simulated death before any reclamation effect: nothing durable
      // has changed, the next sweep (or restart) sees the lease again.
      (void)fault::StatusFor(fr, "ws.lease.expire");
      return reaped;
    }
    lm_->stats().leases_expired.Add();

    if (rec.mode == CheckOutMode::kExclusive &&
        options_.lease.exclusive_policy == ExpiredExclusivePolicy::kOrphanHold) {
      // Keep the zombie's locks and its epochs: a late exclusive
      // check-in still succeeds, capacity stays stranded until an
      // operator (or the workstation) resolves it.
      leases_.MarkOrphaned(rec.txn);
      ++reaped;
      continue;
    }

    // Reclaim: fence first (in memory), then revoke.  The epoch bump and
    // the lock release reach stable storage in one Save below; a crash
    // in between is covered by the restart's orphan reaper, which
    // re-bumps epochs for every root it reaps.
    size_t released = 0;
    for (const lock::ResourceId& root : RootsOf(rec.txn)) {
      long_store_.BumpFenceEpoch(root);
      ++released;
    }
    lm_->stats().reclaimed_long_locks.Add(released);
    // Plain abort, no cause classification: a reclaim is not a deadlock
    // casualty — `leases_expired` is its counter.
    if (Result<txn::Transaction*> txn = txns_->Get(rec.txn); txn.ok()) {
      txns_->Abort(*txn);
    } else {
      lm_->ReleaseAll(rec.txn);
    }
    // Drop the ticket's registration *before* persisting: if the persist
    // (or the process) dies here, restart recovery finds long locks with
    // no registered ticket and reaps them — same end state.
    {
      MutexLock lk(tickets_mu_);
      long_txn_users_.erase(rec.txn);
    }
    leases_.Drop(rec.txn);
    if (fault::FireResult fr = g_fault_lease_reclaim.Fire()) {
      // Simulated death after the in-memory reclaim, before the persist.
      (void)fault::StatusFor(fr, "ws.lease.reclaim");
      return reaped + 1;
    }
    PersistLongLocks();
    ++reaped;
  }
  return reaped;
}

Result<nf2::ObjectId> Server::CheckInDerived(const CheckOutTicket& ticket,
                                             const std::string& new_key,
                                             nf2::Value derived) {
  if (ticket.mode != CheckOutMode::kDerive) {
    return Status::FailedPrecondition(
        "CheckInDerived requires a derivation check-out");
  }
  // Fence before anything else: a reclaimed ticket must not insert.
  CODLOCK_RETURN_IF_ERROR(CheckFence(ticket));
  Result<txn::Transaction*> txn = txns_->Get(ticket.txn);
  if (!txn.ok()) return txn.status();
  if (!(*txn)->active()) {
    return Status::FailedPrecondition("check-out transaction not active");
  }
  // Insert the derived version as a new complex object: lock the relation
  // in IX and the (future) object's slot via the relation-level insert —
  // the store validates, assigns fresh instance ids and indexes new_key.
  lock::AcquireOptions opts;
  opts.duration = lock::LockDuration::kLong;
  const logra::LockGraph& g = graph_;
  const nf2::RelationDef& rdef = catalog_->relation(ticket.query.relation);
  for (logra::NodeId node :
       {g.DatabaseNode(rdef.database), g.SegmentNode(rdef.segment),
        g.RelationNode(ticket.query.relation)}) {
    CODLOCK_RETURN_IF_ERROR(lm_->Acquire((*txn)->id(), {node, 0},
                                         lock::LockMode::kIX, opts));
  }
  // Make sure the derived object's references to common data are visible
  // before the object becomes reachable.
  CODLOCK_RETURN_IF_ERROR(protocol_->LockNewValueRefs(
      **txn, derived, lock::LockMode::kX));

  // The derived version carries the new key in its key attribute.
  if (rdef.key_attr != nf2::kInvalidAttr && derived.is_tuple()) {
    const nf2::AttrDef& root_def = catalog_->attr(rdef.root);
    for (size_t i = 0; i < root_def.children.size(); ++i) {
      if (root_def.children[i] == rdef.key_attr) {
        derived.children()[i].set_string(new_key);
        break;
      }
    }
  }
  Result<nf2::ObjectId> inserted =
      store_->Insert(ticket.query.relation, std::move(derived));
  if (!inserted.ok()) return inserted.status();

  CODLOCK_RETURN_IF_ERROR(txns_->Commit(*txn));
  {
    MutexLock lk(tickets_mu_);
    long_txn_users_.erase(ticket.txn);
  }
  leases_.Drop(ticket.txn);
  // The commit stands; a persist failure means stable storage still names
  // the released locks.  Surface it — recovery reaps such orphans.
  CODLOCK_RETURN_IF_ERROR(PersistLongLocks());
  return inserted;
}

Status Server::CheckIn(const CheckOutTicket& ticket) {
  // Fence before touching any data: a zombie whose locks were reclaimed
  // (and whose object may since have been re-granted and changed) must
  // fail here, deterministically, with kFenced.
  CODLOCK_RETURN_IF_ERROR(CheckFence(ticket));
  Result<txn::Transaction*> txn = txns_->Get(ticket.txn);
  if (!txn.ok()) return txn.status();
  if (!(*txn)->active()) {
    return Status::FailedPrecondition("check-out transaction not active");
  }
  // Apply the workstation's changes to the central database.  All needed
  // locks are already held (they were acquired at check-out and survived
  // any crash), so this re-execution cannot block.  Shared/derivation
  // check-outs never write back in place.
  if (ticket.mode == CheckOutMode::kExclusive && ticket.query.is_write()) {
    Result<query::QueryPlan> plan = planner_->Plan(ticket.query);
    if (!plan.ok()) return plan.status();
    Result<query::QueryResult> applied =
        executor_->Execute(**txn, ticket.query, *plan);
    if (!applied.ok()) return applied.status();
  }
  CODLOCK_RETURN_IF_ERROR(txns_->Commit(*txn));
  {
    MutexLock lk(tickets_mu_);
    long_txn_users_.erase(ticket.txn);
  }
  leases_.Drop(ticket.txn);
  return PersistLongLocks();
}

Status Server::CancelCheckOut(const CheckOutTicket& ticket) {
  CODLOCK_RETURN_IF_ERROR(CheckFence(ticket));
  Result<txn::Transaction*> txn = txns_->Get(ticket.txn);
  if (!txn.ok()) return txn.status();
  CODLOCK_RETURN_IF_ERROR(txns_->Abort(*txn));
  {
    MutexLock lk(tickets_mu_);
    long_txn_users_.erase(ticket.txn);
  }
  leases_.Drop(ticket.txn);
  return PersistLongLocks();
}

Status Server::PersistLongLocks() {
  if (fault::FireResult f = g_fault_persist.Fire()) {
    return fault::StatusFor(f, "ws/persist");
  }
  return long_store_.Save(*lm_);
}

Status Server::CrashAndRestart() {
  // Lifecycle exclusion: an in-flight lease sweep finishes (or a pending
  // one waits for the rebuilt engine) before the teardown starts — a
  // sweep spanning the rebuild would release a dead engine's locks into
  // the new one (double release).
  MutexLock lifecycle(lifecycle_mu_);
  // Nobody may stay parked inside the dying lock manager: kill every
  // blocked waiter (their Acquire calls fail with kAborted) and wait for
  // them to unwind before tearing the engine down.
  lm_->DrainForShutdown();
  // Volatile state (the lock table, transaction registry, every *short*
  // lock and waiter) is lost; only the LongLockStore survives.
  RebuildEngine();
  if (const std::string path = long_store_.backing_file(); !path.empty()) {
    // Recover from disk, not from memory: what the crash left in the file
    // is the truth (salvaging load — corruption costs at most the torn
    // generation, never the recovery).
    Status load = long_store_.LoadFromFile(path);
    if (!load.ok() && !load.IsNotFound()) return load;
  }
  Status restored = long_store_.Restore(lm_.get());
  // New incarnation, new txn-id era: the store generation is durable and
  // bumped by every persisted check-out/check-in, so ids issued after
  // the restart can never alias a pre-crash ticket's id (a zombie
  // presenting a stale ticket must not act on someone else's
  // transaction).  Adoption below re-registers survivors under their
  // original (older-era) ids.
  txns_->ReserveIds((long_store_.generation() + 1) << 32);
  MutexLock lk(tickets_mu_);
  // Reap orphaned long locks: a crash between a commit/abort and its
  // persist leaves stable storage naming locks whose transaction no
  // longer has a ticket.  Nobody could ever release them — drop them
  // before adopting the live ones.  Reaping revokes locks a workstation
  // may still believe it holds, so every reaped root's fencing epoch is
  // bumped: this also re-fences a reclaim whose epoch bump died with the
  // crash before reaching stable storage (the locks it released are
  // still in the recovered generation, so they are reaped — and
  // re-fenced — here).
  bool reaped_any = false;
  for (const lock::LongLockRecord& rec : long_store_.records()) {
    if (long_txn_users_.find(rec.txn) != long_txn_users_.end()) continue;
    if (!lock::IsIntention(rec.mode)) {
      long_store_.BumpFenceEpoch(rec.resource);
    }
    lm_->ReleaseAll(rec.txn);
    leases_.Drop(rec.txn);
    reaped_any = true;
  }
  if (reaped_any) {
    // Make the reap (and its epoch bumps) durable immediately; a persist
    // failure here leaves the old generation, which the next restart
    // reaps to the same end state.
    Status saved = long_store_.Save(*lm_);
    if (restored.ok() && !saved.ok()) restored = saved;
  }
  for (const auto& [txn_id, user] : long_txn_users_) {
    txns_->Adopt(txn_id, user, txn::TxnKind::kLong);
  }
  // Surviving check-outs get a full renewal window: the outage must not
  // eat the workstations' grace budget.
  leases_.ReissueAll();
  return restored;
}

Result<query::QueryResult> Server::RunShortTxn(authz::UserId user,
                                               const query::Query& query) {
  Result<query::QueryPlan> plan = planner_->Plan(query);
  if (!plan.ok()) return plan.status();
  for (int attempt = 1;; ++attempt) {
    txn::Transaction* txn = txns_->Begin(user, txn::TxnKind::kShort);
    const lock::TxnId id = txn->id();
    Result<query::QueryResult> result = executor_->Execute(*txn, query, *plan);
    if (result.ok()) {
      CODLOCK_RETURN_IF_ERROR(txns_->Commit(txn));
      return result;
    }
    const Status failure = result.status();
    txns_->Abort(txn, failure);  // classifies the cause into stats
    if (!options_.retry.ShouldRetry(failure, attempt)) return failure;
    lm_->stats().retries.Add();
    // Jitter is seeded from the aborted attempt's id: deterministic for a
    // deterministic schedule, distinct for concurrent victims.
    Rng rng(0x9E3779B97F4A7C15ULL ^ (id * 0xBF58476D1CE4E5B9ULL));
    const uint64_t backoff_us = options_.retry.BackoffUs(attempt, rng);
    if (backoff_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

size_t Server::ActiveLongTxns() const {
  MutexLock lk(tickets_mu_);
  return long_txn_users_.size();
}

std::vector<Server::LeaseView> Server::LeaseTable() const {
  std::vector<LeaseView> table;
  for (const LeaseRecord& rec : leases_.Snapshot()) {
    LeaseView row;
    row.txn = rec.txn;
    {
      MutexLock lk(tickets_mu_);
      auto it = long_txn_users_.find(rec.txn);
      if (it != long_txn_users_.end()) row.user = it->second;
    }
    row.mode = rec.mode;
    row.state = leases_.StateOf(rec);
    row.deadline_ms = rec.deadline_ms;
    row.renewals = rec.renewals;
    row.fence = rec.fence;
    for (const lock::HeldLock& held : lm_->LocksOf(rec.txn)) {
      if (held.duration == lock::LockDuration::kLong) {
        row.held.push_back(held.resource);
      }
    }
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace codlock::ws
