#include "ws/shm_ring.h"

#include <chrono>
#include <cstring>
#include <type_traits>

#include "fault/fault_injector.h"
#include "util/crc32.h"
#include "util/mutation_points.h"

namespace codlock::ws {

namespace {

// The client process dies while its frame is still kWriting: the slot
// strands until the dead-handle sweep reclaims it.
fault::FaultPoint g_fault_ring_publish{"ws.ring.publish",
                                       fault::FaultKind::kCrash};
// The client process dies mid-copy *after* the CRC stamp: the frame
// publishes torn and the consumer must salvage it.
fault::FaultPoint g_fault_ring_torn{"ws.ring.torn_frame",
                                    fault::FaultKind::kTornWrite};
// A host worker dies right after claiming a frame: the job strands in
// kExecuting and only a host restart (ring reset) recovers the slot.
fault::FaultPoint g_fault_ring_consume{"ws.ring.consume",
                                       fault::FaultKind::kCrash};

uint32_t AsWord(SlotState s) { return static_cast<uint32_t>(s); }

constexpr size_t kAlign = 64;
constexpr size_t kCtrlStride = 256;
constexpr size_t kSlotHeadStride = 64;

size_t RoundUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

std::string_view BytesView(const uint8_t* p, size_t n) {
  return std::string_view(reinterpret_cast<const char*>(p), n);
}

}  // namespace

std::string_view SlotStateName(SlotState state) {
  switch (state) {
    case SlotState::kFree:
      return "free";
    case SlotState::kWriting:
      return "writing";
    case SlotState::kPublished:
      return "published";
    case SlotState::kExecuting:
      return "executing";
    case SlotState::kDone:
      return "done";
    case SlotState::kTaking:
      return "taking";
  }
  return "?";
}

/// Shared control block at the start of the ring image.  Everything in it
/// is either a lock-free atomic word or the PTHREAD_PROCESS_SHARED wait
/// block — no pointers, no process-local state.
struct ShmRing::RingCtrl {
  /// Doorbell sequence for WaitForPublished: bumped (and futex-woken) on
  /// every publish, so waiters never miss a frame (read seq → re-check →
  /// wait on the old seq).
  std::atomic<uint32_t> published_seq{0};
  /// Cross-process run gate (see ShmRing::run_state).
  std::atomic<uint32_t> run_state{0};
  std::atomic<uint64_t> counters[kNumCounters];
  futex::SharedWaitBlock wait;

  RingCtrl() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    wait.initialized = 0;
  }
};

static_assert(std::is_trivially_copyable_v<FrameHeader>,
              "frame headers live in raw shared memory");
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shared counters must be address-free lock-free atomics");

ShmRing::ShmRing(RingOptions options) : options_(std::move(options)) {
  static_assert(sizeof(SlotHead) <= kSlotHeadStride,
                "slot head must fit its stride");
  static_assert(sizeof(RingCtrl) <= kCtrlStride,
                "control block must fit its stride");
  switch (options_.wait) {
    case RingWait::kAuto:
      wait_backend_ = options_.backend == RingBackend::kInProcess
                          ? futex::Backend::kInProcess
                          : (futex::SyscallSupported()
                                 ? futex::Backend::kSyscall
                                 : futex::Backend::kSharedCond);
      break;
    case RingWait::kInProcess:
      wait_backend_ = futex::Backend::kInProcess;
      break;
    case RingWait::kFutex:
      wait_backend_ = futex::SyscallSupported() ? futex::Backend::kSyscall
                                                : futex::Backend::kSharedCond;
      break;
    case RingWait::kSharedCond:
      wait_backend_ = futex::Backend::kSharedCond;
      break;
  }
  switch (options_.backend) {
    case RingBackend::kInProcess:
      InitInProcess();
      break;
    case RingBackend::kShmCreate:
      init_status_ = InitShmCreate();
      break;
    case RingBackend::kShmAttach:
      init_status_ = InitShmAttach();
      break;
  }
}

ShmRing::~ShmRing() {
  if (options_.backend == RingBackend::kShmCreate && segment_.mapped()) {
    segment_.Unlink();  // best effort; attached children keep their mapping
  }
}

void ShmRing::InitInProcess() {
  payload_stride_ = RoundUp(options_.payload_capacity);
  slot_stride_ = kSlotHeadStride + 2 * payload_stride_;
  const size_t total = kCtrlStride + options_.slots * slot_stride_;
  heap_.reset(new uint8_t[total + kAlign - 1]);
  auto addr = reinterpret_cast<uintptr_t>(heap_.get());
  base_ = heap_.get() + (RoundUp(addr) - addr);
  std::memset(base_, 0, total);
  InitImage();
}

Status ShmRing::InitShmCreate() {
  if (options_.slots == 0 || options_.payload_capacity == 0) {
    return Status::InvalidArgument("ring needs at least one slot and a "
                                   "non-zero payload capacity");
  }
  payload_stride_ = RoundUp(options_.payload_capacity);
  slot_stride_ = kSlotHeadStride + 2 * payload_stride_;
  SegmentConfig cfg;
  cfg.name = options_.shm_name;
  cfg.payload_bytes = kCtrlStride + options_.slots * slot_stride_;
  cfg.incarnation = options_.incarnation;
  cfg.user32[0] = static_cast<uint32_t>(options_.slots);
  cfg.user32[1] = static_cast<uint32_t>(options_.payload_capacity);
  CODLOCK_RETURN_IF_ERROR(segment_.Create(cfg));
  base_ = segment_.payload();
  InitImage();
  return Status::OK();
}

Status ShmRing::InitShmAttach() {
  CODLOCK_RETURN_IF_ERROR(
      segment_.Attach(options_.shm_name, options_.incarnation));
  const size_t slots = segment_.user32(0);
  const size_t capacity = segment_.user32(1);
  payload_stride_ = RoundUp(capacity);
  slot_stride_ = kSlotHeadStride + 2 * payload_stride_;
  if (slots == 0 || capacity == 0 ||
      segment_.payload_bytes() < kCtrlStride + slots * slot_stride_) {
    const Status bad = Status::Corrupt(
        "shm segment \"" + options_.shm_name +
        "\" superblock geometry does not cover the ring image (slots=" +
        std::to_string(slots) + ", capacity=" + std::to_string(capacity) +
        ", payload_bytes=" + std::to_string(segment_.payload_bytes()) + ")");
    segment_.Close();
    return bad;
  }
  options_.slots = slots;
  options_.payload_capacity = capacity;
  options_.incarnation = segment_.incarnation();
  base_ = segment_.payload();
  return Status::OK();
}

void ShmRing::InitImage() {
  new (base_) RingCtrl;
  // The shared wait block is initialized unconditionally: an attaching
  // process may resolve its wait mode to kSharedCond even when the
  // creator runs on raw futexes.
  ctrl()->wait.Init();
  for (size_t i = 0; i < options_.slots; ++i) {
    new (&HeadOf(i)) SlotHead;
  }
}

ShmRing::RingCtrl* ShmRing::ctrl() const {
  return reinterpret_cast<RingCtrl*>(base_);
}

ShmRing::SlotHead& ShmRing::HeadOf(size_t slot) const {
  return *reinterpret_cast<SlotHead*>(base_ + kCtrlStride +
                                      slot * slot_stride_);
}

uint8_t* ShmRing::PayloadOf(size_t slot) const {
  return base_ + kCtrlStride + slot * slot_stride_ + kSlotHeadStride;
}

uint8_t* ShmRing::ResponseOf(size_t slot) const {
  return PayloadOf(slot) + payload_stride_;
}

bool ShmRing::CasState(SlotHead& s, SlotState from, SlotState to) {
  uint32_t expected = AsWord(from);
  return s.state.compare_exchange_strong(expected, AsWord(to),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}

void ShmRing::FreeSlot(SlotHead& s) {
  s.state.store(AsWord(SlotState::kFree), std::memory_order_release);
  WakeSlot(s);
}

void ShmRing::WakeSlot(SlotHead& s) {
  futex::WakeAll(wait_backend_, s.state, &ctrl()->wait);
}

void ShmRing::RingDoorbell() {
  ctrl()->published_seq.fetch_add(1, std::memory_order_release);
  futex::WakeAll(wait_backend_, ctrl()->published_seq, &ctrl()->wait);
}

void ShmRing::Bump(CounterIdx idx) {
  ctrl()->counters[idx].fetch_add(1, std::memory_order_relaxed);
}

uint64_t ShmRing::incarnation() const {
  return segment_.mapped() ? segment_.incarnation() : options_.incarnation;
}

Result<size_t> ShmRing::Publish(const FrameHeader& header,
                                std::string_view payload, PublishFault fault) {
  if (base_ == nullptr) return init_status_;
  if (payload.size() > options_.payload_capacity) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds ring capacity of " +
        std::to_string(options_.payload_capacity));
  }
  // The deterministic fault points and the fleet's probabilistic chaos
  // inject through the same switch.
  fault::FireResult injected_crash;
  if (fault == PublishFault::kNone) {
    if (fault::FireResult fr = g_fault_ring_publish.Fire()) {
      injected_crash = fr;
      fault = PublishFault::kDieMidWrite;
    } else if (g_fault_ring_torn.Fire()) {
      fault = PublishFault::kTornFrame;
    }
  }

  // Claim: rotating scan for a free slot.
  const size_t n = options_.slots;
  const size_t start = publish_cursor_.fetch_add(1, std::memory_order_relaxed);
  SlotHead* slot = nullptr;
  size_t index = 0;
  for (size_t i = 0; i < n; ++i) {
    index = (start + i) % n;
    if (CasState(HeadOf(index), SlotState::kFree, SlotState::kWriting)) {
      slot = &HeadOf(index);
      break;
    }
  }
  if (slot == nullptr) {
    return Status::Shed("job ring full (" + std::to_string(n) +
                        " slots in flight)");
  }
  // Attribution is part of the claim: the owner/job stamps land right
  // after the CAS, so a producer SIGKILLed at any modeled crash point
  // leaves a slot the dead-handle sweep can attribute and reclaim.  (The
  // two stores between the CAS and "publish.claimed" are the residual
  // unattributable window; a death inside it strands the slot until the
  // host's crash recovery Reset, which accounts the frame.)
  slot->owner.store(header.handle_id, std::memory_order_release);
  slot->job_stamp.store(header.job_id, std::memory_order_release);
  CrashPoint("publish.claimed");

  slot->header = header;
  slot->header.payload_size = static_cast<uint32_t>(payload.size());
  slot->header.crc = Crc32(payload);
  CrashPoint("publish.stamped");
  if (fault == PublishFault::kDieMidWrite) {
    // Death before the payload lands: the slot strands in kWriting with
    // its owner recorded, so the dead-handle sweep can find it.
    Bump(kCtrCrashedWrites);
    if (injected_crash) {
      return fault::StatusFor(injected_crash, "ws.ring.publish");
    }
    return Status::Aborted("simulated client death mid-publish of job " +
                           std::to_string(header.job_id));
  }
  if (fault == PublishFault::kTornFrame) {
    // CRC stamped over the full payload, but only half of it lands; the
    // tail keeps whatever bytes the previous occupant left behind.
    std::memcpy(PayloadOf(index), payload.data(), payload.size() / 2);
    Bump(kCtrTornWrites);
  } else if (!payload.empty()) {
    std::memcpy(PayloadOf(index), payload.data(), payload.size());
  }
  slot->response_size = 0;
  CrashPoint("publish.copied");

  if (!CasState(*slot, SlotState::kWriting, SlotState::kPublished)) {
    // The slot was reclaimed under us (the handle was fenced while this
    // publish was in flight).  Nothing was made visible.
    return Status::Fenced("slot reclaimed during publish of job " +
                          std::to_string(header.job_id));
  }
  Bump(kCtrPublished);
  if (LockStats* st = stats()) st->ring_published.Add();
  // Ledger first, then the crash hook: a producer that dies here leaves
  // a *counted* published frame behind (the conservation identities
  // treat it as unconsumed or consumed-later, never as a ghost).
  CrashPoint("publish.published");
  RingDoorbell();
  return index;
}

bool ShmRing::Done(size_t slot, uint64_t job_id) const {
  if (base_ == nullptr) return false;
  const SlotHead& s = HeadOf(slot);
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) return false;
  return s.state.load(std::memory_order_acquire) == AsWord(SlotState::kDone);
}

Result<std::string> ShmRing::TakeResponse(size_t slot, uint64_t job_id) {
  if (base_ == nullptr) return init_status_;
  SlotHead& s = HeadOf(slot);
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) {
    return Status::NotFound("job " + std::to_string(job_id) +
                            " is gone (slot reclaimed or reused)");
  }
  if (!CasState(s, SlotState::kDone, SlotState::kTaking)) {
    const uint32_t state = s.state.load(std::memory_order_acquire);
    if (state == AsWord(SlotState::kFree)) {
      return Status::NotFound("job " + std::to_string(job_id) +
                              " is gone (slot reclaimed)");
    }
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is not done (slot is " +
        std::string(SlotStateName(static_cast<SlotState>(state))) + ")");
  }
  CrashPoint("take.taking");
  // We own the slot now; re-verify the stamp (the slot may have cycled
  // to another producer's done job between the load and the claim).
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) {
    CasState(s, SlotState::kTaking, SlotState::kDone);
    return Status::NotFound("job " + std::to_string(job_id) +
                            " is gone (slot reused)");
  }
  std::string response(BytesView(ResponseOf(slot), s.response_size));
  // The release is a CAS, not a blind store: the PID reaper may free a
  // kTaking slot whose owner it verified dead.  If it won, this (live,
  // fenced) taker must not double-free — and must not count the take,
  // the reaper already ledgered the frame as reclaimed.
  if (!CasState(s, SlotState::kTaking, SlotState::kFree)) {
    return Status::NotFound("job " + std::to_string(job_id) +
                            " was reclaimed while taking its response");
  }
  Bump(kCtrTaken);
  return response;
}

bool ShmRing::WaitDone(size_t slot, uint64_t job_id, uint64_t timeout_us) {
  if (base_ == nullptr) return false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  SlotHead& s = HeadOf(slot);
  for (;;) {
    if (s.job_stamp.load(std::memory_order_acquire) != job_id) return false;
    const uint32_t state = s.state.load(std::memory_order_acquire);
    if (state == AsWord(SlotState::kDone)) return true;
    if (state == AsWord(SlotState::kFree)) return false;  // reclaimed
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    // The slot state word is the futex word: Complete / FreeSlot /
    // reclaim wake it on every transition out of `state`.
    futex::Wait(wait_backend_, s.state, state,
                static_cast<uint64_t>(remaining_us), &ctrl()->wait);
  }
}

Result<ShmRing::Job> ShmRing::Consume(std::vector<SalvagedFrame>* salvaged) {
  if (base_ == nullptr) return init_status_;
  const size_t n = options_.slots;
  for (size_t scanned = 0; scanned < n;) {
    const size_t index =
        consume_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    ++scanned;
    SlotHead& s = HeadOf(index);
    if (!CasState(s, SlotState::kPublished, SlotState::kExecuting)) continue;
    CrashPoint("consume.claimed");
    if (fault::FireResult fr = g_fault_ring_consume.Fire()) {
      // The worker dies holding the claim: the job strands in
      // kExecuting until the host restart resets the ring.  The claim
      // itself is ledgered — the stranded frame must show up under
      // consumed == completed + reclaimed_executing, not vanish.
      Bump(kCtrConsumed);
      if (LockStats* st = stats()) st->ring_consumed.Add();
      return fault::StatusFor(fr, "ws.ring.consume");
    }
    const FrameHeader header = s.header;
    if (header.payload_size > options_.payload_capacity ||
        Crc32(BytesView(PayloadOf(index), header.payload_size)) !=
            header.crc) {
      // Torn frame: the writer died mid-copy.  Salvage the slot.
      if (salvaged != nullptr) {
        salvaged->push_back({index, header.handle_id, header.job_id});
      }
      FreeSlot(s);
      Bump(kCtrSalvaged);
      if (LockStats* st = stats()) st->ring_salvaged_frames.Add();
      continue;  // the freed slot does not count as scanned work
    }
    Job job;
    job.slot = index;
    job.header = header;
    job.payload.assign(BytesView(PayloadOf(index), header.payload_size));
    Bump(kCtrConsumed);
    if (LockStats* st = stats()) st->ring_consumed.Add();
    return job;
  }
  return Status::NotFound("no published frame");
}

bool ShmRing::Complete(size_t slot, std::string_view response) {
  if (base_ == nullptr) return false;
  SlotHead& s = HeadOf(slot);
  if (response.size() > options_.payload_capacity) {
    // No silent truncation: drop the job as lost-in-executing (the
    // producer's WaitDone sees the freed slot and gives up).
    if (CasState(s, SlotState::kExecuting, SlotState::kFree)) {
      Bump(kCtrReclaimedExecuting);
      WakeSlot(s);
    }
    return false;
  }
  if (!response.empty()) {
    std::memcpy(ResponseOf(slot), response.data(), response.size());
  }
  s.response_size = static_cast<uint32_t>(response.size());
  // CAS, not a blind store: a post-mortem reclaim (scope.executing) may
  // have freed the slot under a worker that was presumed gone.  The
  // reclaimer ledgered the frame; this worker drops the response.
  if (!CasState(s, SlotState::kExecuting, SlotState::kDone)) {
    return false;
  }
  Bump(kCtrCompleted);
  WakeSlot(s);
  return true;
}

bool ShmRing::WaitForPublished(uint64_t timeout_us,
                               const std::atomic<bool>* stop) {
  if (base_ == nullptr) return false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  for (;;) {
    // Eventcount discipline: read the doorbell, then re-check the
    // predicate, then wait on the *old* doorbell value — a publish
    // between check and wait bumps the word and the wait returns.
    const uint32_t seq = ctrl()->published_seq.load(std::memory_order_acquire);
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return false;
    for (size_t i = 0; i < options_.slots; ++i) {
      if (HeadOf(i).state.load(std::memory_order_acquire) ==
          AsWord(SlotState::kPublished)) {
        return true;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    futex::Wait(wait_backend_, ctrl()->published_seq, seq,
                static_cast<uint64_t>(remaining_us), &ctrl()->wait);
  }
}

void ShmRing::WakeAll() {
  if (base_ == nullptr) return;
  RingDoorbell();
  for (size_t i = 0; i < options_.slots; ++i) {
    WakeSlot(HeadOf(i));
  }
}

size_t ShmRing::ReclaimHandleSlots(uint64_t handle_id, ReclaimScope scope) {
  if (base_ == nullptr) return 0;
  // Precondition (enforced by ws::Host): the handle is fenced, so no
  // live writer of this handle can pass admission anymore; any slot
  // still kWriting was stranded by a death inside Publish, which has
  // returned (or been SIGKILLed) — the slot memory is quiet.
  size_t freed = 0;
  auto reclaim = [&](SlotHead& s, SlotState from, CounterIdx ctr) {
    if (!CasState(s, from, SlotState::kFree)) return false;
    Bump(ctr);
    WakeSlot(s);  // parked producers of freed slots must give up
    ++freed;
    return true;
  };
  for (size_t i = 0; i < options_.slots; ++i) {
    SlotHead& s = HeadOf(i);
    if (s.owner.load(std::memory_order_acquire) != handle_id) continue;
    if (reclaim(s, SlotState::kWriting, kCtrReclaimedWriting)) continue;
    // Kill-suite mutant: leak unconsumed publishes of the dead handle.
    // The frame-conservation oracle must notice the ring never drains.
    if (!mutation::Enabled(mutation::Mutant::kRingSkipReclaim) &&
        reclaim(s, SlotState::kPublished, kCtrReclaimedPublished)) {
      continue;
    }
    if (reclaim(s, SlotState::kDone, kCtrReclaimedDone)) continue;
    // kTaking: the owner died after claiming its response (the frame was
    // completed, so it ledgers as an untaken response).  Only safe when
    // the owner is provably dead — the PID reaper's scope.
    if (scope.taking && reclaim(s, SlotState::kTaking, kCtrReclaimedDone)) {
      continue;
    }
    // kExecuting: only when no worker can still be running the job
    // (post-mortem convergence with workers stopped).
    if (scope.executing &&
        reclaim(s, SlotState::kExecuting, kCtrReclaimedExecuting)) {
      continue;
    }
  }
  return freed;
}

void ShmRing::Reset() {
  if (base_ == nullptr) return;
  // Host crash: shared memory reinitialized.  Account every in-flight
  // frame as lost before freeing it — the sweep's conservation checks
  // rely on the ledger, not the memory.
  for (size_t i = 0; i < options_.slots; ++i) {
    SlotHead& s = HeadOf(i);
    const uint32_t state = s.state.load(std::memory_order_acquire);
    switch (static_cast<SlotState>(state)) {
      case SlotState::kFree:
        break;
      case SlotState::kWriting:
        Bump(kCtrReclaimedWriting);
        break;
      case SlotState::kPublished:
        Bump(kCtrReclaimedPublished);
        break;
      case SlotState::kExecuting:
        Bump(kCtrReclaimedExecuting);
        break;
      case SlotState::kDone:
      case SlotState::kTaking:
        Bump(kCtrReclaimedDone);
        break;
    }
    s.owner.store(0, std::memory_order_release);
    s.job_stamp.store(0, std::memory_order_release);
    FreeSlot(s);
  }
  RingDoorbell();
}

Status ShmRing::StampIncarnation(uint64_t incarnation) {
  options_.incarnation = incarnation;
  if (options_.backend == RingBackend::kShmCreate && segment_.mapped()) {
    return segment_.StampIncarnation(incarnation);
  }
  return Status::OK();
}

uint32_t ShmRing::run_state() const {
  if (base_ == nullptr) return 0;
  return ctrl()->run_state.load(std::memory_order_acquire);
}

void ShmRing::SetRunState(uint32_t value) {
  if (base_ == nullptr) return;
  ctrl()->run_state.store(value, std::memory_order_release);
  futex::WakeAll(wait_backend_, ctrl()->run_state, &ctrl()->wait);
}

uint32_t ShmRing::WaitRunStateAtLeast(uint32_t value, uint64_t timeout_us) {
  if (base_ == nullptr) return 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  for (;;) {
    const uint32_t seen = ctrl()->run_state.load(std::memory_order_acquire);
    if (seen >= value) return seen;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return seen;
    const auto remaining_us =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now)
            .count();
    futex::Wait(wait_backend_, ctrl()->run_state, seen,
                static_cast<uint64_t>(remaining_us), &ctrl()->wait);
  }
}

SlotState ShmRing::StateOf(size_t slot) const {
  return static_cast<SlotState>(
      HeadOf(slot).state.load(std::memory_order_acquire));
}

uint64_t ShmRing::OwnerOf(size_t slot) const {
  return HeadOf(slot).owner.load(std::memory_order_acquire);
}

size_t ShmRing::InFlight() const {
  if (base_ == nullptr) return 0;
  size_t busy = 0;
  for (size_t i = 0; i < options_.slots; ++i) {
    if (HeadOf(i).state.load(std::memory_order_acquire) !=
        AsWord(SlotState::kFree)) {
      ++busy;
    }
  }
  return busy;
}

ShmRing::Counters ShmRing::counters() const {
  Counters c;
  if (base_ == nullptr) return c;
  auto load = [&](CounterIdx idx) {
    return ctrl()->counters[idx].load(std::memory_order_relaxed);
  };
  c.published = load(kCtrPublished);
  c.consumed = load(kCtrConsumed);
  c.completed = load(kCtrCompleted);
  c.taken = load(kCtrTaken);
  c.salvaged = load(kCtrSalvaged);
  c.torn_writes = load(kCtrTornWrites);
  c.crashed_writes = load(kCtrCrashedWrites);
  c.reclaimed_writing = load(kCtrReclaimedWriting);
  c.reclaimed_published = load(kCtrReclaimedPublished);
  c.reclaimed_executing = load(kCtrReclaimedExecuting);
  c.reclaimed_done = load(kCtrReclaimedDone);
  return c;
}

}  // namespace codlock::ws
