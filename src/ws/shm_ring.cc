#include "ws/shm_ring.h"

#include <chrono>

#include "fault/fault_injector.h"
#include "util/crc32.h"

namespace codlock::ws {

namespace {

// The client process dies while its frame is still kWriting: the slot
// strands until the dead-handle sweep reclaims it.
fault::FaultPoint g_fault_ring_publish{"ws.ring.publish",
                                       fault::FaultKind::kCrash};
// The client process dies mid-copy *after* the CRC stamp: the frame
// publishes torn and the consumer must salvage it.
fault::FaultPoint g_fault_ring_torn{"ws.ring.torn_frame",
                                    fault::FaultKind::kTornWrite};
// A host worker dies right after claiming a frame: the job strands in
// kExecuting and only a host restart (ring reset) recovers the slot.
fault::FaultPoint g_fault_ring_consume{"ws.ring.consume",
                                       fault::FaultKind::kCrash};

uint32_t AsWord(SlotState s) { return static_cast<uint32_t>(s); }

}  // namespace

std::string_view SlotStateName(SlotState state) {
  switch (state) {
    case SlotState::kFree:
      return "free";
    case SlotState::kWriting:
      return "writing";
    case SlotState::kPublished:
      return "published";
    case SlotState::kExecuting:
      return "executing";
    case SlotState::kDone:
      return "done";
    case SlotState::kTaking:
      return "taking";
  }
  return "?";
}

ShmRing::ShmRing(RingOptions options)
    : options_(options), slots_(new Slot[options.slots]) {
  for (size_t i = 0; i < options_.slots; ++i) {
    slots_[i].payload.reserve(options_.payload_capacity);
    slots_[i].response.reserve(options_.payload_capacity);
  }
}

bool ShmRing::CasState(Slot& s, SlotState from, SlotState to) {
  uint32_t expected = AsWord(from);
  return s.state.compare_exchange_strong(expected, AsWord(to),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}

void ShmRing::FreeSlot(Slot& s) {
  s.state.store(AsWord(SlotState::kFree), std::memory_order_release);
}

Result<size_t> ShmRing::Publish(const FrameHeader& header,
                                std::string_view payload, PublishFault fault) {
  if (payload.size() > options_.payload_capacity) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds ring capacity of " +
        std::to_string(options_.payload_capacity));
  }
  // The deterministic fault points and the fleet's probabilistic chaos
  // inject through the same switch.
  fault::FireResult injected_crash;
  if (fault == PublishFault::kNone) {
    if (fault::FireResult fr = g_fault_ring_publish.Fire()) {
      injected_crash = fr;
      fault = PublishFault::kDieMidWrite;
    } else if (g_fault_ring_torn.Fire()) {
      fault = PublishFault::kTornFrame;
    }
  }

  // Claim: rotating scan for a free slot.
  const size_t n = options_.slots;
  const size_t start = publish_cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot* slot = nullptr;
  size_t index = 0;
  for (size_t i = 0; i < n; ++i) {
    index = (start + i) % n;
    if (CasState(slots_[index], SlotState::kFree, SlotState::kWriting)) {
      slot = &slots_[index];
      break;
    }
  }
  if (slot == nullptr) {
    return Status::Shed("job ring full (" + std::to_string(n) +
                        " slots in flight)");
  }

  slot->owner.store(header.handle_id, std::memory_order_release);
  slot->job_stamp.store(header.job_id, std::memory_order_release);
  slot->header = header;
  slot->header.payload_size = static_cast<uint32_t>(payload.size());
  slot->header.crc = Crc32(payload);
  if (fault == PublishFault::kDieMidWrite) {
    // Death before the payload lands: the slot strands in kWriting with
    // its owner recorded, so the dead-handle sweep can find it.
    {
      MutexLock lk(counters_mu_);
      ++counters_.crashed_writes;
    }
    if (injected_crash) {
      return fault::StatusFor(injected_crash, "ws.ring.publish");
    }
    return Status::Aborted("simulated client death mid-publish of job " +
                           std::to_string(header.job_id));
  }
  if (fault == PublishFault::kTornFrame) {
    // CRC stamped over the full payload, but only half of it lands.
    slot->payload.assign(payload.substr(0, payload.size() / 2));
    MutexLock lk(counters_mu_);
    ++counters_.torn_writes;
  } else {
    slot->payload.assign(payload);
  }
  slot->response.clear();

  if (!CasState(*slot, SlotState::kWriting, SlotState::kPublished)) {
    // The slot was reclaimed under us (the handle was fenced while this
    // publish was in flight).  Nothing was made visible.
    return Status::Fenced("slot reclaimed during publish of job " +
                          std::to_string(header.job_id));
  }
  {
    MutexLock lk(counters_mu_);
    ++counters_.published;
  }
  if (LockStats* st = stats()) st->ring_published.Add();
  // Futex-style wake: the state word changed; nudge parked consumers.
  // Acquiring the wait mutex orders this wake after any in-progress
  // predicate check, closing the lost-wakeup window.
  { MutexLock lk(wait_mu_); }
  published_cv_.NotifyAll();
  return index;
}

bool ShmRing::Done(size_t slot, uint64_t job_id) const {
  const Slot& s = slots_[slot];
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) return false;
  return s.state.load(std::memory_order_acquire) == AsWord(SlotState::kDone);
}

Result<std::string> ShmRing::TakeResponse(size_t slot, uint64_t job_id) {
  Slot& s = slots_[slot];
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) {
    return Status::NotFound("job " + std::to_string(job_id) +
                            " is gone (slot reclaimed or reused)");
  }
  if (!CasState(s, SlotState::kDone, SlotState::kTaking)) {
    const uint32_t state = s.state.load(std::memory_order_acquire);
    if (state == AsWord(SlotState::kFree)) {
      return Status::NotFound("job " + std::to_string(job_id) +
                              " is gone (slot reclaimed)");
    }
    return Status::FailedPrecondition(
        "job " + std::to_string(job_id) + " is not done (slot is " +
        std::string(SlotStateName(static_cast<SlotState>(state))) + ")");
  }
  // We own the slot now; re-verify the stamp (the slot may have cycled
  // to another producer's done job between the load and the claim).
  if (s.job_stamp.load(std::memory_order_acquire) != job_id) {
    CasState(s, SlotState::kTaking, SlotState::kDone);
    return Status::NotFound("job " + std::to_string(job_id) +
                            " is gone (slot reused)");
  }
  std::string response = s.response;
  FreeSlot(s);
  {
    MutexLock lk(counters_mu_);
    ++counters_.taken;
  }
  return response;
}

bool ShmRing::WaitDone(size_t slot, uint64_t job_id, uint64_t timeout_us) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  const Slot& s = slots_[slot];
  bool ready = false;
  MutexLock lk(wait_mu_);
  done_cv_.WaitUntil(wait_mu_, deadline, [&] {
    if (s.job_stamp.load(std::memory_order_acquire) != job_id) return true;
    const uint32_t state = s.state.load(std::memory_order_acquire);
    if (state == AsWord(SlotState::kDone)) {
      ready = true;
      return true;
    }
    return state == AsWord(SlotState::kFree);  // reclaimed — give up
  });
  return ready;
}

Result<ShmRing::Job> ShmRing::Consume(std::vector<SalvagedFrame>* salvaged) {
  const size_t n = options_.slots;
  for (size_t scanned = 0; scanned < n;) {
    const size_t index =
        consume_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    ++scanned;
    Slot& s = slots_[index];
    if (!CasState(s, SlotState::kPublished, SlotState::kExecuting)) continue;
    if (fault::FireResult fr = g_fault_ring_consume.Fire()) {
      // The worker dies holding the claim: the job strands in
      // kExecuting until the host restart resets the ring.  The claim
      // itself is ledgered — the stranded frame must show up under
      // consumed == completed + reclaimed_executing, not vanish.
      {
        MutexLock lk(counters_mu_);
        ++counters_.consumed;
      }
      if (LockStats* st = stats()) st->ring_consumed.Add();
      return fault::StatusFor(fr, "ws.ring.consume");
    }
    const FrameHeader header = s.header;
    if (s.payload.size() != header.payload_size ||
        Crc32(s.payload) != header.crc) {
      // Torn frame: the writer died mid-copy.  Salvage the slot.
      if (salvaged != nullptr) {
        salvaged->push_back({index, header.handle_id, header.job_id});
      }
      FreeSlot(s);
      {
        MutexLock lk(counters_mu_);
        ++counters_.salvaged;
      }
      if (LockStats* st = stats()) st->ring_salvaged_frames.Add();
      continue;  // the freed slot does not count as scanned work
    }
    Job job;
    job.slot = index;
    job.header = header;
    job.payload = s.payload;
    {
      MutexLock lk(counters_mu_);
      ++counters_.consumed;
    }
    if (LockStats* st = stats()) st->ring_consumed.Add();
    return job;
  }
  return Status::NotFound("no published frame");
}

void ShmRing::Complete(size_t slot, std::string_view response) {
  Slot& s = slots_[slot];
  s.response.assign(response);
  s.state.store(AsWord(SlotState::kDone), std::memory_order_release);
  {
    MutexLock lk(counters_mu_);
    ++counters_.completed;
  }
  { MutexLock lk(wait_mu_); }
  done_cv_.NotifyAll();
}

bool ShmRing::WaitForPublished(uint64_t timeout_us,
                               const std::atomic<bool>* stop) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(timeout_us);
  bool found = false;
  MutexLock lk(wait_mu_);
  published_cv_.WaitUntil(wait_mu_, deadline, [&] {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return true;
    for (size_t i = 0; i < options_.slots; ++i) {
      if (slots_[i].state.load(std::memory_order_acquire) ==
          AsWord(SlotState::kPublished)) {
        found = true;
        return true;
      }
    }
    return false;
  });
  return found;
}

void ShmRing::WakeAll() {
  { MutexLock lk(wait_mu_); }
  published_cv_.NotifyAll();
  done_cv_.NotifyAll();
}

size_t ShmRing::ReclaimHandleSlots(uint64_t handle_id) {
  // Precondition (enforced by ws::Host): the handle is fenced, so no
  // live writer of this handle can pass admission anymore; any slot
  // still kWriting was stranded by a death inside Publish, which has
  // returned — the slot memory is quiet.
  size_t freed = 0;
  for (size_t i = 0; i < options_.slots; ++i) {
    Slot& s = slots_[i];
    if (s.owner.load(std::memory_order_acquire) != handle_id) continue;
    if (CasState(s, SlotState::kWriting, SlotState::kFree)) {
      MutexLock lk(counters_mu_);
      ++counters_.reclaimed_writing;
      ++freed;
    } else if (CasState(s, SlotState::kPublished, SlotState::kFree)) {
      MutexLock lk(counters_mu_);
      ++counters_.reclaimed_published;
      ++freed;
    } else if (CasState(s, SlotState::kDone, SlotState::kFree)) {
      MutexLock lk(counters_mu_);
      ++counters_.reclaimed_done;
      ++freed;
    }
    // kExecuting slots belong to a live worker: Complete() moves them to
    // kDone and the next sweep pass frees them here.
  }
  if (freed != 0) {
    { MutexLock lk(wait_mu_); }
    done_cv_.NotifyAll();  // parked producers of freed slots must give up
  }
  return freed;
}

void ShmRing::Reset() {
  // Host crash: shared memory reinitialized.  Account every in-flight
  // frame as lost before freeing it — the sweep's conservation checks
  // rely on the ledger, not the memory.
  for (size_t i = 0; i < options_.slots; ++i) {
    Slot& s = slots_[i];
    const uint32_t state = s.state.load(std::memory_order_acquire);
    {
      MutexLock lk(counters_mu_);
      switch (static_cast<SlotState>(state)) {
        case SlotState::kFree:
          break;
        case SlotState::kWriting:
          ++counters_.reclaimed_writing;
          break;
        case SlotState::kPublished:
          ++counters_.reclaimed_published;
          break;
        case SlotState::kExecuting:
          ++counters_.reclaimed_executing;
          break;
        case SlotState::kDone:
        case SlotState::kTaking:
          ++counters_.reclaimed_done;
          break;
      }
    }
    s.owner.store(0, std::memory_order_release);
    s.job_stamp.store(0, std::memory_order_release);
    FreeSlot(s);
  }
  WakeAll();
}

SlotState ShmRing::StateOf(size_t slot) const {
  return static_cast<SlotState>(
      slots_[slot].state.load(std::memory_order_acquire));
}

size_t ShmRing::InFlight() const {
  size_t busy = 0;
  for (size_t i = 0; i < options_.slots; ++i) {
    if (slots_[i].state.load(std::memory_order_acquire) !=
        AsWord(SlotState::kFree)) {
      ++busy;
    }
  }
  return busy;
}

ShmRing::Counters ShmRing::counters() const {
  MutexLock lk(counters_mu_);
  return counters_;
}

}  // namespace codlock::ws
