#include "ws/lease.h"

#include <algorithm>

namespace codlock::ws {

std::string_view ExpiredExclusivePolicyName(ExpiredExclusivePolicy policy) {
  switch (policy) {
    case ExpiredExclusivePolicy::kReclaimAbort:
      return "reclaim-abort";
    case ExpiredExclusivePolicy::kOrphanHold:
      return "orphan-hold";
  }
  return "?";
}

std::string_view LeaseStateName(LeaseState state) {
  switch (state) {
    case LeaseState::kActive:
      return "active";
    case LeaseState::kInGrace:
      return "in-grace";
    case LeaseState::kExpired:
      return "expired";
    case LeaseState::kOrphaned:
      return "orphaned";
  }
  return "?";
}

LeaseRecord LeaseManager::Grant(lock::TxnId txn, CheckOutMode mode,
                                std::vector<RootFence> fence) {
  LeaseRecord rec;
  rec.txn = txn;
  rec.mode = mode;
  rec.granted_at_ms = clock_->NowMs();
  rec.deadline_ms = rec.granted_at_ms + options_.duration_ms;
  rec.fence = std::move(fence);
  MutexLock lk(mu_);
  leases_[txn] = rec;
  return rec;
}

Status LeaseManager::Renew(lock::TxnId txn) {
  const uint64_t now = clock_->NowMs();
  MutexLock lk(mu_);
  auto it = leases_.find(txn);
  if (it == leases_.end()) {
    return Status::NotFound("no lease for txn " + std::to_string(txn));
  }
  LeaseRecord& rec = it->second;
  if (rec.orphaned) {
    return Status::FailedPrecondition(
        "lease of txn " + std::to_string(txn) +
        " is orphaned (expired under orphan-hold); operator action needed");
  }
  if (now >= rec.deadline_ms + options_.grace_ms) {
    return Status::FailedPrecondition(
        "lease of txn " + std::to_string(txn) +
        " expired beyond its grace window");
  }
  rec.deadline_ms = now + options_.duration_ms;
  ++rec.renewals;
  return Status::OK();
}

Status LeaseManager::Release(lock::TxnId txn) {
  MutexLock lk(mu_);
  if (leases_.erase(txn) == 0) {
    return Status::NotFound("no lease for txn " + std::to_string(txn));
  }
  return Status::OK();
}

void LeaseManager::Drop(lock::TxnId txn) {
  MutexLock lk(mu_);
  leases_.erase(txn);
}

void LeaseManager::MarkOrphaned(lock::TxnId txn) {
  MutexLock lk(mu_);
  auto it = leases_.find(txn);
  if (it != leases_.end()) it->second.orphaned = true;
}

void LeaseManager::ReissueAll() {
  const uint64_t now = clock_->NowMs();
  MutexLock lk(mu_);
  for (auto& [txn, rec] : leases_) {
    if (rec.orphaned) continue;
    rec.deadline_ms = now + options_.duration_ms;
  }
}

bool LeaseManager::Has(lock::TxnId txn) const {
  MutexLock lk(mu_);
  return leases_.find(txn) != leases_.end();
}

Result<LeaseRecord> LeaseManager::Get(lock::TxnId txn) const {
  MutexLock lk(mu_);
  auto it = leases_.find(txn);
  if (it == leases_.end()) {
    return Status::NotFound("no lease for txn " + std::to_string(txn));
  }
  return it->second;
}

LeaseState LeaseManager::StateOf(const LeaseRecord& record) const {
  if (record.orphaned) return LeaseState::kOrphaned;
  const uint64_t now = clock_->NowMs();
  if (now < record.deadline_ms) return LeaseState::kActive;
  if (now < record.deadline_ms + options_.grace_ms) {
    return LeaseState::kInGrace;
  }
  return LeaseState::kExpired;
}

std::vector<LeaseRecord> LeaseManager::ExpiredBeyondGrace() const {
  std::vector<LeaseRecord> out;
  {
    MutexLock lk(mu_);
    for (const auto& [txn, rec] : leases_) {
      if (StateOf(rec) == LeaseState::kExpired) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LeaseRecord& a, const LeaseRecord& b) {
              return a.txn < b.txn;
            });
  return out;
}

std::vector<LeaseRecord> LeaseManager::Snapshot() const {
  std::vector<LeaseRecord> out;
  {
    MutexLock lk(mu_);
    out.reserve(leases_.size());
    for (const auto& [txn, rec] : leases_) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const LeaseRecord& a, const LeaseRecord& b) {
              return a.txn < b.txn;
            });
  return out;
}

size_t LeaseManager::size() const {
  MutexLock lk(mu_);
  return leases_.size();
}

}  // namespace codlock::ws
