/// \file host.h
/// \brief The host side of the out-of-process serving split: owns the
/// `ws::Server` (lock tables, leases, stable storage) and drains the
/// shared-memory job ring.
///
/// Robustness model (DESIGN.md §13):
///
///  * **Admission control** — `Submit` enforces a bounded in-flight job
///    count per handle and a global cap before a frame may publish;
///    beyond either the job is rejected with `Status::Shed` (counted in
///    `sheds` and `jobs_shed_per_handle`) and the client backs off with
///    the PR 4 retry policy.  A wedged client can therefore hold at most
///    `max_inflight_per_handle` slots hostage — never the ring.
///  * **Dead-handle detection** — every executed job bumps its handle's
///    last-seen time (virtual clock).  `SweepDeadHandles` fences handles
///    silent past `handle_lease_ms`: the handle epoch is bumped
///    (`handles_fenced`), its ring slots are reclaimed, and its
///    check-out leases — which the dead client has stopped renewing —
///    fall to the *existing* lease sweep, which releases the locks and
///    bumps the root fencing epochs.
///  * **Host-crash recovery** — `CrashAndRestart` rides the server's
///    durable recovery (`LongLockStore` generation + fencing epochs),
///    reinitializes the ring (in-flight jobs are lost and accounted),
///    and starts a new host incarnation: every pre-crash handle is a
///    zombie (`Status::Fenced`) until it re-attaches; its *tickets*
///    remain protected by the durable root epochs either way.
#ifndef CODLOCK_WS_HOST_H_
#define CODLOCK_WS_HOST_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "ws/handle.h"
#include "ws/server.h"
#include "ws/shm_ring.h"

namespace codlock::ws {

struct HostOptions {
  RingOptions ring;
  /// Bounded in-flight jobs per handle; beyond it Submit sheds.
  size_t max_inflight_per_handle = 8;
  /// Global in-flight cap; 0 derives ring.slots (the transport bound).
  size_t max_inflight_total = 0;
  /// A handle silent (no executed job, no ping) for this long is fenced
  /// by `SweepDeadHandles`.  Virtual-clock milliseconds.
  uint64_t handle_lease_ms = 30'000;
  Server::Options server;
};

/// \brief Host: `ws::Server` + job ring + handle registry.
class Host {
 public:
  Host(const nf2::Catalog* catalog, nf2::InstanceStore* store,
       HostOptions options);
  ~Host();

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // --- handle lifecycle --------------------------------------------

  /// Registers a new handle under the current incarnation.
  HandleInfo Attach();
  /// Associates an OS process with a handle: the dead-handle sweep then
  /// probes the PID (`kill(pid, 0)` → ESRCH) and fences the handle the
  /// moment the process is gone — no lease timeout needed, and the
  /// reclaim may safely cover kTaking strands (the owner provably has no
  /// live thread inside TakeResponse).  0 unbinds.
  Status BindPid(uint64_t handle_id, int64_t pid);
  /// Post-restart re-registration: a known, un-fenced handle gets a
  /// fresh epoch under the new incarnation; a fenced one stays rejected
  /// with kFenced (it must Attach anew and re-check its data out).
  Result<HandleInfo> Reattach(uint64_t handle_id);
  Status Detach(uint64_t handle_id);

  // --- transport (called by Handle) --------------------------------

  /// Admission control + publish.  Rejects zombies/fenced handles with
  /// kFenced and over-cap submits with kShed *before* touching the ring.
  Result<size_t> Submit(const HandleInfo& who, uint64_t job_id,
                        std::string_view request,
                        PublishFault fault = PublishFault::kNone);
  /// Response pickup; decrements the handle's in-flight count.
  Result<std::string> Take(const HandleInfo& who, size_t slot,
                           uint64_t job_id);

  // --- draining ----------------------------------------------------

  /// Executes published jobs until the ring is quiet; returns the count
  /// executed.  An injected host crash (`ws.host.crash`,
  /// `ws.ring.consume`) surfaces as the error status — the job strands
  /// and only `CrashAndRestart` recovers it.
  Result<size_t> Drain();
  /// Executes at most one job; false when none was published.
  Result<bool> Step();

  /// Worker threads parked on the ring's futex-style wait.
  void StartWorkers(int n);
  void StopWorkers();
  bool workers_running() const;

  // --- robustness --------------------------------------------------

  /// Fences every handle silent past `handle_lease_ms` — or whose bound
  /// PID is verifiably dead (see BindPid), with no lease wait — and
  /// reclaims its ring slots, then runs the server's lease sweep (the
  /// dead client's check-outs have stopped renewing — the existing
  /// reclamation path releases their locks and bumps the root epochs).
  /// Returns the number of handles fenced by this pass.
  size_t SweepDeadHandles();

  /// Host process death + restart: workers are assumed stopped (or are
  /// stopped here), the server recovers from stable storage, the ring
  /// is reinitialized, and a new incarnation begins — all live handles
  /// must Reattach; un-reattached ones submit as zombies (kFenced).
  Status CrashAndRestart();

  // --- observability -----------------------------------------------

  Server& server() { return server_; }
  const Server& server() const { return server_; }
  ShmRing& ring() { return ring_; }
  /// Non-OK when the ring transport failed to initialize (shm backends:
  /// segment creation failed).  A host with a dead ring still serves
  /// nothing — callers must check after construction.
  const Status& ring_status() const { return ring_.init_status(); }
  uint64_t incarnation() const;
  const HostOptions& options() const { return options_; }

  struct HandleView {
    uint64_t handle_id = 0;
    uint64_t epoch = 0;
    bool fenced = false;
    bool stale = false;  ///< attached to a previous incarnation
    size_t inflight = 0;
    uint64_t sheds = 0;  ///< jobs shed at this handle's in-flight cap
    uint64_t last_seen_ms = 0;
    int64_t pid = 0;  ///< bound OS process (0 = none)
  };
  std::vector<HandleView> HandleTable() const;
  size_t LiveHandles() const;
  size_t TotalInFlight() const;

 private:
  struct HandleEntry {
    uint64_t epoch = 1;
    bool fenced = false;
    bool stale = false;
    size_t inflight = 0;
    uint64_t sheds = 0;
    uint64_t last_seen_ms = 0;
    int64_t pid = 0;
    /// Set when the fencing decision saw the bound PID dead: the reclaim
    /// may then cover kTaking strands too.
    bool pid_dead = false;
  };

  /// Executes one consumed job against the server and completes the
  /// slot.  The frame's handle epoch is re-checked first: a job from a
  /// since-fenced handle is answered kFenced without touching the
  /// server (its in-flight abort path).
  void ExecuteJob(const ShmRing::Job& job);
  std::string RunJob(const wire::Request& req, uint64_t handle_id);
  void NoteSalvaged(const std::vector<ShmRing::SalvagedFrame>& salvaged);
  void WorkerLoop();

  const HostOptions options_;
  Server server_;
  ShmRing ring_;

  mutable Mutex mu_;
  std::map<uint64_t, HandleEntry> handles_ CODLOCK_GUARDED_BY(mu_);
  uint64_t next_handle_id_ CODLOCK_GUARDED_BY(mu_) = 1;
  uint64_t incarnation_ CODLOCK_GUARDED_BY(mu_) = 1;
  size_t total_inflight_ CODLOCK_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> workers_;
  std::atomic<bool> stop_workers_{false};
  std::atomic<bool> workers_running_{false};
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_HOST_H_
