/// \file shm_ring.h
/// \brief Fixed-slot SPMC job ring: the shared-memory transport between
/// client handles and the host's worker threads.
///
/// ROADMAP open item 2 (the oidadb `edbl` host/handle split): client
/// *processes* publish job frames into a fixed array of slots that host
/// workers drain.  The ring state is a flat POD image — control block,
/// then `slots × (head | payload | response)` at fixed 64-byte-aligned
/// strides — living either on the heap (`RingBackend::kInProcess`, the
/// default for unit tests and the deterministic scheduler) or inside a
/// real `shm_open` segment (`kShmCreate`/`kShmAttach`, see
/// shm_segment.h).  Both backends run the *same* protocol code; only the
/// memory's origin and the wait primitive differ.  None of the parties
/// can be trusted to finish what they started:
///
///  * every frame is **CRC-stamped** over its payload, so a client that
///    dies mid-write leaves a *torn frame* the consumer detects and
///    salvages (slot freed, `ring_salvaged_frames` counted) instead of a
///    garbage job it executes;
///  * slot ownership moves through a small state machine of atomic words
///    (`kFree → kWriting → kPublished → kExecuting → kDone → kTaking →
///    kFree`), every transition a CAS — a crashed party simply leaves its
///    slot parked in whatever state it reached, and reclamation
///    (`ReclaimHandleSlots`, `Reset`) moves it back to `kFree` with the
///    loss accounted;
///  * wait/wake is **futex-style** through `util/futex.h`: the slot state
///    words are the futex words for `WaitDone`, and a doorbell sequence
///    word in the control block is the futex word for `WaitForPublished`
///    (read the sequence, re-check the predicate, wait on the old value —
///    no lost wakeups).  In-process rings park on annotated
///    `Mutex`/`CondVar` buckets so thread-safety analysis and the model
///    checker still see the blocking; shm rings use `futex(2)` (or the
///    `PTHREAD_PROCESS_SHARED` fallback) so waits cross process
///    boundaries.
///
/// The ring is transport only: admission control (who may publish) and
/// job execution live in `ws::Host`; serialization of requests/responses
/// lives in `ws::wire` (handle.h).
#ifndef CODLOCK_WS_SHM_RING_H_
#define CODLOCK_WS_SHM_RING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/futex.h"
#include "util/metrics.h"
#include "util/result.h"
#include "ws/shm_segment.h"

namespace codlock::ws {

/// Lifecycle of one ring slot.  Stored in an atomic word per slot; every
/// transition is a CAS, so a party that dies mid-protocol strands the
/// slot in a recoverable state instead of corrupting a neighbour's.
enum class SlotState : uint32_t {
  kFree = 0,   ///< claimable by a producer
  kWriting,    ///< producer owns it (a crash here strands the slot)
  kPublished,  ///< frame complete (or torn!), waiting for a consumer
  kExecuting,  ///< worker owns it (a host crash here loses the job)
  kDone,       ///< response written, waiting for the producer to take it
  kTaking,     ///< producer copying the response out
};

std::string_view SlotStateName(SlotState state);

/// Where the ring memory lives.
enum class RingBackend : uint8_t {
  kInProcess = 0,  ///< heap buffer, single address space (default)
  kShmCreate,      ///< create a fresh shm segment and own its name
  kShmAttach,      ///< attach to an existing segment (client process)
};

/// Which wait primitive parks blocked parties (see util/futex.h).
enum class RingWait : uint8_t {
  kAuto = 0,    ///< in-process → CondVar buckets; shm → futex(2)
  kInProcess,   ///< force the Mutex/CondVar buckets (TSA/mc visible)
  kFutex,       ///< force futex(2)
  kSharedCond,  ///< force the PTHREAD_PROCESS_SHARED fallback
};

struct RingOptions {
  size_t slots = 64;
  /// Maximum frame payload (request or response) in bytes; oversized
  /// publishes fail with kInvalidArgument, they never truncate.
  size_t payload_capacity = 4096;
  RingBackend backend = RingBackend::kInProcess;
  RingWait wait = RingWait::kAuto;
  /// Segment name for the shm backends ("/codlock-...").
  std::string shm_name;
  /// kShmCreate: incarnation stamped into the superblock.
  /// kShmAttach: expected incarnation (0 = accept any) — a mismatch
  /// fails the attach with kFenced (zombie process, host restarted).
  uint64_t incarnation = 0;

  /// Convenience for client processes attaching to a host's segment.
  static RingOptions AttachTo(std::string name, uint64_t expected_incarnation) {
    RingOptions o;
    o.backend = RingBackend::kShmAttach;
    o.shm_name = std::move(name);
    o.incarnation = expected_incarnation;
    return o;
  }
};

/// Injected producer-side failure for one Publish call.  Both the fault
/// points (`ws.ring.publish`, `ws.ring.torn_frame`) and the fleet chaos
/// driver route through this, so deterministic sweeps and probabilistic
/// chaos exercise the same code path.
enum class PublishFault : uint8_t {
  kNone = 0,
  /// The client dies after the CRC stamp but before the payload is fully
  /// copied: the frame publishes with a payload that does not match its
  /// CRC (the classic torn shared-memory write).
  kTornFrame,
  /// The client dies while the slot is still kWriting: the slot stays
  /// stranded until the dead-handle sweep reclaims it.
  kDieMidWrite,
};

/// Frame metadata stored alongside the payload.  `handle_epoch` lets the
/// executing host re-check the publishing handle's fencing epoch at
/// consume time (the handle may have been fenced between publish and
/// execute).
struct FrameHeader {
  uint64_t handle_id = 0;
  uint64_t handle_epoch = 0;
  uint64_t job_id = 0;
  uint32_t payload_size = 0;
  uint32_t crc = 0;
};

/// Which stranded states a dead-handle reclaim may free (beyond the
/// always-safe kWriting/kPublished/kDone).  `taking` is safe only when
/// the owner is *known dead* (SIGKILLed process, verified by the PID
/// reaper) — a merely-fenced in-process handle could still be inside
/// TakeResponse.  `executing` is safe only when no worker can still be
/// running the job (workers stopped, or post-mortem analysis).
struct ReclaimScope {
  bool taking = false;
  bool executing = false;
};

/// \brief The fixed-slot SPMC job ring.
class ShmRing {
 public:
  explicit ShmRing(RingOptions options);
  ~ShmRing();

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  /// OK when the ring memory is usable.  The shm backends can fail to
  /// create/attach (errno context, kFenced on a stale incarnation,
  /// kCorrupt on a mangled superblock); every public operation on a
  /// failed ring returns this status (or its boolean equivalent).
  const Status& init_status() const { return init_status_; }

  // --- producer (client handle) side -------------------------------

  /// Claims a free slot, writes the frame (CRC-stamped over \p payload)
  /// and publishes it.  Returns the slot index.  Fails with kShed when
  /// no slot is free (transport backpressure — admission control in the
  /// host normally sheds first) and kInvalidArgument on oversized
  /// payloads.  \p fault injects a producer death (see PublishFault);
  /// kDieMidWrite returns an injected-crash status with the slot left
  /// stranded in kWriting.
  Result<size_t> Publish(const FrameHeader& header, std::string_view payload,
                         PublishFault fault = PublishFault::kNone);

  /// True while `slot` holds a done job of `job_id`.
  bool Done(size_t slot, uint64_t job_id) const;

  /// Copies the response out and frees the slot.  Fails with kNotFound
  /// when the slot no longer carries `job_id` (it was reclaimed and
  /// possibly reused) and kFailedPrecondition when the job is not done
  /// yet.
  Result<std::string> TakeResponse(size_t slot, uint64_t job_id);

  /// Parks until `slot`/`job_id` reaches kDone, is reclaimed, or
  /// \p timeout_us elapses.  Returns true when the response is ready.
  /// Futex-waits on the slot's state word itself.
  bool WaitDone(size_t slot, uint64_t job_id, uint64_t timeout_us);

  // --- consumer (host worker) side ---------------------------------

  struct Job {
    size_t slot = 0;
    FrameHeader header;
    std::string payload;
  };
  /// A frame whose CRC did not match its payload: the writer died
  /// mid-write.  The slot has been salvaged (freed); the host uses the
  /// handle id to fix up its in-flight accounting.
  struct SalvagedFrame {
    size_t slot = 0;
    uint64_t handle_id = 0;
    uint64_t job_id = 0;
  };

  /// Claims the next published frame (rotating scan for fairness) and
  /// validates its CRC.  Torn frames are salvaged, appended to
  /// \p salvaged (when non-null) and skipped.  Returns kNotFound when no
  /// published frame remains.
  Result<Job> Consume(std::vector<SalvagedFrame>* salvaged = nullptr);

  /// Writes the response and moves the slot to kDone, waking the
  /// producer parked on the state word.  Returns false when the slot was
  /// reclaimed out from under the worker (dead handle) or the response
  /// exceeds the payload capacity — the job is then accounted as
  /// reclaimed-while-executing and the response dropped.
  bool Complete(size_t slot, std::string_view response);

  /// Parks until a published frame exists, \p stop becomes true, or
  /// \p timeout_us elapses.  Returns true when a frame may be available.
  /// Futex-waits on the published-doorbell sequence word.
  bool WaitForPublished(uint64_t timeout_us, const std::atomic<bool>* stop);
  /// Wakes every parked waiter (worker shutdown, reclaim).
  void WakeAll();

  // --- reclamation / recovery --------------------------------------

  /// Frees every slot owned by \p handle_id reachable under \p scope:
  /// kWriting strands, unconsumed publishes and untaken responses
  /// always; kTaking/kExecuting only when the scope says the owner (or
  /// the executing worker) is provably gone.  Returns the number of
  /// slots freed.
  size_t ReclaimHandleSlots(uint64_t handle_id, ReclaimScope scope = {});

  /// Host crash: the ring memory is reinitialized in place.  Every slot
  /// is freed whatever its state; in-flight work is gone (accounted as
  /// reclaimed/aborted in the counters, which survive — they model the
  /// sim's observability, not ring memory).
  void Reset();

  /// Stamps a new host incarnation into the segment superblock (shm
  /// create backend; no-op OK in-process).  Attaches carrying the old
  /// incarnation are fenced from then on.
  Status StampIncarnation(uint64_t incarnation);

  // --- cross-process run gate --------------------------------------

  /// A go/stop word in the shared control block: forked children park on
  /// it until the parent opens the gate (and the parent can flip it back
  /// to stop publishing storms).  0 = hold, anything else = run.
  uint32_t run_state() const;
  void SetRunState(uint32_t value);
  /// Parks until `run_state() >= value` or \p timeout_us elapses;
  /// returns the gate value seen last.
  uint32_t WaitRunStateAtLeast(uint32_t value, uint64_t timeout_us);

  // --- crash hooks (chaos harness) ---------------------------------

  /// Invoked at named protocol points ("publish.claimed",
  /// "publish.stamped", "publish.copied", "publish.published",
  /// "consume.claimed", "take.taking").  The procchaos children install
  /// `kill(getpid(), SIGKILL)` here to die at an exact protocol state;
  /// nullptr disables (default).  Not thread-safe against concurrent
  /// ring use — install before starting traffic.
  void SetCrashHook(std::function<void(std::string_view)> hook) {
    crash_hook_ = std::move(hook);
  }

  // --- observability -----------------------------------------------

  size_t slots() const { return options_.slots; }
  size_t payload_capacity() const { return options_.payload_capacity; }
  RingBackend backend() const { return options_.backend; }
  const std::string& shm_name() const { return options_.shm_name; }
  /// Incarnation carried by the segment superblock (0 in-process).
  uint64_t incarnation() const;
  SlotState StateOf(size_t slot) const;
  /// Handle last recorded as owning \p slot (stale once the slot is
  /// kFree again — read the state first).  Post-mortem checkers use this
  /// to attribute strands to dead handles.
  uint64_t OwnerOf(size_t slot) const;
  /// Number of slots not currently kFree.
  size_t InFlight() const;

  /// Cumulative event counters (survive Reset — they are the sweep's
  /// accounting ledger).  Shared across processes in the shm backends:
  /// a child's publishes and takes land in the same ledger the host
  /// asserts against.  Conservation at quiescence (ring empty):
  ///   published == consumed + salvaged + reclaimed_published
  ///   consumed  == completed + reclaimed_executing
  ///   completed == taken + reclaimed_done
  struct Counters {
    uint64_t published = 0;
    uint64_t consumed = 0;
    uint64_t completed = 0;
    uint64_t taken = 0;
    uint64_t salvaged = 0;
    uint64_t torn_writes = 0;          ///< injected torn publishes
    uint64_t crashed_writes = 0;       ///< injected die-mid-write strands
    uint64_t reclaimed_writing = 0;    ///< kWriting strands freed
    uint64_t reclaimed_published = 0;  ///< unconsumed frames freed
    uint64_t reclaimed_executing = 0;  ///< jobs lost to a host crash
    uint64_t reclaimed_done = 0;       ///< untaken responses freed
    uint64_t Reclaimed() const {
      return reclaimed_writing + reclaimed_published + reclaimed_executing +
             reclaimed_done;
    }
  };
  Counters counters() const;

  /// Mirrors ring events (published/consumed/salvaged) into \p stats.
  /// The host re-points this at the rebuilt lock manager's stats after
  /// every restart; nullptr detaches.  Host-local, never shared.
  void SetStats(LockStats* stats) {
    stats_.store(stats, std::memory_order_release);
  }

 private:
  /// Per-slot fixed head; lives at the start of each slot stride in the
  /// shared image.  Plain fields (`header`, `response_size`) are
  /// published by the release CAS/store on `state` and read after an
  /// acquire load of it.
  struct SlotHead {
    std::atomic<uint32_t> state{0};
    uint32_t response_size = 0;
    /// Owning handle, stored right after the kFree→kWriting claim so
    /// reclamation can attribute the slot without touching the (plain)
    /// header while a writer may still own it.
    std::atomic<uint64_t> owner{0};
    /// Job id of the current occupant; producers verify it before taking
    /// a response (the slot may have been reclaimed and reused).
    std::atomic<uint64_t> job_stamp{0};
    FrameHeader header;
  };

  /// Shared control block at the start of the ring image.
  struct RingCtrl;

  enum CounterIdx : size_t {
    kCtrPublished = 0,
    kCtrConsumed,
    kCtrCompleted,
    kCtrTaken,
    kCtrSalvaged,
    kCtrTornWrites,
    kCtrCrashedWrites,
    kCtrReclaimedWriting,
    kCtrReclaimedPublished,
    kCtrReclaimedExecuting,
    kCtrReclaimedDone,
    kNumCounters,
  };

  void InitInProcess();
  Status InitShmCreate();
  Status InitShmAttach();
  void InitImage();  ///< placement-construct ctrl + slots in base_

  RingCtrl* ctrl() const;
  SlotHead& HeadOf(size_t slot) const;
  uint8_t* PayloadOf(size_t slot) const;
  uint8_t* ResponseOf(size_t slot) const;

  bool CasState(SlotHead& s, SlotState from, SlotState to);
  void FreeSlot(SlotHead& s);
  /// Futex wake on a slot's state word (producer parked in WaitDone).
  void WakeSlot(SlotHead& s);
  /// Bump + wake the published doorbell.
  void RingDoorbell();
  void Bump(CounterIdx idx);
  void CrashPoint(std::string_view point) {
    if (crash_hook_) crash_hook_(point);
  }
  LockStats* stats() const { return stats_.load(std::memory_order_acquire); }

  RingOptions options_;
  Status init_status_;
  futex::Backend wait_backend_ = futex::Backend::kInProcess;

  /// Ring image: ctrl block + slot array.  Either heap_ or segment_.
  uint8_t* base_ = nullptr;
  std::unique_ptr<uint8_t[]> heap_;
  ShmSegment segment_;
  size_t slot_stride_ = 0;
  size_t payload_stride_ = 0;

  /// Rotating scan cursors (fairness, not correctness; process-local).
  std::atomic<size_t> publish_cursor_{0};
  std::atomic<size_t> consume_cursor_{0};

  std::atomic<LockStats*> stats_{nullptr};
  std::function<void(std::string_view)> crash_hook_;
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_SHM_RING_H_
