/// \file shm_ring.h
/// \brief Fixed-slot SPMC job ring: the shared-memory transport between
/// client handles and the host's worker threads.
///
/// ROADMAP open item 2 (the oidadb `edbl` host/handle split): client
/// *processes* publish job frames into a fixed array of slots that host
/// workers drain.  This in-process model keeps the exact shared-memory
/// discipline a real mmap'd ring would need, because none of the parties
/// can be trusted to finish what they started:
///
///  * every frame is **CRC-stamped** over its payload, so a client that
///    dies mid-write leaves a *torn frame* the consumer detects and
///    salvages (slot freed, `ring_salvaged_frames` counted) instead of a
///    garbage job it executes;
///  * slot ownership moves through a small state machine of atomic words
///    (`kFree → kWriting → kPublished → kExecuting → kDone → kTaking →
///    kFree`), every transition a CAS — a crashed party simply leaves its
///    slot parked in whatever state it reached, and reclamation
///    (`ReclaimHandleSlots`, `Reset`) moves it back to `kFree` with the
///    loss accounted;
///  * wait/wake is **futex-style**: the slot state words are the futex
///    words; publishers wake parked consumers, completers wake parked
///    producers.  (An annotated `Mutex`/`CondVar` stands in for the futex
///    syscall so the blocking is visible to thread-safety analysis and
///    the deterministic scheduler.)
///
/// The ring is transport only: admission control (who may publish) and
/// job execution live in `ws::Host`; serialization of requests/responses
/// lives in `ws::wire` (handle.h).
#ifndef CODLOCK_WS_SHM_RING_H_
#define CODLOCK_WS_SHM_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.h"
#include "util/mutex.h"
#include "util/result.h"

namespace codlock::ws {

/// Lifecycle of one ring slot.  Stored in an atomic word per slot; every
/// transition is a CAS, so a party that dies mid-protocol strands the
/// slot in a recoverable state instead of corrupting a neighbour's.
enum class SlotState : uint32_t {
  kFree = 0,   ///< claimable by a producer
  kWriting,    ///< producer owns it (a crash here strands the slot)
  kPublished,  ///< frame complete (or torn!), waiting for a consumer
  kExecuting,  ///< worker owns it (a host crash here loses the job)
  kDone,       ///< response written, waiting for the producer to take it
  kTaking,     ///< producer copying the response out
};

std::string_view SlotStateName(SlotState state);

struct RingOptions {
  size_t slots = 64;
  /// Maximum frame payload (request or response) in bytes; oversized
  /// publishes fail with kInvalidArgument, they never truncate.
  size_t payload_capacity = 4096;
};

/// Injected producer-side failure for one Publish call.  Both the fault
/// points (`ws.ring.publish`, `ws.ring.torn_frame`) and the fleet chaos
/// driver route through this, so deterministic sweeps and probabilistic
/// chaos exercise the same code path.
enum class PublishFault : uint8_t {
  kNone = 0,
  /// The client dies after the CRC stamp but before the payload is fully
  /// copied: the frame publishes with a payload that does not match its
  /// CRC (the classic torn shared-memory write).
  kTornFrame,
  /// The client dies while the slot is still kWriting: the slot stays
  /// stranded until the dead-handle sweep reclaims it.
  kDieMidWrite,
};

/// Frame metadata stored alongside the payload.  `handle_epoch` lets the
/// executing host re-check the publishing handle's fencing epoch at
/// consume time (the handle may have been fenced between publish and
/// execute).
struct FrameHeader {
  uint64_t handle_id = 0;
  uint64_t handle_epoch = 0;
  uint64_t job_id = 0;
  uint32_t payload_size = 0;
  uint32_t crc = 0;
};

/// \brief The fixed-slot SPMC job ring.
class ShmRing {
 public:
  explicit ShmRing(RingOptions options);

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  // --- producer (client handle) side -------------------------------

  /// Claims a free slot, writes the frame (CRC-stamped over \p payload)
  /// and publishes it.  Returns the slot index.  Fails with kShed when
  /// no slot is free (transport backpressure — admission control in the
  /// host normally sheds first) and kInvalidArgument on oversized
  /// payloads.  \p fault injects a producer death (see PublishFault);
  /// kDieMidWrite returns an injected-crash status with the slot left
  /// stranded in kWriting.
  Result<size_t> Publish(const FrameHeader& header, std::string_view payload,
                         PublishFault fault = PublishFault::kNone);

  /// True while `slot` holds an undone job of `job_id` (kWriting..kDone).
  bool Done(size_t slot, uint64_t job_id) const;

  /// Copies the response out and frees the slot.  Fails with kNotFound
  /// when the slot no longer carries `job_id` (it was reclaimed and
  /// possibly reused) and kFailedPrecondition when the job is not done
  /// yet.
  Result<std::string> TakeResponse(size_t slot, uint64_t job_id);

  /// Parks until `slot`/`job_id` reaches kDone, is reclaimed, or
  /// \p timeout_us elapses.  Returns true when the response is ready.
  bool WaitDone(size_t slot, uint64_t job_id, uint64_t timeout_us);

  // --- consumer (host worker) side ---------------------------------

  struct Job {
    size_t slot = 0;
    FrameHeader header;
    std::string payload;
  };
  /// A frame whose CRC did not match its payload: the writer died
  /// mid-write.  The slot has been salvaged (freed); the host uses the
  /// handle id to fix up its in-flight accounting.
  struct SalvagedFrame {
    size_t slot = 0;
    uint64_t handle_id = 0;
    uint64_t job_id = 0;
  };

  /// Claims the next published frame (rotating scan for fairness) and
  /// validates its CRC.  Torn frames are salvaged, appended to
  /// \p salvaged (when non-null) and skipped.  Returns kNotFound when no
  /// published frame remains.
  Result<Job> Consume(std::vector<SalvagedFrame>* salvaged = nullptr);

  /// Writes the response and moves the slot to kDone, waking producers.
  void Complete(size_t slot, std::string_view response);

  /// Parks until a published frame exists, \p stop becomes true, or
  /// \p timeout_us elapses.  Returns true when a frame may be available.
  bool WaitForPublished(uint64_t timeout_us, const std::atomic<bool>* stop);
  /// Wakes every parked consumer (worker shutdown).
  void WakeAll();

  // --- reclamation / recovery --------------------------------------

  /// Frees every slot owned by \p handle_id that is not currently
  /// executing (kWriting strands, unconsumed publishes, untaken
  /// responses).  kExecuting slots finish via Complete and are picked up
  /// by the next sweep pass.  Returns the number of slots freed.
  size_t ReclaimHandleSlots(uint64_t handle_id);

  /// Host crash: the shared memory is reinitialized.  Every slot is
  /// freed whatever its state; in-flight work is gone (accounted as
  /// reclaimed/aborted in the counters, which survive — they model the
  /// sim's observability, not ring memory).
  void Reset();

  // --- observability -----------------------------------------------

  size_t slots() const { return options_.slots; }
  size_t payload_capacity() const { return options_.payload_capacity; }
  SlotState StateOf(size_t slot) const;
  /// Number of slots not currently kFree.
  size_t InFlight() const;

  /// Cumulative event counters (survive Reset — they are the sweep's
  /// accounting ledger).  Conservation at quiescence (ring empty):
  ///   published == consumed + salvaged + reclaimed_published
  ///   consumed  == completed + reclaimed_executing
  ///   completed == taken + reclaimed_done
  struct Counters {
    uint64_t published = 0;
    uint64_t consumed = 0;
    uint64_t completed = 0;
    uint64_t taken = 0;
    uint64_t salvaged = 0;
    uint64_t torn_writes = 0;          ///< injected torn publishes
    uint64_t crashed_writes = 0;       ///< injected die-mid-write strands
    uint64_t reclaimed_writing = 0;    ///< kWriting strands freed
    uint64_t reclaimed_published = 0;  ///< unconsumed frames freed
    uint64_t reclaimed_executing = 0;  ///< jobs lost to a host crash
    uint64_t reclaimed_done = 0;       ///< untaken responses freed
    uint64_t Reclaimed() const {
      return reclaimed_writing + reclaimed_published + reclaimed_executing +
             reclaimed_done;
    }
  };
  Counters counters() const;

  /// Mirrors ring events (published/consumed/salvaged) into \p stats.
  /// The host re-points this at the rebuilt lock manager's stats after
  /// every restart; nullptr detaches.
  void SetStats(LockStats* stats) {
    stats_.store(stats, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<uint32_t> state{static_cast<uint32_t>(SlotState::kFree)};
    /// Owning handle, stored right after the kFree→kWriting claim so
    /// reclamation can attribute the slot without touching the (plain)
    /// header while a writer may still own it.
    std::atomic<uint64_t> owner{0};
    /// Job id of the current occupant; producers verify it before taking
    /// a response (the slot may have been reclaimed and reused).
    std::atomic<uint64_t> job_stamp{0};
    FrameHeader header;
    std::string payload;
    std::string response;
  };

  bool CasState(Slot& s, SlotState from, SlotState to);
  void FreeSlot(Slot& s);
  LockStats* stats() const { return stats_.load(std::memory_order_acquire); }

  const RingOptions options_;
  std::unique_ptr<Slot[]> slots_;
  /// Rotating scan cursors (fairness, not correctness).
  std::atomic<size_t> publish_cursor_{0};
  std::atomic<size_t> consume_cursor_{0};

  std::atomic<LockStats*> stats_{nullptr};

  /// Futex stand-in: parked waiters for kPublished / kDone transitions.
  mutable Mutex wait_mu_;
  CondVar published_cv_;
  CondVar done_cv_;

  mutable Mutex counters_mu_;
  Counters counters_ CODLOCK_GUARDED_BY(counters_mu_);
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_SHM_RING_H_
