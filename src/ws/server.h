/// \file server.h
/// \brief Workstation–server environment: check-out / check-in with long
/// locks surviving crashes.
///
/// §1/§3.1: "different users or user groups may check-out complex objects
/// of a central database onto workstations.  Data which are checked out
/// can be regarded (at least temporarily) as private, local databases.  A
/// check-in back into the central database may be done for data which have
/// been changed on a workstation." — and "long locks must survive system
/// shutdowns and system crashes."
///
/// The `Server` wires the whole stack (lock manager, transaction manager,
/// lock graph, the paper's protocol, planner, executor) over a shared
/// catalog + instance store, persists long locks to a `LongLockStore` on
/// every check-out/check-in, and can simulate a crash: the volatile lock
/// manager is rebuilt, short transactions lose everything, long
/// (conversational) transactions are recovered with their locks intact.

#ifndef CODLOCK_WS_SERVER_H_
#define CODLOCK_WS_SERVER_H_

#include <memory>
#include <unordered_map>

#include "authz/authz.h"
#include "lock/long_lock_store.h"
#include "proto/co_protocol.h"
#include "query/executor.h"
#include "query/planner.h"
#include "txn/txn_manager.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

namespace codlock::ws {

/// How a workstation checks data out (§5 cites [LoPl83, KSUW85] for
/// special workstation–server lock modes; these are the three classic
/// check-out disciplines of design databases).
enum class CheckOutMode : uint8_t {
  /// Update-in-place: long X locks; check-in writes back.
  kExclusive,
  /// Read-only copy: long S locks; others may read concurrently.
  kShared,
  /// Derivation [KLMP84]: long S locks on the original; check-in creates
  /// a *new* complex object (a derived version) instead of modifying the
  /// original — many workstations can derive from the same object
  /// concurrently.
  kDerive,
};

std::string_view CheckOutModeName(CheckOutMode mode);

/// \brief Handle to a checked-out data set (a "private database" on a
/// workstation).
struct CheckOutTicket {
  lock::TxnId txn = lock::kInvalidTxn;
  authz::UserId user = authz::kInvalidUser;
  CheckOutMode mode = CheckOutMode::kExclusive;
  query::Query query;
  query::QueryResult data;  ///< what was copied to the workstation
};

/// \brief The central database server.
class Server {
 public:
  struct Options {
    query::LockPlanner::Options planner;
    proto::ComplexObjectProtocol::Options protocol;
    lock::LockManager::Options lock_manager;
    /// When non-empty, long locks are persisted to this file on every
    /// check-out/check-in (crash-consistent, see `LongLockStore`) and
    /// `CrashAndRestart` recovers from the *file* rather than from the
    /// in-memory snapshot.  An existing file is loaded at construction so
    /// generations continue across server instances.
    std::string storage_path;
    /// Retry/backoff for `RunShortTxn`: deadlock victims, timeouts,
    /// wounds and shed requests are re-run transparently (the abort cause
    /// and each re-run are counted in the lock manager's stats).
    RetryPolicy retry;
  };

  Server(const nf2::Catalog* catalog, nf2::InstanceStore* store,
         Options options);
  Server(const nf2::Catalog* catalog, nf2::InstanceStore* store)
      : Server(catalog, store, Options()) {}

  /// Checks out \p query's data for \p user under a *long* transaction.
  /// The acquired long locks are persisted to stable storage.
  /// `kExclusive` follows the query's declared access kind; `kShared` and
  /// `kDerive` force read (S) locks.
  Result<CheckOutTicket> CheckOut(authz::UserId user,
                                  const query::Query& query,
                                  CheckOutMode mode);
  Result<CheckOutTicket> CheckOut(authz::UserId user,
                                  const query::Query& query) {
    return CheckOut(user, query, CheckOutMode::kExclusive);
  }

  /// Checks in a `kDerive` ticket: inserts the workstation's derived
  /// version as a NEW complex object keyed \p new_key into the ticket's
  /// relation (the original stays untouched), then commits the long
  /// transaction.  \p derived must validate against the relation schema.
  Result<nf2::ObjectId> CheckInDerived(const CheckOutTicket& ticket,
                                       const std::string& new_key,
                                       nf2::Value derived);

  /// Checks the ticket's data back in: re-executes the query's writes on
  /// the central database (the workstation's changes), commits the long
  /// transaction and releases its locks.
  Status CheckIn(const CheckOutTicket& ticket);

  /// Abandons a check-out without applying changes.
  Status CancelCheckOut(const CheckOutTicket& ticket);

  /// Simulates a server crash + restart: blocked lock waits are drained
  /// (they fail with kAborted), the lock manager and transaction manager
  /// are rebuilt; short transactions are gone; long locks and their
  /// transactions are recovered from stable storage (the backing file
  /// when one is configured).  Recovered long locks whose transaction has
  /// no live check-out ticket are reaped — nobody could ever release
  /// them.  Returns the first recovery error (restore conflicts); the
  /// server is still usable, with whatever was recovered.
  Status CrashAndRestart();

  /// Runs a regular (short) transaction executing \p query.
  Result<query::QueryResult> RunShortTxn(authz::UserId user,
                                         const query::Query& query);

  lock::LockManager& lock_manager() { return *lm_; }
  txn::TxnManager& txn_manager() { return *txns_; }
  authz::AuthorizationManager& authorization() { return authz_; }
  const logra::LockGraph& graph() const { return graph_; }
  const lock::LongLockStore& stable_storage() const { return long_store_; }
  query::LockPlanner& planner() { return *planner_; }

  /// Number of live (recovered or active) long transactions.
  size_t ActiveLongTxns() const;

 private:
  void RebuildEngine();

  /// Saves the long locks to stable storage (fault point `ws/persist`).
  Status PersistLongLocks();

  const nf2::Catalog* catalog_;
  nf2::InstanceStore* store_;
  Options options_;
  logra::LockGraph graph_;
  authz::AuthorizationManager authz_;
  txn::UndoLog undo_;
  lock::LongLockStore long_store_;
  query::Statistics stats_;

  // Volatile components, rebuilt on crash.
  std::unique_ptr<lock::LockManager> lm_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::unique_ptr<proto::ComplexObjectProtocol> protocol_;
  std::unique_ptr<query::LockPlanner> planner_;
  std::unique_ptr<query::QueryExecutor> executor_;

  mutable Mutex tickets_mu_;
  /// Users of live long (check-out) transactions, re-adopted after a crash.
  std::unordered_map<lock::TxnId, authz::UserId> long_txn_users_
      CODLOCK_GUARDED_BY(tickets_mu_);
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_SERVER_H_
