/// \file server.h
/// \brief Workstation–server environment: check-out / check-in with long
/// locks surviving crashes.
///
/// §1/§3.1: "different users or user groups may check-out complex objects
/// of a central database onto workstations.  Data which are checked out
/// can be regarded (at least temporarily) as private, local databases.  A
/// check-in back into the central database may be done for data which have
/// been changed on a workstation." — and "long locks must survive system
/// shutdowns and system crashes."
///
/// The `Server` wires the whole stack (lock manager, transaction manager,
/// lock graph, the paper's protocol, planner, executor) over a shared
/// catalog + instance store, persists long locks to a `LongLockStore` on
/// every check-out/check-in, and can simulate a crash: the volatile lock
/// manager is rebuilt, short transactions lose everything, long
/// (conversational) transactions are recovered with their locks intact.

#ifndef CODLOCK_WS_SERVER_H_
#define CODLOCK_WS_SERVER_H_

#include <memory>
#include <unordered_map>

#include "authz/authz.h"
#include "lock/long_lock_store.h"
#include "proto/co_protocol.h"
#include "query/executor.h"
#include "query/planner.h"
#include "txn/txn_manager.h"
#include "util/mutex.h"
#include "util/retry.h"
#include "util/thread_annotations.h"
#include "ws/lease.h"

namespace codlock::ws {

/// How a workstation checks data out (§5 cites [LoPl83, KSUW85] for
/// special workstation–server lock modes; these are the three classic
/// check-out disciplines of design databases).
enum class CheckOutMode : uint8_t {
  /// Update-in-place: long X locks; check-in writes back.
  kExclusive,
  /// Read-only copy: long S locks; others may read concurrently.
  kShared,
  /// Derivation [KLMP84]: long S locks on the original; check-in creates
  /// a *new* complex object (a derived version) instead of modifying the
  /// original — many workstations can derive from the same object
  /// concurrently.
  kDerive,
};

std::string_view CheckOutModeName(CheckOutMode mode);

/// \brief Handle to a checked-out data set (a "private database" on a
/// workstation).
///
/// Besides the data, the ticket is the workstation's *liveness token*: it
/// names the lease deadline the workstation must renew against and carries
/// the fencing epochs of its checked-out roots.  Check-in, renewal and
/// session resume all present the ticket; a stale fencing epoch (the lease
/// was reclaimed, the data possibly re-granted) fails deterministically
/// with `StatusCode::kFenced`.
struct CheckOutTicket {
  lock::TxnId txn = lock::kInvalidTxn;
  authz::UserId user = authz::kInvalidUser;
  CheckOutMode mode = CheckOutMode::kExclusive;
  query::Query query;
  query::QueryResult data;  ///< what was copied to the workstation
  /// Virtual-clock lease deadline at grant; refreshed by `RenewLease` /
  /// `ResumeSession` (the returned ticket carries the new deadline).
  uint64_t lease_deadline_ms = 0;
  /// Reconnection window past the deadline (copied from the server's
  /// `LeaseOptions` so the workstation can pace its renewals).
  uint64_t lease_grace_ms = 0;
  /// Fencing token: checked-out roots with their grant-time epochs.
  std::vector<RootFence> fence;
};

/// \brief The central database server.
class Server {
 public:
  struct Options {
    query::LockPlanner::Options planner;
    proto::ComplexObjectProtocol::Options protocol;
    lock::LockManager::Options lock_manager;
    /// When non-empty, long locks are persisted to this file on every
    /// check-out/check-in (crash-consistent, see `LongLockStore`) and
    /// `CrashAndRestart` recovers from the *file* rather than from the
    /// in-memory snapshot.  An existing file is loaded at construction so
    /// generations continue across server instances.
    std::string storage_path;
    /// Retry/backoff for `RunShortTxn`: deadlock victims, timeouts,
    /// wounds and shed requests are re-run transparently (the abort cause
    /// and each re-run are counted in the lock manager's stats).
    RetryPolicy retry;
    /// Lease duration / grace window / expired-exclusive policy for
    /// check-outs (virtual-clock driven; see `ws/lease.h`).
    LeaseOptions lease;
  };

  Server(const nf2::Catalog* catalog, nf2::InstanceStore* store,
         Options options);
  Server(const nf2::Catalog* catalog, nf2::InstanceStore* store)
      : Server(catalog, store, Options()) {}

  /// Checks out \p query's data for \p user under a *long* transaction.
  /// The acquired long locks are persisted to stable storage.
  /// `kExclusive` follows the query's declared access kind; `kShared` and
  /// `kDerive` force read (S) locks.
  Result<CheckOutTicket> CheckOut(authz::UserId user,
                                  const query::Query& query,
                                  CheckOutMode mode);
  Result<CheckOutTicket> CheckOut(authz::UserId user,
                                  const query::Query& query) {
    return CheckOut(user, query, CheckOutMode::kExclusive);
  }

  /// Checks in a `kDerive` ticket: inserts the workstation's derived
  /// version as a NEW complex object keyed \p new_key into the ticket's
  /// relation (the original stays untouched), then commits the long
  /// transaction.  \p derived must validate against the relation schema.
  Result<nf2::ObjectId> CheckInDerived(const CheckOutTicket& ticket,
                                       const std::string& new_key,
                                       nf2::Value derived);

  /// Checks the ticket's data back in: re-executes the query's writes on
  /// the central database (the workstation's changes), commits the long
  /// transaction and releases its locks.
  Status CheckIn(const CheckOutTicket& ticket);

  /// Abandons a check-out without applying changes.
  Status CancelCheckOut(const CheckOutTicket& ticket);

  /// Heartbeat: extends the ticket's lease to now + duration.  Succeeds
  /// while the lease is active or inside its grace window; fails with
  /// kFenced when the ticket's fencing epochs are stale (the lease was
  /// reclaimed and the data possibly re-granted), kFailedPrecondition
  /// when expired/orphaned, kNotFound when the lease is already gone.
  Status RenewLease(const CheckOutTicket& ticket);

  /// Session recovery: a workstation that lost contact (its own reboot, a
  /// partition, a server crash) presents its old ticket and — if the
  /// lease is still within deadline + grace and the fencing epochs still
  /// match — receives a fresh ticket with a renewed lease and a re-read
  /// copy of the data.  Past the grace window (or once fenced) the
  /// session is unrecoverable and the workstation must check out anew.
  Result<CheckOutTicket> ResumeSession(const CheckOutTicket& ticket);

  /// Reclamation sweep (steppable; drive the clock, then call this):
  /// every lease past deadline + grace is reaped — kShared/kDerive and
  /// (under kReclaimAbort) kExclusive check-outs have their long
  /// transactions aborted and long locks released, and the fencing epoch
  /// of each checked-out root is bumped and persisted so the zombie
  /// workstation can never check in; kExclusive under kOrphanHold is
  /// marked orphaned and keeps its locks.  Returns the number of leases
  /// reaped (orphaned ones count — their lease did end).
  size_t SweepExpiredLeases();

  /// Simulates a server crash + restart: blocked lock waits are drained
  /// (they fail with kAborted), the lock manager and transaction manager
  /// are rebuilt; short transactions are gone; long locks and their
  /// transactions are recovered from stable storage (the backing file
  /// when one is configured).  Recovered long locks whose transaction has
  /// no live check-out ticket are reaped — nobody could ever release
  /// them.  Returns the first recovery error (restore conflicts); the
  /// server is still usable, with whatever was recovered.
  Status CrashAndRestart();

  /// Runs a regular (short) transaction executing \p query.
  Result<query::QueryResult> RunShortTxn(authz::UserId user,
                                         const query::Query& query);

  lock::LockManager& lock_manager() { return *lm_; }
  txn::TxnManager& txn_manager() { return *txns_; }
  authz::AuthorizationManager& authorization() { return authz_; }
  const logra::LockGraph& graph() const { return graph_; }
  const lock::LongLockStore& stable_storage() const { return long_store_; }
  query::LockPlanner& planner() { return *planner_; }

  /// The lease subsystem's time source; tests/sims advance it manually.
  VirtualClock& clock() { return clock_; }
  const LeaseManager& leases() const { return leases_; }

  /// Number of live (recovered or active) long transactions.
  size_t ActiveLongTxns() const;

  /// One row of the lease table (`codlock_dbtool leases`).
  struct LeaseView {
    lock::TxnId txn = lock::kInvalidTxn;
    authz::UserId user = authz::kInvalidUser;
    CheckOutMode mode = CheckOutMode::kExclusive;
    LeaseState state = LeaseState::kActive;
    uint64_t deadline_ms = 0;
    uint64_t renewals = 0;
    std::vector<RootFence> fence;        ///< roots + granted epochs
    std::vector<lock::ResourceId> held;  ///< long locks currently held
  };

  /// Active check-out leases with their held long locks, ascending txn
  /// order (deterministic).
  std::vector<LeaseView> LeaseTable() const;

 private:
  void RebuildEngine();

  /// Saves the long locks to stable storage (fault point `ws/persist`).
  Status PersistLongLocks();

  /// Verifies the ticket's fencing epochs against stable storage.  Runs
  /// *first* in every ticket-presenting operation: a fenced ticket must
  /// fail before any lock or data is touched.  Fires `ws.checkin.fenced`
  /// and counts `fenced_checkins` on mismatch.
  Status CheckFence(const CheckOutTicket& ticket);

  /// The check-out's root resources: its long locks held in non-intention
  /// modes (S/SIX/X) — what the fencing epochs key on.
  std::vector<lock::ResourceId> RootsOf(lock::TxnId txn) const;

  const nf2::Catalog* catalog_;
  nf2::InstanceStore* store_;
  Options options_;
  logra::LockGraph graph_;
  authz::AuthorizationManager authz_;
  txn::UndoLog undo_;
  lock::LongLockStore long_store_;
  query::Statistics stats_;
  // Lease state is *server* state, not engine state: it survives
  // `CrashAndRestart` (leases are reissued, not forgotten — the outage
  // must not eat the workstations' renewal budget).
  VirtualClock clock_;
  LeaseManager leases_;

  // Volatile components, rebuilt on crash.
  std::unique_ptr<lock::LockManager> lm_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::unique_ptr<proto::ComplexObjectProtocol> protocol_;
  std::unique_ptr<query::LockPlanner> planner_;
  std::unique_ptr<query::QueryExecutor> executor_;

  /// Serializes whole-engine lifecycle transitions against the
  /// reclamation sweep: `SweepExpiredLeases` walks `lm_`/`txns_` and
  /// releases locks step by step, while `CrashAndRestart` (via
  /// `RebuildEngine`) destroys and re-creates those very objects.  A
  /// sweep running concurrently with a restart could otherwise abort a
  /// transaction in the dying engine and then release its locks again in
  /// the rebuilt one (a double release against a fresh grant).  Acquired
  /// before `tickets_mu_`; never taken by per-ticket operations.
  mutable Mutex lifecycle_mu_;
  mutable Mutex tickets_mu_;
  /// Users of live long (check-out) transactions, re-adopted after a crash.
  std::unordered_map<lock::TxnId, authz::UserId> long_txn_users_
      CODLOCK_GUARDED_BY(tickets_mu_);
};

}  // namespace codlock::ws

#endif  // CODLOCK_WS_SERVER_H_
