/// \file codlock.h
/// \brief Umbrella header for the codlock library.
///
/// codlock implements the lock technique for disjoint and non-disjoint
/// complex objects of Herrmann, Dadam, Küspert, Roman and Schlageter
/// (EDBT 1990), together with the substrates it needs (an extended-NF²
/// data model, a multi-granularity lock manager, transactions,
/// authorization, a workstation–server check-out layer) and the baselines
/// it is evaluated against.
///
/// Typical usage (see examples/quickstart.cpp for the full walk-through):
/// \code
///   sim::CellsFixture f = sim::BuildCellsEffectors();   // Fig. 1 schema
///   sim::Engine eng(f.catalog.get(), f.store.get());    // wire the stack
///   eng.authorization().Grant(user, f.cells, authz::Right::kModify);
///   auto result = eng.RunShortTxn(user, query::MakeQ2(f.cells));
/// \endcode

#ifndef CODLOCK_CODLOCK_H_
#define CODLOCK_CODLOCK_H_

#include "authz/authz.h"
#include "idx/key_index.h"
#include "lock/lock_manager.h"
#include "lock/long_lock_store.h"
#include "lock/mode.h"
#include "lock/resource.h"
#include "logra/lock_graph.h"
#include "nf2/schema.h"
#include "nf2/serialize.h"
#include "nf2/store.h"
#include "nf2/value.h"
#include "proto/co_protocol.h"
#include "proto/protocol.h"
#include "proto/sysr_protocol.h"
#include "proto/validator.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/planner.h"
#include "query/query.h"
#include "query/statistics.h"
#include "sim/engine.h"
#include "sim/fixtures.h"
#include "sim/harness.h"
#include "sim/open_workload.h"
#include "txn/txn_manager.h"
#include "txn/undo_log.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "ws/server.h"

#endif  // CODLOCK_CODLOCK_H_
