/// \file procfleet.h
/// \brief Fork-based multi-process chaos harness for the shm job ring.
///
/// The fleet driver (sim/fleet.h) chaoses *simulated* clients inside one
/// address space; this harness forks **real child processes** that attach
/// to the host's shm segment (`ShmRing::AttachTo`), publish real job
/// frames through the process-shared futex transport, and are SIGKILLed
/// at seeded protocol points (the ring's named crash hooks plus the
/// torn-write / die-mid-write publish faults).  No destructor, no signal
/// handler, no atexit runs in a killed child — exactly the failure the
/// slot state machine and the PID reaper claim to survive.
///
/// Flow: the parent builds a `ws::Host` over a fresh segment and
/// pre-attaches one handle per child, forks the children while still
/// single-threaded (no worker threads exist yet, so the children inherit
/// no locked mutexes), binds each child's PID to its handle, starts the
/// workers, and opens the cross-process run gate.  Children park on the
/// gate, then run their job script; crash-assigned children die at their
/// point.  The parent reaps zombies (`waitpid`) concurrently with the
/// dead-handle sweep — kill-0 only reports ESRCH after the wait, which
/// is the ordering the sweep documents.  Post-mortem it advances the
/// virtual clock past every lease, loops sweep+drain until quiescent,
/// and asserts the recovery invariants:
///
///  * **frame conservation** — the shared counter ledger balances;
///  * **no leaked slots** — `InFlight() == 0`, every strand reclaimed;
///  * **no leaked locks/leases** — the dead children's check-outs were
///    reclaimed by the lease sweep; the protocol validator is clean;
///  * **incarnation fencing** — an attach expecting a stale incarnation
///    fails with kFenced, before and after a host restart;
///  * **process accounting** — every crash-assigned child died by
///    SIGKILL, every clean child exited 0.
///
/// Violations are collected, not asserted, so the codlock_procchaos tool
/// can report all of them and exit non-zero.

#ifndef CODLOCK_SIM_PROCFLEET_H_
#define CODLOCK_SIM_PROCFLEET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace codlock::sim {

/// \brief Knobs for one multi-process chaos round.
struct ProcFleetConfig {
  /// Segment name ("/codlock-..."); uniquified per run by the tool.
  std::string shm_name = "/codlock-procchaos";
  /// Real child processes to fork.  Crash points are assigned cyclically
  /// (1 clean script + 7 crash kinds), so >= 8 exercises every one; the
  /// default kills 35 of 40 — past the 32-SIGKILL acceptance floor.
  size_t children = 40;
  /// Ping jobs per child (the crash, when assigned, fires mid-script).
  size_t jobs_per_child = 6;
  /// Every 3rd child also checks a cell out (and, if it survives, back
  /// in) so SIGKILLs leak real long locks + leases for the sweep.
  size_t ring_slots = 0;  ///< 0 = derive 2*children + 8
  size_t payload_capacity = 768;
  int workers = 2;
  uint64_t seed = 1;
  /// Wall-clock budget for one child's publish→take round trip (us).
  uint64_t child_wait_us = 5'000'000;
};

/// \brief Outcome of one round.
struct ProcFleetReport {
  size_t children_spawned = 0;
  size_t children_killed = 0;     ///< died by the assigned SIGKILL
  size_t children_exited_ok = 0;  ///< clean script, exit 0
  size_t sweep_rounds = 0;        ///< post-mortem sweeps until quiescent
  uint64_t frames_published = 0;
  uint64_t frames_completed = 0;
  uint64_t frames_salvaged = 0;
  uint64_t frames_reclaimed = 0;
  uint64_t handles_fenced = 0;
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  std::string Summary() const;
  std::string Json() const;
};

/// Runs one round: fork, chaos, reap, converge, assert.  Never throws;
/// every failure lands in `violations`.
ProcFleetReport RunProcFleet(const ProcFleetConfig& config);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_PROCFLEET_H_
