#include "sim/open_workload.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/metrics.h"

namespace codlock::sim {

std::string LatencyReport::Header() {
  std::ostringstream os;
  os << std::left << std::setw(34) << "configuration" << std::right
     << std::setw(11) << "offered" << std::setw(11) << "completed"
     << std::setw(8) << "failed" << std::setw(10) << "mean_ms" << std::setw(9)
     << "p50_ms" << std::setw(9) << "p95_ms" << std::setw(9) << "p99_ms"
     << std::setw(9) << "max_ms";
  return os.str();
}

std::string LatencyReport::Row(const std::string& label) const {
  std::ostringstream os;
  os << std::left << std::setw(34) << label << std::right << std::fixed
     << std::setprecision(0) << std::setw(11) << offered_tps()
     << std::setw(11) << completed_tps() << std::setw(8) << failed
     << std::setprecision(2) << std::setw(10) << mean_ms << std::setw(9)
     << p50_ms << std::setw(9) << p95_ms << std::setw(9) << p99_ms
     << std::setw(9) << max_ms;
  return os.str();
}

namespace {

struct Job {
  TxnScript script;
  uint64_t arrival_ns = 0;
};

}  // namespace

LatencyReport RunOpenWorkload(Engine& engine,
                              const OpenWorkloadConfig& config,
                              const TxnGenerator& generator) {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job> queue;
  bool closed = false;

  LatencyHistogram latency;
  std::atomic<uint64_t> completed{0}, failed{0};

  auto worker_fn = [&](int worker_id) {
    Rng rng(config.seed * 7919ULL + static_cast<uint64_t>(worker_id));
    while (true) {
      Job job;
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return closed || !queue.empty(); });
        if (queue.empty()) return;  // closed and drained
        job = std::move(queue.front());
        queue.pop_front();
      }
      bool done = false;
      for (int attempt = 0; attempt <= config.max_retries && !done;
           ++attempt) {
        txn::Transaction* txn =
            engine.txn_manager().Begin(job.script.user, txn::TxnKind::kShort);
        Status failure;
        for (const query::Query& q : job.script.queries) {
          Result<query::QueryResult> r = engine.RunQuery(*txn, q);
          if (!r.ok()) {
            failure = r.status();
            break;
          }
          if (job.script.work_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(job.script.work_us));
          }
        }
        if (failure.ok()) {
          engine.txn_manager().Commit(txn);
          engine.txn_manager().Forget(txn->id());
          latency.Record(MonotonicNanos() - job.arrival_ns);
          completed.fetch_add(1, std::memory_order_relaxed);
          done = true;
        } else {
          engine.txn_manager().Abort(txn);
          engine.txn_manager().Forget(txn->id());
          if (!failure.IsDeadlock() && !failure.IsTimeout() &&
              !failure.IsAborted()) {
            failed.fetch_add(1, std::memory_order_relaxed);
            done = true;
          } else if (attempt == config.max_retries) {
            failed.fetch_add(1, std::memory_order_relaxed);
          } else {
            uint64_t backoff_us =
                std::min<uint64_t>(100u << std::min(attempt, 7), 10'000u);
            std::this_thread::sleep_for(std::chrono::microseconds(
                backoff_us / 2 + rng.Uniform(backoff_us / 2 + 1)));
          }
        }
      }
    }
  };

  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.workers));
  for (int w = 0; w < config.workers; ++w) workers.emplace_back(worker_fn, w);

  // The arrival process: exponential inter-arrival times.
  Rng arrival_rng(config.seed);
  uint64_t arrived = 0;
  for (int i = 0; i < config.total_txns; ++i) {
    double u = arrival_rng.NextDouble();
    double gap_s = -std::log(1.0 - u) / config.arrival_rate_tps;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(static_cast<uint64_t>(gap_s * 1e9)));
    Job job;
    job.script = generator(0, i, arrival_rng);
    job.arrival_ns = MonotonicNanos();
    {
      std::lock_guard lk(mu);
      queue.push_back(std::move(job));
    }
    cv.notify_one();
    ++arrived;
  }
  {
    std::lock_guard lk(mu);
    closed = true;
  }
  cv.notify_all();
  for (std::thread& w : workers) w.join();

  LatencyReport report;
  report.arrived = arrived;
  report.completed = completed.load();
  report.failed = failed.load();
  report.elapsed_ns = wall.ElapsedNanos();
  report.mean_ms = latency.mean() / 1e6;
  report.p50_ms = static_cast<double>(latency.Quantile(0.50)) / 1e6;
  report.p95_ms = static_cast<double>(latency.Quantile(0.95)) / 1e6;
  report.p99_ms = static_cast<double>(latency.Quantile(0.99)) / 1e6;
  report.max_ms = static_cast<double>(latency.max()) / 1e6;
  return report;
}

}  // namespace codlock::sim
