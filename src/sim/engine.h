/// \file engine.h
/// \brief One-stop wiring of the whole stack for a chosen protocol and
/// granule policy.
///
/// Tests, examples and benchmarks all need the same assembly: lock graph,
/// lock manager, transaction manager, authorization, statistics, planner,
/// protocol, executor.  `Engine` builds it from an `EngineOptions`, so a
/// benchmark can run the identical workload under every
/// protocol × policy combination (the comparisons of §3 and §4.6).

#ifndef CODLOCK_SIM_ENGINE_H_
#define CODLOCK_SIM_ENGINE_H_

#include <memory>
#include <string>

#include "authz/authz.h"
#include "proto/co_protocol.h"
#include "proto/sysr_protocol.h"
#include "proto/validator.h"
#include "query/executor.h"
#include "query/planner.h"
#include "txn/txn_manager.h"

namespace codlock::sim {

/// Which lock protocol the engine runs.
enum class ProtocolChoice : uint8_t {
  kComplexObject,       ///< the paper's protocol with rule 4′
  kComplexObjectRule4,  ///< the paper's protocol with plain rule 4
  kSysRAllParents,      ///< traditional DAG, sound all-parents variant
  kSysRPathOnly,        ///< traditional DAG, unsound path-only variant
};

std::string_view ProtocolChoiceName(ProtocolChoice p);

struct EngineOptions {
  ProtocolChoice protocol = ProtocolChoice::kComplexObject;
  query::GranulePolicy policy = query::GranulePolicy::kOptimal;
  double escalation_threshold = 16.0;
  uint64_t lock_timeout_ms = 2'000;
  bool apply_writes = false;
  /// > 0: disable anticipation and escalate at run time instead (the
  /// [HDKS89] ablation, benchmark E5b).
  uint32_t runtime_escalation_threshold = 0;
  lock::LockManager::Options lock_manager;
};

/// \brief A fully wired engine over an externally owned catalog + store.
class Engine {
 public:
  Engine(const nf2::Catalog* catalog, nf2::InstanceStore* store,
         EngineOptions options);
  Engine(const nf2::Catalog* catalog, nf2::InstanceStore* store)
      : Engine(catalog, store, EngineOptions()) {}

  /// Plans and executes \p query within \p txn.
  Result<query::QueryResult> RunQuery(txn::Transaction& txn,
                                      const query::Query& query);

  /// Begins, executes and commits a short transaction around \p query;
  /// aborts (and reports the error) on lock failure.
  Result<query::QueryResult> RunShortTxn(authz::UserId user,
                                         const query::Query& query);

  lock::LockManager& lock_manager() { return *lm_; }
  txn::UndoLog& undo_log() { return undo_; }
  txn::TxnManager& txn_manager() { return *txns_; }
  authz::AuthorizationManager& authorization() { return authz_; }
  const logra::LockGraph& graph() const { return graph_; }
  query::LockPlanner& planner() { return *planner_; }
  query::QueryExecutor& executor() { return *executor_; }
  proto::LockProtocol& protocol() { return *protocol_; }
  proto::ProtocolValidator& validator() { return *validator_; }
  const query::Statistics& statistics() const { return stats_; }
  const EngineOptions& options() const { return options_; }

  /// Re-collects statistics (after bulk loading more data).
  void RefreshStatistics();

 private:
  const nf2::Catalog* catalog_;
  nf2::InstanceStore* store_;
  EngineOptions options_;
  logra::LockGraph graph_;
  authz::AuthorizationManager authz_;
  txn::UndoLog undo_;
  query::Statistics stats_;
  std::unique_ptr<lock::LockManager> lm_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::unique_ptr<proto::LockProtocol> protocol_;
  std::unique_ptr<query::LockPlanner> planner_;
  std::unique_ptr<query::QueryExecutor> executor_;
  std::unique_ptr<proto::ProtocolValidator> validator_;
};

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_ENGINE_H_
