/// \file harness.h
/// \brief Multithreaded workload harness and metric reporting.
///
/// The paper evaluates only qualitatively and names "simulations with
/// regard to the efficiency of the proposed technique" as future work
/// (§5).  This harness is that simulation: it runs a configurable
/// transaction mix on worker threads through an `Engine` and reports
/// throughput, blocking, overhead and abort metrics, which the E1–E9
/// benchmarks print per configuration.

#ifndef CODLOCK_SIM_HARNESS_H_
#define CODLOCK_SIM_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "query/query.h"
#include "sim/engine.h"
#include "util/retry.h"
#include "util/rng.h"

namespace codlock::sim {

/// \brief One transaction of a workload: the queries it executes and how
/// long it "thinks" between them (long transactions have big think times).
struct TxnScript {
  authz::UserId user = 1;
  std::vector<query::Query> queries;
  /// Simulated think/IO time per query, in microseconds, spent *while
  /// holding the query's locks* (sleeping, so unblocked transactions can
  /// use the CPU meanwhile — see RunWorkload).
  uint64_t work_us = 0;
};

/// Generates the \p index-th transaction for worker \p thread.
using TxnGenerator =
    std::function<TxnScript(int thread, int index, Rng& rng)>;

/// \brief Workload configuration.
struct WorkloadConfig {
  int threads = 4;
  int txns_per_thread = 50;
  uint64_t seed = 1;
  /// Abort-and-retry budget per transaction (deadlock victims retry).
  /// The effective policy is `retry` with `max_attempts = max_retries + 1`
  /// (kept as a separate knob for the existing benchmarks).
  int max_retries = 3;
  /// Backoff shape and which failures are retryable (max_attempts is
  /// overridden from `max_retries` above).
  RetryPolicy retry;
};

/// \brief Aggregated outcome of one workload run.
///
/// Accounting invariant (no transaction vanishes):
///   `submitted == committed + unresolved + other_errors`
/// — every submitted transaction either commits, exhausts its retry
/// budget on a retryable failure (`unresolved`), or hits a permanent
/// error.  `Reconciles()` checks it.
struct WorkloadReport {
  uint64_t submitted = 0;  ///< distinct transactions handed to workers
  uint64_t committed = 0;
  uint64_t deadlock_aborts = 0;
  uint64_t wound_aborts = 0;  ///< wound-wait preemptions (retried)
  uint64_t timeout_aborts = 0;
  uint64_t shed_aborts = 0;  ///< attempts rejected by overload shedding
  uint64_t retries = 0;      ///< re-runs after retryable aborts
  uint64_t unresolved = 0;   ///< retry budget exhausted (reported, not lost)
  uint64_t other_errors = 0;
  uint64_t queries_executed = 0;
  uint64_t values_read = 0;
  uint64_t values_written = 0;
  uint64_t elapsed_ns = 0;

  // Lock-manager statistics deltas over the run.
  uint64_t lock_requests = 0;
  uint64_t lock_waits = 0;
  uint64_t conflicts = 0;
  uint64_t compat_tests = 0;
  uint64_t upward_propagations = 0;
  uint64_t downward_propagations = 0;
  uint64_t parent_searches = 0;
  int64_t max_held_locks = 0;
  double mean_wait_us = 0.0;

  double throughput_tps() const {
    if (elapsed_ns == 0) return 0.0;
    return static_cast<double>(committed) * 1e9 /
           static_cast<double>(elapsed_ns);
  }
  /// Lock requests per committed transaction (the overhead axis of
  /// [RiSt77]'s granularity trade-off).
  double locks_per_txn() const {
    return committed == 0 ? 0.0
                          : static_cast<double>(lock_requests) /
                                static_cast<double>(committed);
  }

  /// True when the accounting invariant holds (see struct comment).
  bool Reconciles() const {
    return submitted == committed + unresolved + other_errors;
  }

  /// One-line summary for benchmark tables.
  std::string Row(const std::string& label) const;
  /// Header matching `Row`.
  static std::string Header();
};

/// Runs \p config.threads workers, each executing
/// \p config.txns_per_thread transactions produced by \p generator,
/// through \p engine.  Deadlock/timeout victims are retried up to
/// `max_retries` times; every attempt aborts or commits cleanly.
WorkloadReport RunWorkload(Engine& engine, const WorkloadConfig& config,
                           const TxnGenerator& generator);

/// Spins for approximately \p us microseconds (simulated work).
void SpinFor(uint64_t us);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_HARNESS_H_
