/// \file fixtures.h
/// \brief Shared schema/instance builders for tests, examples and benches.
///
/// `BuildCellsEffectors*` reproduces the paper's running example (Fig. 1):
/// a relation "cells" of manufacturing cells containing a set of
/// cell-objects and an ordered list of robots, each robot holding a set of
/// references into a shared relation "effectors" (the tool library) — the
/// canonical non-disjoint, non-recursive complex objects.
///
/// `BuildSynthetic*` generates parameterized schemas/instances for the
/// depth × sharing sweeps (benchmark E8).

#ifndef CODLOCK_SIM_FIXTURES_H_
#define CODLOCK_SIM_FIXTURES_H_

#include <memory>
#include <string>

#include "nf2/schema.h"
#include "nf2/store.h"
#include "util/rng.h"

namespace codlock::sim {

/// \brief The Fig. 1 database: ids of everything the examples reference.
struct CellsFixture {
  std::unique_ptr<nf2::Catalog> catalog;
  std::unique_ptr<nf2::InstanceStore> store;
  nf2::DatabaseId db = 0;
  nf2::SegmentId seg1 = 0;  ///< holds "cells"
  nf2::SegmentId seg2 = 0;  ///< holds "effectors"
  nf2::RelationId cells = 0;
  nf2::RelationId effectors = 0;
};

/// Parameters for populating the cells/effectors database.
struct CellsParams {
  int num_cells = 4;
  int c_objects_per_cell = 8;
  int robots_per_cell = 3;
  int num_effectors = 8;
  int effectors_per_robot = 2;
  uint64_t seed = 42;
};

/// Builds schema + instances of the paper's Fig. 1 example.
///
/// Cells are keyed "c1", "c2", ...; robots "r1", "r2", ... (unique across
/// cells); effectors "e1", "e2", ....  Each robot references
/// `effectors_per_robot` effectors chosen round-robin with a random
/// offset, so effectors are genuinely shared between robots and cells.
CellsFixture BuildCellsEffectors(const CellsParams& params);
CellsFixture BuildCellsEffectors();

/// Builds exactly the instance of Figures 6/7: one cell "c1" with
/// c_objects o1..o3 and robots r1 (→ e1, e2) and r2 (→ e2, e3), plus
/// effectors e1, e2, e3 — so Q2 (update r1) and Q3 (update r2) share
/// effector e2.
CellsFixture BuildFigure7Instance();

/// \brief A synthetic database for depth/sharing sweeps.
struct SyntheticFixture {
  std::unique_ptr<nf2::Catalog> catalog;
  std::unique_ptr<nf2::InstanceStore> store;
  nf2::RelationId main_relation = 0;    ///< "parts"
  nf2::RelationId shared_relation = 0;  ///< "library" (kInvalidRelation if sharing=0)
};

/// Parameters of the synthetic generator.
struct SyntheticParams {
  /// Nesting depth of the main relation's objects below the root tuple
  /// (each level is a set of tuples); >= 1.
  int depth = 3;
  /// Elements per collection at every level.
  int fanout = 4;
  /// References to shared library objects per innermost tuple
  /// (0 = fully disjoint complex objects).
  int refs_per_leaf = 1;
  /// Number of objects in the main relation.
  int num_objects = 16;
  /// Number of shared library objects.
  int num_shared = 8;
  uint64_t seed = 7;
};

SyntheticFixture BuildSynthetic(const SyntheticParams& params);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_FIXTURES_H_
