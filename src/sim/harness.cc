#include "sim/harness.h"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>
#include <thread>

#include "util/metrics.h"

namespace codlock::sim {

void SpinFor(uint64_t us) {
  if (us == 0) return;
  const uint64_t until = MonotonicNanos() + us * 1000;
  while (MonotonicNanos() < until) {
    // Busy-wait: models CPU work done while holding locks.
  }
}

std::string WorkloadReport::Header() {
  std::ostringstream os;
  os << std::left << std::setw(34) << "configuration" << std::right
     << std::setw(10) << "tps" << std::setw(9) << "commit" << std::setw(7)
     << "dlk" << std::setw(7) << "tmo" << std::setw(11) << "locks/txn"
     << std::setw(9) << "waits" << std::setw(10) << "conflict" << std::setw(11)
     << "wait_us" << std::setw(9) << "maxheld" << std::setw(14) << "up/down"
     << std::setw(10) << "scanned";
  return os.str();
}

std::string WorkloadReport::Row(const std::string& label) const {
  std::ostringstream os;
  os << std::left << std::setw(34) << label << std::right << std::fixed
     << std::setprecision(0) << std::setw(10) << throughput_tps()
     << std::setw(9) << committed << std::setw(7) << deadlock_aborts
     << std::setw(7) << timeout_aborts << std::setprecision(1)
     << std::setw(11) << locks_per_txn() << std::setw(9) << lock_waits
     << std::setw(10) << conflicts << std::setw(11) << mean_wait_us
     << std::setw(9) << max_held_locks << std::setw(14)
     << (std::to_string(upward_propagations) + "/" +
         std::to_string(downward_propagations))
     << std::setw(10) << parent_searches;
  return os.str();
}

WorkloadReport RunWorkload(Engine& engine, const WorkloadConfig& config,
                           const TxnGenerator& generator) {
  WorkloadReport report;
  std::atomic<uint64_t> committed{0}, deadlocks{0}, wounds{0}, timeouts{0},
      sheds{0}, retries{0}, unresolved{0}, errors{0};
  std::atomic<uint64_t> queries{0}, reads{0}, writes{0};

  RetryPolicy policy = config.retry;
  policy.max_attempts = config.max_retries + 1;

  LockStats& stats = engine.lock_manager().stats();
  // Total lock requests include per-txn cache hits (see metrics.h).
  const uint64_t req0 = stats.requests.value() + stats.cache_hits.value();
  const uint64_t waits0 = stats.waits.value();
  const uint64_t conf0 = stats.conflicts.value();
  const uint64_t compat0 = stats.compat_tests.value();
  const uint64_t up0 = stats.upward_propagations.value();
  const uint64_t down0 = stats.downward_propagations.value();
  const uint64_t scan0 = stats.parent_searches.value();

  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(config.threads));
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(config.seed * 1000003ULL + static_cast<uint64_t>(t));
      for (int i = 0; i < config.txns_per_thread; ++i) {
        TxnScript script = generator(t, i, rng);
        for (int attempt = 1;; ++attempt) {
          txn::Transaction* txn =
              engine.txn_manager().Begin(script.user, txn::TxnKind::kShort);
          Status failure;
          for (const query::Query& q : script.queries) {
            Result<query::QueryResult> r = engine.RunQuery(*txn, q);
            if (!r.ok()) {
              failure = r.status();
              break;
            }
            queries.fetch_add(1, std::memory_order_relaxed);
            reads.fetch_add(r->values_read, std::memory_order_relaxed);
            writes.fetch_add(r->values_written, std::memory_order_relaxed);
            if (script.work_us > 0) {
              // Think/IO time while holding locks.  Sleeping (rather than
              // spinning) keeps the measurement meaningful on machines
              // with few cores: transactions that are *not* blocked can
              // use the CPU, blocked ones cannot — which is exactly the
              // concurrency the protocols differ in.
              std::this_thread::sleep_for(
                  std::chrono::microseconds(script.work_us));
            }
          }
          if (failure.ok()) {
            engine.txn_manager().Commit(txn);
            engine.txn_manager().Forget(txn->id());
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          // Abort with cause: classifies into aborts_timeout /
          // aborts_deadlock / aborts_shed in the shared LockStats.
          engine.txn_manager().Abort(txn, failure);
          engine.txn_manager().Forget(txn->id());
          if (failure.IsDeadlock()) {
            deadlocks.fetch_add(1, std::memory_order_relaxed);
          } else if (failure.IsAborted()) {
            // Wound-wait preemption: retry like a deadlock victim.
            wounds.fetch_add(1, std::memory_order_relaxed);
          } else if (failure.IsTimeout()) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
          } else if (failure.IsShed()) {
            sheds.fetch_add(1, std::memory_order_relaxed);
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
            break;  // permanent failure, counted as such
          }
          if (!policy.ShouldRetry(failure, attempt)) {
            // Retry budget exhausted on a retryable failure: the
            // transaction is *reported* as unresolved, never silently
            // dropped (see WorkloadReport::Reconciles).
            unresolved.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          retries.fetch_add(1, std::memory_order_relaxed);
          engine.lock_manager().stats().retries.Add();
          // Exponential backoff with jitter: retried transactions get
          // *younger* ids, so without backoff wait-die-style policies
          // can livelock a restarting victim against a long holder.
          const uint64_t backoff_us = policy.BackoffUs(attempt, rng);
          if (backoff_us != 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(backoff_us));
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  report.elapsed_ns = wall.ElapsedNanos();
  report.submitted = static_cast<uint64_t>(config.threads) *
                     static_cast<uint64_t>(config.txns_per_thread);
  report.committed = committed.load();
  report.deadlock_aborts = deadlocks.load();
  report.wound_aborts = wounds.load();
  report.timeout_aborts = timeouts.load();
  report.shed_aborts = sheds.load();
  report.retries = retries.load();
  report.unresolved = unresolved.load();
  report.other_errors = errors.load();
  report.queries_executed = queries.load();
  report.values_read = reads.load();
  report.values_written = writes.load();
  report.lock_requests =
      stats.requests.value() + stats.cache_hits.value() - req0;
  report.lock_waits = stats.waits.value() - waits0;
  report.conflicts = stats.conflicts.value() - conf0;
  report.compat_tests = stats.compat_tests.value() - compat0;
  report.upward_propagations = stats.upward_propagations.value() - up0;
  report.downward_propagations = stats.downward_propagations.value() - down0;
  report.parent_searches = stats.parent_searches.value() - scan0;
  report.max_held_locks =
      stats.max_held_locks.load(std::memory_order_relaxed);
  report.mean_wait_us = stats.wait_ns.mean() / 1000.0;
  return report;
}

}  // namespace codlock::sim
