/// \file open_workload.h
/// \brief Open-system workload: Poisson arrivals + response-time report.
///
/// `RunWorkload` (harness.h) is a *closed* system: a fixed set of workers
/// issues the next transaction as soon as the previous one finishes, which
/// measures capacity.  Real workstation–server systems are *open*:
/// requests arrive on their own schedule whether or not earlier ones are
/// done, and what users feel is the *response time*.  The open harness
/// generates exponential inter-arrival times at a configurable rate,
/// dispatches them to a worker pool, and reports latency percentiles —
/// queueing delay included.  Blocking caused by coarse lock granules shows
/// up here as the classic hockey-stick latency curve (benchmark E11).

#ifndef CODLOCK_SIM_OPEN_WORKLOAD_H_
#define CODLOCK_SIM_OPEN_WORKLOAD_H_

#include <string>

#include "sim/harness.h"

namespace codlock::sim {

/// \brief Open-workload configuration.
struct OpenWorkloadConfig {
  /// Mean arrival rate (transactions per second, Poisson process).
  double arrival_rate_tps = 1000.0;
  /// Total number of transactions to generate.
  int total_txns = 500;
  /// Worker pool size (max in-flight transactions).
  int workers = 8;
  uint64_t seed = 1;
  int max_retries = 20;
};

/// \brief Response-time report of an open run.
struct LatencyReport {
  uint64_t arrived = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t elapsed_ns = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  double offered_tps() const {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(arrived) * 1e9 /
                                 static_cast<double>(elapsed_ns);
  }
  double completed_tps() const {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(completed) * 1e9 /
                                 static_cast<double>(elapsed_ns);
  }

  static std::string Header();
  std::string Row(const std::string& label) const;
};

/// Runs an open workload: transactions produced by \p generator arrive at
/// `config.arrival_rate_tps` and are executed by `config.workers` workers;
/// latency is measured from *arrival* to commit (queueing included).
LatencyReport RunOpenWorkload(Engine& engine,
                              const OpenWorkloadConfig& config,
                              const TxnGenerator& generator);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_OPEN_WORKLOAD_H_
