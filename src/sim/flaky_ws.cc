#include "sim/flaky_ws.h"

#include <unordered_map>

#include "proto/validator.h"
#include "util/rng.h"

namespace codlock::sim {

namespace {

/// One simulated workstation's lifecycle.
struct Workstation {
  enum class State : uint8_t {
    kIdle,    ///< no check-out
    kActive,  ///< holds a ticket and (mostly) renews its lease
    kDead,    ///< crashed/partitioned while holding a ticket
  };
  State state = State::kIdle;
  ws::CheckOutTicket ticket;
  /// The workstation abandoned an orphan-held exclusive ticket; its own
  /// cell's locks are stranded, so it may only use the shared pool.
  bool own_cell_stranded = false;
};

query::Query CellQuery(const CellsFixture& fx, int cell_index,
                       query::AccessKind kind) {
  query::Query q;
  q.name = "W" + std::to_string(cell_index + 1);
  q.relation = fx.cells;
  q.object_key = "c" + std::to_string(cell_index + 1);
  // The c_objects subtree is private to its cell (robots reference the
  // shared effectors; c_objects do not), so exclusive check-outs of
  // different cells are disjoint and the single-threaded driver can
  // never block on a lock wait.
  q.path = {nf2::PathStep::Field("c_objects")};
  q.kind = kind;
  return q;
}

/// Where an abandoned ticket's workstation goes: idle when the server
/// has let go of the transaction, dead (waiting for the sweep) while
/// its locks are still held.
void Abandon(ws::Server& server, Workstation& w) {
  Result<ws::LeaseRecord> lease = server.leases().Get(w.ticket.txn);
  if (!lease.ok()) {
    w.state = Workstation::State::kIdle;
    return;
  }
  if (lease->orphaned) {
    if (w.ticket.mode == ws::CheckOutMode::kExclusive) {
      w.own_cell_stranded = true;
    }
    w.state = Workstation::State::kIdle;
    return;
  }
  w.state = Workstation::State::kDead;
}

}  // namespace

std::string FlakyWsReport::Summary() const {
  std::string out;
  out += "checkouts=" + std::to_string(checkouts);
  out += " checkins=" + std::to_string(checkins);
  out += " cancels=" + std::to_string(cancels);
  out += " renewals=" + std::to_string(renewals);
  out += " renewal_failures=" + std::to_string(renewal_failures);
  out += " deaths=" + std::to_string(deaths);
  out += " resumes=" + std::to_string(resumes);
  out += " resume_failures=" + std::to_string(resume_failures);
  out += " zombie_ok=" + std::to_string(zombie_ok);
  out += " zombie_rejected=" + std::to_string(zombie_rejected);
  out += " reclaimed_leases=" + std::to_string(reclaimed_leases);
  out += " server_crashes=" + std::to_string(server_crashes);
  out += " sweeps=" + std::to_string(sweeps);
  out += " violations=" + std::to_string(violations.size());
  return out;
}

FlakyWsReport RunFlakyWorkstations(ws::Server& server,
                                   const CellsFixture& fixture,
                                   const FlakyWsConfig& config) {
  FlakyWsReport report;
  Rng rng(config.seed);
  std::vector<Workstation> fleet(static_cast<size_t>(config.workstations));
  const bool reclaim_abort = server.leases().options().exclusive_policy ==
                             ws::ExpiredExclusivePolicy::kReclaimAbort;

  // Fencing epochs must only ever grow, across sweeps and crashes alike.
  std::unordered_map<lock::ResourceId, uint64_t, lock::ResourceIdHash>
      max_epoch;
  auto check_epochs = [&](const char* when) {
    for (const lock::FenceEpochRecord& rec :
         server.stable_storage().FenceEpochs()) {
      uint64_t& seen = max_epoch[rec.root];
      if (rec.epoch < seen) {
        report.violations.push_back(
            std::string("fencing epoch of ") + rec.root.ToString() +
            " regressed from " + std::to_string(seen) + " to " +
            std::to_string(rec.epoch) + " " + when);
      }
      if (rec.epoch > seen) seen = rec.epoch;
    }
  };

  auto sweep = [&] {
    report.reclaimed_leases += server.SweepExpiredLeases();
    ++report.sweeps;
    check_epochs("after sweep");
    // A reclaimed ticket must not leave long locks behind.
    for (const Workstation& w : fleet) {
      if (w.state == Workstation::State::kIdle) continue;
      if (server.leases().Has(w.ticket.txn)) continue;
      if (!server.lock_manager().LocksOf(w.ticket.txn).empty()) {
        report.violations.push_back(
            "txn " + std::to_string(w.ticket.txn) +
            " still holds locks after its lease was reclaimed");
      }
    }
  };

  for (int tick = 0; tick < config.ticks; ++tick) {
    server.clock().AdvanceMs(config.tick_ms);

    if (rng.Bernoulli(config.p_server_crash)) {
      server.CrashAndRestart();
      ++report.server_crashes;
      check_epochs("after server crash");
    }

    for (size_t i = 0; i < fleet.size(); ++i) {
      Workstation& w = fleet[i];
      const authz::UserId user = static_cast<authz::UserId>(i + 1);
      switch (w.state) {
        case Workstation::State::kIdle: {
          if (!rng.Bernoulli(config.p_checkout)) break;
          // Exclusive on the owned cell; shared/derive on the pool.
          const bool exclusive =
              !w.own_cell_stranded && rng.Bernoulli(0.5);
          ws::CheckOutMode mode;
          int cell;
          if (exclusive) {
            mode = ws::CheckOutMode::kExclusive;
            cell = static_cast<int>(i);
          } else {
            mode = rng.Bernoulli(0.5) ? ws::CheckOutMode::kShared
                                      : ws::CheckOutMode::kDerive;
            cell = config.workstations +
                   static_cast<int>(rng.Uniform(
                       static_cast<uint64_t>(config.shared_cells)));
          }
          Result<ws::CheckOutTicket> t = server.CheckOut(
              user,
              CellQuery(fixture, cell,
                        exclusive ? query::AccessKind::kUpdate
                                  : query::AccessKind::kRead),
              mode);
          if (t.ok()) {
            w.ticket = *t;
            w.state = Workstation::State::kActive;
            ++report.checkouts;
          }
          break;
        }
        case Workstation::State::kActive: {
          if (rng.Bernoulli(config.p_die)) {
            w.state = Workstation::State::kDead;
            ++report.deaths;
            break;
          }
          if (rng.Bernoulli(config.p_checkin)) {
            // Shared/exclusive check in; derivations just cancel (the
            // sim does not build derived objects).
            Status done = w.ticket.mode == ws::CheckOutMode::kDerive
                              ? server.CancelCheckOut(w.ticket)
                              : server.CheckIn(w.ticket);
            if (done.ok()) {
              w.state = Workstation::State::kIdle;
              if (w.ticket.mode == ws::CheckOutMode::kDerive) {
                ++report.cancels;
              } else {
                ++report.checkins;
              }
            } else {
              Abandon(server, w);
            }
            break;
          }
          if (rng.Bernoulli(config.p_renew)) {
            Status renewed = server.RenewLease(w.ticket);
            if (renewed.ok()) {
              ++report.renewals;
            } else {
              ++report.renewal_failures;
              Abandon(server, w);
            }
          }
          break;
        }
        case Workstation::State::kDead: {
          if (rng.Bernoulli(config.p_resurrect)) {
            Result<ws::CheckOutTicket> resumed =
                server.ResumeSession(w.ticket);
            if (resumed.ok()) {
              w.ticket = *resumed;
              w.state = Workstation::State::kActive;
              ++report.resumes;
            } else {
              ++report.resume_failures;
              Abandon(server, w);
            }
            break;
          }
          if (rng.Bernoulli(config.p_zombie_op)) {
            // The zombie acts on its stale ticket.  Legal only while its
            // lease still stands (late check-in / orphan-hold); once the
            // lease is gone the attempt must fail.
            const bool lease_alive = server.leases().Has(w.ticket.txn);
            Status zombie = w.ticket.mode == ws::CheckOutMode::kDerive
                                ? server.CancelCheckOut(w.ticket)
                                : server.CheckIn(w.ticket);
            if (zombie.ok()) {
              if (!lease_alive) {
                report.violations.push_back(
                    "zombie check-in of txn " +
                    std::to_string(w.ticket.txn) +
                    " succeeded after its lease was reclaimed");
              }
              ++report.zombie_ok;
              w.state = Workstation::State::kIdle;
            } else {
              ++report.zombie_rejected;
              Abandon(server, w);
            }
          }
          break;
        }
      }
    }

    if (config.sweep_every_ticks > 0 &&
        (tick + 1) % config.sweep_every_ticks == 0) {
      sweep();
    }
  }

  // Drain: let every lease run out, reclaim, and check the end state.
  server.clock().AdvanceMs(server.leases().options().duration_ms +
                           server.leases().options().grace_ms + 1);
  sweep();
  if (reclaim_abort) {
    if (server.leases().size() != 0) {
      report.violations.push_back(
          "leases survived the final drain under reclaim-abort: " +
          std::to_string(server.leases().size()));
    }
    if (server.ActiveLongTxns() != 0) {
      report.violations.push_back(
          "long transactions survived the final drain: " +
          std::to_string(server.ActiveLongTxns()));
    }
  } else {
    for (const ws::LeaseRecord& rec : server.leases().Snapshot()) {
      if (!rec.orphaned) {
        report.violations.push_back(
            "non-orphaned lease of txn " + std::to_string(rec.txn) +
            " survived the final drain");
      }
    }
  }
  proto::ProtocolValidator validator(&server.graph(), fixture.store.get());
  for (const proto::Violation& v : validator.Check(server.lock_manager())) {
    report.violations.push_back("protocol validator: " + v.ToString());
  }
  return report;
}

}  // namespace codlock::sim
