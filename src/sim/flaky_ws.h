/// \file flaky_ws.h
/// \brief Flaky-workstation workload: check-outs under random deaths,
/// zombies and server crashes.
///
/// The closed/open harnesses stress the *short*-transaction path; this
/// workload stresses the workstation–server liveness machinery instead.
/// A fleet of simulated workstations checks cells out, renews leases,
/// dies without warning, comes back inside or outside the grace window,
/// and occasionally keeps acting on a reclaimed ticket (a zombie).  The
/// server is crashed and restarted mid-run.  Everything is driven by the
/// server's `VirtualClock` and a seeded `Rng`: a (seed, config) pair
/// replays the exact same history.
///
/// The run self-checks the lease protocol's safety properties and
/// reports violations instead of asserting, so the workload can be used
/// from tests, the fault sweeps and the chaos CI job alike:
///  * a check-in on a ticket whose lease was reclaimed must never
///    succeed (zombie fencing),
///  * a reclaimed check-out must not leave long locks behind,
///  * fencing epochs must never regress, not even across server crashes,
///  * after a final drain (clock advance + sweep), no lease and no long
///    transaction may survive under the reclaim-abort policy,
///  * the protocol validator must find the final grant set consistent.

#ifndef CODLOCK_SIM_FLAKY_WS_H_
#define CODLOCK_SIM_FLAKY_WS_H_

#include <string>
#include <vector>

#include "sim/fixtures.h"
#include "ws/server.h"

namespace codlock::sim {

/// \brief Flaky-workstation workload configuration.
///
/// The fixture must have at least `workstations + shared_cells` cells:
/// workstation i owns cell "c(i+1)" for its exclusive check-outs (so two
/// live workstations never contend on X locks and the single-threaded
/// driver cannot block); shared/derivation check-outs draw from the
/// `shared_cells` cells after the owned ones, under S locks.
struct FlakyWsConfig {
  int workstations = 8;
  int shared_cells = 4;
  int ticks = 300;
  uint64_t tick_ms = 1000;  ///< virtual-clock advance per tick
  uint64_t seed = 1;
  int sweep_every_ticks = 5;  ///< lease reclamation cadence

  // Per-tick Bernoulli probabilities of the state machine.
  double p_checkout = 0.5;      ///< idle → active
  double p_checkin = 0.15;      ///< active → idle (check-in / cancel)
  double p_renew = 0.7;         ///< active: heartbeat this tick
  double p_die = 0.04;          ///< active → dead (no goodbye)
  double p_resurrect = 0.25;    ///< dead: come back, try session resume
  double p_zombie_op = 0.15;    ///< dead: act on the stale ticket anyway
  double p_server_crash = 0.01; ///< server CrashAndRestart this tick
};

/// \brief Aggregated outcome of a flaky-workstation run.
struct FlakyWsReport {
  uint64_t checkouts = 0;
  uint64_t checkins = 0;
  uint64_t cancels = 0;
  uint64_t renewals = 0;
  uint64_t renewal_failures = 0;  ///< renew refused (expired/fenced/gone)
  uint64_t deaths = 0;
  uint64_t resumes = 0;           ///< sessions recovered in grace
  uint64_t resume_failures = 0;   ///< resume refused (fenced/expired/gone)
  uint64_t zombie_ok = 0;         ///< zombie check-in while lease alive (legal)
  uint64_t zombie_rejected = 0;   ///< zombie op refused (fenced/gone)
  uint64_t reclaimed_leases = 0;  ///< leases reaped by the sweep
  uint64_t server_crashes = 0;
  uint64_t sweeps = 0;

  /// Safety-property violations (empty = the run is sound).
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  std::string Summary() const;
};

/// Runs the workload against \p server (built over \p fixture).  The
/// server's clock is advanced `ticks * tick_ms` virtual milliseconds; at
/// the end the run drains: every lease is allowed to expire, a final
/// sweep reclaims them, and the final-state invariants are checked.
FlakyWsReport RunFlakyWorkstations(ws::Server& server,
                                   const CellsFixture& fixture,
                                   const FlakyWsConfig& config);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_FLAKY_WS_H_
