#include "sim/procfleet.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string_view>

#include "proto/validator.h"
#include "sim/fixtures.h"
#include "ws/handle.h"
#include "ws/host.h"
#include "ws/shm_ring.h"

namespace codlock::sim {

namespace {

/// Where an assigned child dies.  The hook points strand the slot in
/// exactly the state the reclaimer must handle; the two publish faults
/// model deaths the CRC (torn) and the owner stamp (mid-write) catch.
enum class CrashKind : uint8_t {
  kNone = 0,
  kTorn,         ///< publishes a CRC-mismatched frame, then dies
  kMidWrite,     ///< PublishFault::kDieMidWrite, then dies
  kAtClaimed,    ///< SIGKILL at "publish.claimed"
  kAtStamped,    ///< SIGKILL at "publish.stamped"
  kAtCopied,     ///< SIGKILL at "publish.copied"
  kAtPublished,  ///< SIGKILL at "publish.published"
  kAtTaking,     ///< SIGKILL at "take.taking"
};
constexpr size_t kNumCrashKinds = 8;

const char* HookPoint(CrashKind k) {
  switch (k) {
    case CrashKind::kAtClaimed:
      return "publish.claimed";
    case CrashKind::kAtStamped:
      return "publish.stamped";
    case CrashKind::kAtCopied:
      return "publish.copied";
    case CrashKind::kAtPublished:
      return "publish.published";
    case CrashKind::kAtTaking:
      return "take.taking";
    default:
      return nullptr;
  }
}

/// Everything a forked child needs; plain data captured before fork.
struct ChildPlan {
  size_t index = 0;
  std::string shm_name;
  uint64_t incarnation = 0;
  ws::HandleInfo info;
  CrashKind crash = CrashKind::kNone;
  size_t crash_at = 0;  ///< job index the crash fires on
  size_t jobs = 0;
  bool checkout = false;        ///< job 0 checks a cell out
  std::string checkout_frame;   ///< pre-encoded kCheckOut request
  uint64_t wait_us = 5'000'000;
};

/// Child exit codes (diagnosed by the parent for clean children).
enum ChildExit : int {
  kChildOk = 0,
  kChildAttachFailed = 3,
  kChildGateTimeout = 4,
  kChildPublishFailed = 5,
  kChildWaitDoneTimeout = 6,
  kChildTakeFailed = 7,
};

[[noreturn]] void DieNow() {
  kill(getpid(), SIGKILL);
  for (;;) pause();  // SIGKILL cannot be blocked; this never runs
}

/// Runs in the forked child.  Only the shared segment is touched — the
/// inherited Host/Server objects belong to the parent and are never
/// used.  Exits via _exit/SIGKILL only: no destructors, no atexit.
[[noreturn]] void ChildMain(const ChildPlan& plan) {
  ws::ShmRing ring(
      ws::RingOptions::AttachTo(plan.shm_name, plan.incarnation));
  if (!ring.init_status().ok()) _exit(kChildAttachFailed);
  if (ring.WaitRunStateAtLeast(1, 10'000'000) < 1) _exit(kChildGateTimeout);

  // Armed only for the crash job: kill(2) at the named protocol point.
  bool die_armed = false;
  const char* point = HookPoint(plan.crash);
  if (point != nullptr) {
    ring.SetCrashHook([&die_armed, point](std::string_view at) {
      if (die_armed && at == point) DieNow();
    });
  }

  ws::CheckOutTicket ticket;
  bool have_ticket = false;
  for (size_t k = 0; k < plan.jobs; ++k) {
    const bool crash_job = plan.crash != CrashKind::kNone && k == plan.crash_at;
    const uint64_t job_id = plan.index * 1'000 + k + 1;

    ws::wire::JobOp op = ws::wire::JobOp::kPing;
    std::string payload;
    if (plan.checkout && k == 0) {
      op = ws::wire::JobOp::kCheckOut;
      payload = plan.checkout_frame;
    } else if (have_ticket && k + 1 == plan.jobs && !crash_job) {
      op = ws::wire::JobOp::kCheckIn;
      payload = ws::wire::EncodeTicketRequest(ws::wire::JobOp::kCheckIn, ticket);
    } else {
      payload = ws::wire::EncodePingRequest();
    }

    ws::PublishFault fault = ws::PublishFault::kNone;
    if (crash_job) {
      switch (plan.crash) {
        case CrashKind::kTorn:
          fault = ws::PublishFault::kTornFrame;
          // A torn 1-byte ping whose slot last held an identical ping is
          // undetectably "un-torn" (the CRC still matches the leftover
          // byte); a fat distinctive payload guarantees the mismatch the
          // salvage path exists for.
          payload.assign(256, static_cast<char>('A' + plan.index % 26));
          break;
        case CrashKind::kMidWrite:
          fault = ws::PublishFault::kDieMidWrite;
          break;
        case CrashKind::kAtTaking:
          break;  // publish normally; die inside the take below
        default:
          die_armed = true;  // die inside the publish below
          break;
      }
    }

    ws::FrameHeader header;
    header.handle_id = plan.info.handle_id;
    header.handle_epoch = plan.info.epoch;
    header.job_id = job_id;
    Result<size_t> slot(0);
    for (int attempt = 0; attempt < 500; ++attempt) {
      slot = ring.Publish(header, payload, fault);
      if (slot.ok() || !slot.status().IsShed()) break;
      usleep(2'000);  // transport backpressure: dumb bounded retry
    }
    if (crash_job && plan.crash != CrashKind::kAtTaking) {
      // Torn/mid-write children die right after their broken publish;
      // hook children never reach here.
      DieNow();
    }
    if (!slot.ok()) _exit(kChildPublishFailed);
    if (!ring.WaitDone(*slot, job_id, plan.wait_us)) {
      _exit(kChildWaitDoneTimeout);
    }
    if (crash_job) die_armed = true;  // kAtTaking: die at "take.taking"
    Result<std::string> resp = ring.TakeResponse(*slot, job_id);
    if (!resp.ok()) _exit(kChildTakeFailed);
    if (op == ws::wire::JobOp::kCheckOut) {
      have_ticket = ws::wire::DecodeResponse(*resp, &ticket).ok();
    }
  }
  _exit(kChildOk);
}

query::Query ChildQuery(const CellsFixture& fx, size_t child_index) {
  query::Query q;
  q.name = "procchaos-" + std::to_string(child_index);
  q.relation = fx.cells;
  q.object_key = "c" + std::to_string(child_index + 1);
  q.path = {nf2::PathStep::Field("c_objects")};
  q.kind = query::AccessKind::kUpdate;
  return q;
}

void CheckConservation(const ws::ShmRing::Counters& c,
                       std::vector<std::string>* violations) {
  auto check = [&](uint64_t lhs, uint64_t rhs, const char* identity) {
    if (lhs != rhs) {
      violations->push_back(std::string("conservation: ") + identity + " (" +
                            std::to_string(lhs) + " != " +
                            std::to_string(rhs) + ")");
    }
  };
  check(c.published, c.consumed + c.salvaged + c.reclaimed_published,
        "published == consumed + salvaged + reclaimed_published");
  check(c.consumed, c.completed + c.reclaimed_executing,
        "consumed == completed + reclaimed_executing");
  check(c.completed, c.taken + c.reclaimed_done,
        "completed == taken + reclaimed_done");
}

}  // namespace

std::string ProcFleetReport::Summary() const {
  return "procfleet: spawned=" + std::to_string(children_spawned) +
         " killed=" + std::to_string(children_killed) +
         " clean=" + std::to_string(children_exited_ok) +
         " published=" + std::to_string(frames_published) +
         " completed=" + std::to_string(frames_completed) +
         " salvaged=" + std::to_string(frames_salvaged) +
         " reclaimed=" + std::to_string(frames_reclaimed) +
         " fenced=" + std::to_string(handles_fenced) +
         " sweep_rounds=" + std::to_string(sweep_rounds) +
         " violations=" + std::to_string(violations.size());
}

std::string ProcFleetReport::Json() const {
  std::string out = "{\"children_spawned\":" + std::to_string(children_spawned) +
                    ",\"children_killed\":" + std::to_string(children_killed) +
                    ",\"children_exited_ok\":" +
                    std::to_string(children_exited_ok) +
                    ",\"frames_published\":" + std::to_string(frames_published) +
                    ",\"frames_completed\":" + std::to_string(frames_completed) +
                    ",\"frames_salvaged\":" + std::to_string(frames_salvaged) +
                    ",\"frames_reclaimed\":" + std::to_string(frames_reclaimed) +
                    ",\"handles_fenced\":" + std::to_string(handles_fenced) +
                    ",\"sweep_rounds\":" + std::to_string(sweep_rounds) +
                    ",\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    for (char ch : violations[i]) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += "\"";
  }
  out += "]}";
  return out;
}

ProcFleetReport RunProcFleet(const ProcFleetConfig& config) {
  ProcFleetReport report;
  auto fail = [&](std::string msg) { report.violations.push_back(std::move(msg)); };

  // One cell per child so the check-out children never conflict — every
  // leaked lock at the end is a reclaim bug, not a timeout artifact.
  CellsParams cells;
  cells.num_cells = static_cast<int>(config.children) + 1;
  CellsFixture fx = BuildCellsEffectors(cells);

  ws::HostOptions opts;
  opts.ring.backend = ws::RingBackend::kShmCreate;
  opts.ring.shm_name = config.shm_name;
  opts.ring.slots = config.ring_slots != 0 ? config.ring_slots
                                           : 2 * config.children + 8;
  opts.ring.payload_capacity = config.payload_capacity;
  // Liveness comes from the PID probe here; the lease exists for the
  // silent-but-alive case, which this harness does not script.
  opts.handle_lease_ms = 3'600'000;
  opts.max_inflight_per_handle = config.jobs_per_child + 1;
  ws::Host host(fx.catalog.get(), fx.store.get(), opts);
  if (!host.ring_status().ok()) {
    fail("ring init: " + host.ring_status().ToString());
    return report;
  }
  const uint64_t incarnation = host.incarnation();

  // Plans are built (and their frames encoded) before any fork.
  std::vector<ChildPlan> plans(config.children);
  for (size_t i = 0; i < config.children; ++i) {
    ChildPlan& p = plans[i];
    p.index = i;
    p.shm_name = config.shm_name;
    p.incarnation = incarnation;
    p.info = host.Attach();
    p.crash = static_cast<CrashKind>(i % kNumCrashKinds);
    p.jobs = config.jobs_per_child;
    p.crash_at = p.jobs / 2;
    p.checkout = (i % 3) == 0;
    p.wait_us = config.child_wait_us;
    if (p.checkout) {
      p.checkout_frame = ws::wire::EncodeCheckOutRequest(
          static_cast<authz::UserId>(i + 1), ws::CheckOutMode::kExclusive,
          ChildQuery(fx, i));
    }
  }

  // Fork while single-threaded: StartWorkers comes after, so children
  // inherit no locked mutexes and no stray threads.
  fflush(nullptr);
  std::map<pid_t, size_t> child_of;
  for (size_t i = 0; i < config.children; ++i) {
    const pid_t pid = fork();
    if (pid == 0) ChildMain(plans[i]);  // never returns
    if (pid < 0) {
      fail("fork failed for child " + std::to_string(i));
      continue;
    }
    child_of[pid] = i;
    (void)host.BindPid(plans[i].info.handle_id, pid);
    ++report.children_spawned;
  }

  host.StartWorkers(config.workers);
  host.ring().SetRunState(1);

  // Reap zombies concurrently with the dead-handle sweep: kill-0 only
  // reports ESRCH once the zombie is waited, so the sweep interleaves
  // with (and depends on) this loop — which is exactly the production
  // ordering the sweep documents.
  std::vector<bool> killed(config.children, false);
  size_t unreaped = child_of.size();
  while (unreaped > 0) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      const size_t i = child_of.at(pid);
      --unreaped;
      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        killed[i] = true;
        ++report.children_killed;
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == kChildOk) {
        ++report.children_exited_ok;
      } else {
        fail("child " + std::to_string(i) + " failed with exit code " +
             std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1));
      }
      continue;  // drain further zombies before sleeping
    }
    report.handles_fenced += host.SweepDeadHandles();
    usleep(2'000);
  }

  // Process accounting: the assigned deaths happened, nothing else did.
  for (size_t i = 0; i < config.children; ++i) {
    const bool should_die = plans[i].crash != CrashKind::kNone;
    if (should_die && !killed[i]) {
      fail("child " + std::to_string(i) + " was assigned a crash but exited");
    }
    if (!should_die && killed[i]) {
      fail("clean child " + std::to_string(i) + " died by SIGKILL");
    }
  }

  // Post-mortem convergence: all children are reaped, so every dead PID
  // probes ESRCH.  Advance the virtual clock past every lease so the
  // dead check-outs fall to the lease sweep, then loop sweep+drain.
  host.server().clock().AdvanceMs(
      host.server().leases().options().duration_ms +
      host.server().leases().options().grace_ms + opts.handle_lease_ms + 1);
  bool quiescent = false;
  for (int round = 0; round < 10; ++round) {
    ++report.sweep_rounds;
    report.handles_fenced += host.SweepDeadHandles();
    (void)host.Drain();
    if (host.ring().InFlight() == 0 && host.server().ActiveLongTxns() == 0 &&
        host.server().leases().size() == 0) {
      quiescent = true;
      break;
    }
  }
  host.StopWorkers();

  if (!quiescent) {
    for (size_t s = 0; s < host.ring().slots(); ++s) {
      const ws::SlotState st = host.ring().StateOf(s);
      if (st == ws::SlotState::kFree) continue;
      fail("slot " + std::to_string(s) + " leaked in state " +
           std::string(ws::SlotStateName(st)) + " (owner handle " +
           std::to_string(host.ring().OwnerOf(s)) + ")");
    }
    if (host.server().ActiveLongTxns() != 0) {
      fail("leaked long transactions: " +
           std::to_string(host.server().ActiveLongTxns()));
    }
    if (host.server().leases().size() != 0) {
      fail("leaked leases: " + std::to_string(host.server().leases().size()));
    }
    if (report.violations.empty()) {
      fail("convergence loop never went quiescent");
    }
  }

  const ws::ShmRing::Counters c = host.ring().counters();
  CheckConservation(c, &report.violations);
  if (c.published == 0 || c.completed == 0) {
    fail("no traffic flowed — the harness proved nothing");
  }
  report.frames_published = c.published;
  report.frames_completed = c.completed;
  report.frames_salvaged = c.salvaged;
  report.frames_reclaimed = c.Reclaimed();

  proto::ProtocolValidator validator(&host.server().graph(), fx.store.get());
  for (const proto::Violation& v :
       validator.Check(host.server().lock_manager())) {
    fail("protocol validator: " + v.ToString());
  }

  // Incarnation fencing: a zombie expecting yesterday's incarnation is
  // fenced at the segment boundary — before and after a host restart.
  {
    ws::ShmRing stale(
        ws::RingOptions::AttachTo(config.shm_name, incarnation + 999));
    if (!stale.init_status().IsFenced()) {
      fail("stale-incarnation attach was not fenced: " +
           stale.init_status().ToString());
    }
    ws::ShmRing fresh(ws::RingOptions::AttachTo(config.shm_name, incarnation));
    if (!fresh.init_status().ok()) {
      fail("current-incarnation attach failed: " +
           fresh.init_status().ToString());
    }
  }
  Status restarted = host.CrashAndRestart();
  if (!restarted.ok()) {
    fail("host restart failed: " + restarted.ToString());
  } else {
    ws::ShmRing zombie(ws::RingOptions::AttachTo(config.shm_name, incarnation));
    if (!zombie.init_status().IsFenced()) {
      fail("pre-restart incarnation still attaches after restart: " +
           zombie.init_status().ToString());
    }
  }

  return report;
}

}  // namespace codlock::sim
