/// \file fleet.h
/// \brief Fleet chaos driver: many client handles through the host's
/// shared-memory job ring, under kill / wedge / zombie / torn-write /
/// host-crash chaos.
///
/// Where `flaky_ws` stresses the lease machinery by calling the server
/// directly, this driver goes through the full out-of-process path
/// (`ws::Handle` → job ring → `ws::Host` → `ws::Server`), so every
/// failure also exercises the transport: clients die with frames half
/// written (torn, salvaged by CRC), wedge without draining responses
/// (slots reclaimed by the dead-handle sweep), act as zombies on fenced
/// handles or across host incarnations (rejected `kFenced`), and the
/// host itself crashes and restarts mid-run.  Everything is driven by
/// the server's `VirtualClock` and a seeded `Rng` in steppable mode (no
/// threads, no sleeps): a (seed, config) pair replays exactly.
///
/// The run self-checks and reports violations instead of asserting:
///  * a submit from a fenced handle or a stale host incarnation must be
///    rejected with `kFenced`,
///  * a reclaimed check-out must not leave long locks behind,
///  * fencing epochs (server roots and handle epochs alike) must never
///    regress, not even across host crashes,
///  * after the final drain the ring must be empty and its counters must
///    satisfy the conservation identities (every published frame is
///    consumed, salvaged or reclaimed — none vanish),
///  * no lease and no long transaction may survive the final drain, and
///    the protocol validator must find the final grant set consistent.

#ifndef CODLOCK_SIM_FLEET_H_
#define CODLOCK_SIM_FLEET_H_

#include <string>
#include <vector>

#include "sim/fixtures.h"
#include "ws/host.h"

namespace codlock::sim {

/// \brief Fleet chaos configuration.
///
/// The fixture must have at least `owned_cells + shared_cells` cells:
/// client i < owned_cells exclusively checks out cell "c(i+1)" (two live
/// clients never contend on X locks, so the single-threaded steppable
/// driver cannot block); every other client draws kShared/kDerive
/// check-outs from the pool of `shared_cells` cells after the owned
/// ones.
struct FleetConfig {
  int clients = 1000;      ///< simulated client processes (handles)
  int owned_cells = 32;    ///< exclusive owners (must be <= clients)
  int shared_cells = 8;
  int ticks = 120;
  uint64_t tick_ms = 500;  ///< virtual-clock advance per tick
  uint64_t seed = 1;
  int sweep_every_ticks = 4;  ///< dead-handle + lease sweep cadence

  // Per-tick Bernoulli probabilities of the client state machine.
  double p_checkout = 0.10;       ///< idle → active
  double p_checkin = 0.20;        ///< active → idle (check-in / cancel)
  double p_renew = 0.50;          ///< active: heartbeat this tick
  double p_die = 0.02;            ///< active → dead (silent, no goodbye)
  double p_wedge = 0.01;          ///< active → wedged (publishes, never drains)
  double p_zombie_op = 0.10;      ///< dead/wedged: act on the stale state
  double p_torn_publish = 0.005;  ///< idle: die mid-write, frame torn
  double p_die_mid_publish = 0.005;  ///< idle: die in kWriting, slot strands
  double p_host_crash = 0.015;    ///< host CrashAndRestart this tick
  double p_reattach = 0.6;        ///< post-crash: reattach promptly

  ws::HostOptions host;

  FleetConfig() {
    // Fences must actually fire within a run: a client silent for ~8
    // virtual seconds is fenced, its lease reclaimed a sweep later.
    host.handle_lease_ms = 8'000;
    host.server.lease.duration_ms = 6'000;
    host.server.lease.grace_ms = 2'000;
    host.ring.slots = 128;
    host.max_inflight_per_handle = 4;
  }
};

/// \brief Aggregated outcome of a fleet chaos run.
struct FleetReport {
  uint64_t checkouts = 0;
  uint64_t checkins = 0;
  uint64_t cancels = 0;
  uint64_t renewals = 0;
  uint64_t renewal_failures = 0;
  uint64_t deaths = 0;
  uint64_t wedges = 0;
  uint64_t torn_publishes = 0;
  uint64_t stranded_publishes = 0;  ///< die-mid-write strands injected
  uint64_t zombie_rejected = 0;     ///< stale op refused (fenced/gone)
  uint64_t zombie_legal = 0;        ///< stale op inside its lease (legal)
  uint64_t sheds_seen = 0;          ///< admission-control rejections observed
  uint64_t shed_retries = 0;        ///< re-submissions after a shed
  uint64_t host_crashes = 0;
  uint64_t reattaches = 0;          ///< handles revalidated after a crash
  uint64_t respawns = 0;            ///< fenced clients that attached anew
  uint64_t handles_fenced = 0;      ///< fenced by the dead-handle sweep
  uint64_t sweeps = 0;

  /// Safety-property violations (empty = the run is sound).
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  std::string Summary() const;
};

/// Runs the fleet against \p host (built over \p fixture).  Steppable:
/// the driver's thread pumps the host; no workers, no wall-clock time.
FleetReport RunFleet(ws::Host& host, const CellsFixture& fixture,
                     const FleetConfig& config);

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_FLEET_H_
