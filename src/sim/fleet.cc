#include "sim/fleet.h"

#include <memory>
#include <unordered_map>

#include "proto/validator.h"
#include "util/rng.h"

namespace codlock::sim {

namespace {

/// One simulated client process: a handle plus its lifecycle state.
struct Client {
  enum class State : uint8_t {
    kIdle,    ///< attached, no check-out
    kActive,  ///< holds a ticket and (mostly) renews its lease
    kDead,    ///< process died silently (the sweep will fence it)
    kWedged,  ///< published a job, never drains the response
  };
  State state = State::kIdle;
  std::unique_ptr<ws::Handle> handle;
  ws::CheckOutTicket ticket;
  bool has_ticket = false;
  /// The client noticed its handle is fenced and must attach anew — but
  /// an exclusive owner may only do so once its old transaction's locks
  /// are verifiably gone (otherwise the fresh check-out of its own cell
  /// would block the single-threaded driver).
  bool respawn_pending = false;
};

query::Query CellQuery(const CellsFixture& fx, int cell_index,
                       query::AccessKind kind) {
  query::Query q;
  q.name = "F" + std::to_string(cell_index + 1);
  q.relation = fx.cells;
  q.object_key = "c" + std::to_string(cell_index + 1);
  // The c_objects subtree is private to its cell, so exclusive check-outs
  // of different cells are disjoint and the driver can never block.
  q.path = {nf2::PathStep::Field("c_objects")};
  q.kind = kind;
  return q;
}

}  // namespace

std::string FleetReport::Summary() const {
  std::string out;
  out += "checkouts=" + std::to_string(checkouts);
  out += " checkins=" + std::to_string(checkins);
  out += " cancels=" + std::to_string(cancels);
  out += " renewals=" + std::to_string(renewals);
  out += " renewal_failures=" + std::to_string(renewal_failures);
  out += " deaths=" + std::to_string(deaths);
  out += " wedges=" + std::to_string(wedges);
  out += " torn=" + std::to_string(torn_publishes);
  out += " stranded=" + std::to_string(stranded_publishes);
  out += " zombie_rejected=" + std::to_string(zombie_rejected);
  out += " zombie_legal=" + std::to_string(zombie_legal);
  out += " sheds=" + std::to_string(sheds_seen);
  out += " shed_retries=" + std::to_string(shed_retries);
  out += " host_crashes=" + std::to_string(host_crashes);
  out += " reattaches=" + std::to_string(reattaches);
  out += " respawns=" + std::to_string(respawns);
  out += " handles_fenced=" + std::to_string(handles_fenced);
  out += " sweeps=" + std::to_string(sweeps);
  out += " violations=" + std::to_string(violations.size());
  return out;
}

FleetReport RunFleet(ws::Host& host, const CellsFixture& fixture,
                     const FleetConfig& config) {
  FleetReport report;
  Rng rng(config.seed);
  ws::Server& server = host.server();

  auto make_handle = [&](size_t i, uint64_t era) {
    ws::HandleOptions opts;
    opts.seed = config.seed ^ (i * 0x9E3779B97F4A7C15ULL) ^ (era << 32);
    auto h = std::make_unique<ws::Handle>(&host, opts);
    (void)h->Attach();
    return h;
  };

  std::vector<Client> fleet(static_cast<size_t>(config.clients));
  for (size_t i = 0; i < fleet.size(); ++i) {
    fleet[i].handle = make_handle(i, 0);
  }

  // Shed/retry totals survive handle replacement: fold a handle's stats
  // into the report before dropping it.
  auto fold_handle_stats = [&](const ws::Handle& h) {
    report.sheds_seen += h.stats().sheds_seen;
    report.shed_retries += h.stats().retries;
  };

  // Server-root fencing epochs and handle epochs must only ever grow,
  // across sweeps and host crashes alike.
  std::unordered_map<lock::ResourceId, uint64_t, lock::ResourceIdHash>
      max_root_epoch;
  std::unordered_map<uint64_t, uint64_t> max_handle_epoch;
  auto check_epochs = [&](const char* when) {
    for (const lock::FenceEpochRecord& rec :
         server.stable_storage().FenceEpochs()) {
      uint64_t& seen = max_root_epoch[rec.root];
      if (rec.epoch < seen) {
        report.violations.push_back(
            "fencing epoch of " + rec.root.ToString() + " regressed from " +
            std::to_string(seen) + " to " + std::to_string(rec.epoch) + " " +
            when);
      }
      if (rec.epoch > seen) seen = rec.epoch;
    }
    for (const ws::Host::HandleView& row : host.HandleTable()) {
      uint64_t& seen = max_handle_epoch[row.handle_id];
      if (row.epoch < seen) {
        report.violations.push_back(
            "handle " + std::to_string(row.handle_id) +
            " epoch regressed from " + std::to_string(seen) + " to " +
            std::to_string(row.epoch) + " " + when);
      }
      if (row.epoch > seen) seen = row.epoch;
    }
  };

  auto sweep = [&] {
    report.handles_fenced += host.SweepDeadHandles();
    ++report.sweeps;
    check_epochs("after sweep");
    // A reclaimed check-out must not leave long locks behind.
    for (const Client& c : fleet) {
      if (!c.has_ticket) continue;
      if (server.leases().Has(c.ticket.txn)) continue;
      if (!server.lock_manager().LocksOf(c.ticket.txn).empty()) {
        report.violations.push_back(
            "txn " + std::to_string(c.ticket.txn) +
            " still holds locks after its lease was reclaimed");
      }
    }
  };

  // The client saw kFenced: its handle was fenced (respawn once safe) or
  // merely belongs to a dead host incarnation (reattach revalidates it).
  auto on_fenced = [&](Client& c) {
    if (c.handle->Attach().ok()) {
      ++report.reattaches;
      return;
    }
    c.respawn_pending = true;
  };

  auto try_respawn = [&](Client& c, size_t i, uint64_t era) {
    if (c.has_ticket) {
      // Wait until the dead incarnation's check-out is fully reclaimed.
      if (server.leases().Has(c.ticket.txn) ||
          !server.lock_manager().LocksOf(c.ticket.txn).empty()) {
        return;
      }
      c.has_ticket = false;
    }
    fold_handle_stats(*c.handle);
    c.handle = make_handle(i, era);
    c.respawn_pending = false;
    c.state = Client::State::kIdle;
    ++report.respawns;
  };

  for (int tick = 0; tick < config.ticks; ++tick) {
    server.clock().AdvanceMs(config.tick_ms);

    if (rng.Bernoulli(config.p_host_crash)) {
      host.CrashAndRestart();
      ++report.host_crashes;
      check_epochs("after host crash");
      // Some clients notice promptly and revalidate their handle; the
      // rest discover the new incarnation through a kFenced rejection.
      for (Client& c : fleet) {
        if (c.state == Client::State::kDead ||
            c.state == Client::State::kWedged || c.respawn_pending) {
          continue;
        }
        if (rng.Bernoulli(config.p_reattach) && c.handle->Attach().ok()) {
          ++report.reattaches;
        }
      }
    }

    for (size_t i = 0; i < fleet.size(); ++i) {
      Client& c = fleet[i];
      const authz::UserId user = static_cast<authz::UserId>(i + 1);
      const uint64_t era = static_cast<uint64_t>(tick) + 1;
      if (c.respawn_pending) {
        try_respawn(c, i, era);
        continue;
      }
      switch (c.state) {
        case Client::State::kIdle: {
          if (rng.Bernoulli(config.p_torn_publish)) {
            // Dies mid-write: the frame publishes torn (CRC mismatch)
            // and the consumer must salvage it, never execute it.
            Status s = c.handle->SubmitNoWait(
                ws::wire::JobOp::kPing, nullptr, ws::PublishFault::kTornFrame);
            if (s.ok()) ++report.torn_publishes;
            if (s.IsFenced()) {
              on_fenced(c);
              break;
            }
            c.state = Client::State::kDead;
            ++report.deaths;
            break;
          }
          if (rng.Bernoulli(config.p_die_mid_publish)) {
            // Dies in kWriting: the slot strands until the sweep fences
            // the handle and reclaims it.
            Status s =
                c.handle->SubmitNoWait(ws::wire::JobOp::kPing, nullptr,
                                       ws::PublishFault::kDieMidWrite);
            if (s.IsAborted()) ++report.stranded_publishes;
            if (s.IsFenced()) {
              on_fenced(c);
              break;
            }
            c.state = Client::State::kDead;
            ++report.deaths;
            break;
          }
          if (!rng.Bernoulli(config.p_checkout)) break;
          const bool owner = i < static_cast<size_t>(config.owned_cells);
          if (owner && c.has_ticket &&
              !server.lock_manager().LocksOf(c.ticket.txn).empty()) {
            break;  // own cell still held by a dead incarnation
          }
          ws::CheckOutMode mode;
          int cell;
          if (owner) {
            mode = ws::CheckOutMode::kExclusive;
            cell = static_cast<int>(i);
          } else {
            mode = rng.Bernoulli(0.5) ? ws::CheckOutMode::kShared
                                      : ws::CheckOutMode::kDerive;
            cell = config.owned_cells +
                   static_cast<int>(rng.Uniform(
                       static_cast<uint64_t>(config.shared_cells)));
          }
          Result<ws::CheckOutTicket> t = c.handle->CheckOut(
              user,
              CellQuery(fixture, cell,
                        owner ? query::AccessKind::kUpdate
                              : query::AccessKind::kRead),
              mode);
          if (t.ok()) {
            c.ticket = *t;
            c.has_ticket = true;
            c.state = Client::State::kActive;
            ++report.checkouts;
          } else if (t.status().IsFenced()) {
            on_fenced(c);
          }
          break;
        }
        case Client::State::kActive: {
          if (rng.Bernoulli(config.p_die)) {
            c.state = Client::State::kDead;
            ++report.deaths;
            break;
          }
          if (rng.Bernoulli(config.p_wedge)) {
            // Publishes a renew it will never drain: the host executes
            // it, the response parks in kDone until the sweep reclaims.
            (void)c.handle->SubmitNoWait(ws::wire::JobOp::kRenew, &c.ticket);
            c.state = Client::State::kWedged;
            ++report.wedges;
            break;
          }
          if (rng.Bernoulli(config.p_checkin)) {
            Status done = c.ticket.mode == ws::CheckOutMode::kDerive
                              ? c.handle->Cancel(c.ticket)
                              : c.handle->CheckIn(c.ticket);
            if (done.ok()) {
              c.has_ticket = false;
              c.state = Client::State::kIdle;
              if (c.ticket.mode == ws::CheckOutMode::kDerive) {
                ++report.cancels;
              } else {
                ++report.checkins;
              }
            } else if (done.IsFenced()) {
              on_fenced(c);
              c.state = Client::State::kDead;
            } else {
              c.state = Client::State::kDead;
            }
            break;
          }
          if (rng.Bernoulli(config.p_renew)) {
            Status renewed = c.handle->Renew(c.ticket);
            if (renewed.ok()) {
              ++report.renewals;
            } else {
              ++report.renewal_failures;
              if (renewed.IsFenced()) on_fenced(c);
              c.state = Client::State::kDead;
            }
          }
          break;
        }
        case Client::State::kDead:
        case Client::State::kWedged: {
          if (!rng.Bernoulli(config.p_zombie_op)) break;
          // The zombie acts on its stale state.  Legal only while its
          // lease still stands AND its handle was not fenced; once
          // either is gone the attempt must fail.
          const bool lease_alive =
              c.has_ticket && server.leases().Has(c.ticket.txn);
          Status z;
          if (c.has_ticket) {
            z = c.ticket.mode == ws::CheckOutMode::kDerive
                    ? c.handle->Cancel(c.ticket)
                    : c.handle->CheckIn(c.ticket);
          } else {
            z = c.handle->Ping();
          }
          if (z.ok()) {
            if (c.has_ticket && !lease_alive) {
              report.violations.push_back(
                  "zombie check-in of txn " + std::to_string(c.ticket.txn) +
                  " succeeded after its lease was reclaimed");
            }
            ++report.zombie_legal;
            if (c.has_ticket) c.has_ticket = false;
            c.state = Client::State::kIdle;
          } else {
            ++report.zombie_rejected;
            if (z.IsFenced()) on_fenced(c);
          }
          break;
        }
      }
    }

    // Execute whatever the wedged/dying clients left published.
    (void)host.Drain();

    if (config.sweep_every_ticks > 0 &&
        (tick + 1) % config.sweep_every_ticks == 0) {
      sweep();
    }
  }

  // Drain: execute every published frame, let every handle lease and
  // every check-out lease run out, and reclaim in two passes (the second
  // mops responses completed after the first pass fenced their handle).
  (void)host.Drain();
  server.clock().AdvanceMs(host.options().handle_lease_ms +
                           server.leases().options().duration_ms +
                           server.leases().options().grace_ms + 1);
  sweep();
  (void)host.Drain();
  sweep();

  if (server.leases().size() != 0) {
    report.violations.push_back(
        "leases survived the final drain: " +
        std::to_string(server.leases().size()));
  }
  if (server.ActiveLongTxns() != 0) {
    report.violations.push_back(
        "long transactions survived the final drain: " +
        std::to_string(server.ActiveLongTxns()));
  }
  if (host.ring().InFlight() != 0) {
    report.violations.push_back(
        "ring still has " + std::to_string(host.ring().InFlight()) +
        " slots in flight after the final drain");
  }
  const ws::ShmRing::Counters rc = host.ring().counters();
  if (rc.published != rc.consumed + rc.salvaged + rc.reclaimed_published) {
    report.violations.push_back(
        "frame conservation broken: published=" + std::to_string(rc.published) +
        " != consumed=" + std::to_string(rc.consumed) + " + salvaged=" +
        std::to_string(rc.salvaged) + " + reclaimed_published=" +
        std::to_string(rc.reclaimed_published));
  }
  if (rc.consumed != rc.completed + rc.reclaimed_executing) {
    report.violations.push_back(
        "execution conservation broken: consumed=" +
        std::to_string(rc.consumed) + " != completed=" +
        std::to_string(rc.completed) + " + reclaimed_executing=" +
        std::to_string(rc.reclaimed_executing));
  }
  if (rc.completed != rc.taken + rc.reclaimed_done) {
    report.violations.push_back(
        "response conservation broken: completed=" +
        std::to_string(rc.completed) + " != taken=" + std::to_string(rc.taken) +
        " + reclaimed_done=" + std::to_string(rc.reclaimed_done));
  }
  check_epochs("after final drain");
  for (const Client& c : fleet) fold_handle_stats(*c.handle);

  proto::ProtocolValidator validator(&server.graph(), fixture.store.get());
  for (const proto::Violation& v : validator.Check(server.lock_manager())) {
    report.violations.push_back("protocol validator: " + v.ToString());
  }
  return report;
}

}  // namespace codlock::sim
