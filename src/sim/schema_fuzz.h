/// \file schema_fuzz.h
/// \brief Seeded random-schema generator for the static-analysis fuzz
/// loop (derivation → lint → prove).
///
/// Every generated catalog is a valid DAG by construction (references
/// can only name already-created relations) and follows three schema
/// disciplines that make it provable deadlock-free:
///
///   * sharing stays *flat* — shared sink relations carry no outgoing
///     references, so the topological propagation order of
///     `proto/co_protocol.cc` is trivially globally consistent;
///   * referencing is *segment-forward* — all outer relations live in
///     the first segment, because two segments referencing into each
///     other acquire segment-level locks in opposite orders (a genuine
///     deadlock hazard the prover refutes);
///   * sink segment placement is *monotone* in creation order, because
///     propagation enters sinks newest-first and a non-monotone
///     placement interleaves segment chains inconsistently between
///     accesses (a queueing hazard, found at fuzz seed 505).
///
/// Nested sharing is exercised by the deterministic corpus builders
/// instead (`BuildDeepRefChain` uses a single reference per level,
/// which is order-consistent by construction).
///
/// The corpus builders produce the committed `tests/fixtures/*.db`
/// seeds: deep reference chains, diamond side entries and
/// multi-inner-unit fan-in — the shapes where the visibility and
/// acquisition-order theorems have historically been subtle.

#ifndef CODLOCK_SIM_SCHEMA_FUZZ_H_
#define CODLOCK_SIM_SCHEMA_FUZZ_H_

#include <memory>
#include <string>

#include "nf2/schema.h"
#include "nf2/store.h"

namespace codlock::sim {

/// \brief One generated schema plus a small populated instance store.
struct FuzzedSchema {
  std::string name;
  std::unique_ptr<nf2::Catalog> catalog;
  std::unique_ptr<nf2::InstanceStore> store;
};

/// Generates a random schema from \p seed: 1–2 segments, 1–3 shared sink
/// relations (no outgoing refs), 1–3 outer relations with random
/// set/list/tuple nesting and 0–3 reference attributes into the sinks,
/// plus a handful of instances so the result can also drive the runtime
/// stack (mc cross-checks, serialization).
FuzzedSchema BuildFuzzedSchema(uint64_t seed);

/// Linear reference chain outer → c1 → … → c<depth> with exactly one
/// reference per level (deepest relation created first).
FuzzedSchema BuildDeepRefChain(int depth);

/// Two outer relations both referencing one shared relation — the
/// minimal diamond whose side entries rules 1/2 + 3/4 must make visible.
FuzzedSchema BuildDiamondSideEntry();

/// Three outer relations over three shared sinks with overlapping
/// reference sets (fan-in), the shape that exercises the sorted global
/// propagation order.
FuzzedSchema BuildMultiInnerFanIn();

}  // namespace codlock::sim

#endif  // CODLOCK_SIM_SCHEMA_FUZZ_H_
