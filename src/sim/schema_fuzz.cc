#include "sim/schema_fuzz.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace codlock::sim {

using nf2::AttrKind;
using nf2::AttrSpec;
using nf2::Value;

namespace {

/// Random attribute subtree.  \p depth bounds nesting; refs are drawn
/// from \p sink_names (may be empty).
AttrSpec RandomAttr(Rng& rng, int depth,
                    const std::vector<std::string>& sink_names, int* counter) {
  std::string name = "a" + std::to_string((*counter)++);
  if (depth <= 0) {
    return rng.Bernoulli(0.5) ? AttrSpec::Str(name) : AttrSpec::Int(name);
  }
  switch (rng.Uniform(6)) {
    case 0:
      return AttrSpec::Str(name);
    case 1:
      return AttrSpec::Int(name);
    case 2: {
      std::vector<AttrSpec> fields;
      int n = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < n; ++i) {
        fields.push_back(RandomAttr(rng, depth - 1, sink_names, counter));
      }
      return AttrSpec::Tuple(name, std::move(fields));
    }
    case 3:
      return AttrSpec::Set(name,
                           RandomAttr(rng, depth - 1, sink_names, counter));
    case 4:
      return AttrSpec::List(name,
                            RandomAttr(rng, depth - 1, sink_names, counter));
    default:
      if (!sink_names.empty()) {
        return AttrSpec::Ref(name,
                             sink_names[rng.Uniform(sink_names.size())]);
      }
      return AttrSpec::Str(name);
  }
}

/// Builds a value matching the schema subtree at \p attr.  References
/// pick a uniformly random object of the target relation.
Value RandomValue(Rng& rng, const nf2::Catalog& catalog, nf2::AttrId attr,
                  std::unordered_map<nf2::RelationId,
                                     std::vector<nf2::ObjectId>>& objects,
                  int* key_counter) {
  const nf2::AttrDef& def = catalog.attr(attr);
  switch (def.kind) {
    case AttrKind::kString:
      if (def.is_key) {
        return Value::OfString("k" + std::to_string((*key_counter)++));
      }
      return Value::OfString("s" + std::to_string(rng.Uniform(100)));
    case AttrKind::kInt:
      return Value::OfInt(static_cast<int64_t>(rng.Uniform(1000)));
    case AttrKind::kReal:
      return Value::OfReal(static_cast<double>(rng.Uniform(1000)) / 10.0);
    case AttrKind::kBool:
      return Value::OfBool(rng.Bernoulli(0.5));
    case AttrKind::kTuple: {
      std::vector<Value> fields;
      fields.reserve(def.children.size());
      for (nf2::AttrId c : def.children) {
        fields.push_back(RandomValue(rng, catalog, c, objects, key_counter));
      }
      return Value::OfTuple(std::move(fields));
    }
    case AttrKind::kSet:
    case AttrKind::kList: {
      std::vector<Value> elems;
      int n = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < n; ++i) {
        elems.push_back(
            RandomValue(rng, catalog, def.children[0], objects, key_counter));
      }
      return def.kind == AttrKind::kSet ? Value::OfSet(std::move(elems))
                                        : Value::OfList(std::move(elems));
    }
    case AttrKind::kRef: {
      const std::vector<nf2::ObjectId>& pool = objects[def.ref_target];
      // Sinks are always populated before referencing relations.
      return Value::OfRef(def.ref_target, pool[rng.Uniform(pool.size())]);
    }
  }
  return Value::OfString("?");
}

void Populate(Rng& rng, FuzzedSchema& f, nf2::RelationId rel, int count,
              std::unordered_map<nf2::RelationId,
                                 std::vector<nf2::ObjectId>>& objects,
              int* key_counter) {
  nf2::AttrId root = f.catalog->relation(rel).root;
  for (int i = 0; i < count; ++i) {
    Value v = RandomValue(rng, *f.catalog, root, objects, key_counter);
    auto id = f.store->Insert(rel, std::move(v));
    if (id.ok()) objects[rel].push_back(*id);
  }
}

/// Sink relation: key + a small nested collection, no references.
AttrSpec SinkSpec(const std::string& name, int i) {
  return AttrSpec::Tuple(
      name, {
                AttrSpec::Key(name + "_id"),
                AttrSpec::Str("payload"),
                AttrSpec::Set("parts" + std::to_string(i),
                              AttrSpec::Tuple("part" + std::to_string(i),
                                              {
                                                  AttrSpec::Str("pname"),
                                                  AttrSpec::Int("pno"),
                                              })),
            });
}

}  // namespace

FuzzedSchema BuildFuzzedSchema(uint64_t seed) {
  Rng rng(seed);
  FuzzedSchema f;
  f.name = "fuzz-" + std::to_string(seed);
  f.catalog = std::make_unique<nf2::Catalog>();
  nf2::DatabaseId db = *f.catalog->CreateDatabase("db");
  int num_segs = 1 + static_cast<int>(rng.Uniform(2));
  std::vector<nf2::SegmentId> segs;
  for (int s = 0; s < num_segs; ++s) {
    segs.push_back(*f.catalog->CreateSegment(db, "seg" + std::to_string(s)));
  }
  // Sink segments are assigned monotonically in creation order: implicit
  // propagation enters sinks newest-first (descending relation id), so a
  // non-monotone assignment would interleave segment chains in orders
  // that differ between accesses — a queueing-deadlock hazard the
  // acquisition-order analysis refutes.
  int num_sinks = 1 + static_cast<int>(rng.Uniform(3));
  std::vector<size_t> sink_seg;
  for (int i = 0; i < num_sinks; ++i) sink_seg.push_back(rng.Uniform(segs.size()));
  std::sort(sink_seg.begin(), sink_seg.end());
  std::vector<std::string> sink_names;
  std::vector<nf2::RelationId> sinks;
  for (int i = 0; i < num_sinks; ++i) {
    std::string name = "shared" + std::to_string(i);
    sinks.push_back(*f.catalog->CreateRelation(segs[sink_seg[i]], name,
                                               SinkSpec(name, i)));
    sink_names.push_back(std::move(name));
  }

  // Referencing relations all live in the first segment: segment-level
  // S/X locks propagate into referenced segments, so schemas where two
  // segments reference into each other acquire segment locks in opposite
  // orders — a genuine deadlock hazard the prover refutes.  Generated
  // schemas follow the segment-forward discipline instead.
  int num_outer = 1 + static_cast<int>(rng.Uniform(3));
  std::vector<nf2::RelationId> outers;
  int counter = 0;
  for (int i = 0; i < num_outer; ++i) {
    std::string name = "outer" + std::to_string(i);
    std::vector<AttrSpec> fields{AttrSpec::Key(name + "_id")};
    int depth = 1 + static_cast<int>(rng.Uniform(3));
    int extra = 1 + static_cast<int>(rng.Uniform(3));
    for (int a = 0; a < extra; ++a) {
      fields.push_back(RandomAttr(rng, depth, sink_names, &counter));
    }
    // Guarantee at least one reference attribute somewhere: schemas
    // without sharing prove trivially and waste the fuzz budget.
    fields.push_back(AttrSpec::Set(
        "refs" + std::to_string(i),
        AttrSpec::Ref("ref" + std::to_string(i),
                      sink_names[rng.Uniform(sink_names.size())])));
    outers.push_back(*f.catalog->CreateRelation(
        segs[0], name, AttrSpec::Tuple(name, std::move(fields))));
  }

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());
  std::unordered_map<nf2::RelationId, std::vector<nf2::ObjectId>> objects;
  int key_counter = 0;
  for (nf2::RelationId rel : sinks) {
    Populate(rng, f, rel, 2 + static_cast<int>(rng.Uniform(3)), objects,
             &key_counter);
  }
  for (nf2::RelationId rel : outers) {
    Populate(rng, f, rel, 1 + static_cast<int>(rng.Uniform(3)), objects,
             &key_counter);
  }
  return f;
}

FuzzedSchema BuildDeepRefChain(int depth) {
  FuzzedSchema f;
  f.name = "chain-" + std::to_string(depth);
  f.catalog = std::make_unique<nf2::Catalog>();
  nf2::DatabaseId db = *f.catalog->CreateDatabase("db");
  nf2::SegmentId seg = *f.catalog->CreateSegment(db, "seg");

  // Deepest link first so each reference targets an existing relation.
  std::vector<nf2::RelationId> rels;
  std::string prev;
  for (int i = depth; i >= 0; --i) {
    std::string name = i == 0 ? "outer" : "link" + std::to_string(i);
    std::vector<AttrSpec> fields{AttrSpec::Key(name + "_id"),
                                 AttrSpec::Str("payload")};
    if (!prev.empty()) {
      fields.push_back(AttrSpec::Ref("next", prev));
    }
    rels.push_back(*f.catalog->CreateRelation(
        seg, name, AttrSpec::Tuple(name, std::move(fields))));
    prev = name;
  }

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());
  Rng rng(depth);
  std::unordered_map<nf2::RelationId, std::vector<nf2::ObjectId>> objects;
  int key_counter = 0;
  for (nf2::RelationId rel : rels) {
    Populate(rng, f, rel, 2, objects, &key_counter);
  }
  return f;
}

FuzzedSchema BuildDiamondSideEntry() {
  FuzzedSchema f;
  f.name = "diamond";
  f.catalog = std::make_unique<nf2::Catalog>();
  nf2::DatabaseId db = *f.catalog->CreateDatabase("db");
  nf2::SegmentId seg1 = *f.catalog->CreateSegment(db, "seg1");
  nf2::SegmentId seg2 = *f.catalog->CreateSegment(db, "seg2");
  nf2::RelationId shared =
      *f.catalog->CreateRelation(seg2, "shared", SinkSpec("shared", 0));
  auto outer = [&](const std::string& name) {
    return *f.catalog->CreateRelation(
        seg1, name,
        AttrSpec::Tuple(
            name, {
                      AttrSpec::Key(name + "_id"),
                      AttrSpec::List(
                          "items",
                          AttrSpec::Tuple("item",
                                          {
                                              AttrSpec::Str("label"),
                                              AttrSpec::Set(
                                                  "refs",
                                                  AttrSpec::Ref("ref",
                                                                "shared")),
                                          })),
                  }));
  };
  nf2::RelationId left = outer("left");
  nf2::RelationId right = outer("right");

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());
  Rng rng(11);
  std::unordered_map<nf2::RelationId, std::vector<nf2::ObjectId>> objects;
  int key_counter = 0;
  Populate(rng, f, shared, 3, objects, &key_counter);
  Populate(rng, f, left, 2, objects, &key_counter);
  Populate(rng, f, right, 2, objects, &key_counter);
  return f;
}

FuzzedSchema BuildMultiInnerFanIn() {
  FuzzedSchema f;
  f.name = "fan-in";
  f.catalog = std::make_unique<nf2::Catalog>();
  nf2::DatabaseId db = *f.catalog->CreateDatabase("db");
  nf2::SegmentId seg = *f.catalog->CreateSegment(db, "seg");
  const char* sink_names[] = {"tools", "fixtures", "manuals"};
  std::vector<nf2::RelationId> sinks;
  for (int i = 0; i < 3; ++i) {
    sinks.push_back(*f.catalog->CreateRelation(seg, sink_names[i],
                                               SinkSpec(sink_names[i], i)));
  }
  // Overlapping reference sets: {tools, fixtures}, {fixtures, manuals},
  // {tools, manuals} — every pair of outer units shares a sink.
  const int pairs[3][2] = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<nf2::RelationId> outers;
  for (int i = 0; i < 3; ++i) {
    std::string name = "station" + std::to_string(i);
    outers.push_back(*f.catalog->CreateRelation(
        seg, name,
        AttrSpec::Tuple(
            name,
            {
                AttrSpec::Key(name + "_id"),
                AttrSpec::Set("r0", AttrSpec::Ref("ra",
                                                  sink_names[pairs[i][0]])),
                AttrSpec::Set("r1", AttrSpec::Ref("rb",
                                                  sink_names[pairs[i][1]])),
            })));
  }

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());
  Rng rng(23);
  std::unordered_map<nf2::RelationId, std::vector<nf2::ObjectId>> objects;
  int key_counter = 0;
  for (nf2::RelationId rel : sinks) Populate(rng, f, rel, 3, objects,
                                             &key_counter);
  for (nf2::RelationId rel : outers) Populate(rng, f, rel, 2, objects,
                                              &key_counter);
  return f;
}

}  // namespace codlock::sim
