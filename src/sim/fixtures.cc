#include "sim/fixtures.h"

#include <cassert>

namespace codlock::sim {

using nf2::AttrSpec;
using nf2::Value;

CellsFixture BuildCellsEffectors() { return BuildCellsEffectors(CellsParams()); }

CellsFixture BuildCellsEffectors(const CellsParams& params) {
  CellsFixture f;
  f.catalog = std::make_unique<nf2::Catalog>();

  f.db = *f.catalog->CreateDatabase("db1");
  f.seg1 = *f.catalog->CreateSegment(f.db, "seg1");
  f.seg2 = *f.catalog->CreateSegment(f.db, "seg2");

  // Relation "effectors" (Fig. 1, right): the shared tool library.  It must
  // exist before "cells" so the reference can be resolved.
  f.effectors = *f.catalog->CreateRelation(
      f.seg2, "effectors",
      AttrSpec::Tuple("effectors", {
                                       AttrSpec::Key("eff_id"),
                                       AttrSpec::Str("tool"),
                                   }));

  // Relation "cells" (Fig. 1, left).
  f.cells = *f.catalog->CreateRelation(
      f.seg1, "cells",
      AttrSpec::Tuple(
          "cells",
          {
              AttrSpec::Key("cell_id"),
              AttrSpec::Set("c_objects",
                            AttrSpec::Tuple("c_object",
                                            {
                                                AttrSpec::Key("obj_id"),
                                                AttrSpec::Str("obj_name"),
                                            })),
              AttrSpec::List(
                  "robots",
                  AttrSpec::Tuple(
                      "robot",
                      {
                          AttrSpec::Key("robot_id"),
                          AttrSpec::Str("trajectory"),
                          AttrSpec::Set("effectors",
                                        AttrSpec::Ref("ref", "effectors")),
                      })),
          }));

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());

  // Populate effectors e1..eN.
  std::vector<nf2::ObjectId> effector_ids;
  for (int i = 1; i <= params.num_effectors; ++i) {
    Value eff = Value::OfTuple({
        Value::OfString("e" + std::to_string(i)),
        Value::OfString("tool-" + std::to_string(i)),
    });
    effector_ids.push_back(*f.store->Insert(f.effectors, std::move(eff)));
  }

  // Populate cells c1..cM with robots r1..rK (globally numbered) sharing
  // effectors.
  Rng rng(params.seed);
  int robot_counter = 0;
  for (int c = 1; c <= params.num_cells; ++c) {
    std::vector<Value> c_objects;
    for (int o = 1; o <= params.c_objects_per_cell; ++o) {
      c_objects.push_back(Value::OfTuple({
          Value::OfString("o" + std::to_string(c) + "_" + std::to_string(o)),
          Value::OfString("object " + std::to_string(o) + " of cell " +
                          std::to_string(c)),
      }));
    }
    std::vector<Value> robots;
    for (int r = 0; r < params.robots_per_cell; ++r) {
      ++robot_counter;
      std::vector<Value> refs;
      if (!effector_ids.empty() && params.effectors_per_robot > 0) {
        size_t offset = rng.Uniform(effector_ids.size());
        for (int e = 0; e < params.effectors_per_robot; ++e) {
          size_t idx = (offset + static_cast<size_t>(e)) % effector_ids.size();
          refs.push_back(Value::OfRef(f.effectors, effector_ids[idx]));
        }
      }
      robots.push_back(Value::OfTuple({
          Value::OfString("r" + std::to_string(robot_counter)),
          Value::OfString("trajectory-" + std::to_string(robot_counter)),
          Value::OfSet(std::move(refs)),
      }));
    }
    Value cell = Value::OfTuple({
        Value::OfString("c" + std::to_string(c)),
        Value::OfSet(std::move(c_objects)),
        Value::OfList(std::move(robots)),
    });
    Result<nf2::ObjectId> inserted = f.store->Insert(f.cells, std::move(cell));
    assert(inserted.ok());
    (void)inserted;
  }
  return f;
}

CellsFixture BuildFigure7Instance() {
  CellsParams params;
  params.num_cells = 0;  // instances are built by hand below
  params.num_effectors = 0;
  CellsFixture f = BuildCellsEffectors(params);

  std::vector<nf2::ObjectId> eff;
  for (int i = 1; i <= 3; ++i) {
    Value e = Value::OfTuple({
        Value::OfString("e" + std::to_string(i)),
        Value::OfString("tool-" + std::to_string(i)),
    });
    eff.push_back(*f.store->Insert(f.effectors, std::move(e)));
  }

  std::vector<Value> c_objects;
  for (int o = 1; o <= 3; ++o) {
    c_objects.push_back(Value::OfTuple({
        Value::OfString("o" + std::to_string(o)),
        Value::OfString("object " + std::to_string(o)),
    }));
  }
  Value r1 = Value::OfTuple({
      Value::OfString("r1"),
      Value::OfString("tr1"),
      Value::OfSet({Value::OfRef(f.effectors, eff[0]),
                    Value::OfRef(f.effectors, eff[1])}),
  });
  Value r2 = Value::OfTuple({
      Value::OfString("r2"),
      Value::OfString("tr2"),
      Value::OfSet({Value::OfRef(f.effectors, eff[1]),
                    Value::OfRef(f.effectors, eff[2])}),
  });
  Value c1 = Value::OfTuple({
      Value::OfString("c1"),
      Value::OfSet(std::move(c_objects)),
      Value::OfList({std::move(r1), std::move(r2)}),
  });
  Result<nf2::ObjectId> inserted = f.store->Insert(f.cells, std::move(c1));
  assert(inserted.ok());
  (void)inserted;
  return f;
}

namespace {

/// Builds the nested spec for the synthetic "parts" relation:
/// level k (>0): tuple(key, payload, set(children)); level 0 ("leaf"):
/// tuple(key, payload [, refs]).
AttrSpec SyntheticLevelSpec(int level, int refs_per_leaf) {
  std::string name = "n" + std::to_string(level);
  std::vector<AttrSpec> fields;
  fields.push_back(AttrSpec::Key(name + "_id"));
  fields.push_back(AttrSpec::Int("payload"));
  if (level == 0) {
    if (refs_per_leaf > 0) {
      fields.push_back(
          AttrSpec::Set("lib_refs", AttrSpec::Ref("ref", "library")));
    }
  } else {
    fields.push_back(AttrSpec::Set(
        "children", SyntheticLevelSpec(level - 1, refs_per_leaf)));
  }
  return AttrSpec::Tuple(name, std::move(fields));
}

Value SyntheticLevelValue(int level, const SyntheticParams& params,
                          const std::vector<nf2::ObjectId>& shared_ids,
                          nf2::RelationId shared_rel, Rng* rng, int* counter) {
  std::vector<Value> fields;
  fields.push_back(Value::OfString("k" + std::to_string(++*counter)));
  fields.push_back(Value::OfInt(static_cast<int64_t>(rng->Uniform(1000))));
  if (level == 0) {
    if (params.refs_per_leaf > 0 && !shared_ids.empty()) {
      std::vector<Value> refs;
      size_t offset = rng->Uniform(shared_ids.size());
      for (int i = 0; i < params.refs_per_leaf; ++i) {
        size_t idx = (offset + static_cast<size_t>(i)) % shared_ids.size();
        refs.push_back(Value::OfRef(shared_rel, shared_ids[idx]));
      }
      fields.push_back(Value::OfSet(std::move(refs)));
    }
  } else {
    std::vector<Value> children;
    for (int i = 0; i < params.fanout; ++i) {
      children.push_back(SyntheticLevelValue(level - 1, params, shared_ids,
                                             shared_rel, rng, counter));
    }
    fields.push_back(Value::OfSet(std::move(children)));
  }
  return Value::OfTuple(std::move(fields));
}

}  // namespace

SyntheticFixture BuildSynthetic(const SyntheticParams& params) {
  SyntheticFixture f;
  f.catalog = std::make_unique<nf2::Catalog>();
  nf2::DatabaseId db = *f.catalog->CreateDatabase("synth_db");
  nf2::SegmentId seg = *f.catalog->CreateSegment(db, "synth_seg");

  const bool with_sharing = params.refs_per_leaf > 0;
  if (with_sharing) {
    f.shared_relation = *f.catalog->CreateRelation(
        seg, "library",
        AttrSpec::Tuple("library", {
                                       AttrSpec::Key("lib_id"),
                                       AttrSpec::Int("lib_payload"),
                                   }));
  } else {
    f.shared_relation = nf2::kInvalidRelation;
  }

  f.main_relation = *f.catalog->CreateRelation(
      seg, "parts", SyntheticLevelSpec(params.depth, params.refs_per_leaf));

  f.store = std::make_unique<nf2::InstanceStore>(f.catalog.get());
  Rng rng(params.seed);

  std::vector<nf2::ObjectId> shared_ids;
  if (with_sharing) {
    for (int i = 1; i <= params.num_shared; ++i) {
      Value lib = Value::OfTuple({
          Value::OfString("lib" + std::to_string(i)),
          Value::OfInt(i),
      });
      shared_ids.push_back(*f.store->Insert(f.shared_relation, std::move(lib)));
    }
  }

  int counter = 0;
  for (int i = 0; i < params.num_objects; ++i) {
    Value obj = SyntheticLevelValue(params.depth, params, shared_ids,
                                    f.shared_relation, &rng, &counter);
    Result<nf2::ObjectId> inserted =
        f.store->Insert(f.main_relation, std::move(obj));
    assert(inserted.ok());
    (void)inserted;
  }
  return f;
}

}  // namespace codlock::sim
