#include "sim/engine.h"

namespace codlock::sim {

std::string_view ProtocolChoiceName(ProtocolChoice p) {
  switch (p) {
    case ProtocolChoice::kComplexObject:
      return "complex-object(4')";
    case ProtocolChoice::kComplexObjectRule4:
      return "complex-object(4)";
    case ProtocolChoice::kSysRAllParents:
      return "sysr-dag(all-parents)";
    case ProtocolChoice::kSysRPathOnly:
      return "sysr-dag(path-only)";
  }
  return "?";
}

Engine::Engine(const nf2::Catalog* catalog, nf2::InstanceStore* store,
               EngineOptions options)
    : catalog_(catalog),
      store_(store),
      options_(options),
      graph_(logra::LockGraph::Build(*catalog)),
      stats_(query::Statistics::Collect(*catalog, *store)) {
  lm_ = std::make_unique<lock::LockManager>(options_.lock_manager);
  txns_ = std::make_unique<txn::TxnManager>(lm_.get(), &undo_, store_);

  switch (options_.protocol) {
    case ProtocolChoice::kComplexObject:
    case ProtocolChoice::kComplexObjectRule4: {
      proto::ComplexObjectProtocol::Options popts;
      popts.use_rule4_prime =
          options_.protocol == ProtocolChoice::kComplexObject;
      popts.timeout_ms = options_.lock_timeout_ms;
      protocol_ = std::make_unique<proto::ComplexObjectProtocol>(
          &graph_, store_, lm_.get(), &authz_, popts);
      break;
    }
    case ProtocolChoice::kSysRAllParents:
    case ProtocolChoice::kSysRPathOnly: {
      proto::SystemRDagProtocol::Options popts;
      popts.variant = options_.protocol == ProtocolChoice::kSysRAllParents
                          ? proto::SystemRDagProtocol::Variant::kAllParents
                          : proto::SystemRDagProtocol::Variant::kPathOnly;
      popts.timeout_ms = options_.lock_timeout_ms;
      protocol_ = std::make_unique<proto::SystemRDagProtocol>(
          &graph_, store_, lm_.get(), popts);
      break;
    }
  }

  query::LockPlanner::Options plan_opts;
  plan_opts.policy = options_.policy;
  plan_opts.escalation_threshold = options_.escalation_threshold;
  planner_ = std::make_unique<query::LockPlanner>(&graph_, catalog_, &stats_,
                                                  plan_opts);
  query::QueryExecutor::Options exec_opts;
  exec_opts.apply_writes = options_.apply_writes;
  exec_opts.runtime_escalation_threshold =
      options_.runtime_escalation_threshold;
  exec_opts.stats = &lm_->stats();
  exec_opts.undo = &undo_;
  executor_ = std::make_unique<query::QueryExecutor>(
      &graph_, catalog_, store_, protocol_.get(), exec_opts);
  validator_ = std::make_unique<proto::ProtocolValidator>(&graph_, store_);
}

void Engine::RefreshStatistics() {
  stats_ = query::Statistics::Collect(*catalog_, *store_);
  query::LockPlanner::Options plan_opts;
  plan_opts.policy = options_.policy;
  plan_opts.escalation_threshold = options_.escalation_threshold;
  planner_ = std::make_unique<query::LockPlanner>(&graph_, catalog_, &stats_,
                                                  plan_opts);
}

Result<query::QueryResult> Engine::RunQuery(txn::Transaction& txn,
                                            const query::Query& query) {
  Result<query::QueryPlan> plan = planner_->Plan(query);
  if (!plan.ok()) return plan.status();
  return executor_->Execute(txn, query, *plan);
}

Result<query::QueryResult> Engine::RunShortTxn(authz::UserId user,
                                               const query::Query& query) {
  txn::Transaction* txn = txns_->Begin(user, txn::TxnKind::kShort);
  Result<query::QueryResult> result = RunQuery(*txn, query);
  if (!result.ok()) {
    txns_->Abort(txn);
    txns_->Forget(txn->id());
    return result.status();
  }
  Status st = txns_->Commit(txn);
  txns_->Forget(txn->id());
  if (!st.ok()) return st;
  return result;
}

}  // namespace codlock::sim
