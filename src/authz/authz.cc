#include "authz/authz.h"

namespace codlock::authz {

Status AuthorizationManager::Grant(UserId user, nf2::RelationId rel,
                                   Right right) {
  if (user == kInvalidUser) {
    return Status::InvalidArgument("invalid user id");
  }
  std::unique_lock lk(mu_);
  grants_.insert(Key{user, rel, right});
  return Status::OK();
}

void AuthorizationManager::Revoke(UserId user, nf2::RelationId rel,
                                  Right right) {
  std::unique_lock lk(mu_);
  grants_.erase(Key{user, rel, right});
}

void AuthorizationManager::GrantAll(UserId user, const nf2::Catalog& catalog) {
  std::unique_lock lk(mu_);
  for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
    grants_.insert(Key{user, rel, Right::kRead});
    grants_.insert(Key{user, rel, Right::kModify});
  }
}

bool AuthorizationManager::Has(UserId user, nf2::RelationId rel,
                               Right right) const {
  std::shared_lock lk(mu_);
  return grants_.contains(Key{user, rel, right});
}

}  // namespace codlock::authz
