/// \file authz.h
/// \brief Authorization component.
///
/// §3.2.3: "A close cooperation of the concurrency control component and
/// the authorization component (which administrates the access rights of
/// all transactions (users)), can drastically increase the degree of
/// concurrency."  Rule 4′ of the lock protocol consults this component
/// during implicit downward propagation: inner units the transaction has
/// no right to modify are locked S instead of X.
///
/// Rights are administered per *user* and *relation* — matching the
/// paper's assumption that shared data lives in relations of its own, so a
/// unit is (non-)modifiable exactly when its relation is.

#ifndef CODLOCK_AUTHZ_AUTHZ_H_
#define CODLOCK_AUTHZ_AUTHZ_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "nf2/schema.h"
#include "util/status.h"

namespace codlock::authz {

using UserId = uint64_t;

inline constexpr UserId kInvalidUser = 0;

/// Access rights a user may hold on a relation.
enum class Right : uint8_t {
  kRead,    ///< may read objects of the relation
  kModify,  ///< may insert/update/delete objects of the relation
};

/// \brief Administers access rights of all users.
///
/// Thread-safe.  A freshly created manager grants nothing; examples and
/// benchmarks set rights up-front (DCL precedes the workload).
class AuthorizationManager {
 public:
  /// Grants \p right on \p rel to \p user.
  Status Grant(UserId user, nf2::RelationId rel, Right right);

  /// Revokes \p right on \p rel from \p user (no-op if absent).
  void Revoke(UserId user, nf2::RelationId rel, Right right);

  /// Grants read+modify on every relation of \p catalog to \p user.
  void GrantAll(UserId user, const nf2::Catalog& catalog);

  /// True if \p user holds \p right on \p rel.
  bool Has(UserId user, nf2::RelationId rel, Right right) const;

  bool CanRead(UserId user, nf2::RelationId rel) const {
    return Has(user, rel, Right::kRead);
  }

  /// The predicate rule 4′ depends on: is the unit rooted in \p rel a
  /// *modifiable unit* for \p user?
  bool CanModify(UserId user, nf2::RelationId rel) const {
    return Has(user, rel, Right::kModify);
  }

 private:
  struct Key {
    UserId user;
    nf2::RelationId rel;
    Right right;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.user * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<uint64_t>(k.rel) << 8) |
           static_cast<uint64_t>(k.right);
      h *= 0xBF58476D1CE4E5B9ULL;
      return static_cast<size_t>(h ^ (h >> 31));
    }
  };

  mutable std::shared_mutex mu_;
  std::unordered_set<Key, KeyHash> grants_;
};

}  // namespace codlock::authz

#endif  // CODLOCK_AUTHZ_AUTHZ_H_
