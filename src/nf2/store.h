/// \file store.h
/// \brief In-memory instance store for extended NF² complex objects.
///
/// The store plays the role of the host DBMS's object storage (System R /
/// XSQL / AIM-P in the paper): it holds the complex objects the lock
/// protocols synchronize, assigns instance ids to every lockable
/// sub-object, resolves navigation paths, and — for the naive DAG baseline —
/// performs the full scan needed to find all parents referencing a shared
/// object ("It is a very time-consuming task to find out which robots are
/// affected", §3.2.2).
///
/// Thread-safety: structural operations (insert/erase) and lookups are
/// internally synchronized per relation.  Mutation of attribute *values*
/// inside stored objects is protected by the lock protocols themselves —
/// that is precisely the property the library exists to provide.

#ifndef CODLOCK_NF2_STORE_H_
#define CODLOCK_NF2_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nf2/schema.h"
#include "nf2/value.h"
#include "util/result.h"

namespace codlock::nf2 {

/// \brief A stored complex object: root tuple value plus identity.
struct Object {
  RelationId relation = kInvalidRelation;
  ObjectId id = kInvalidObject;
  /// Value of the key attribute (empty if the relation has no key).
  std::string key;
  Value root;
};

/// \brief One resolved navigation step: schema attribute + value node.
///
/// The instance id is captured during navigation (under the structure
/// latch): lock resources must be derivable from a ResolvedPath without
/// dereferencing `value`, whose pointee may be relocated by a structural
/// update after the latch is dropped (re-resolve via `FindIid` once
/// transaction locks are held before touching `value`).
struct ResolvedStep {
  AttrId attr = kInvalidAttr;
  const Value* value = nullptr;
  Iid iid = kInvalidIid;
};

/// \brief A fully resolved path inside one complex object.
///
/// `steps[0]` is the object's root tuple; each later entry descends one
/// schema level.  Collection element selection contributes two entries:
/// the collection node and the selected element.
struct ResolvedPath {
  RelationId relation = kInvalidRelation;
  ObjectId object = kInvalidObject;
  std::vector<ResolvedStep> steps;

  const Value* target() const { return steps.back().value; }
  AttrId target_attr() const { return steps.back().attr; }
  Iid target_iid() const { return steps.back().iid; }
};

/// \brief A path from the root of a referencing object down to a ref leaf
/// that targets some shared object (result of `FindReferencing`).
struct BackRefPath {
  RelationId relation = kInvalidRelation;
  ObjectId object = kInvalidObject;
  /// (attribute, instance id) chain, root tuple first, ref leaf last.
  std::vector<std::pair<AttrId, Iid>> chain;
};

/// \brief In-memory store of complex objects for a whole catalog.
class InstanceStore {
 public:
  explicit InstanceStore(const Catalog* catalog) : catalog_(catalog) {}

  InstanceStore(const InstanceStore&) = delete;
  InstanceStore& operator=(const InstanceStore&) = delete;

  /// Validates \p root against the relation's schema, assigns instance ids
  /// to every node, indexes the key attribute, and stores the object.
  Result<ObjectId> Insert(RelationId rel, Value root);

  /// Removes an object. Fails with NotFound for unknown ids.  Does not
  /// check inbound references (reference integrity on delete is the
  /// application's concern, as in the paper's delete-robot example §4.5).
  Status Erase(RelationId rel, ObjectId id);

  /// Looks up an object by surrogate.
  Result<const Object*> Get(RelationId rel, ObjectId id) const;

  /// Looks up an object by key attribute value (e.g. "c1", "r2").
  Result<const Object*> FindByKey(RelationId rel, const std::string& key) const;

  /// Mutable lookup; caller must hold an exclusive lock on the object (or
  /// a sub-object covering the intended mutation) via a lock protocol.
  Result<Object*> GetMutable(RelationId rel, ObjectId id);

  /// Resolves \p path below object \p id of relation \p rel.
  ///
  /// The resolved chain stops at a ref leaf if the path ends there;
  /// dereferencing into common data is a separate `Deref` call — mirroring
  /// the unit boundary ("dashed line") of the lock graphs.
  Result<ResolvedPath> Navigate(RelationId rel, ObjectId id,
                                const Path& path) const;

  /// Follows a reference to its target object.
  Result<const Object*> Deref(const RefValue& ref) const;

  /// Appends \p elem to the collection at \p coll_path inside object
  /// \p id, validating it against the collection's element type and
  /// assigning fresh instance ids.  Returns the new element's root iid.
  ///
  /// The caller must hold an exclusive lock on the collection (phantom
  /// protection, see query::QueryExecutor::ExecuteInsert): appending
  /// relocates the collection's element buffer, which is safe exactly
  /// because readers of those elements hold conflicting locks.
  Result<Iid> AddElement(RelationId rel, ObjectId id, const Path& coll_path,
                         Value elem);

  /// Removes the element whose key attribute equals \p elem_key from the
  /// collection at \p coll_path.  Same locking requirement as AddElement.
  Status RemoveElement(RelationId rel, ObjectId id, const Path& coll_path,
                       const std::string& elem_key);

  /// All distinct references contained in the value tree \p v.
  static std::vector<RefValue> CollectRefs(const Value& v);

  /// Scans *all* objects of *all* relations that may reference
  /// \p target_rel and returns the paths of every ref leaf pointing at
  /// \p target_obj.  \p scanned_nodes (optional) is incremented by the
  /// number of value nodes visited — the cost the naive DAG protocol pays.
  std::vector<BackRefPath> FindReferencing(RelationId target_rel,
                                           ObjectId target_obj,
                                           uint64_t* scanned_nodes) const;

  /// Ids of all objects currently stored in \p rel (snapshot).
  std::vector<ObjectId> ObjectsOf(RelationId rel) const;

  size_t ObjectCount(RelationId rel) const;

  /// Assigns fresh instance ids to every node of \p v (used for subtrees
  /// added to stored objects after insertion).
  void AssignIids(Value* v);

  /// Instance id of the root tuple of object \p id — the lock resource of
  /// an inner unit's entry point.
  Result<Iid> RootIid(RelationId rel, ObjectId id) const;

  /// Reverse lookup from an instance id to its owning object and value
  /// node (used by the protocol validator to expand the data coverage of
  /// held locks).  Only objects currently in the store are indexed; the
  /// returned pointer is valid while the object stays stored and
  /// structurally unmodified.
  struct IidInfo {
    RelationId relation = kInvalidRelation;
    ObjectId object = kInvalidObject;
    const Value* value = nullptr;
  };
  Result<IidInfo> FindIid(Iid iid) const;

  const Catalog& catalog() const { return *catalog_; }

  /// Monotone counter bumped by every operation that may change stored
  /// values (Insert/Erase/GetMutable/AddElement/RemoveElement).  Consumers
  /// deriving caches from stored data — e.g. the complex-object protocol's
  /// downward-propagation memo — compare epochs to invalidate.  Bumps are
  /// conservative: a mutator that ends up failing may still bump.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

 private:
  void BumpMutationEpoch() {
    mutation_epoch_.fetch_add(1, std::memory_order_release);
  }

  struct RelationStore {
    mutable std::shared_mutex mu;
    std::unordered_map<ObjectId, std::unique_ptr<Object>> objects;
    std::unordered_map<std::string, ObjectId> by_key;
  };

  RelationStore& StoreFor(RelationId rel) const;

  /// Navigation core; the caller holds the relation's structure latch.
  Result<ResolvedPath> NavigateLocked(RelationId rel, ObjectId id,
                                      const Path& path) const;

  void IndexIids(const Value& v, RelationId rel, ObjectId obj);
  void UnindexIids(const Value& v);

  const Catalog* catalog_;
  std::atomic<uint64_t> mutation_epoch_{1};
  std::atomic<ObjectId> next_object_{1};
  std::atomic<Iid> next_iid_{1};
  mutable std::shared_mutex stores_mu_;
  mutable std::unordered_map<RelationId, std::unique_ptr<RelationStore>>
      stores_;
  mutable std::shared_mutex iid_mu_;
  std::unordered_map<Iid, IidInfo> iid_index_;
};

}  // namespace codlock::nf2

#endif  // CODLOCK_NF2_STORE_H_
