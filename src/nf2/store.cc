#include "nf2/store.h"

#include <deque>

namespace codlock::nf2 {

InstanceStore::RelationStore& InstanceStore::StoreFor(RelationId rel) const {
  {
    std::shared_lock lk(stores_mu_);
    auto it = stores_.find(rel);
    if (it != stores_.end()) return *it->second;
  }
  std::unique_lock lk(stores_mu_);
  auto& slot = stores_[rel];
  if (!slot) slot = std::make_unique<RelationStore>();
  return *slot;
}

void InstanceStore::AssignIids(Value* v) {
  v->set_iid(next_iid_.fetch_add(1, std::memory_order_relaxed));
  if (!v->is_atomic() && !v->is_ref()) {
    for (Value& child : v->children()) AssignIids(&child);
  }
}

Result<ObjectId> InstanceStore::Insert(RelationId rel, Value root) {
  BumpMutationEpoch();
  if (rel >= catalog_->num_relations()) {
    return Status::NotFound("unknown relation id");
  }
  const RelationDef& def = catalog_->relation(rel);
  CODLOCK_RETURN_IF_ERROR(root.Validate(*catalog_, def.root));

  auto obj = std::make_unique<Object>();
  obj->relation = rel;
  obj->id = next_object_.fetch_add(1, std::memory_order_relaxed);
  obj->root = std::move(root);
  AssignIids(&obj->root);

  // Extract the key value (first key attribute among root fields).
  if (def.key_attr != kInvalidAttr) {
    const AttrDef& root_def = catalog_->attr(def.root);
    for (size_t i = 0; i < root_def.children.size(); ++i) {
      if (root_def.children[i] == def.key_attr) {
        const Value& kv = obj->root.children()[i];
        if (kv.kind() == AttrKind::kString) {
          obj->key = kv.as_string();
        } else if (kv.kind() == AttrKind::kInt) {
          obj->key = std::to_string(kv.as_int());
        }
        break;
      }
    }
  }

  RelationStore& rs = StoreFor(rel);
  std::unique_lock lk(rs.mu);
  if (!obj->key.empty()) {
    auto [it, inserted] = rs.by_key.try_emplace(obj->key, obj->id);
    if (!inserted) {
      return Status::AlreadyExists("relation '" + def.name +
                                   "' already contains key '" + obj->key +
                                   "'");
    }
  }
  ObjectId id = obj->id;
  const Value& root_ref = obj->root;
  rs.objects.emplace(id, std::move(obj));
  IndexIids(root_ref, rel, id);
  return id;
}

void InstanceStore::IndexIids(const Value& v, RelationId rel, ObjectId obj) {
  std::unique_lock lk(iid_mu_);
  std::vector<const Value*> work{&v};
  while (!work.empty()) {
    const Value* cur = work.back();
    work.pop_back();
    iid_index_[cur->iid()] = IidInfo{rel, obj, cur};
    if (!cur->is_atomic() && !cur->is_ref()) {
      for (const Value& child : cur->children()) work.push_back(&child);
    }
  }
}

void InstanceStore::UnindexIids(const Value& v) {
  std::unique_lock lk(iid_mu_);
  std::vector<const Value*> work{&v};
  while (!work.empty()) {
    const Value* cur = work.back();
    work.pop_back();
    iid_index_.erase(cur->iid());
    if (!cur->is_atomic() && !cur->is_ref()) {
      for (const Value& child : cur->children()) work.push_back(&child);
    }
  }
}

Result<InstanceStore::IidInfo> InstanceStore::FindIid(Iid iid) const {
  std::shared_lock lk(iid_mu_);
  auto it = iid_index_.find(iid);
  if (it == iid_index_.end()) {
    return Status::NotFound("instance id " + std::to_string(iid) +
                            " is not indexed");
  }
  return it->second;
}

Status InstanceStore::Erase(RelationId rel, ObjectId id) {
  BumpMutationEpoch();
  RelationStore& rs = StoreFor(rel);
  std::unique_lock lk(rs.mu);
  auto it = rs.objects.find(id);
  if (it == rs.objects.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not found in relation " + std::to_string(rel));
  }
  if (!it->second->key.empty()) rs.by_key.erase(it->second->key);
  UnindexIids(it->second->root);
  rs.objects.erase(it);
  return Status::OK();
}

Result<const Object*> InstanceStore::Get(RelationId rel, ObjectId id) const {
  RelationStore& rs = StoreFor(rel);
  std::shared_lock lk(rs.mu);
  auto it = rs.objects.find(id);
  if (it == rs.objects.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not found in relation " + std::to_string(rel));
  }
  return const_cast<const Object*>(it->second.get());
}

Result<const Object*> InstanceStore::FindByKey(RelationId rel,
                                               const std::string& key) const {
  RelationStore& rs = StoreFor(rel);
  std::shared_lock lk(rs.mu);
  auto it = rs.by_key.find(key);
  if (it == rs.by_key.end()) {
    return Status::NotFound("key '" + key + "' not found in relation " +
                            std::to_string(rel));
  }
  return const_cast<const Object*>(rs.objects.at(it->second).get());
}

Result<Object*> InstanceStore::GetMutable(RelationId rel, ObjectId id) {
  BumpMutationEpoch();
  RelationStore& rs = StoreFor(rel);
  std::shared_lock lk(rs.mu);
  auto it = rs.objects.find(id);
  if (it == rs.objects.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not found in relation " + std::to_string(rel));
  }
  return it->second.get();
}

namespace {

/// Finds the element of collection \p coll whose key attribute equals
/// \p key; returns nullptr if absent.  \p elem_def must be the collection's
/// element attribute (a tuple with a key field, per the Fig. 1 idiom).
const Value* FindElemByKey(const Catalog& catalog, const AttrDef& elem_def,
                           const Value& coll, const std::string& key) {
  // Locate the key field index within the element tuple.
  if (elem_def.kind != AttrKind::kTuple) return nullptr;
  size_t key_idx = elem_def.children.size();
  for (size_t i = 0; i < elem_def.children.size(); ++i) {
    if (catalog.attr(elem_def.children[i]).is_key) {
      key_idx = i;
      break;
    }
  }
  if (key_idx == elem_def.children.size()) return nullptr;
  for (const Value& elem : coll.children()) {
    const Value& kv = elem.children()[key_idx];
    if (kv.kind() == AttrKind::kString && kv.as_string() == key) return &elem;
    if (kv.kind() == AttrKind::kInt && std::to_string(kv.as_int()) == key) {
      return &elem;
    }
  }
  return nullptr;
}

}  // namespace

Result<ResolvedPath> InstanceStore::Navigate(RelationId rel, ObjectId id,
                                             const Path& path) const {
  // Structure latch (action-oriented, [BaSc77]): navigation reads the
  // value tree, which a concurrent structural update (AddElement/
  // RemoveElement under the exclusive latch) may relocate.  Callers that
  // dereference the returned pointers after blocking on transaction locks
  // must re-resolve through FindIid (see query::QueryExecutor).
  RelationStore& rs = StoreFor(rel);
  std::shared_lock latch(rs.mu);
  return NavigateLocked(rel, id, path);
}

Result<ResolvedPath> InstanceStore::NavigateLocked(RelationId rel,
                                                   ObjectId id,
                                                   const Path& path) const {
  RelationStore& rs = StoreFor(rel);
  auto oit = rs.objects.find(id);
  if (oit == rs.objects.end()) {
    return Status::NotFound("object " + std::to_string(id) +
                            " not found in relation " + std::to_string(rel));
  }
  Result<const Object*> obj(const_cast<const Object*>(oit->second.get()));

  ResolvedPath out;
  out.relation = rel;
  out.object = id;
  AttrId cur_attr = catalog_->relation(rel).root;
  const Value* cur = &(*obj)->root;
  out.steps.push_back({cur_attr, cur, cur->iid()});

  for (const PathStep& step : path) {
    const AttrDef& cur_def = catalog_->attr(cur_attr);
    if (cur_def.kind != AttrKind::kTuple) {
      return Status::InvalidArgument(
          "path step '" + step.attr_name + "' applied to non-tuple node '" +
          catalog_->AttrPath(cur_attr) + "'");
    }
    Result<AttrId> field = catalog_->FindField(cur_attr, step.attr_name);
    if (!field.ok()) return field.status();
    // Locate the field's position to descend in the value tree.
    size_t idx = 0;
    for (; idx < cur_def.children.size(); ++idx) {
      if (cur_def.children[idx] == *field) break;
    }
    cur_attr = *field;
    cur = &cur->children()[idx];
    out.steps.push_back({cur_attr, cur, cur->iid()});

    if (step.selects_element()) {
      const AttrDef& field_def = catalog_->attr(cur_attr);
      if (!IsCollection(field_def.kind)) {
        return Status::InvalidArgument("element selection on non-collection '" +
                                       catalog_->AttrPath(cur_attr) + "'");
      }
      AttrId elem_attr = field_def.children[0];
      const Value* elem = nullptr;
      if (!step.elem_key.empty()) {
        elem = FindElemByKey(*catalog_, catalog_->attr(elem_attr), *cur,
                             step.elem_key);
        if (elem == nullptr) {
          return Status::NotFound("no element with key '" + step.elem_key +
                                  "' in '" + catalog_->AttrPath(cur_attr) +
                                  "'");
        }
      } else {
        if (step.index < 0 ||
            static_cast<size_t>(step.index) >= cur->children().size()) {
          return Status::NotFound("index " + std::to_string(step.index) +
                                  " out of range in '" +
                                  catalog_->AttrPath(cur_attr) + "'");
        }
        elem = &cur->children()[static_cast<size_t>(step.index)];
      }
      cur_attr = elem_attr;
      cur = elem;
      out.steps.push_back({cur_attr, cur, cur->iid()});
    }
  }
  return out;
}

Result<const Object*> InstanceStore::Deref(const RefValue& ref) const {
  return Get(ref.relation, ref.object);
}

Result<Iid> InstanceStore::AddElement(RelationId rel, ObjectId id,
                                      const Path& coll_path, Value elem) {
  BumpMutationEpoch();
  // Exclusive structure latch: relocating the element buffer must not
  // race with concurrent navigation (shared latch holders).
  RelationStore& rs = StoreFor(rel);
  std::unique_lock latch(rs.mu);
  Result<ResolvedPath> rp = NavigateLocked(rel, id, coll_path);
  if (!rp.ok()) return rp.status();
  const AttrDef& coll_def = catalog_->attr(rp->target_attr());
  if (!IsCollection(coll_def.kind)) {
    return Status::InvalidArgument("AddElement target '" +
                                   catalog_->AttrPath(rp->target_attr()) +
                                   "' is not a set or list");
  }
  AttrId elem_attr = coll_def.children[0];
  CODLOCK_RETURN_IF_ERROR(elem.Validate(*catalog_, elem_attr));

  // Reject duplicate keys within the collection (Fig. 1's "_id" idiom).
  const AttrDef& elem_def = catalog_->attr(elem_attr);
  if (elem_def.kind == AttrKind::kTuple) {
    for (size_t i = 0; i < elem_def.children.size(); ++i) {
      if (!catalog_->attr(elem_def.children[i]).is_key) continue;
      const Value& kv = elem.children()[i];
      if (kv.kind() == AttrKind::kString &&
          FindElemByKey(*catalog_, elem_def, *rp->target(), kv.as_string()) !=
              nullptr) {
        return Status::AlreadyExists("collection already contains key '" +
                                     kv.as_string() + "'");
      }
      break;
    }
  }

  // Mutation is legal here: the store owns the value tree and the caller
  // holds an exclusive lock on the collection.
  auto* coll = const_cast<Value*>(rp->target());
  AssignIids(&elem);
  Iid new_iid = elem.iid();
  coll->children().push_back(std::move(elem));
  // The push_back may have relocated the element buffer: refresh the iid
  // index for the whole collection subtree.
  IndexIids(*coll, rel, id);
  return new_iid;
}

Status InstanceStore::RemoveElement(RelationId rel, ObjectId id,
                                    const Path& coll_path,
                                    const std::string& elem_key) {
  BumpMutationEpoch();
  RelationStore& rs = StoreFor(rel);
  std::unique_lock latch(rs.mu);
  Result<ResolvedPath> rp = NavigateLocked(rel, id, coll_path);
  if (!rp.ok()) return rp.status();
  const AttrDef& coll_def = catalog_->attr(rp->target_attr());
  if (!IsCollection(coll_def.kind)) {
    return Status::InvalidArgument("RemoveElement target '" +
                                   catalog_->AttrPath(rp->target_attr()) +
                                   "' is not a set or list");
  }
  const AttrDef& elem_def = catalog_->attr(coll_def.children[0]);
  const Value* found =
      FindElemByKey(*catalog_, elem_def, *rp->target(), elem_key);
  if (found == nullptr) {
    return Status::NotFound("no element with key '" + elem_key + "' in '" +
                            catalog_->AttrPath(rp->target_attr()) + "'");
  }
  auto* coll = const_cast<Value*>(rp->target());
  size_t idx = static_cast<size_t>(found - coll->children().data());
  UnindexIids(coll->children()[idx]);
  coll->children().erase(coll->children().begin() + static_cast<long>(idx));
  IndexIids(*coll, rel, id);
  return Status::OK();
}

std::vector<RefValue> InstanceStore::CollectRefs(const Value& v) {
  std::vector<RefValue> out;
  std::deque<const Value*> work{&v};
  while (!work.empty()) {
    const Value* cur = work.front();
    work.pop_front();
    if (cur->is_ref()) {
      const RefValue& ref = cur->as_ref();
      bool seen = false;
      for (const RefValue& r : out) {
        if (r == ref) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(ref);
    } else if (!cur->is_atomic()) {
      for (const Value& child : cur->children()) work.push_back(&child);
    }
  }
  return out;
}

namespace {

void ScanForRefs(const Catalog& catalog, AttrId attr, const Value& v,
                 RelationId target_rel, ObjectId target_obj,
                 std::vector<std::pair<AttrId, Iid>>* chain,
                 std::vector<std::vector<std::pair<AttrId, Iid>>>* hits,
                 uint64_t* scanned) {
  if (scanned != nullptr) ++*scanned;
  chain->emplace_back(attr, v.iid());
  if (v.is_ref()) {
    const RefValue& ref = v.as_ref();
    if (ref.relation == target_rel && ref.object == target_obj) {
      hits->push_back(*chain);
    }
  } else if (!v.is_atomic()) {
    const AttrDef& def = catalog.attr(attr);
    if (IsCollection(def.kind)) {
      AttrId elem = def.children[0];
      for (const Value& child : v.children()) {
        ScanForRefs(catalog, elem, child, target_rel, target_obj, chain, hits,
                    scanned);
      }
    } else {  // tuple
      for (size_t i = 0; i < v.children().size(); ++i) {
        ScanForRefs(catalog, def.children[i], v.children()[i], target_rel,
                    target_obj, chain, hits, scanned);
      }
    }
  }
  chain->pop_back();
}

}  // namespace

std::vector<BackRefPath> InstanceStore::FindReferencing(
    RelationId target_rel, ObjectId target_obj,
    uint64_t* scanned_nodes) const {
  std::vector<BackRefPath> out;
  // Only relations whose schema contains a ref to target_rel can hold
  // back references; the scan over their *instances* is the expensive part.
  std::vector<RelationId> candidates =
      catalog_->ReferencingRelations(target_rel);
  for (RelationId rel : candidates) {
    RelationStore& rs = StoreFor(rel);
    std::shared_lock lk(rs.mu);
    for (const auto& [id, obj] : rs.objects) {
      std::vector<std::pair<AttrId, Iid>> chain;
      std::vector<std::vector<std::pair<AttrId, Iid>>> hits;
      ScanForRefs(*catalog_, catalog_->relation(rel).root, obj->root,
                  target_rel, target_obj, &chain, &hits, scanned_nodes);
      for (auto& hit : hits) {
        BackRefPath brp;
        brp.relation = rel;
        brp.object = id;
        brp.chain = std::move(hit);
        out.push_back(std::move(brp));
      }
    }
  }
  return out;
}

std::vector<ObjectId> InstanceStore::ObjectsOf(RelationId rel) const {
  RelationStore& rs = StoreFor(rel);
  std::shared_lock lk(rs.mu);
  std::vector<ObjectId> out;
  out.reserve(rs.objects.size());
  for (const auto& [id, obj] : rs.objects) out.push_back(id);
  return out;
}

size_t InstanceStore::ObjectCount(RelationId rel) const {
  RelationStore& rs = StoreFor(rel);
  std::shared_lock lk(rs.mu);
  return rs.objects.size();
}

Result<Iid> InstanceStore::RootIid(RelationId rel, ObjectId id) const {
  Result<const Object*> obj = Get(rel, id);
  if (!obj.ok()) return obj.status();
  return (*obj)->root.iid();
}

}  // namespace codlock::nf2
