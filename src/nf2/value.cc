#include "nf2/value.h"

#include <sstream>

namespace codlock::nf2 {

Status Value::Validate(const Catalog& catalog, AttrId attr) const {
  const AttrDef& def = catalog.attr(attr);
  if (def.kind != kind_) {
    return Status::InvalidArgument(
        "value kind " + std::string(AttrKindName(kind_)) +
        " does not match attribute '" + catalog.AttrPath(attr) + "' of kind " +
        std::string(AttrKindName(def.kind)));
  }
  switch (kind_) {
    case AttrKind::kString:
    case AttrKind::kInt:
    case AttrKind::kReal:
    case AttrKind::kBool:
      return Status::OK();
    case AttrKind::kRef: {
      const RefValue& ref = as_ref();
      if (ref.relation != def.ref_target) {
        return Status::InvalidArgument(
            "reference value at '" + catalog.AttrPath(attr) +
            "' targets relation " + std::to_string(ref.relation) +
            " but the schema declares " + std::to_string(def.ref_target));
      }
      if (ref.object == kInvalidObject) {
        return Status::InvalidArgument("null reference at '" +
                                       catalog.AttrPath(attr) + "'");
      }
      return Status::OK();
    }
    case AttrKind::kSet:
    case AttrKind::kList: {
      AttrId elem = def.children[0];
      for (const Value& child : children()) {
        CODLOCK_RETURN_IF_ERROR(child.Validate(catalog, elem));
      }
      return Status::OK();
    }
    case AttrKind::kTuple: {
      if (children().size() != def.children.size()) {
        return Status::InvalidArgument(
            "tuple value at '" + catalog.AttrPath(attr) + "' has " +
            std::to_string(children().size()) + " fields, schema declares " +
            std::to_string(def.children.size()));
      }
      for (size_t i = 0; i < children().size(); ++i) {
        CODLOCK_RETURN_IF_ERROR(
            children()[i].Validate(catalog, def.children[i]));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable value kind");
}

size_t Value::TreeSize() const {
  if (is_atomic() || is_ref()) return 1;
  size_t n = 1;
  for (const Value& child : children()) n += child.TreeSize();
  return n;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case AttrKind::kString:
      os << '\'' << as_string() << '\'';
      break;
    case AttrKind::kInt:
      os << as_int();
      break;
    case AttrKind::kReal:
      os << as_real();
      break;
    case AttrKind::kBool:
      os << (as_bool() ? "true" : "false");
      break;
    case AttrKind::kRef:
      os << "ref(" << as_ref().relation << ":" << as_ref().object << ")";
      break;
    case AttrKind::kSet:
    case AttrKind::kList: {
      os << (kind_ == AttrKind::kSet ? '{' : '[');
      bool first = true;
      for (const Value& c : children()) {
        if (!first) os << ", ";
        first = false;
        os << c.ToString();
      }
      os << (kind_ == AttrKind::kSet ? '}' : ']');
      break;
    }
    case AttrKind::kTuple: {
      os << '(';
      bool first = true;
      for (const Value& c : children()) {
        if (!first) os << ", ";
        first = false;
        os << c.ToString();
      }
      os << ')';
      break;
    }
  }
  return os.str();
}

std::string PathToString(const Path& path) {
  std::string out;
  for (const PathStep& step : path) {
    if (!out.empty()) out += '.';
    out += step.attr_name;
    if (!step.elem_key.empty()) {
      out += "['" + step.elem_key + "']";
    } else if (step.index >= 0) {
      out += "[" + std::to_string(step.index) + "]";
    }
  }
  return out;
}

}  // namespace codlock::nf2
