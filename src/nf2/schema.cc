#include "nf2/schema.h"

namespace codlock::nf2 {

bool IsAtomic(AttrKind kind) {
  switch (kind) {
    case AttrKind::kString:
    case AttrKind::kInt:
    case AttrKind::kReal:
    case AttrKind::kBool:
      return true;
    default:
      return false;
  }
}

bool IsCollection(AttrKind kind) {
  return kind == AttrKind::kSet || kind == AttrKind::kList;
}

std::string_view AttrKindName(AttrKind kind) {
  switch (kind) {
    case AttrKind::kString:
      return "string";
    case AttrKind::kInt:
      return "int";
    case AttrKind::kReal:
      return "real";
    case AttrKind::kBool:
      return "bool";
    case AttrKind::kSet:
      return "set";
    case AttrKind::kList:
      return "list";
    case AttrKind::kTuple:
      return "tuple";
    case AttrKind::kRef:
      return "ref";
  }
  return "unknown";
}

Result<DatabaseId> Catalog::CreateDatabase(const std::string& name) {
  if (FindDatabase(name).ok()) {
    return Status::AlreadyExists("database '" + name + "' already exists");
  }
  DatabaseId id = static_cast<DatabaseId>(databases_.size());
  databases_.push_back(DatabaseDef{id, name});
  return id;
}

Result<SegmentId> Catalog::CreateSegment(DatabaseId db,
                                         const std::string& name) {
  if (db >= databases_.size()) {
    return Status::NotFound("unknown database id");
  }
  if (FindSegment(name).ok()) {
    return Status::AlreadyExists("segment '" + name + "' already exists");
  }
  SegmentId id = static_cast<SegmentId>(segments_.size());
  segments_.push_back(SegmentDef{id, name, db});
  return id;
}

Result<RelationId> Catalog::CreateRelation(SegmentId segment,
                                           const std::string& name,
                                           const AttrSpec& spec) {
  if (segment >= segments_.size()) {
    return Status::NotFound("unknown segment id");
  }
  if (FindRelation(name).ok()) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  if (spec.kind != AttrKind::kTuple) {
    return Status::InvalidArgument(
        "relation root spec must be a tuple (got " +
        std::string(AttrKindName(spec.kind)) + ")");
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  RelationDef rel;
  rel.id = id;
  rel.name = name;
  rel.segment = segment;
  rel.database = segments_[segment].database;
  relations_.push_back(rel);

  Status st;
  AttrId root = AddAttrTree(spec, id, kInvalidAttr, 0, &st);
  if (!st.ok()) {
    relations_.pop_back();
    // Attribute-table entries added by the failed tree remain but are
    // unreachable; the catalog is DDL-time only so this is acceptable.
    return st;
  }
  relations_[id].root = root;
  for (AttrId child : attrs_[root].children) {
    if (attrs_[child].is_key) {
      relations_[id].key_attr = child;
      break;
    }
  }
  return id;
}

AttrId Catalog::AddAttrTree(const AttrSpec& spec, RelationId rel,
                            AttrId parent, uint32_t depth, Status* status) {
  AttrId id = static_cast<AttrId>(attrs_.size());
  AttrDef def;
  def.id = id;
  def.name = spec.name;
  def.kind = spec.kind;
  def.is_key = spec.is_key;
  def.relation = rel;
  def.parent = parent;
  def.depth = depth;

  if (spec.kind == AttrKind::kRef) {
    Result<RelationId> target = FindRelation(spec.ref_relation);
    if (!target.ok()) {
      *status = Status::InvalidArgument(
          "reference attribute '" + spec.name +
          "' targets unknown relation '" + spec.ref_relation + "'");
      return kInvalidAttr;
    }
    if (*target == rel) {
      *status = Status::InvalidArgument(
          "recursive reference in attribute '" + spec.name +
          "': the paper's technique covers non-recursive complex objects");
      return kInvalidAttr;
    }
    def.ref_target = *target;
  }
  if (IsCollection(spec.kind) && spec.children.size() != 1) {
    *status = Status::InvalidArgument("set/list attribute '" + spec.name +
                                      "' needs exactly one element type");
    return kInvalidAttr;
  }
  if (spec.kind == AttrKind::kTuple && spec.children.empty()) {
    *status = Status::InvalidArgument("tuple attribute '" + spec.name +
                                      "' needs at least one field");
    return kInvalidAttr;
  }
  if (IsAtomic(spec.kind) && !spec.children.empty()) {
    *status = Status::InvalidArgument("atomic attribute '" + spec.name +
                                      "' cannot have children");
    return kInvalidAttr;
  }

  attrs_.push_back(def);
  for (const AttrSpec& child : spec.children) {
    AttrId cid = AddAttrTree(child, rel, id, depth + 1, status);
    if (!status->ok()) return kInvalidAttr;
    attrs_[id].children.push_back(cid);
  }
  return id;
}

Result<DatabaseId> Catalog::FindDatabase(const std::string& name) const {
  for (const DatabaseDef& d : databases_) {
    if (d.name == name) return d.id;
  }
  return Status::NotFound("database '" + name + "' not found");
}

Result<SegmentId> Catalog::FindSegment(const std::string& name) const {
  for (const SegmentDef& s : segments_) {
    if (s.name == name) return s.id;
  }
  return Status::NotFound("segment '" + name + "' not found");
}

Result<RelationId> Catalog::FindRelation(const std::string& name) const {
  for (const RelationDef& r : relations_) {
    if (r.name == name) return r.id;
  }
  return Status::NotFound("relation '" + name + "' not found");
}

Result<AttrId> Catalog::FindField(AttrId tuple_attr,
                                  const std::string& name) const {
  if (tuple_attr >= attrs_.size()) return Status::NotFound("unknown attr id");
  const AttrDef& def = attrs_[tuple_attr];
  if (def.kind != AttrKind::kTuple) {
    return Status::InvalidArgument("attribute '" + def.name +
                                   "' is not a tuple");
  }
  for (AttrId child : def.children) {
    if (attrs_[child].name == name) return child;
  }
  return Status::NotFound("tuple '" + def.name + "' has no field '" + name +
                          "'");
}

Result<AttrId> Catalog::ElementAttr(AttrId collection_attr) const {
  if (collection_attr >= attrs_.size()) {
    return Status::NotFound("unknown attr id");
  }
  const AttrDef& def = attrs_[collection_attr];
  if (!IsCollection(def.kind)) {
    return Status::InvalidArgument("attribute '" + def.name +
                                   "' is not a set or list");
  }
  return def.children[0];
}

std::vector<RelationId> Catalog::ReferencingRelations(RelationId rel) const {
  std::vector<RelationId> out;
  for (const AttrDef& a : attrs_) {
    if (a.kind == AttrKind::kRef && a.ref_target == rel) {
      if (out.empty() || out.back() != a.relation) {
        out.push_back(a.relation);
      }
    }
  }
  return out;
}

bool Catalog::HasReferences(RelationId rel) const {
  for (const AttrDef& a : attrs_) {
    if (a.relation == rel && a.kind == AttrKind::kRef) return true;
  }
  return false;
}

std::string Catalog::AttrPath(AttrId attr) const {
  if (attr >= attrs_.size()) return "?";
  std::vector<const AttrDef*> chain;
  for (AttrId cur = attr; cur != kInvalidAttr; cur = attrs_[cur].parent) {
    chain.push_back(&attrs_[cur]);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += (*it)->name;
  }
  return out;
}

}  // namespace codlock::nf2
