/// \file serialize.h
/// \brief Persistence for schema and instances.
///
/// Serializes a whole database — catalog (databases, segments, relations,
/// attribute trees) and instance store (complex objects with their
/// references) — to a line-oriented text format, and loads it back.  Used
/// by examples and tests to ship reproducible databases; a production
/// system would keep pages, but the lock technique is storage-agnostic
/// (§5 lists "the projection of the proposed lock technique onto different
/// implementations of storage structures" as orthogonal future work).
///
/// Instance ids are *not* preserved across save/load — they are assigned
/// afresh on insert, exactly like object surrogates.  Object references
/// are rewritten to the new surrogates by key, so referential structure is
/// preserved.

#ifndef CODLOCK_NF2_SERIALIZE_H_
#define CODLOCK_NF2_SERIALIZE_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "nf2/schema.h"
#include "nf2/store.h"
#include "util/result.h"

namespace codlock::nf2 {

/// \brief A freshly loaded database.
struct LoadedDatabase {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<InstanceStore> store;
};

/// Serializes \p catalog and \p store to \p out.
Status SaveDatabase(const Catalog& catalog, const InstanceStore& store,
                    std::ostream* out);

/// Parses a database from \p in.
Result<LoadedDatabase> LoadDatabase(std::istream* in);

/// Convenience file wrappers.
Status SaveDatabaseToFile(const Catalog& catalog, const InstanceStore& store,
                          const std::string& path);
Result<LoadedDatabase> LoadDatabaseFromFile(const std::string& path);

}  // namespace codlock::nf2

#endif  // CODLOCK_NF2_SERIALIZE_H_
