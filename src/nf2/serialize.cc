#include "nf2/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace codlock::nf2 {

namespace {

constexpr const char kMagic[] = "codlockdb 1";

void WriteQuoted(std::ostream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

/// Writes an attribute subtree as an s-expression.
void WriteAttrSpec(const Catalog& catalog, AttrId attr, std::ostream* out) {
  const AttrDef& def = catalog.attr(attr);
  *out << '(';
  switch (def.kind) {
    case AttrKind::kString:
      *out << (def.is_key ? "key " : "str ");
      break;
    case AttrKind::kInt:
      *out << "int ";
      break;
    case AttrKind::kReal:
      *out << "real ";
      break;
    case AttrKind::kBool:
      *out << "bool ";
      break;
    case AttrKind::kSet:
      *out << "set ";
      break;
    case AttrKind::kList:
      *out << "list ";
      break;
    case AttrKind::kTuple:
      *out << "tuple ";
      break;
    case AttrKind::kRef:
      *out << "ref ";
      break;
  }
  WriteQuoted(out, def.name);
  if (def.kind == AttrKind::kRef) {
    *out << ' ';
    WriteQuoted(out, catalog.relation(def.ref_target).name);
  }
  for (AttrId child : def.children) {
    *out << ' ';
    WriteAttrSpec(catalog, child, out);
  }
  *out << ')';
}

Status WriteValue(const Catalog& catalog, const InstanceStore& store,
                  const Value& v, std::ostream* out) {
  switch (v.kind()) {
    case AttrKind::kString:
      WriteQuoted(out, v.as_string());
      return Status::OK();
    case AttrKind::kInt:
      *out << 'i' << v.as_int();
      return Status::OK();
    case AttrKind::kReal:
      *out << 'r' << v.as_real();
      return Status::OK();
    case AttrKind::kBool:
      *out << (v.as_bool() ? "b1" : "b0");
      return Status::OK();
    case AttrKind::kRef: {
      Result<const Object*> target = store.Deref(v.as_ref());
      if (!target.ok()) {
        return Status::FailedPrecondition(
            "dangling reference cannot be serialized");
      }
      if ((*target)->key.empty()) {
        return Status::FailedPrecondition(
            "reference to a keyless object cannot be serialized");
      }
      *out << "(ref ";
      WriteQuoted(out, catalog.relation(v.as_ref().relation).name);
      *out << ' ';
      WriteQuoted(out, (*target)->key);
      *out << ')';
      return Status::OK();
    }
    case AttrKind::kSet:
    case AttrKind::kList:
    case AttrKind::kTuple: {
      *out << '(' << (v.kind() == AttrKind::kSet
                          ? "set"
                          : v.kind() == AttrKind::kList ? "list" : "tuple");
      for (const Value& child : v.children()) {
        *out << ' ';
        CODLOCK_RETURN_IF_ERROR(WriteValue(catalog, store, child, out));
      }
      *out << ')';
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

/// Minimal s-expression reader: atoms, quoted strings, parenthesized lists.
class SexprReader {
 public:
  explicit SexprReader(std::string text) : text_(std::move(text)) {}

  struct Node {
    bool is_list = false;
    std::string atom;      // unquoted or quoted text
    bool was_quoted = false;
    std::vector<Node> children;
  };

  Result<Node> Read() {
    Result<Node> n = ReadNode();
    if (!n.ok()) return n;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing data after s-expression");
    }
    return n;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<Node> ReadNode() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of s-expression");
    }
    if (text_[pos_] == '(') {
      ++pos_;
      Node list;
      list.is_list = true;
      while (true) {
        SkipWs();
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated list");
        }
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        Result<Node> child = ReadNode();
        if (!child.ok()) return child;
        list.children.push_back(std::move(*child));
      }
    }
    if (text_[pos_] == '"') {
      ++pos_;
      Node atom;
      atom.was_quoted = true;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        atom.atom += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated string");
      }
      ++pos_;  // closing quote
      return atom;
    }
    Node atom;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      atom.atom += text_[pos_++];
    }
    if (atom.atom.empty()) {
      return Status::InvalidArgument("empty atom in s-expression");
    }
    return atom;
  }

  const std::string text_;
  size_t pos_ = 0;
};

Result<AttrSpec> SpecFromNode(const SexprReader::Node& node) {
  if (!node.is_list || node.children.size() < 2 ||
      node.children[0].is_list || node.children[1].is_list) {
    return Status::InvalidArgument("malformed attribute spec");
  }
  const std::string& kind = node.children[0].atom;
  const std::string& name = node.children[1].atom;
  if (kind == "key") return AttrSpec::Key(name);
  if (kind == "str") return AttrSpec::Str(name);
  if (kind == "int") return AttrSpec::Int(name);
  if (kind == "real") return AttrSpec::Real(name);
  if (kind == "bool") return AttrSpec::Bool(name);
  if (kind == "ref") {
    if (node.children.size() != 3) {
      return Status::InvalidArgument("ref spec needs a target relation");
    }
    return AttrSpec::Ref(name, node.children[2].atom);
  }
  if (kind == "set" || kind == "list") {
    if (node.children.size() != 3) {
      return Status::InvalidArgument(kind + " spec needs one element spec");
    }
    Result<AttrSpec> elem = SpecFromNode(node.children[2]);
    if (!elem.ok()) return elem;
    return kind == "set" ? AttrSpec::Set(name, std::move(*elem))
                         : AttrSpec::List(name, std::move(*elem));
  }
  if (kind == "tuple") {
    std::vector<AttrSpec> fields;
    for (size_t i = 2; i < node.children.size(); ++i) {
      Result<AttrSpec> field = SpecFromNode(node.children[i]);
      if (!field.ok()) return field;
      fields.push_back(std::move(*field));
    }
    return AttrSpec::Tuple(name, std::move(fields));
  }
  return Status::InvalidArgument("unknown attribute kind '" + kind + "'");
}

Result<Value> ValueFromNode(const Catalog& catalog,
                            const InstanceStore& store,
                            const SexprReader::Node& node) {
  if (!node.is_list) {
    const std::string& a = node.atom;
    if (node.was_quoted) return Value::OfString(a);
    if (a.size() >= 2 && a[0] == 'i') {
      return Value::OfInt(std::stoll(a.substr(1)));
    }
    if (a.size() >= 2 && a[0] == 'r') {
      return Value::OfReal(std::stod(a.substr(1)));
    }
    if (a == "b1") return Value::OfBool(true);
    if (a == "b0") return Value::OfBool(false);
    return Status::InvalidArgument("unknown value atom '" + a + "'");
  }
  if (node.children.empty() || node.children[0].is_list) {
    return Status::InvalidArgument("malformed value list");
  }
  const std::string& kind = node.children[0].atom;
  if (kind == "ref") {
    if (node.children.size() != 3) {
      return Status::InvalidArgument("ref value needs relation and key");
    }
    Result<RelationId> rel = catalog.FindRelation(node.children[1].atom);
    if (!rel.ok()) return rel.status();
    Result<const Object*> target =
        store.FindByKey(*rel, node.children[2].atom);
    if (!target.ok()) {
      return Status::InvalidArgument("reference target '" +
                                     node.children[2].atom +
                                     "' not loaded yet");
    }
    return Value::OfRef(*rel, (*target)->id);
  }
  std::vector<Value> children;
  for (size_t i = 1; i < node.children.size(); ++i) {
    Result<Value> child = ValueFromNode(catalog, store, node.children[i]);
    if (!child.ok()) return child;
    children.push_back(std::move(*child));
  }
  if (kind == "set") return Value::OfSet(std::move(children));
  if (kind == "list") return Value::OfList(std::move(children));
  if (kind == "tuple") return Value::OfTuple(std::move(children));
  return Status::InvalidArgument("unknown value kind '" + kind + "'");
}

}  // namespace

Status SaveDatabase(const Catalog& catalog, const InstanceStore& store,
                    std::ostream* out) {
  *out << kMagic << '\n';
  for (DatabaseId db = 0; db < catalog.num_databases(); ++db) {
    *out << "database ";
    WriteQuoted(out, catalog.database(db).name);
    *out << '\n';
  }
  for (SegmentId seg = 0; seg < catalog.num_segments(); ++seg) {
    *out << "segment ";
    WriteQuoted(out, catalog.database(catalog.segment(seg).database).name);
    *out << ' ';
    WriteQuoted(out, catalog.segment(seg).name);
    *out << '\n';
  }
  for (RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
    const RelationDef& def = catalog.relation(rel);
    *out << "relation ";
    WriteQuoted(out, catalog.segment(def.segment).name);
    *out << ' ';
    WriteAttrSpec(catalog, def.root, out);
    *out << '\n';
  }
  // Objects relation by relation: the non-recursive reference invariant
  // guarantees targets are loaded before referees.
  for (RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
    for (ObjectId id : store.ObjectsOf(rel)) {
      Result<const Object*> obj = store.Get(rel, id);
      if (!obj.ok()) continue;
      *out << "object ";
      WriteQuoted(out, catalog.relation(rel).name);
      *out << ' ';
      CODLOCK_RETURN_IF_ERROR(WriteValue(catalog, store, (*obj)->root, out));
      *out << '\n';
    }
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<LoadedDatabase> LoadDatabase(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || line != kMagic) {
    return Status::InvalidArgument("not a codlockdb file");
  }
  LoadedDatabase db;
  db.catalog = std::make_unique<Catalog>();
  db.store = nullptr;  // created after the schema is complete

  auto read_quoted = [](const std::string& text,
                        size_t* pos) -> Result<std::string> {
    while (*pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[*pos]))) {
      ++*pos;
    }
    if (*pos >= text.size() || text[*pos] != '"') {
      return Status::InvalidArgument("expected quoted name in: " + text);
    }
    ++*pos;
    std::string out;
    while (*pos < text.size() && text[*pos] != '"') {
      if (text[*pos] == '\\' && *pos + 1 < text.size()) ++*pos;
      out += text[(*pos)++];
    }
    if (*pos >= text.size()) {
      return Status::InvalidArgument("unterminated name in: " + text);
    }
    ++*pos;
    return out;
  };

  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::istringstream probe(line);
    std::string tag;
    probe >> tag;
    size_t pos = tag.size();

    if (tag == "database") {
      Result<std::string> name = read_quoted(line, &pos);
      if (!name.ok()) return name.status();
      Result<DatabaseId> id = db.catalog->CreateDatabase(*name);
      if (!id.ok()) return id.status();
    } else if (tag == "segment") {
      Result<std::string> dbname = read_quoted(line, &pos);
      if (!dbname.ok()) return dbname.status();
      Result<std::string> name = read_quoted(line, &pos);
      if (!name.ok()) return name.status();
      Result<DatabaseId> parent = db.catalog->FindDatabase(*dbname);
      if (!parent.ok()) return parent.status();
      Result<SegmentId> id = db.catalog->CreateSegment(*parent, *name);
      if (!id.ok()) return id.status();
    } else if (tag == "relation") {
      Result<std::string> segname = read_quoted(line, &pos);
      if (!segname.ok()) return segname.status();
      SexprReader reader(line.substr(pos));
      Result<SexprReader::Node> node = reader.Read();
      if (!node.ok()) return node.status();
      Result<AttrSpec> spec = SpecFromNode(*node);
      if (!spec.ok()) return spec.status();
      Result<SegmentId> seg = db.catalog->FindSegment(*segname);
      if (!seg.ok()) return seg.status();
      Result<RelationId> rel =
          db.catalog->CreateRelation(*seg, spec->name, *spec);
      if (!rel.ok()) return rel.status();
    } else if (tag == "object") {
      if (db.store == nullptr) {
        db.store = std::make_unique<InstanceStore>(db.catalog.get());
      }
      Result<std::string> relname = read_quoted(line, &pos);
      if (!relname.ok()) return relname.status();
      Result<RelationId> rel = db.catalog->FindRelation(*relname);
      if (!rel.ok()) return rel.status();
      SexprReader reader(line.substr(pos));
      Result<SexprReader::Node> node = reader.Read();
      if (!node.ok()) return node.status();
      Result<Value> value = ValueFromNode(*db.catalog, *db.store, *node);
      if (!value.ok()) return value.status();
      Result<ObjectId> id = db.store->Insert(*rel, std::move(*value));
      if (!id.ok()) return id.status();
    } else {
      return Status::InvalidArgument("unknown record tag '" + tag + "'");
    }
  }
  if (db.store == nullptr) {
    db.store = std::make_unique<InstanceStore>(db.catalog.get());
  }
  return db;
}

Status SaveDatabaseToFile(const Catalog& catalog, const InstanceStore& store,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "'");
  return SaveDatabase(catalog, store, &out);
}

Result<LoadedDatabase> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return LoadDatabase(&in);
}

}  // namespace codlock::nf2
