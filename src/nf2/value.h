/// \file value.h
/// \brief Instance values of the extended NF² model.
///
/// A complex object is a tree of `Value`s mirroring its relation's schema
/// tree: atomic leaves, ref leaves (pointing to a complex object of another
/// relation — the paper's "common data"), and set/list/tuple inner nodes.
///
/// Every value node carries an *instance id* (`Iid`), assigned by the
/// `InstanceStore` when the object is inserted.  Instance ids identify
/// lockable sub-objects: the lock resource for a sub-object is the pair
/// (lock-graph node, instance id).  A referenced (shared) complex object has
/// one instance id regardless of the path used to reach it — this is what
/// makes locks on common data visible to "from-the-side" accessors.

#ifndef CODLOCK_NF2_VALUE_H_
#define CODLOCK_NF2_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nf2/schema.h"
#include "util/result.h"

namespace codlock::nf2 {

/// Surrogate of a complex object within its relation.
using ObjectId = uint64_t;
/// Instance id of any lockable sub-object (store-global surrogate).
using Iid = uint64_t;

inline constexpr ObjectId kInvalidObject = 0;
inline constexpr Iid kInvalidIid = 0;

/// \brief A reference leaf: points to a complex object of another relation.
struct RefValue {
  RelationId relation = kInvalidRelation;
  ObjectId object = kInvalidObject;

  friend bool operator==(const RefValue&, const RefValue&) = default;
};

/// \brief One node of a complex-object instance tree.
class Value {
 public:
  Value() = default;

  static Value OfString(std::string s) {
    Value v;
    v.kind_ = AttrKind::kString;
    v.data_ = std::move(s);
    return v;
  }
  static Value OfInt(int64_t i) {
    Value v;
    v.kind_ = AttrKind::kInt;
    v.data_ = i;
    return v;
  }
  static Value OfReal(double d) {
    Value v;
    v.kind_ = AttrKind::kReal;
    v.data_ = d;
    return v;
  }
  static Value OfBool(bool b) {
    Value v;
    v.kind_ = AttrKind::kBool;
    v.data_ = b;
    return v;
  }
  static Value OfRef(RelationId rel, ObjectId obj) {
    Value v;
    v.kind_ = AttrKind::kRef;
    v.data_ = RefValue{rel, obj};
    return v;
  }
  static Value OfSet(std::vector<Value> elems) {
    Value v;
    v.kind_ = AttrKind::kSet;
    v.data_ = std::move(elems);
    return v;
  }
  static Value OfList(std::vector<Value> elems) {
    Value v;
    v.kind_ = AttrKind::kList;
    v.data_ = std::move(elems);
    return v;
  }
  static Value OfTuple(std::vector<Value> fields) {
    Value v;
    v.kind_ = AttrKind::kTuple;
    v.data_ = std::move(fields);
    return v;
  }

  AttrKind kind() const { return kind_; }
  bool is_atomic() const { return IsAtomic(kind_); }
  bool is_collection() const { return IsCollection(kind_); }
  bool is_tuple() const { return kind_ == AttrKind::kTuple; }
  bool is_ref() const { return kind_ == AttrKind::kRef; }

  const std::string& as_string() const { return std::get<std::string>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  bool as_bool() const { return std::get<bool>(data_); }
  const RefValue& as_ref() const { return std::get<RefValue>(data_); }

  /// Children: tuple fields (in schema order) or collection elements.
  const std::vector<Value>& children() const {
    return std::get<std::vector<Value>>(data_);
  }
  std::vector<Value>& children() {
    return std::get<std::vector<Value>>(data_);
  }

  void set_string(std::string s) { data_ = std::move(s); }
  void set_int(int64_t i) { data_ = i; }
  void set_real(double d) { data_ = d; }
  void set_bool(bool b) { data_ = b; }

  Iid iid() const { return iid_; }
  void set_iid(Iid iid) { iid_ = iid; }

  /// \brief Validates this value tree against schema attribute \p attr.
  ///
  /// Checks kind agreement at every node, tuple arity, collection element
  /// kinds, and that ref values target the declared relation.
  Status Validate(const Catalog& catalog, AttrId attr) const;

  /// Number of nodes in this value tree (diagnostics, generators).
  size_t TreeSize() const;

  /// Compact single-line rendering ("{cell_id: 'c1', ...}").
  std::string ToString() const;

 private:
  AttrKind kind_ = AttrKind::kString;
  std::variant<std::string, int64_t, double, bool, RefValue,
               std::vector<Value>>
      data_ = std::string();
  Iid iid_ = kInvalidIid;
};

/// \brief One navigation step within a complex object.
///
/// Selects a tuple field by \p attr_name, and — when the field is a
/// collection — optionally one element, by key value or by position.
struct PathStep {
  std::string attr_name;
  /// Selects the collection element whose key attribute equals this value.
  std::string elem_key;
  /// Selects the collection element at this position (used if elem_key
  /// is empty and index >= 0).
  int64_t index = -1;

  static PathStep Field(std::string name) {
    return PathStep{std::move(name), {}, -1};
  }
  static PathStep Elem(std::string name, std::string key) {
    return PathStep{std::move(name), std::move(key), -1};
  }
  static PathStep At(std::string name, int64_t idx) {
    return PathStep{std::move(name), {}, idx};
  }

  bool selects_element() const { return !elem_key.empty() || index >= 0; }
};

/// A navigation path: sequence of steps below a complex-object root.
using Path = std::vector<PathStep>;

/// Renders a path for diagnostics, e.g. "robots['r1'].trajectory".
std::string PathToString(const Path& path);

}  // namespace codlock::nf2

#endif  // CODLOCK_NF2_VALUE_H_
