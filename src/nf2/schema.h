/// \file schema.h
/// \brief Extended NF² schema and catalog.
///
/// The paper bases its discussion on the extended NF² data model
/// [PiAn86, ScSc86] with an additional *reference* concept: an attribute of
/// a relation may be atomic (string/int/real/bool), table-valued (a set or
/// a list), tuple-valued (a complex tuple), or a reference to common data.
/// Per the paper's assumption (§2), a reference always targets a *complex
/// object of a relation* (never a part of one), which loses no generality.
///
/// The catalog mirrors the System R hierarchy the lock graphs are built on:
/// databases contain segments, segments contain relations (Fig. 2/5).

#ifndef CODLOCK_NF2_SCHEMA_H_
#define CODLOCK_NF2_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace codlock::nf2 {

using DatabaseId = uint32_t;
using SegmentId = uint32_t;
using RelationId = uint32_t;
/// Index of an attribute definition in the catalog-global attribute table.
using AttrId = uint32_t;

inline constexpr AttrId kInvalidAttr = static_cast<AttrId>(-1);
inline constexpr RelationId kInvalidRelation = static_cast<RelationId>(-1);

/// Attribute type constructors of the extended NF² model.
enum class AttrKind : uint8_t {
  kString,  ///< atomic: character string
  kInt,     ///< atomic: integer
  kReal,    ///< atomic: real number
  kBool,    ///< atomic: boolean
  kSet,     ///< homogeneous collection, unordered
  kList,    ///< homogeneous collection, ordered
  kTuple,   ///< heterogeneous composite (complex tuple)
  kRef      ///< reference to a complex object of another relation
};

/// True for string/int/real/bool.
bool IsAtomic(AttrKind kind);
/// True for set/list.
bool IsCollection(AttrKind kind);
/// "string", "set", ... for diagnostics.
std::string_view AttrKindName(AttrKind kind);

/// \brief One node of a relation's schema tree.
struct AttrDef {
  AttrId id = kInvalidAttr;
  std::string name;
  AttrKind kind = AttrKind::kString;
  /// Key attribute ("_id" suffix convention in the paper's Fig. 1).
  bool is_key = false;
  /// Tuple: field attr ids in order. Set/list: exactly one element attr.
  std::vector<AttrId> children;
  /// kRef only: the referenced relation.
  RelationId ref_target = kInvalidRelation;
  /// Owning relation.
  RelationId relation = kInvalidRelation;
  /// Parent attribute within the schema tree (kInvalidAttr for the root).
  AttrId parent = kInvalidAttr;
  /// Depth below the relation's root tuple (root tuple = 0).
  uint32_t depth = 0;
};

/// \brief Declarative schema specification used to create relations.
///
/// Built with the factory helpers below, e.g. (Fig. 1, relation "cells"):
/// \code
///   AttrSpec cells = AttrSpec::Tuple("cells", {
///     AttrSpec::Key("cell_id"),
///     AttrSpec::Set("c_objects", AttrSpec::Tuple("c_object", {
///       AttrSpec::Key("obj_id"), AttrSpec::Str("obj_name")})),
///     AttrSpec::List("robots", AttrSpec::Tuple("robot", {
///       AttrSpec::Key("robot_id"), AttrSpec::Str("trajectory"),
///       AttrSpec::Set("effectors", AttrSpec::Ref("ref", "effectors"))})),
///   });
/// \endcode
struct AttrSpec {
  std::string name;
  AttrKind kind = AttrKind::kString;
  bool is_key = false;
  std::vector<AttrSpec> children;
  /// kRef only: name of the referenced relation (resolved at creation).
  std::string ref_relation;

  static AttrSpec Str(std::string n) {
    return {std::move(n), AttrKind::kString, false, {}, {}};
  }
  static AttrSpec Int(std::string n) {
    return {std::move(n), AttrKind::kInt, false, {}, {}};
  }
  static AttrSpec Real(std::string n) {
    return {std::move(n), AttrKind::kReal, false, {}, {}};
  }
  static AttrSpec Bool(std::string n) {
    return {std::move(n), AttrKind::kBool, false, {}, {}};
  }
  /// Atomic string key attribute.
  static AttrSpec Key(std::string n) {
    return {std::move(n), AttrKind::kString, true, {}, {}};
  }
  static AttrSpec Set(std::string n, AttrSpec elem) {
    AttrSpec s{std::move(n), AttrKind::kSet, false, {}, {}};
    s.children.push_back(std::move(elem));
    return s;
  }
  static AttrSpec List(std::string n, AttrSpec elem) {
    AttrSpec s{std::move(n), AttrKind::kList, false, {}, {}};
    s.children.push_back(std::move(elem));
    return s;
  }
  static AttrSpec Tuple(std::string n, std::vector<AttrSpec> fields) {
    AttrSpec s{std::move(n), AttrKind::kTuple, false, std::move(fields), {}};
    return s;
  }
  static AttrSpec Ref(std::string n, std::string target_relation) {
    AttrSpec s{std::move(n), AttrKind::kRef, false, {}, {}};
    s.ref_relation = std::move(target_relation);
    return s;
  }
};

/// \brief Relation metadata: a named set of complex tuples.
struct RelationDef {
  RelationId id = kInvalidRelation;
  std::string name;
  DatabaseId database = 0;
  SegmentId segment = 0;
  /// Root of the schema tree: a kTuple AttrDef describing one complex
  /// object of this relation.
  AttrId root = kInvalidAttr;
  /// First key attribute among the root tuple's direct children
  /// (kInvalidAttr if the relation has no key).
  AttrId key_attr = kInvalidAttr;
};

/// \brief Segment metadata.
struct SegmentDef {
  SegmentId id = 0;
  std::string name;
  DatabaseId database = 0;
};

/// \brief Database metadata.
struct DatabaseDef {
  DatabaseId id = 0;
  std::string name;
};

/// \brief The schema catalog: databases → segments → relations → attributes.
///
/// The catalog is immutable once populated (DDL happens before workloads
/// run); lookups are therefore unsynchronized and cheap.
class Catalog {
 public:
  /// Creates a database; fails with AlreadyExists on duplicate name.
  Result<DatabaseId> CreateDatabase(const std::string& name);

  /// Creates a segment in \p db.
  Result<SegmentId> CreateSegment(DatabaseId db, const std::string& name);

  /// Creates a relation in \p segment from \p spec (a kTuple AttrSpec whose
  /// children are the relation's top-level attributes).  All kRef specs must
  /// name already-existing relations (the paper restricts itself to
  /// non-recursive complex objects, so definition order always exists).
  Result<RelationId> CreateRelation(SegmentId segment, const std::string& name,
                                    const AttrSpec& spec);

  Result<DatabaseId> FindDatabase(const std::string& name) const;
  Result<SegmentId> FindSegment(const std::string& name) const;
  Result<RelationId> FindRelation(const std::string& name) const;

  const DatabaseDef& database(DatabaseId id) const { return databases_[id]; }
  const SegmentDef& segment(SegmentId id) const { return segments_[id]; }
  const RelationDef& relation(RelationId id) const { return relations_[id]; }
  const AttrDef& attr(AttrId id) const { return attrs_[id]; }

  size_t num_databases() const { return databases_.size(); }
  size_t num_segments() const { return segments_.size(); }
  size_t num_relations() const { return relations_.size(); }
  size_t num_attrs() const { return attrs_.size(); }

  /// Resolves the child of tuple attribute \p tuple_attr by name.
  Result<AttrId> FindField(AttrId tuple_attr, const std::string& name) const;

  /// Element attribute of a set/list attribute.
  Result<AttrId> ElementAttr(AttrId collection_attr) const;

  /// All relations whose schema contains a kRef targeting \p rel.
  std::vector<RelationId> ReferencingRelations(RelationId rel) const;

  /// True if any attribute of \p rel is a kRef (i.e. the relation's objects
  /// are potentially non-disjoint with common data).
  bool HasReferences(RelationId rel) const;

  /// Dotted path of \p attr from its relation root, e.g.
  /// "cells.robots.robot.trajectory" (diagnostics, DOT labels).
  std::string AttrPath(AttrId attr) const;

 private:
  AttrId AddAttrTree(const AttrSpec& spec, RelationId rel, AttrId parent,
                     uint32_t depth, Status* status);

  std::vector<DatabaseDef> databases_;
  std::vector<SegmentDef> segments_;
  std::vector<RelationDef> relations_;
  std::vector<AttrDef> attrs_;
};

}  // namespace codlock::nf2

#endif  // CODLOCK_NF2_SCHEMA_H_
