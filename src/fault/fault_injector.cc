#include "fault/fault_injector.h"

#include <algorithm>
#include <functional>

namespace codlock::fault {

namespace {

/// Process-wide count of armed points: the per-site fast path.  Zero means
/// every Fire() returns kNone after one relaxed load.
std::atomic<uint64_t> g_armed_count{0};

struct Registry {
  Mutex mu;
  std::vector<FaultPoint*> points CODLOCK_GUARDED_BY(mu);
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

uint64_t MixSeed(uint64_t seed, std::string_view name) {
  // splitmix64 over the seed xor a stable string hash, so two points armed
  // from one plan seed draw independent streams.
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return seed ^ h;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kError:
      return "error";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kForcedTimeout:
      return "forced-timeout";
    case FaultKind::kAllocFail:
      return "alloc-fail";
  }
  return "?";
}

FaultPoint::FaultPoint(std::string_view name, FaultKind sweep_kind)
    : name_(name), sweep_kind_(sweep_kind) {
  Registry& r = TheRegistry();
  MutexLock lk(r.mu);
  r.points.push_back(this);
}

FireResult FaultPoint::Fire() {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return {};
  MutexLock lk(mu_);
  if (!armed_) return {};
  const uint64_t hit = ++hits_;
  bool fire = false;
  bool disarm_after = false;
  switch (spec_.trigger.when) {
    case Trigger::When::kAlways:
      fire = true;
      break;
    case Trigger::When::kOnce:
      fire = true;
      disarm_after = true;
      break;
    case Trigger::When::kNth:
      fire = hit == std::max<uint64_t>(spec_.trigger.n, 1);
      disarm_after = fire;
      break;
    case Trigger::When::kEveryNth: {
      const uint64_t n = std::max<uint64_t>(spec_.trigger.n, 1);
      fire = hit % n == 0;
      break;
    }
    case Trigger::When::kProbability:
      fire = rng_.Bernoulli(spec_.trigger.p);
      break;
  }
  if (!fire) return {};
  FireResult result{spec_.kind, spec_.arg};
  if (disarm_after) {
    armed_ = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  return result;
}

void FaultPoint::Arm(const FaultSpec& spec) {
  MutexLock lk(mu_);
  if (!armed_) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  armed_ = true;
  spec_ = spec;
  hits_ = 0;
  rng_ = Rng(MixSeed(spec.seed, name_));
}

void FaultPoint::Disarm() {
  MutexLock lk(mu_);
  if (armed_) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  armed_ = false;
  hits_ = 0;
}

bool FaultPoint::armed() const {
  MutexLock lk(mu_);
  return armed_;
}

uint64_t FaultPoint::hits() const {
  MutexLock lk(mu_);
  return hits_;
}

std::vector<FaultPoint*> AllPoints() {
  Registry& r = TheRegistry();
  MutexLock lk(r.mu);
  return r.points;
}

FaultPoint* FindPoint(std::string_view name) {
  Registry& r = TheRegistry();
  MutexLock lk(r.mu);
  for (FaultPoint* p : r.points) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

void DisarmAll() {
  for (FaultPoint* p : AllPoints()) p->Disarm();
}

FaultPlan& FaultPlan::Add(std::string_view point, FaultSpec spec) {
  spec.seed = seed_;
  faults_.emplace_back(std::string(point), spec);
  return *this;
}

Status FaultPlan::Arm() {
  std::vector<FaultPoint*> resolved;
  resolved.reserve(faults_.size());
  for (const auto& [name, spec] : faults_) {
    FaultPoint* p = FindPoint(name);
    if (p == nullptr) {
      return Status::NotFound("unknown fault point '" + name + "'");
    }
    resolved.push_back(p);
  }
  for (size_t i = 0; i < resolved.size(); ++i) {
    resolved[i]->Arm(faults_[i].second);
  }
  armed_points_ = std::move(resolved);
  return Status::OK();
}

void FaultPlan::Disarm() {
  for (FaultPoint* p : armed_points_) p->Disarm();
  armed_points_.clear();
}

Status StatusFor(const FireResult& result, std::string_view point) {
  const std::string where(point);
  switch (result.kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kError:
      return Status::Internal("injected fault at " + where);
    case FaultKind::kTornWrite:
    case FaultKind::kCrash:
      return Status::Internal("injected crash at " + where);
    case FaultKind::kForcedTimeout:
      return Status::Timeout("injected timeout at " + where);
    case FaultKind::kAllocFail:
      return Status::Internal("injected allocation failure at " + where);
  }
  return Status::Internal("injected fault at " + where);
}

bool IsInjectedCrash(const Status& status) {
  return status.IsInternal() &&
         status.message().rfind("injected crash", 0) == 0;
}

}  // namespace codlock::fault
