/// \file fault_injector.h
/// \brief Deterministic fault-injection framework.
///
/// §3.1 demands that long locks "survive system shutdowns and system
/// crashes" — a property that can only be *tested* by making the system
/// fail on purpose, at every point where it could fail in production.
/// This framework provides named **fault points** compiled into the
/// production code (same spirit as `util/mutation_points.h`): each site
/// asks its point whether a fault fires *now*, and interprets the returned
/// kind (torn write, IO error, crash-at-point, forced timeout, allocation
/// failure).  With nothing armed the cost per site is a single relaxed
/// atomic load of a process-wide counter.
///
/// Determinism: triggers are counter-based (once / at the nth hit / every
/// nth hit) or probability-based with a per-point `Rng` seeded from the
/// arming seed and the point name, so a seeded `FaultPlan` reproduces the
/// exact same failure schedule on every run — which is what lets the
/// crashpoint sweep (`tools/codlock_faultsweep`) enumerate every
/// registered point, crash there, and assert recovery.
///
/// Threading: `Fire()` may be called from any thread (per-point mutex once
/// the global fast path misses).  Arming/disarming is expected from a
/// controlling thread (tests, sweep driver) while workload threads run.

#ifndef CODLOCK_FAULT_FAULT_INJECTOR_H_
#define CODLOCK_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace codlock::fault {

/// What the injection site should simulate when its point fires.  The
/// *site* defines the exact semantics; the table below is the contract the
/// shipped sites implement.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation reports an injected IO/internal error (stream write
  /// failure, fsync error, rename error ...) and unwinds cleanly.
  kError,
  /// A file write stops after `arg` bytes of the intended payload (0 =
  /// half), leaving a short/torn artifact, then behaves like kCrash.
  kTornWrite,
  /// The site abandons the operation mid-way exactly as a process death
  /// would: no cleanup, no rename, partial state stays on disk / in
  /// memory.  The caller observes `StatusCode::kInternal` with message
  /// prefix "injected crash"; a sweep driver then simulates the restart.
  kCrash,
  /// A blocking lock wait fails immediately as if its deadline expired.
  kForcedTimeout,
  /// An allocation at the site reports exhaustion (the operation fails
  /// with an injected error instead of throwing bad_alloc).
  kAllocFail,
};

std::string_view FaultKindName(FaultKind kind);

/// When an armed point actually fires.
struct Trigger {
  enum class When : uint8_t {
    kAlways,       ///< every hit
    kOnce,         ///< the first hit after arming, then auto-disarm
    kNth,          ///< exactly the nth hit after arming (1-based), once
    kEveryNth,     ///< every nth hit (n, 2n, 3n, ...)
    kProbability,  ///< each hit independently with probability `p`
  };
  When when = When::kOnce;
  uint64_t n = 1;  ///< for kNth/kEveryNth (1-based)
  double p = 0.0;  ///< for kProbability

  static Trigger Always() { return {When::kAlways, 1, 0.0}; }
  static Trigger Once() { return {When::kOnce, 1, 0.0}; }
  static Trigger Nth(uint64_t n) { return {When::kNth, n, 0.0}; }
  static Trigger EveryNth(uint64_t n) { return {When::kEveryNth, n, 0.0}; }
  static Trigger Probability(double p) {
    return {When::kProbability, 1, p};
  }
};

/// A fault armed at one point.
struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  Trigger trigger = Trigger::Once();
  /// Kind-specific argument (kTornWrite: bytes to let through).
  uint64_t arg = 0;
  /// Seed for probability triggers (mixed with the point name).
  uint64_t seed = 1;
};

/// Outcome of asking a point whether to fail now.
struct FireResult {
  FaultKind kind = FaultKind::kNone;
  uint64_t arg = 0;

  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// \brief One named fault point.  Define at namespace scope in the .cc of
/// the component it guards so registration happens at static-init time and
/// the sweep can enumerate it:
///
///     static fault::FaultPoint kSyncFault{"store/sync", FaultKind::kCrash};
///     ...
///     if (fault::FireResult f = kSyncFault.Fire()) { /* interpret f */ }
class FaultPoint {
 public:
  /// \p sweep_kind is the fault the crashpoint sweep arms at this point —
  /// the "worst plausible" failure of the guarded operation.
  FaultPoint(std::string_view name, FaultKind sweep_kind);

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }
  FaultKind sweep_kind() const { return sweep_kind_; }

  /// Asks whether a fault fires at this hit.  Cheap when nothing is armed
  /// anywhere (one relaxed atomic load).
  FireResult Fire();

  void Arm(const FaultSpec& spec);
  void Disarm();
  bool armed() const;

  /// Hits since arming (0 when disarmed; tests use this to see how often
  /// the guarded path runs).
  uint64_t hits() const;

 private:
  const std::string name_;
  const FaultKind sweep_kind_;

  mutable Mutex mu_;
  bool armed_ CODLOCK_GUARDED_BY(mu_) = false;
  FaultSpec spec_ CODLOCK_GUARDED_BY(mu_);
  uint64_t hits_ CODLOCK_GUARDED_BY(mu_) = 0;
  Rng rng_ CODLOCK_GUARDED_BY(mu_){0};
};

/// All fault points linked into this process (static-init registration
/// order; stable within one build).
std::vector<FaultPoint*> AllPoints();

/// Looks up a point by name (nullptr if unknown).
FaultPoint* FindPoint(std::string_view name);

/// Disarms every point (test teardown safety net).
void DisarmAll();

/// \brief A named, seeded set of faults armed together.
///
/// The plan seed is mixed into every probability trigger (per point, via
/// the point name) so one integer reproduces the whole failure schedule.
/// Destruction disarms whatever the plan armed.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 1) : seed_(seed) {}
  ~FaultPlan() { Disarm(); }
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Adds \p spec for the point named \p point (validated at Arm time).
  FaultPlan& Add(std::string_view point, FaultSpec spec);

  /// Arms every added fault; fails with kNotFound on an unknown point
  /// name (nothing is armed in that case).
  Status Arm();

  /// Disarms the points this plan armed (idempotent).
  void Disarm();

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::vector<std::pair<std::string, FaultSpec>> faults_;
  std::vector<FaultPoint*> armed_points_;
};

/// RAII single-point arm for tests.
class ScopedFault {
 public:
  ScopedFault(std::string_view point, const FaultSpec& spec)
      : point_(FindPoint(point)) {
    if (point_ != nullptr) point_->Arm(spec);
  }
  ~ScopedFault() {
    if (point_ != nullptr) point_->Disarm();
  }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  /// False if the named point does not exist (typo guard for tests).
  bool valid() const { return point_ != nullptr; }
  FaultPoint* point() const { return point_; }

 private:
  FaultPoint* point_;
};

/// Builds the Status an injection site returns for \p result (kError →
/// kInternal "injected fault at <point>", kCrash → kInternal "injected
/// crash at <point>", kAllocFail → kInternal "injected allocation failure
/// at <point>", kForcedTimeout → kTimeout).
Status StatusFor(const FireResult& result, std::string_view point);

/// True when \p status is an injected crash (distinguishes a simulated
/// process death from an ordinary error in sweep drivers).
bool IsInjectedCrash(const Status& status);

}  // namespace codlock::fault

#endif  // CODLOCK_FAULT_FAULT_INJECTOR_H_
