/// \file runtime.h
/// \brief The seam between `ModelAtomic`/`ModelVar` and the exploration
/// engine.
///
/// Under `CODLOCK_WMC` every access on a `wm::Atomic` / `wm::Var` funnels
/// through these hooks.  On a checker-managed worker thread (`Active()`
/// true) the hook parks the worker, publishes the operation to the
/// controller, and returns the controller's answer — the value of the
/// store the controller chose for the load to read, the success verdict
/// of a CAS, and so on.  On any other thread (the controller running a
/// harness `Reset()` or an end-of-execution invariant, or plain test
/// code) the hooks are not consulted at all: `ModelAtomic` falls back to
/// direct single-threaded reads/writes of its backing word.
///
/// The `uint64_t* raw` passed everywhere is both the location's identity
/// (its address keys the checker's location table) and its backing store:
/// the controller snapshots `*raw` as the initial value on first access
/// in an execution and writes the modification-order tail back after
/// every store, so invariants and direct-mode reads always see the
/// current tail without a special API.

#ifndef CODLOCK_WM_RUNTIME_H_
#define CODLOCK_WM_RUNTIME_H_

#include <cstdint>
#include <functional>

#include "util/wm_order.h"

namespace codlock::wm {

/// Read-modify-write flavors `ModelAtomic` can request.
enum class RmwOp : uint8_t { kAdd, kSub, kOr, kAnd, kExchange };

namespace rt {

/// True iff the calling thread is a worker managed by a running Checker;
/// only then do the hooks below make sense to call.
bool Active();

/// Atomic load: the controller picks the reads-from store among the
/// candidates the memory model allows and returns its value.
uint64_t AtomicLoad(uint64_t* raw, const char* name, MemoryOrder mo);

/// Atomic store: appended to the location's modification order.
void AtomicStore(uint64_t* raw, const char* name, MemoryOrder mo,
                 uint64_t value);

/// Atomic RMW: reads the modification-order tail (C++ atomicity: the RMW
/// is mo-adjacent to the store it reads), applies \p op, appends the
/// result.  Returns the old value.
uint64_t AtomicRmw(uint64_t* raw, const char* name, MemoryOrder mo,
                   RmwOp op, uint64_t operand);

/// Atomic compare-exchange.  Success iff the mo tail equals `*expected`
/// (an RMW on the tail); failure is a load with order \p failure that may
/// read any visible store with a different value — and, for \p weak, may
/// also fail spuriously against the tail.  On failure `*expected` is
/// updated with the value read.  Returns the success verdict.
bool AtomicCas(uint64_t* raw, const char* name, MemoryOrder success,
               MemoryOrder failure, uint64_t* expected, uint64_t desired,
               bool weak);

/// Non-atomic access, instrumented for happens-before data races.  Plain
/// accesses have a single current value (`*raw`); racy executions are
/// reported as violations rather than value-branched.
uint64_t PlainLoad(uint64_t* raw, const char* name);
void PlainStore(uint64_t* raw, const char* name, uint64_t value);

/// Bounded stand-in for a spin loop: blocks the worker until \p pred
/// holds of the location's mo tail, then acts as an acquire load of that
/// tail.  Exploring every futile spin iteration would make the state
/// space infinite; Await collapses them into one scheduling constraint.
/// If no thread can run and some Await is still unsatisfied, the checker
/// reports a wedge.
uint64_t Await(uint64_t* raw, const char* name,
               std::function<bool(uint64_t)> pred);

}  // namespace rt
}  // namespace codlock::wm

#endif  // CODLOCK_WM_RUNTIME_H_
