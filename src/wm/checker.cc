#include "wm/checker.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/mutex.h"
#include "wm/runtime.h"

namespace codlock::wm {
namespace {

/// Unwinds a worker out of its body when the controller abandons an
/// execution (wedge, early stop, shutdown).  Harness bodies must not
/// perform model accesses from destructors, so plain stack unwinding is
/// safe.
struct AbortExecution {};

struct VClock {
  std::array<uint32_t, Checker::kMaxThreads> c{};

  void Join(const VClock& o) {
    for (size_t i = 0; i < c.size(); ++i) c[i] = std::max(c[i], o.c[i]);
  }
};

/// One store in a location's modification order.
struct StoreEv {
  uint64_t value = 0;
  int thread = -1;     // -1: the initial value written by Reset().
  uint32_t stamp = 0;  // storing thread's event count at the store
  MemoryOrder order = relaxed;
  bool is_rmw = false;
  bool is_sc = false;
  VClock hb;    // storer's clock at the store (includes this event)
  VClock sync;  // what an acquirer of this store's release sequence joins
};

struct AtomicLoc {
  uint64_t* raw;
  const char* name;
  std::vector<StoreEv> mo;
  /// Index of the mo-latest seq_cst store (-1 if none): an sc load may
  /// not read anything mo-before it (S order == execution order).
  int last_sc = -1;
};

struct PlainLoc {
  uint64_t* raw;
  const char* name;
  int last_writer = -1;  // -1: initialized by Reset()
  uint32_t write_stamp = 0;
  std::array<uint32_t, Checker::kMaxThreads> read_stamp{};
};

struct PendingOp {
  enum class Kind {
    kNone,
    kLoad,
    kStore,
    kRmw,
    kCas,
    kPlainLoad,
    kPlainStore,
    kAwait,
  };
  Kind kind = Kind::kNone;
  uint64_t* raw = nullptr;
  const char* name = "?";
  MemoryOrder order = relaxed;
  MemoryOrder order_fail = relaxed;
  uint64_t value = 0;     // store value / RMW operand / CAS desired
  uint64_t expected = 0;  // CAS
  RmwOp rmw = RmwOp::kAdd;
  bool weak = false;
  std::function<bool(uint64_t)> pred;  // Await
};

/// Compact per-execution event log; stringified only when a violation
/// needs a trace.
struct TraceEv {
  int thread;
  PendingOp::Kind kind;
  const char* name;
  MemoryOrder order;
  uint64_t a = 0;  // value read / stored / CAS-read
  uint64_t b = 0;  // rf mo-index / CAS desired
  bool ok = false;  // CAS verdict
};

enum class Phase { kIdle, kRunning, kAtOp, kFinished };

struct ThreadState {
  int id = -1;
  std::string name;
  std::function<void()> body;
  Checker::Impl* owner = nullptr;
  std::thread os;

  // Handshake state, guarded by the owner's mutex.
  Phase phase = Phase::kIdle;
  uint64_t gen_seen = 0;
  bool abort = false;
  CondVar cv;
  PendingOp op;
  uint64_t result = 0;
  bool cas_ok = false;

  // Model state, touched only by the controller.
  VClock clock;
  std::vector<uint32_t> floor;  // per-AtomicLoc coherence floor (mo index)

  uint64_t Call(PendingOp pending);
};

thread_local ThreadState* g_worker = nullptr;

}  // namespace

const char* ViolationKindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kDataRace:
      return "data-race";
    case Violation::Kind::kInvariant:
      return "invariant";
    case Violation::Kind::kWedge:
      return "wedge";
  }
  return "?";
}

struct Checker::Impl {
  explicit Impl(Options o) : opts(o) {}

  Options opts;
  std::function<void()> reset;
  std::vector<std::unique_ptr<ThreadState>> threads;
  struct Invariant {
    std::string name;
    std::function<bool()> pred;
  };
  std::vector<Invariant> invariants;
  bool ran = false;

  Mutex mu;
  CondVar ctrl_cv;
  uint64_t generation = 0;
  bool shutdown = false;

  // Per-execution model state.
  std::vector<AtomicLoc> atomics;
  std::unordered_map<uint64_t*, int> atomic_ids;
  std::vector<PlainLoc> plains;
  std::unordered_map<uint64_t*, int> plain_ids;
  std::vector<TraceEv> trace;
  bool current_violated = false;

  // DFS replay stack.
  struct Choice {
    uint32_t chosen;
    uint32_t limit;
  };
  std::vector<Choice> stack;
  size_t choice_idx = 0;

  Result result;

  // ---- choice tree -----------------------------------------------------

  uint32_t Choose(uint32_t limit) {
    if (choice_idx < stack.size()) {
      assert(stack[choice_idx].limit == limit && "nondeterministic replay");
      return stack[choice_idx++].chosen;
    }
    stack.push_back({0, limit});
    ++choice_idx;
    return 0;
  }

  /// Advances the stack to the next unexplored branch; false = exhausted.
  bool Advance() {
    while (!stack.empty() && stack.back().chosen + 1 >= stack.back().limit) {
      stack.pop_back();
    }
    if (stack.empty()) return false;
    ++stack.back().chosen;
    return true;
  }

  // ---- locations -------------------------------------------------------

  AtomicLoc& Loc(uint64_t* raw, const char* name) {
    auto [it, fresh] = atomic_ids.try_emplace(raw, atomics.size());
    if (fresh) {
      AtomicLoc loc;
      loc.raw = raw;
      loc.name = name;
      StoreEv init;
      init.value = *raw;  // whatever Reset() left there
      loc.mo.push_back(init);
      atomics.push_back(std::move(loc));
    }
    return atomics[it->second];
  }

  PlainLoc& Plain(uint64_t* raw, const char* name) {
    auto [it, fresh] = plain_ids.try_emplace(raw, plains.size());
    if (fresh) plains.push_back(PlainLoc{raw, name});
    return plains[it->second];
  }

  uint32_t& Floor(ThreadState& t, const AtomicLoc& loc) {
    size_t id = atomic_ids.at(loc.raw);
    if (t.floor.size() <= id) t.floor.resize(id + 1, 0);
    return t.floor[id];
  }

  // ---- memory model ----------------------------------------------------

  static bool Known(const StoreEv& s, const ThreadState& t) {
    return s.thread < 0 || t.clock.c[s.thread] >= s.stamp;
  }

  /// Stores a load by \p t with order \p mo may read: at or above the
  /// thread's coherence floor and the mo-latest store it already knows
  /// (anything below has a visible mo-successor → hb-hidden), and — for
  /// sc loads — at or above the mo-latest sc store.
  std::vector<uint32_t> Candidates(ThreadState& t, AtomicLoc& loc,
                                   MemoryOrder mo) {
    uint32_t low = Floor(t, loc);
    for (uint32_t j = static_cast<uint32_t>(loc.mo.size()); j-- > 0;) {
      if (Known(loc.mo[j], t)) {
        low = std::max(low, j);
        break;
      }
    }
    if (IsSeqCst(mo) && loc.last_sc > 0) {
      low = std::max(low, static_cast<uint32_t>(loc.last_sc));
    }
    std::vector<uint32_t> out;
    for (uint32_t j = low; j < loc.mo.size(); ++j) out.push_back(j);
    return out;
  }

  void ApplyRead(ThreadState& t, AtomicLoc& loc, uint32_t j,
                 MemoryOrder mo) {
    if (IsAcquire(mo)) t.clock.Join(loc.mo[j].sync);
    uint32_t& fl = Floor(t, loc);
    fl = std::max(fl, j);
  }

  /// Appends a store; \p continues_tail marks an RMW, which extends the
  /// release sequence of the store it read (C++20: only RMWs do).
  void AppendStore(ThreadState& t, AtomicLoc& loc, uint64_t v,
                   MemoryOrder mo, bool continues_tail) {
    StoreEv ev;
    ev.value = v;
    ev.thread = t.id;
    ev.stamp = t.clock.c[t.id];
    ev.order = mo;
    ev.is_rmw = continues_tail;
    ev.is_sc = IsSeqCst(mo);
    ev.hb = t.clock;
    if (IsRelease(mo)) ev.sync = t.clock;
    if (continues_tail) ev.sync.Join(loc.mo.back().sync);
    if (ev.is_sc) loc.last_sc = static_cast<int>(loc.mo.size());
    loc.mo.push_back(std::move(ev));
    Floor(t, loc) = static_cast<uint32_t>(loc.mo.size()) - 1;
    *loc.raw = v;  // keep the backing word at the mo tail
  }

  static uint64_t ApplyRmw(RmwOp op, uint64_t old, uint64_t v) {
    switch (op) {
      case RmwOp::kAdd:
        return old + v;
      case RmwOp::kSub:
        return old - v;
      case RmwOp::kOr:
        return old | v;
      case RmwOp::kAnd:
        return old & v;
      case RmwOp::kExchange:
        return v;
    }
    return old;
  }

  // ---- race detection --------------------------------------------------

  void CheckReadRace(ThreadState& t, PlainLoc& loc) {
    if (loc.last_writer >= 0 && loc.last_writer != t.id &&
        t.clock.c[loc.last_writer] < loc.write_stamp) {
      RecordViolation(Violation::Kind::kDataRace,
                      std::string("read of '") + loc.name + "' by " +
                          threads[t.id]->name + " races prior write by " +
                          threads[loc.last_writer]->name);
    }
    loc.read_stamp[t.id] = t.clock.c[t.id];
  }

  void CheckWriteRace(ThreadState& t, PlainLoc& loc) {
    if (loc.last_writer >= 0 && loc.last_writer != t.id &&
        t.clock.c[loc.last_writer] < loc.write_stamp) {
      RecordViolation(Violation::Kind::kDataRace,
                      std::string("write of '") + loc.name + "' by " +
                          threads[t.id]->name + " races prior write by " +
                          threads[loc.last_writer]->name);
    }
    for (int r = 0; r < Checker::kMaxThreads; ++r) {
      if (r == t.id || loc.read_stamp[r] == 0) continue;
      if (t.clock.c[r] < loc.read_stamp[r]) {
        RecordViolation(Violation::Kind::kDataRace,
                        std::string("write of '") + loc.name + "' by " +
                            threads[t.id]->name + " races prior read by " +
                            threads[r]->name);
      }
    }
    loc.last_writer = t.id;
    loc.write_stamp = t.clock.c[t.id];
    loc.read_stamp.fill(0);  // those reads are now ordered before us
  }

  // ---- violations ------------------------------------------------------

  void RecordViolation(Violation::Kind kind, std::string message) {
    current_violated = true;
    if (result.violations.size() < opts.max_violations) {
      result.violations.push_back({kind, std::move(message), FormatTrace()});
    } else {
      result.violations_capped = true;
    }
  }

  std::vector<std::string> FormatTrace() const {
    std::vector<std::string> out;
    out.reserve(trace.size());
    for (const TraceEv& e : trace) {
      std::ostringstream os;
      os << threads[e.thread]->name << ": ";
      switch (e.kind) {
        case PendingOp::Kind::kLoad:
          os << "load " << e.name << "(" << MemoryOrderName(e.order)
             << ") = " << e.a << "  [rf mo[" << e.b << "]]";
          break;
        case PendingOp::Kind::kStore:
          os << "store " << e.name << "(" << MemoryOrderName(e.order)
             << ") = " << e.a;
          break;
        case PendingOp::Kind::kRmw:
          os << "rmw " << e.name << "(" << MemoryOrderName(e.order) << ") "
             << e.a << " -> " << e.b;
          break;
        case PendingOp::Kind::kCas:
          os << "cas " << e.name << "(" << MemoryOrderName(e.order) << ") "
             << (e.ok ? "" : "read ") << e.a
             << (e.ok ? " -> " : " want ") << e.b << " "
             << (e.ok ? "OK" : "FAIL");
          break;
        case PendingOp::Kind::kPlainLoad:
          os << "read " << e.name << " = " << e.a;
          break;
        case PendingOp::Kind::kPlainStore:
          os << "write " << e.name << " = " << e.a;
          break;
        case PendingOp::Kind::kAwait:
          os << "await " << e.name << " = " << e.a;
          break;
        case PendingOp::Kind::kNone:
          os << "?";
          break;
      }
      out.push_back(os.str());
    }
    return out;
  }

  // ---- worker handshake ------------------------------------------------

  void WorkerMain(ThreadState* t) {
    for (;;) {
      {
        MutexLock l(mu);
        t->cv.Wait(mu,
                   [&] { return shutdown || t->gen_seen != generation; });
        if (shutdown) return;
        t->gen_seen = generation;
        t->phase = Phase::kRunning;
      }
      g_worker = t;
      try {
        t->body();
      } catch (const AbortExecution&) {
      }
      g_worker = nullptr;
      {
        MutexLock l(mu);
        t->phase = Phase::kFinished;
        ctrl_cv.NotifyOne();
      }
    }
  }

  /// Kicks every worker into a fresh run of its body and waits until each
  /// is parked at its first access (or already finished).
  void StartExecution() {
    MutexLock l(mu);
    ++generation;
    for (auto& t : threads) {
      t->phase = Phase::kIdle;
      t->cv.NotifyOne();
    }
    ctrl_cv.Wait(mu, [&] {
      for (auto& t : threads) {
        if (t->phase != Phase::kAtOp && t->phase != Phase::kFinished) {
          return false;
        }
      }
      return true;
    });
  }

  /// Hands the answer to a parked worker and waits for it to reach its
  /// next access or finish.
  void ResumeAndWait(ThreadState& t) {
    MutexLock l(mu);
    t.op.pred = nullptr;
    t.phase = Phase::kRunning;
    t.cv.NotifyOne();
    ctrl_cv.Wait(mu, [&] {
      return t.phase == Phase::kAtOp || t.phase == Phase::kFinished;
    });
  }

  /// Unwinds every still-parked worker (wedge / early stop).
  void AbortParked() {
    for (auto& t : threads) {
      bool parked;
      {
        MutexLock l(mu);
        parked = t->phase == Phase::kAtOp;
        if (parked) t->abort = true;
      }
      if (parked) ResumeAndWait(*t);
    }
  }

  // ---- executing one access --------------------------------------------

  bool OpReady(ThreadState& t) {
    if (t.op.kind != PendingOp::Kind::kAwait) return true;
    AtomicLoc& loc = Loc(t.op.raw, t.op.name);
    return t.op.pred(loc.mo.back().value);
  }

  void ExecOp(ThreadState& t) {
    ++t.clock.c[t.id];
    PendingOp& op = t.op;
    TraceEv ev{t.id, op.kind, op.name, op.order, 0, 0, false};
    switch (op.kind) {
      case PendingOp::Kind::kLoad: {
        AtomicLoc& loc = Loc(op.raw, op.name);
        std::vector<uint32_t> cands = Candidates(t, loc, op.order);
        uint32_t j = cands.size() > 1
                         ? cands[Choose(static_cast<uint32_t>(cands.size()))]
                         : cands.front();
        ApplyRead(t, loc, j, op.order);
        t.result = loc.mo[j].value;
        ev.a = t.result;
        ev.b = j;
        break;
      }
      case PendingOp::Kind::kStore: {
        AtomicLoc& loc = Loc(op.raw, op.name);
        AppendStore(t, loc, op.value, op.order, /*continues_tail=*/false);
        ev.a = op.value;
        break;
      }
      case PendingOp::Kind::kRmw: {
        AtomicLoc& loc = Loc(op.raw, op.name);
        uint64_t old = loc.mo.back().value;
        if (IsAcquire(op.order)) t.clock.Join(loc.mo.back().sync);
        AppendStore(t, loc, ApplyRmw(op.rmw, old, op.value), op.order,
                    /*continues_tail=*/true);
        t.result = old;
        ev.a = old;
        ev.b = loc.mo.back().value;
        break;
      }
      case PendingOp::Kind::kCas: {
        AtomicLoc& loc = Loc(op.raw, op.name);
        uint64_t tailv = loc.mo.back().value;
        // Options: success against the tail, failure reading any visible
        // store with a different value, and — weak only — a spurious
        // failure against the matching tail.
        struct Opt {
          bool success;
          uint32_t read_idx;
        };
        std::vector<Opt> options;
        if (tailv == op.expected) {
          options.push_back(
              {true, static_cast<uint32_t>(loc.mo.size()) - 1});
        }
        for (uint32_t j : Candidates(t, loc, op.order_fail)) {
          if (loc.mo[j].value != op.expected) options.push_back({false, j});
        }
        if (op.weak && tailv == op.expected) {
          options.push_back(
              {false, static_cast<uint32_t>(loc.mo.size()) - 1});
        }
        Opt pick =
            options.size() > 1
                ? options[Choose(static_cast<uint32_t>(options.size()))]
                : options.front();
        if (pick.success) {
          if (IsAcquire(op.order)) t.clock.Join(loc.mo.back().sync);
          AppendStore(t, loc, op.value, op.order, /*continues_tail=*/true);
          t.cas_ok = true;
          t.result = op.expected;
          ev.a = op.expected;
          ev.b = op.value;
          ev.ok = true;
        } else {
          ApplyRead(t, loc, pick.read_idx, op.order_fail);
          t.cas_ok = false;
          t.result = loc.mo[pick.read_idx].value;
          ev.a = t.result;
          ev.b = op.expected;
          ev.ok = false;
        }
        break;
      }
      case PendingOp::Kind::kPlainLoad: {
        PlainLoc& loc = Plain(op.raw, op.name);
        CheckReadRace(t, loc);
        t.result = *loc.raw;
        ev.a = t.result;
        break;
      }
      case PendingOp::Kind::kPlainStore: {
        PlainLoc& loc = Plain(op.raw, op.name);
        CheckWriteRace(t, loc);
        *loc.raw = op.value;
        ev.a = op.value;
        break;
      }
      case PendingOp::Kind::kAwait: {
        AtomicLoc& loc = Loc(op.raw, op.name);
        uint32_t j = static_cast<uint32_t>(loc.mo.size()) - 1;
        t.clock.Join(loc.mo[j].sync);  // acquire-read of the tail
        uint32_t& fl = Floor(t, loc);
        fl = std::max(fl, j);
        t.result = loc.mo[j].value;
        ev.a = t.result;
        break;
      }
      case PendingOp::Kind::kNone:
        break;
    }
    trace.push_back(ev);
    ResumeAndWait(t);
  }

  // ---- one execution ---------------------------------------------------

  /// Returns false when exploration should stop (stop_on_violation).
  bool RunOneExecution() {
    atomics.clear();
    atomic_ids.clear();
    plains.clear();
    plain_ids.clear();
    trace.clear();
    current_violated = false;
    for (auto& t : threads) {
      t->clock = VClock{};
      t->floor.clear();
    }
    choice_idx = 0;

    if (reset) reset();  // direct writes: the initial store of every loc
    StartExecution();

    bool wedged = false;
    for (;;) {
      std::vector<ThreadState*> ready;
      bool any_parked = false;
      for (auto& t : threads) {
        if (t->phase != Phase::kAtOp) continue;
        any_parked = true;
        if (OpReady(*t)) ready.push_back(t.get());
      }
      if (ready.empty()) {
        if (any_parked) {
          std::string who;
          for (auto& t : threads) {
            if (t->phase == Phase::kAtOp) {
              if (!who.empty()) who += ", ";
              who += t->name + " awaiting '" + t->op.name + "'";
            }
          }
          RecordViolation(Violation::Kind::kWedge,
                          "no runnable thread: " + who);
          AbortParked();
          wedged = true;
        }
        break;
      }
      ThreadState* pick =
          ready.size() > 1
              ? ready[Choose(static_cast<uint32_t>(ready.size()))]
              : ready.front();
      ExecOp(*pick);
    }

    if (!wedged) {
      // Invariants read mo tails through the backing words; a wedged
      // execution was abandoned mid-flight, so its partial state proves
      // nothing.
      for (const Invariant& inv : invariants) {
        if (!inv.pred()) {
          RecordViolation(Violation::Kind::kInvariant,
                          "invariant failed: " + inv.name);
        }
      }
    }
    ++result.executions;
    return !(opts.stop_on_violation && current_violated);
  }

  Result Run() {
    for (auto& t : threads) {
      t->os = std::thread([this, ts = t.get()] { WorkerMain(ts); });
    }
    for (;;) {
      if (result.executions >= opts.max_executions) break;
      if (!RunOneExecution()) break;  // stop_on_violation
      if (!Advance()) {
        result.complete = true;
        break;
      }
    }
    {
      MutexLock l(mu);
      shutdown = true;
      for (auto& t : threads) t->cv.NotifyOne();
    }
    for (auto& t : threads) {
      if (t->os.joinable()) t->os.join();
    }
    return std::move(result);
  }
};

namespace {

uint64_t ThreadState::Call(PendingOp pending) {
  Checker::Impl* o = owner;
  MutexLock l(o->mu);
  op = std::move(pending);
  phase = Phase::kAtOp;
  o->ctrl_cv.NotifyOne();
  cv.Wait(o->mu, [&] { return phase == Phase::kRunning; });
  if (abort) {
    abort = false;
    throw AbortExecution{};
  }
  return result;
}

}  // namespace

Checker::Checker() : Checker(Options{}) {}

Checker::Checker(Options opts) : impl_(new Impl(opts)) {}

Checker::~Checker() {
  // Run() joins its workers; a Checker destroyed without Run() has none.
}

void Checker::OnReset(std::function<void()> reset) {
  impl_->reset = std::move(reset);
}

void Checker::AddThread(std::string name, std::function<void()> body) {
  assert(!impl_->ran && impl_->threads.size() < kMaxThreads);
  auto t = std::make_unique<ThreadState>();
  t->id = static_cast<int>(impl_->threads.size());
  t->name = std::move(name);
  t->body = std::move(body);
  t->owner = impl_.get();
  impl_->threads.push_back(std::move(t));
}

void Checker::AddInvariant(std::string name, std::function<bool()> pred) {
  impl_->invariants.push_back({std::move(name), std::move(pred)});
}

Result Checker::Run() {
  assert(!impl_->ran && "Checker::Run may be called once");
  impl_->ran = true;
  return impl_->Run();
}

// ---- rt:: hooks ----------------------------------------------------------

namespace rt {

bool Active() { return g_worker != nullptr; }

uint64_t AtomicLoad(uint64_t* raw, const char* name, MemoryOrder mo) {
  PendingOp op;
  op.kind = PendingOp::Kind::kLoad;
  op.raw = raw;
  op.name = name;
  op.order = mo;
  return g_worker->Call(std::move(op));
}

void AtomicStore(uint64_t* raw, const char* name, MemoryOrder mo,
                 uint64_t value) {
  PendingOp op;
  op.kind = PendingOp::Kind::kStore;
  op.raw = raw;
  op.name = name;
  op.order = mo;
  op.value = value;
  g_worker->Call(std::move(op));
}

uint64_t AtomicRmw(uint64_t* raw, const char* name, MemoryOrder mo,
                   RmwOp rmw, uint64_t operand) {
  PendingOp op;
  op.kind = PendingOp::Kind::kRmw;
  op.raw = raw;
  op.name = name;
  op.order = mo;
  op.rmw = rmw;
  op.value = operand;
  return g_worker->Call(std::move(op));
}

bool AtomicCas(uint64_t* raw, const char* name, MemoryOrder success,
               MemoryOrder failure, uint64_t* expected, uint64_t desired,
               bool weak) {
  PendingOp op;
  op.kind = PendingOp::Kind::kCas;
  op.raw = raw;
  op.name = name;
  op.order = success;
  op.order_fail = failure;
  op.expected = *expected;
  op.value = desired;
  op.weak = weak;
  ThreadState* w = g_worker;
  uint64_t read = w->Call(std::move(op));
  if (!w->cas_ok) *expected = read;
  return w->cas_ok;
}

uint64_t PlainLoad(uint64_t* raw, const char* name) {
  PendingOp op;
  op.kind = PendingOp::Kind::kPlainLoad;
  op.raw = raw;
  op.name = name;
  return g_worker->Call(std::move(op));
}

void PlainStore(uint64_t* raw, const char* name, uint64_t value) {
  PendingOp op;
  op.kind = PendingOp::Kind::kPlainStore;
  op.raw = raw;
  op.name = name;
  op.value = value;
  g_worker->Call(std::move(op));
}

uint64_t Await(uint64_t* raw, const char* name,
               std::function<bool(uint64_t)> pred) {
  PendingOp op;
  op.kind = PendingOp::Kind::kAwait;
  op.raw = raw;
  op.name = name;
  op.pred = std::move(pred);
  return g_worker->Call(std::move(op));
}

}  // namespace rt
}  // namespace codlock::wm
