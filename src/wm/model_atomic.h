/// \file model_atomic.h
/// \brief The `CODLOCK_WMC` face of `wm::Atomic` / `wm::Var`.
///
/// `ModelAtomic<T>` mirrors the passthrough API in src/util/wm_atomic.h
/// exactly, so a litmus kernel distilled from production code reads the
/// same.  Accesses from checker-managed workers are routed through the
/// rt:: hooks (src/wm/runtime.h); accesses from anywhere else — harness
/// `Reset()` on the controller, end-of-execution invariants, plain test
/// assertions — operate directly on the backing word, which the
/// controller keeps equal to the modification-order tail.
///
/// Deliberately *not* an `std::atomic` anywhere: values live in a plain
/// `uint64_t` that only one thread touches at a time (workers are parked
/// while the controller works, and vice versa), and the distinct class
/// name — aliased to `wm::Atomic` only under `CODLOCK_WMC` — means
/// accidentally linking a model-built object against a passthrough-built
/// library is a link error, not a silent ODR mismatch.
///
/// Model-only extras a passthrough build does not have (so only litmus
/// code may use them): `SetName()` for readable traces, and `Await*()`
/// to express spin loops boundedly.

#ifndef CODLOCK_WM_MODEL_ATOMIC_H_
#define CODLOCK_WM_MODEL_ATOMIC_H_

#include <cstdint>
#include <type_traits>
#include <utility>

#include "util/wm_order.h"
#include "wm/runtime.h"

namespace codlock::wm {

namespace internal {

/// Round-trip any supported T through the runtime's uint64_t currency.
template <typename T>
struct Codec {
  static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                "ModelAtomic supports integral and enum types only; model "
                "pointers as indices in litmus kernels");
  static_assert(sizeof(T) <= 8, "value wider than the model word");

  static uint64_t Enc(T v) {
    if constexpr (std::is_enum_v<T>) {
      return static_cast<uint64_t>(
          static_cast<std::underlying_type_t<T>>(v));
    } else {
      return static_cast<uint64_t>(v);
    }
  }
  static T Dec(uint64_t v) { return static_cast<T>(v); }
};

}  // namespace internal

template <typename T>
class ModelAtomic {
  using C = internal::Codec<T>;

 public:
  // Unlike the passthrough face, accessors are NOT noexcept: inside an
  // exploration they may throw the checker's AbortExecution to unwind a
  // worker whose execution was abandoned (wedge or stop_on_violation).
  constexpr ModelAtomic() noexcept = default;
  constexpr ModelAtomic(T v) noexcept  // NOLINT(runtime/explicit)
      : raw_(C::Enc(v)) {}
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  /// Label used in traces and violation reports (litmus-only nicety).
  void SetName(const char* name) { name_ = name; }

  T load(MemoryOrder mo) const {
    if (rt::Active()) return C::Dec(rt::AtomicLoad(&raw_, name_, mo));
    return C::Dec(raw_);
  }

  void store(T v, MemoryOrder mo) {
    if (rt::Active()) {
      rt::AtomicStore(&raw_, name_, mo, C::Enc(v));
      return;
    }
    raw_ = C::Enc(v);
  }

  T exchange(T v, MemoryOrder mo) {
    if (rt::Active()) {
      return C::Dec(
          rt::AtomicRmw(&raw_, name_, mo, RmwOp::kExchange, C::Enc(v)));
    }
    T old = C::Dec(raw_);
    raw_ = C::Enc(v);
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               MemoryOrder mo) {
    return Cas(expected, desired, mo, FailureOrder(mo), /*weak=*/false);
  }
  bool compare_exchange_strong(T& expected, T desired, MemoryOrder success,
                               MemoryOrder failure) {
    return Cas(expected, desired, success, failure, /*weak=*/false);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             MemoryOrder mo) {
    return Cas(expected, desired, mo, FailureOrder(mo), /*weak=*/true);
  }
  bool compare_exchange_weak(T& expected, T desired, MemoryOrder success,
                             MemoryOrder failure) {
    return Cas(expected, desired, success, failure, /*weak=*/true);
  }

  // Take and return T, never a deduced type, mirroring the passthrough
  // face: `fetch_add(1, ...)` on a 64-bit atomic must not deduce int and
  // truncate the result.
  T fetch_add(T v, MemoryOrder mo) { return Rmw(RmwOp::kAdd, v, mo); }
  T fetch_sub(T v, MemoryOrder mo) { return Rmw(RmwOp::kSub, v, mo); }
  T fetch_or(T v, MemoryOrder mo) { return Rmw(RmwOp::kOr, v, mo); }
  T fetch_and(T v, MemoryOrder mo) { return Rmw(RmwOp::kAnd, v, mo); }

  /// Spin-loop stand-in: block until the mo tail satisfies \p pred, then
  /// acquire-read it (see rt::Await).  Direct mode asserts the predicate
  /// already holds — there is nobody to wait for.
  template <typename Pred>
  T AwaitPred(Pred pred) {
    if (rt::Active()) {
      return C::Dec(rt::Await(&raw_, name_, [pred](uint64_t v) {
        return pred(internal::Codec<T>::Dec(v));
      }));
    }
    return C::Dec(raw_);
  }
  T AwaitEq(T v) {
    return AwaitPred([v](T cur) { return cur == v; });
  }

 private:
  static constexpr MemoryOrder FailureOrder(MemoryOrder success) {
    // Mirrors the std rule: drop the release component.
    if (success == acq_rel) return acquire;
    if (success == release) return relaxed;
    return success;
  }

  bool Cas(T& expected, T desired, MemoryOrder success, MemoryOrder failure,
           bool weak) {
    if (rt::Active()) {
      uint64_t e = C::Enc(expected);
      bool ok = rt::AtomicCas(&raw_, name_, success, failure, &e,
                              C::Enc(desired), weak);
      if (!ok) expected = C::Dec(e);
      return ok;
    }
    if (raw_ == C::Enc(expected)) {
      raw_ = C::Enc(desired);
      return true;
    }
    expected = C::Dec(raw_);
    return false;
  }

  T Rmw(RmwOp op, T operand, MemoryOrder mo) {
    if (rt::Active()) {
      return C::Dec(rt::AtomicRmw(&raw_, name_, mo, op, C::Enc(operand)));
    }
    uint64_t old = raw_;
    uint64_t v = C::Enc(operand);
    switch (op) {
      case RmwOp::kAdd:
        raw_ = old + v;
        break;
      case RmwOp::kSub:
        raw_ = old - v;
        break;
      case RmwOp::kOr:
        raw_ = old | v;
        break;
      case RmwOp::kAnd:
        raw_ = old & v;
        break;
      case RmwOp::kExchange:
        raw_ = v;
        break;
    }
    return C::Dec(old);
  }

  mutable uint64_t raw_ = 0;
  const char* name_ = "?";
};

/// Non-atomic location instrumented for data races (the model face of
/// `wm::Var`).
template <typename T>
class ModelVar {
  using C = internal::Codec<T>;

 public:
  constexpr ModelVar() noexcept = default;
  constexpr ModelVar(T v) noexcept  // NOLINT(runtime/explicit)
      : raw_(C::Enc(v)) {}

  void SetName(const char* name) { name_ = name; }

  T Get() const {
    if (rt::Active()) return C::Dec(rt::PlainLoad(&raw_, name_));
    return C::Dec(raw_);
  }
  void Set(T v) {
    if (rt::Active()) {
      rt::PlainStore(&raw_, name_, C::Enc(v));
      return;
    }
    raw_ = C::Enc(v);
  }

 private:
  mutable uint64_t raw_ = 0;
  const char* name_ = "?";
};

}  // namespace codlock::wm

#endif  // CODLOCK_WM_MODEL_ATOMIC_H_
