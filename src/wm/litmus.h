/// \file litmus.h
/// \brief Registry of the weak-memory litmus harnesses `codlock_wmc` runs.
///
/// Each harness is a bounded kernel distilled from one lock-free protocol
/// in src/lock — the same accesses, the same memory orders, the same
/// `mutation::WeakenedOrder` toggles at the same logical sites — small
/// enough for the checker to enumerate every consistent execution.  The
/// distillations and the argument that each mirrors its production
/// counterpart are documented per-harness in litmus.cc and summarized in
/// DESIGN.md §12.
///
/// Two kinds of entry:
///
///  * protocol harnesses — must be violation-free unmutated; the order-
///    weakening mutants of `mutation_points.h` must make at least one of
///    them fail (the wmc kill-suite, `KillSuite()` below);
///  * self-check harnesses (`expect_violation`) — textbook-broken kernels
///    (e.g. message passing over relaxed accesses) that must *always*
///    produce a violation, proving the race detector and invariant
///    machinery actually fire.  A checker that cannot fail its own
///    negative controls proves nothing.

#ifndef CODLOCK_WM_LITMUS_H_
#define CODLOCK_WM_LITMUS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/mutation_points.h"
#include "wm/checker.h"

namespace codlock::wm::litmus {

struct Harness {
  const char* name;
  const char* description;
  /// Execution budget used when the caller does not override it; sized so
  /// the harness explores completely with generous headroom.
  uint64_t default_budget;
  /// Negative control: the harness is *expected* to report a violation.
  bool expect_violation;
  Result (*run)(Checker::Options opts);
};

const std::vector<Harness>& AllHarnesses();
const Harness* FindHarness(std::string_view name);

/// One wmc kill-suite case: enabling `mutant` must make `harness` (a
/// protocol harness above) report at least one violation.
struct KillCase {
  mutation::Mutant mutant;
  const char* harness;
};

/// The order-weakening slice of the repo's mutation kill-suite (the
/// protocol-decision slice lives in `codlock_mc --kill-suite`).
const std::vector<KillCase>& KillSuite();

}  // namespace codlock::wm::litmus

#endif  // CODLOCK_WM_LITMUS_H_
