/// \file checker.h
/// \brief Exhaustive C++-memory-model explorer for bounded litmus
/// harnesses.
///
/// `Checker` runs a small fixed set of thread bodies over shared
/// `wm::Atomic` / `wm::Var` state and enumerates the *consistent
/// executions* of the C++ memory model by depth-first replay over two
/// kinds of choice points:
///
///  * **schedule** — which ready thread executes its next access, and
///  * **reads-from** — which visible store an atomic load (or failed CAS)
///    returns.
///
/// The model implemented (see DESIGN.md §12 for the full statement and
/// its deliberate approximations):
///
///  * sb is program order within a body; each thread carries a vector
///    clock advanced per access.
///  * mo (modification order) per location is the order stores execute
///    in; RMWs read the mo tail, keeping them mo-adjacent to the store
///    they read (C++ atomicity).
///  * rf candidates for a load exclude stores hidden by coherence (the
///    reader's per-location floor from its own prior reads/writes) and by
///    happens-before (a store with an mo-successor already visible to the
///    reader cannot be read).
///  * sw: an acquire load that reads from a release sequence joins the
///    sequence head's clock; release sequences are C++20-style (only RMWs
///    extend them — an intervening plain store breaks the chain).
///  * seq_cst accesses additionally respect a total S order which the
///    checker equates with execution order: an sc load never reads a
///    store with an mo-later sc store.  This is a sound restriction (every
///    enumerated execution is consistent) that can under-enumerate some
///    exotic mixed-order behaviors; the weak behaviors the kill-suite
///    needs involve relaxed accesses, which S does not constrain.
///  * Plain (`wm::Var`) accesses are race-checked with vector clocks and
///    never value-branched: a race is itself the reported bug.
///
/// Violations — data races, failed end-of-execution invariants, and
/// wedges (every unfinished thread stuck in an unsatisfiable `Await`) —
/// are reported with the full event trace of the offending execution.
///
/// Thread bodies run on real worker threads parked/resumed through
/// `util::Mutex`/`CondVar` handshakes; all model logic runs on the
/// controller (the thread that called `Run()`), so the checker itself
/// needs no atomics — which keeps src/wm inside the atomics-discipline
/// lint's vocabulary.

#ifndef CODLOCK_WM_CHECKER_H_
#define CODLOCK_WM_CHECKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace codlock::wm {

struct Violation {
  enum class Kind { kDataRace, kInvariant, kWedge };
  Kind kind;
  std::string message;
  /// Human-readable event log of the execution that exhibited it, one
  /// line per access in execution order.
  std::vector<std::string> trace;
};

const char* ViolationKindName(Violation::Kind kind);

struct Result {
  /// Executions fully explored (or aborted by a violation/wedge).
  uint64_t executions = 0;
  /// True iff the choice tree was exhausted within the budget (always
  /// false when `stop_on_violation` ended the run early).
  bool complete = false;
  std::vector<Violation> violations;
  /// True if more violations occurred than were recorded.
  bool violations_capped = false;

  bool clean() const { return violations.empty() && !violations_capped; }
};

class Checker {
 public:
  struct Options {
    /// Hard cap on executions explored; exceeding it yields
    /// `complete == false`, never an error.
    uint64_t max_executions = 100000;
    /// Recorded-violation cap (exploration keeps counting via
    /// `violations_capped` unless `stop_on_violation`).
    size_t max_violations = 4;
    /// Stop at the first violating execution (kill-suite mode: we only
    /// need the counterexample, not the census).
    bool stop_on_violation = false;
  };

  Checker();
  explicit Checker(Options opts);
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Runs on the controller before every execution; must (re)initialize
  /// every location the bodies touch — accesses here are direct writes,
  /// treated as the initial store of each location.
  void OnReset(std::function<void()> reset);

  /// Adds a worker body.  Bodies must be deterministic given the values
  /// the checker feeds their loads, must terminate, and must express spin
  /// loops via `Await*` (a native spin would never converge).  At most
  /// `kMaxThreads` bodies.
  void AddThread(std::string name, std::function<void()> body);

  /// Predicate evaluated on the controller after each complete execution
  /// (reading mo-tail values); `false` records a violation.
  void AddInvariant(std::string name, std::function<bool()> pred);

  /// Explores the choice tree.  Call at most once per Checker.
  Result Run();

  static constexpr int kMaxThreads = 8;

  /// Opaque engine state; public only so checker.cc's file-scope worker
  /// machinery can name it.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace codlock::wm

#endif  // CODLOCK_WM_CHECKER_H_
