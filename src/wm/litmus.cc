#include "wm/litmus.h"

#include <algorithm>

#include "util/mutation_points.h"
#include "util/wm_atomic.h"

namespace codlock::wm::litmus {
namespace {

using mutation::Mutant;
using mutation::WeakenedOrder;

// ---- mp_publish -----------------------------------------------------------
// Baseline message passing: the sw machinery itself.  A release store of
// the flag must make the plain payload visible to an acquire reader.

Result RunMpPublish(Checker::Options opts) {
  struct State {
    Var<uint64_t> data;
    Atomic<uint64_t> flag;
    Var<uint64_t> saw;
    Var<uint64_t> got;
  } s;
  s.data.SetName("data");
  s.flag.SetName("flag");

  Checker chk(opts);
  chk.OnReset([&] {
    s.data.Set(0);
    s.flag.store(0, relaxed);
    s.saw.Set(0);
    s.got.Set(0);
  });
  chk.AddThread("writer", [&] {
    s.data.Set(1);
    s.flag.store(1, release);
  });
  chk.AddThread("reader", [&] {
    if (s.flag.load(acquire) == 1) {
      s.saw.Set(1);
      s.got.Set(s.data.Get());
    }
  });
  chk.AddInvariant("flag implies payload",
                   [&] { return s.saw.Get() == 0 || s.got.Get() == 1; });
  return chk.Run();
}

// ---- mp_relaxed_selfcheck -------------------------------------------------
// Negative control: the same kernel over relaxed accesses must be caught —
// either as a data race (reader reached the payload without
// synchronization) or as the invariant failing (stale payload).

Result RunMpRelaxedSelfcheck(Checker::Options opts) {
  struct State {
    Var<uint64_t> data;
    Atomic<uint64_t> flag;
    Var<uint64_t> saw;
    Var<uint64_t> got;
  } s;
  s.data.SetName("data");
  s.flag.SetName("flag");

  Checker chk(opts);
  chk.OnReset([&] {
    s.data.Set(0);
    s.flag.store(0, relaxed);
    s.saw.Set(0);
    s.got.Set(0);
  });
  chk.AddThread("writer", [&] {
    s.data.Set(1);
    s.flag.store(1, relaxed);
  });
  chk.AddThread("reader", [&] {
    if (s.flag.load(relaxed) == 1) {
      s.saw.Set(1);
      s.got.Set(s.data.Get());
    }
  });
  chk.AddInvariant("flag implies payload",
                   [&] { return s.saw.Get() == 0 || s.got.Get() == 1; });
  return chk.Run();
}

// ---- sb_dekker ------------------------------------------------------------
// Store buffering: both threads publish then read the other side.  Under
// seq_cst at least one must see the other's store — the Dekker-style
// argument the fast path's claim/revalidate pair rests on.

Result RunSbDekker(Checker::Options opts) {
  struct State {
    Atomic<uint64_t> x;
    Atomic<uint64_t> y;
    Var<uint64_t> r1;  // 1 + value read, so 0 = "did not run"
    Var<uint64_t> r2;
  } s;
  s.x.SetName("x");
  s.y.SetName("y");

  Checker chk(opts);
  chk.OnReset([&] {
    s.x.store(0, relaxed);
    s.y.store(0, relaxed);
    s.r1.Set(0);
    s.r2.Set(0);
  });
  chk.AddThread("t1", [&] {
    s.x.store(1, seq_cst);
    s.r1.Set(1 + s.y.load(seq_cst));
  });
  chk.AddThread("t2", [&] {
    s.y.store(1, seq_cst);
    s.r2.Set(1 + s.x.load(seq_cst));
  });
  chk.AddInvariant("not both stale", [&] {
    return !(s.r1.Get() == 1 && s.r2.Get() == 1);
  });
  return chk.Run();
}

// ---- summary_publish_validate ---------------------------------------------
// The optimistic fast path against a mutex-side mutation window, distilled
// from `TryFastpathAcquire` and `EntryMutation`/`TryGrantLocked`:
//
//   fastpath (S):  s1 = summary          (premise: even, no X bit)
//                  CAS slot.txn 0 -> 7   (claim)
//                  slot.word = S|1
//                  s2 = summary          (revalidate: s2 == s1)
//   mutator (X):   summary = odd         (EntryMutation ctor)
//                  scan slot.txn         (grant decision)
//                  if free: grant X      (holder vector write)
//                  summary = even [+X]   (EntryMutation dtor)
//
// The seq_cst total order makes "mutator misses the claim AND fastpath
// misses the bump" impossible; the invariant is the §3 compatibility
// matrix itself (S and X never both granted).  `wm.summary-load-relaxed`
// weakens s1/s2 exactly as the production mutant does (stale even summary
// validates), `wm.slot-cas-relaxed` weakens the claim (the mutex-side scan
// may legally read the stale empty slot).

constexpr uint64_t kSummarySeq = 0xff;  // low bits: seqlock sequence
constexpr uint64_t kSummaryX = 0x100;   // mode-mask bit: X held

Result RunSummaryPublishValidate(Checker::Options opts) {
  struct State {
    Atomic<uint64_t> summary;
    Atomic<uint64_t> slot_txn;
    Atomic<uint64_t> slot_word;
    Var<uint64_t> granted_s;
    Var<uint64_t> granted_x;
  } s;
  s.summary.SetName("summary");
  s.slot_txn.SetName("slot.txn");
  s.slot_word.SetName("slot.word");

  Checker chk(opts);
  chk.OnReset([&] {
    s.summary.store(0, relaxed);
    s.slot_txn.store(0, relaxed);
    s.slot_word.store(0, relaxed);
    s.granted_s.Set(0);
    s.granted_x.Set(0);
  });
  chk.AddThread("fastpath", [&] {
    const MemoryOrder summary_mo =
        WeakenedOrder(Mutant::kWmSummaryLoadRelaxed, seq_cst);
    const uint64_t s1 = s.summary.load(summary_mo);
    if ((s1 & 1) != 0 || (s1 & kSummaryX) != 0) return;  // premise failed
    uint64_t expected = 0;
    if (!s.slot_txn.compare_exchange_strong(
            expected, 7, WeakenedOrder(Mutant::kWmSlotCasRelaxed, seq_cst))) {
      return;  // lost the slot race
    }
    s.slot_word.store(0x11, seq_cst);
    const uint64_t s2 = s.summary.load(summary_mo);
    if (s2 != s1) {  // revalidation failed: undo the claim
      s.slot_word.store(0, seq_cst);
      s.slot_txn.store(0, seq_cst);
      return;
    }
    s.granted_s.Set(1);
  });
  chk.AddThread("mutator", [&] {
    const uint64_t seq = s.summary.load(relaxed);
    s.summary.store(seq + 1, seq_cst);  // odd: mutation window open
    const uint64_t claim = s.slot_txn.load(seq_cst);
    uint64_t flags = 0;
    if (claim == 0) {  // slot free: X is compatible with nothing else here
      s.granted_x.Set(1);
      flags = kSummaryX;
    }
    s.summary.store(((seq + 2) & kSummarySeq) | flags, seq_cst);
  });
  chk.AddInvariant("S and X never both granted", [&] {
    return !(s.granted_s.Get() == 1 && s.granted_x.Get() == 1);
  });
  return chk.Run();
}

// ---- slot_claim_race ------------------------------------------------------
// Two fast-path transactions race one free FpSlot: CAS atomicity must
// admit exactly one owner, and the loser must observe the winner (no lost
// claim) — distilled from the `free_slot->txn.compare_exchange_strong`
// site of `TryFastpathAcquire`.

Result RunSlotClaimRace(Checker::Options opts) {
  struct State {
    Atomic<uint64_t> slot_txn;
    Atomic<uint64_t> slot_word;
    Var<uint64_t> ok7;
    Var<uint64_t> ok9;
  } s;
  s.slot_txn.SetName("slot.txn");
  s.slot_word.SetName("slot.word");

  auto claim = [&s](uint64_t txn, Var<uint64_t>& ok) {
    uint64_t expected = 0;
    if (s.slot_txn.compare_exchange_strong(expected, txn, seq_cst)) {
      s.slot_word.store(0x11, seq_cst);
      ok.Set(1);
    }
  };

  Checker chk(opts);
  chk.OnReset([&] {
    s.slot_txn.store(0, relaxed);
    s.slot_word.store(0, relaxed);
    s.ok7.Set(0);
    s.ok9.Set(0);
  });
  chk.AddThread("txn7", [&] { claim(7, s.ok7); });
  chk.AddThread("txn9", [&] { claim(9, s.ok9); });
  chk.AddInvariant("exactly one owner", [&] {
    const bool a = s.ok7.Get() == 1;
    const bool b = s.ok9.Get() == 1;
    const uint64_t owner = s.slot_txn.load(relaxed);  // direct: mo tail
    return (a != b) && owner == (a ? uint64_t{7} : uint64_t{9});
  });
  return chk.Run();
}

// ---- ebr_pin_vs_stamp -----------------------------------------------------
// The EBR pin/validate protocol against unlink/stamp/scan/reuse, distilled
// from `ebr::Reclaimer::Guard`, `Stamp`, `MinActive`, and the entry-pool
// reuse in `EntryFor`:
//
//   reader:     e = global; rec = e;                 (pin)
//               while ((g = global) != e) rec = e = g;  (validate)
//               if (head != 0) read node.key         (FindEntry deref)
//               rec = kIdle (release)                (unpin)
//   reclaimer:  head = 0                             (unlink, under mutex)
//               stamp = ++global                     (Stamp)
//               ep = rec                             (MinActive scan)
//               if (ep == kIdle || ep >= stamp)      (SafeToReclaim)
//                 node.key = 2                       (reuse: key rewrite)
//
// Unmutated, a reader that can still reach the node is either pinned below
// the stamp (scan sees it: unsafe) or re-pins at the new epoch, where the
// seq_cst unlink is visible and the deref never happens.  The reuse write
// racing the reader's key read is the bug `wm.ebr-epoch-relaxed` must
// expose: with the pin/validate accesses relaxed, the scan may legally
// read the stale idle record.

constexpr uint64_t kEbrIdle = ~uint64_t{0};

Result RunEbrPinVsStamp(Checker::Options opts) {
  struct State {
    Atomic<uint64_t> global;
    Atomic<uint64_t> rec;
    Atomic<uint64_t> head;
    Var<uint64_t> key;
    Var<uint64_t> got;
    Var<uint64_t> reclaimed;
  } s;
  s.global.SetName("ebr.global");
  s.rec.SetName("ebr.rec");
  s.head.SetName("bucket.head");
  s.key.SetName("entry.key");

  Checker chk(opts);
  chk.OnReset([&] {
    s.global.store(1, relaxed);
    s.rec.store(kEbrIdle, relaxed);
    s.head.store(1, relaxed);
    s.key.Set(1);
    s.got.Set(0);
    s.reclaimed.Set(0);
  });
  chk.AddThread("reader", [&] {
    const MemoryOrder pin_mo =
        WeakenedOrder(Mutant::kWmEbrEpochRelaxed, seq_cst);
    uint64_t e = s.global.load(pin_mo);
    s.rec.store(e, pin_mo);
    uint64_t g;
    while ((g = s.global.load(pin_mo)) != e) {  // bounded: coherence floor
      e = g;
      s.rec.store(e, pin_mo);
    }
    if (s.head.load(seq_cst) != 0) {  // FindEntry chain walk
      s.got.Set(s.key.Get());
    }
    s.rec.store(kEbrIdle, release);
  });
  chk.AddThread("reclaimer", [&] {
    s.head.store(0, seq_cst);  // unlink (mutex-side, before Stamp)
    const uint64_t stamp = s.global.fetch_add(1, seq_cst) + 1;
    const uint64_t ep = s.rec.load(seq_cst);  // MinActive scan
    if (ep == kEbrIdle || ep >= stamp) {      // SafeToReclaim
      s.key.Set(2);                           // reuse: rewrite the key
      s.reclaimed.Set(1);
    }
  });
  chk.AddInvariant("reader never sees a rewritten key", [&] {
    return s.got.Get() != 2;
  });
  return chk.Run();
}

// ---- mailbox_publish_drain ------------------------------------------------
// Flat-combining handoff, distilled from `CombineAcquireShard` /
// `CombinerDrain`: the publisher fills plain request fields and flips the
// mailbox to Published; a combiner claims it (Published -> Claimed), reads
// the request, writes plain results, and flips to Done; the publisher
// reads the results after seeing Done.  Two combiners race the claim: CAS
// atomicity must drain the batch exactly once, and every plain field
// crossing must be ordered by the state transitions.
// `wm.mailbox-publish-relaxed` weakens the Published store: the combiner's
// acquire-claim then reads a store with no release payload and the request
// fields race.

constexpr uint64_t kMbEmpty = 0;
constexpr uint64_t kMbPublishing = 1;
constexpr uint64_t kMbPublished = 2;
constexpr uint64_t kMbClaimed = 3;
constexpr uint64_t kMbDone = 4;

Result RunMailboxPublishDrain(Checker::Options opts) {
  struct State {
    Atomic<uint64_t> state;
    Var<uint64_t> req_payload;
    Var<uint64_t> req_n;
    Var<uint64_t> result;
    Var<uint64_t> got;
    Var<uint64_t> drained_a;
    Var<uint64_t> drained_b;
  } s;
  s.state.SetName("mailbox.state");
  s.req_payload.SetName("req.payload");
  s.req_n.SetName("req.n");
  s.result.SetName("req.result");

  auto combiner = [&s](Var<uint64_t>& drained) {
    // CombinerDrain under the shard mutex: claim published mailboxes.
    // (The kernel awaits the publish rather than spinning on TryLock.)
    s.state.AwaitPred([](uint64_t v) { return v >= kMbPublished; });
    uint64_t expected = kMbPublished;
    if (s.state.compare_exchange_strong(expected, kMbClaimed, acq_rel)) {
      const uint64_t p = s.req_payload.Get();
      const uint64_t n = s.req_n.Get();
      s.result.Set(p + n);
      drained.Set(1);
      s.state.store(kMbDone, seq_cst);
    }
  };

  Checker chk(opts);
  chk.OnReset([&] {
    s.state.store(kMbEmpty, relaxed);
    s.req_payload.Set(0);
    s.req_n.Set(0);
    s.result.Set(0);
    s.got.Set(0);
    s.drained_a.Set(0);
    s.drained_b.Set(0);
  });
  chk.AddThread("publisher", [&] {
    uint64_t expected = kMbEmpty;
    if (!s.state.compare_exchange_strong(expected, kMbPublishing, acq_rel)) {
      return;  // unreachable: sole publisher
    }
    s.req_payload.Set(41);
    s.req_n.Set(1);
    s.state.store(kMbPublished,
                  WeakenedOrder(Mutant::kWmMailboxPublishRelaxed, seq_cst));
    s.state.AwaitEq(kMbDone);
    s.got.Set(s.result.Get());
    // (The production Empty reset is elided: it would make the combiners'
    // "published yet?" wait indistinguishable from the initial state.)
  });
  chk.AddThread("combiner-a", [&] { combiner(s.drained_a); });
  chk.AddThread("combiner-b", [&] { combiner(s.drained_b); });
  chk.AddInvariant("drained exactly once", [&] {
    return s.drained_a.Get() + s.drained_b.Get() == 1;
  });
  chk.AddInvariant("publisher read the combiner's result",
                   [&] { return s.got.Get() == 42; });
  return chk.Run();
}

const std::vector<Harness> kHarnesses = {
    {"mp_publish", "release/acquire message passing (sw baseline)", 20000,
     false, RunMpPublish},
    {"mp_relaxed_selfcheck",
     "negative control: relaxed message passing must be flagged", 20000,
     true, RunMpRelaxedSelfcheck},
    {"sb_dekker", "store buffering: seq_cst forbids both-stale", 20000,
     false, RunSbDekker},
    {"summary_publish_validate",
     "fast-path premise/claim/revalidate vs the seqlock mutation window",
     60000, false, RunSummaryPublishValidate},
    {"slot_claim_race", "two txns race one FpSlot claim CAS", 20000, false,
     RunSlotClaimRace},
    {"ebr_pin_vs_stamp", "EBR pin/validate vs unlink/stamp/scan/reuse",
     60000, false, RunEbrPinVsStamp},
    {"mailbox_publish_drain",
     "flat-combining publish/claim/drain/done handoff", 150000, false,
     RunMailboxPublishDrain},
};

const std::vector<KillCase> kKillSuite = {
    {Mutant::kWmSummaryLoadRelaxed, "summary_publish_validate"},
    {Mutant::kWmSlotCasRelaxed, "summary_publish_validate"},
    {Mutant::kWmEbrEpochRelaxed, "ebr_pin_vs_stamp"},
    {Mutant::kWmMailboxPublishRelaxed, "mailbox_publish_drain"},
};

}  // namespace

const std::vector<Harness>& AllHarnesses() { return kHarnesses; }

const Harness* FindHarness(std::string_view name) {
  auto it = std::find_if(kHarnesses.begin(), kHarnesses.end(),
                         [&](const Harness& h) { return name == h.name; });
  return it == kHarnesses.end() ? nullptr : &*it;
}

const std::vector<KillCase>& KillSuite() { return kKillSuite; }

}  // namespace codlock::wm::litmus
