/// \file mutation_points.h
/// \brief Seeded protocol mutants for the model checker's kill-suite.
///
/// A checker is only as good as the bugs it can catch.  The mutation
/// harness (`tests/mc_mutation_test.cc`, `codlock_mc --kill-suite`) flips
/// one protocol invariant at a time at runtime and asserts that at least
/// one oracle flags the resulting executions.  Each `Mutant` below is a
/// guarded branch compiled into the production code path; with the mask at
/// zero (always, outside the kill-suite) the cost is one relaxed atomic
/// load on paths that are not hot, and the branches are trivially dead.
///
/// The mutants target exactly the invariants the oracles claim to check:
///
///  * `kCompatSX`            — treats S and X as compatible (one flipped
///    cell of the §3 matrix).  Must be caught by the compatibility-
///    soundness oracle (two conflicting grants coexist on one resource).
///  * `kSkipUpwardPropagation` — an entry-point lock skips the implicit
///    superunit chain (§4.4.2 rules 1/2).  A relation-level writer no
///    longer sees the inner unit's use: caught by the implicit-lock
///    visibility oracle.
///  * `kSkipDownwardPropagation` — S/X grants skip locking reachable entry
///    points (§4.4.2 rules 3/4).  A from-the-side writer of shared data
///    races an outer-unit holder: caught by the visibility oracle.
///  * `kDropCacheInvalidation` — cross-thread cache invalidation (the
///    epoch bump of `TxnLockCache`) is dropped.  Stale fast-path answers
///    survive EOT: caught by the cache-coherence oracle.
///  * `kSkipWaiterWakeup`    — a grant promotes the waiter but never
///    notifies it (lost wakeup).  The schedule wedges: caught by the
///    termination oracle.
///  * `kFastpathSkipValidation` — the optimistic compatible-mode fast path
///    grants without checking the entry's seqlock grant summary (neither
///    the premise nor the post-claim revalidation).  An S/IS slips in over
///    an exclusive holder: caught by the compatibility-soundness oracle.
///  * `kCombineDropRequest`  — the flat combiner marks a published
///    propagation request granted without applying it to the lock table.
///    The publisher's cache then claims a mode the shard never granted:
///    caught by the cache-coherence (and visibility) oracles.
///  * `kRingSkipReclaim`     — the dead-handle reclaim skips unconsumed
///    published frames (`kPublished` strands stay in the ring forever).
///    Caught by the ring frame-conservation oracle: at quiescence the
///    ledger no longer balances and `InFlight()` never reaches zero.
///
/// The `kWm*` mutants below are *order-weakening* mutants: instead of
/// flipping a protocol decision they downgrade one specific atomic
/// access's memory order to `relaxed` (through `WeakenedOrder`, used at
/// the real call site in src/lock *and* in the distilled litmus kernel of
/// src/wm/litmus.cc).  They are invisible to `codlock_mc` — its scheduler
/// interleaves under sequential consistency — and must be killed by the
/// weak-memory checker (`codlock_wmc --kill-suite`) instead:
///
///  * `kWmSummaryLoadRelaxed` — the fast path's seqlock summary loads
///    (premise and revalidation in `TryFastpathAcquire`) go relaxed.  A
///    reader may then validate against a stale even sequence and grant S
///    over a concurrently installed X holder.
///  * `kWmSlotCasRelaxed`     — the fast-path slot claim CAS goes relaxed.
///    The Dekker-style "either they see our claim or we see their bump"
///    argument needs the claim in the seq_cst total order; relaxed, a
///    mutex-side scan may read a stale empty slot after the claim.
///  * `kWmEbrEpochRelaxed`    — the EBR guard's pin/validate accesses go
///    relaxed.  A reclaimer's scan may miss a published pin and reuse a
///    node a pinned reader still dereferences.
///  * `kWmMailboxPublishRelaxed` — the flat-combining mailbox's
///    `kCombinePublished` transition goes relaxed.  The combiner's
///    acquire-claim no longer synchronizes with the publisher's plain
///    request fields: a torn batch (data race) becomes observable.

#ifndef CODLOCK_UTIL_MUTATION_POINTS_H_
#define CODLOCK_UTIL_MUTATION_POINTS_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "util/wm_order.h"

namespace codlock::mutation {

enum class Mutant : uint32_t {
  kCompatSX = 0,
  kSkipUpwardPropagation,
  kSkipDownwardPropagation,
  kDropCacheInvalidation,
  kSkipWaiterWakeup,
  kFastpathSkipValidation,
  kCombineDropRequest,
  kRingSkipReclaim,
  kWmSummaryLoadRelaxed,
  kWmSlotCasRelaxed,
  kWmEbrEpochRelaxed,
  kWmMailboxPublishRelaxed,
  kNumMutants,
};

inline constexpr size_t kNumMutants =
    static_cast<size_t>(Mutant::kNumMutants);

namespace internal {
inline std::atomic<uint32_t> mask{0};
}  // namespace internal

inline bool Enabled(Mutant m) {
  return (internal::mask.load(std::memory_order_relaxed) &
          (uint32_t{1} << static_cast<uint32_t>(m))) != 0;
}

inline void Enable(Mutant m) {
  internal::mask.fetch_or(uint32_t{1} << static_cast<uint32_t>(m),
                          std::memory_order_relaxed);
}

inline void Disable(Mutant m) {
  internal::mask.fetch_and(~(uint32_t{1} << static_cast<uint32_t>(m)),
                           std::memory_order_relaxed);
}

inline void DisableAll() {
  internal::mask.store(0, std::memory_order_relaxed);
}

/// RAII enabler so a throwing test can never leak a mutant into later
/// tests or production assertions.
class ScopedMutant {
 public:
  explicit ScopedMutant(Mutant m) : m_(m) { Enable(m_); }
  ~ScopedMutant() { Disable(m_); }
  ScopedMutant(const ScopedMutant&) = delete;
  ScopedMutant& operator=(const ScopedMutant&) = delete;

 private:
  Mutant m_;
};

/// Memory order actually used at an order-weakening mutation site: the
/// declared \p strong order normally, `relaxed` while mutant \p m is
/// enabled.  Used at the real access in src/lock and at the same access in
/// the distilled litmus kernel, so `codlock_wmc --kill-suite` exercises
/// exactly the production toggle.  Cost with the mask at zero: one relaxed
/// atomic load, same as every other mutation point.
inline wm::MemoryOrder WeakenedOrder(Mutant m, wm::MemoryOrder strong) {
  return Enabled(m) ? wm::relaxed : strong;
}

/// The order-weakening mutants, i.e. the slice of the kill-suite owned by
/// the weak-memory checker rather than `codlock_mc`.
inline bool IsOrderWeakening(Mutant m) {
  switch (m) {
    case Mutant::kWmSummaryLoadRelaxed:
    case Mutant::kWmSlotCasRelaxed:
    case Mutant::kWmEbrEpochRelaxed:
    case Mutant::kWmMailboxPublishRelaxed:
      return true;
    default:
      return false;
  }
}

inline std::string_view MutantName(Mutant m) {
  switch (m) {
    case Mutant::kCompatSX:
      return "compat-sx";
    case Mutant::kSkipUpwardPropagation:
      return "skip-upward-propagation";
    case Mutant::kSkipDownwardPropagation:
      return "skip-downward-propagation";
    case Mutant::kDropCacheInvalidation:
      return "drop-cache-invalidation";
    case Mutant::kSkipWaiterWakeup:
      return "skip-waiter-wakeup";
    case Mutant::kFastpathSkipValidation:
      return "fastpath.skip-validation";
    case Mutant::kCombineDropRequest:
      return "combine.drop-request";
    case Mutant::kRingSkipReclaim:
      return "ring.skip-reclaim";
    case Mutant::kWmSummaryLoadRelaxed:
      return "wm.summary-load-relaxed";
    case Mutant::kWmSlotCasRelaxed:
      return "wm.slot-cas-relaxed";
    case Mutant::kWmEbrEpochRelaxed:
      return "wm.ebr-epoch-relaxed";
    case Mutant::kWmMailboxPublishRelaxed:
      return "wm.mailbox-publish-relaxed";
    case Mutant::kNumMutants:
      break;
  }
  return "?";
}

}  // namespace codlock::mutation

#endif  // CODLOCK_UTIL_MUTATION_POINTS_H_
