/// \file rng.h
/// \brief Deterministic, fast pseudo-random number generation.
///
/// Benchmarks and property tests must be reproducible, so all randomness in
/// codlock flows through `Rng`, a splitmix64-seeded xoshiro256** generator.

#ifndef CODLOCK_UTIL_RNG_H_
#define CODLOCK_UTIL_RNG_H_

#include <cstdint>

namespace codlock {

/// \brief Small, fast, seedable PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator deterministically from \p seed via splitmix64.
  explicit Rng(uint64_t seed = 0xC0D10C4ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace codlock

#endif  // CODLOCK_UTIL_RNG_H_
