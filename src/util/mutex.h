/// \file mutex.h
/// \brief Capability-annotated mutex, scoped lock and condition variable.
///
/// `std::mutex` carries no thread-safety attributes in libstdc++, so Clang's
/// `-Wthread-safety` analysis cannot see through it.  These thin wrappers
/// (zero overhead: everything inlines to the underlying std call) make
/// lock/unlock events visible to the analysis:
///
///  * `Mutex` — a `std::mutex` declared as a capability,
///  * `MutexLock` — `std::lock_guard` equivalent declared as a scoped
///    capability,
///  * `CondVar` — a `std::condition_variable` whose wait functions take the
///    annotated `Mutex` directly (the capability stays held across a wait,
///    exactly as the analysis expects).
///
/// Members protected by a `Mutex` are declared `CODLOCK_GUARDED_BY(mu_)`;
/// functions called with one held are declared `CODLOCK_REQUIRES(mu_)`.

#ifndef CODLOCK_UTIL_MUTEX_H_
#define CODLOCK_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/det_hooks.h"
#include "util/thread_annotations.h"

namespace codlock {

/// \brief A standard mutex visible to Clang Thread Safety Analysis.
class CODLOCK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CODLOCK_ACQUIRE() { mu_.lock(); }
  void Unlock() CODLOCK_RELEASE() { mu_.unlock(); }
  bool TryLock() CODLOCK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a `Mutex` (the annotated `std::lock_guard`).
class CODLOCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CODLOCK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CODLOCK_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// Waits require the mutex to be held; the capability is considered held
/// across the wait (the underlying condition variable re-acquires it before
/// returning), so guarded state may be read in the predicate and after the
/// wait without further annotation ceremony.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() {
    if (BlockingObserver* obs = BlockingObserver::Get()) {
      obs->OnCondVarNotify(this);
    }
    cv_.notify_one();
  }
  void NotifyAll() {
    if (BlockingObserver* obs = BlockingObserver::Get()) {
      obs->OnCondVarNotify(this);
    }
    cv_.notify_all();
  }

  /// Blocks until \p pred holds or \p deadline passes; returns `pred()`.
  template <typename Clock, typename Duration, typename Predicate>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Predicate pred) CODLOCK_REQUIRES(mu) {
    BlockingObserver* obs = BlockingObserver::Get();
    if (obs != nullptr && obs->ControlsCurrentThread()) {
      return WaitControlled(mu, *obs, pred, /*can_time_out=*/true);
    }
    // Adopt the already-held mutex for the duration of the wait; release()
    // afterwards so ownership stays with the caller's scoped lock.
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    bool result = cv_.wait_until(lk, deadline, std::move(pred));
    lk.release();
    return result;
  }

  /// Blocks until \p pred holds.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) CODLOCK_REQUIRES(mu) {
    BlockingObserver* obs = BlockingObserver::Get();
    if (obs != nullptr && obs->ControlsCurrentThread()) {
      WaitControlled(mu, *obs, pred, /*can_time_out=*/false);
      return;
    }
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

 private:
  /// Wait path for scheduler-controlled threads (model checking): park in
  /// the observer with the mutex released, re-check the predicate per
  /// wake-up.  A scheduler-injected timeout ends the wait like a deadline
  /// expiry would (the caller sees `pred()`, normally false).  Real time
  /// plays no role — interleavings stay deterministic.  The raw `mu.mu_`
  /// accesses are invisible to thread-safety analysis on purpose: as in
  /// the native branch, the capability is considered held across the wait.
  template <typename Predicate>
  bool WaitControlled(Mutex& mu, BlockingObserver& obs, Predicate& pred,
                      bool can_time_out) CODLOCK_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) {
      mu.mu_.unlock();
      BlockingObserver::WakeKind wake = obs.OnCondVarBlock(this);
      mu.mu_.lock();
      if (can_time_out && wake == BlockingObserver::WakeKind::kTimeout) {
        return pred();
      }
    }
    return true;
  }

  std::condition_variable cv_;
};

}  // namespace codlock

#endif  // CODLOCK_UTIL_MUTEX_H_
