/// \file retry.h
/// \brief Bounded retry with seeded-jitter exponential backoff.
///
/// Transaction Repair (Veldhuizen 2014) argues that conflict aborts are
/// recoverable events, not terminal ones: a transaction killed as a
/// deadlock victim, timed out, wounded, or shed under overload can simply
/// run again.  `RetryPolicy` centralizes the decision (*which* failures
/// retry, *how many* times, *how long* to back off) that was previously
/// hard-coded in each harness.  All jitter flows through the caller's
/// seeded `Rng`, so a retried workload is exactly reproducible.

#ifndef CODLOCK_UTIL_RETRY_H_
#define CODLOCK_UTIL_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace codlock {

/// \brief Retry/backoff configuration for aborted transactions.
struct RetryPolicy {
  /// Total attempts including the first one; 1 disables retrying.
  int max_attempts = 4;
  /// Backoff before retry k (k = 1 is the first retry) is drawn uniformly
  /// from [base/2 + base*2^(k-1)/2 * jitter window]; concretely:
  /// full = min(base_backoff_us << (k-1), max_backoff_us), sleep in
  /// [full/2, full].  Halving the floor keeps retried victims from
  /// re-colliding in lockstep while bounding the worst-case delay.
  uint64_t base_backoff_us = 100;
  uint64_t max_backoff_us = 10'000;

  /// Failures that a fresh attempt can cure: deadlock victims, expired
  /// deadlines, wound-wait preemptions, and overload sheds.  Everything
  /// else (bad queries, authorization, corruption) is permanent.
  static bool IsRetryable(const Status& s) {
    return s.IsDeadlock() || s.IsTimeout() || s.IsAborted() || s.IsShed();
  }

  /// True when attempt \p attempt (0-based count of attempts already made)
  /// may be followed by another one.
  bool ShouldRetry(const Status& s, int attempts_made) const {
    return IsRetryable(s) && attempts_made < max_attempts;
  }

  /// Backoff in microseconds before retry number \p retry (1-based),
  /// jittered via \p rng.
  uint64_t BackoffUs(int retry, Rng& rng) const {
    if (retry < 1) retry = 1;
    const int shift = std::min(retry - 1, 20);
    const uint64_t full =
        std::min<uint64_t>(base_backoff_us << shift, max_backoff_us);
    if (full == 0) return 0;
    return full / 2 + rng.Uniform(full / 2 + 1);
  }
};

}  // namespace codlock

#endif  // CODLOCK_UTIL_RETRY_H_
