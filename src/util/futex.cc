#include "util/futex.h"

#include <cerrno>
#include <chrono>
#include <cstdint>

#include "fault/fault_injector.h"
#include "util/mutex.h"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace codlock::futex {

namespace {

// Simulated EINTR on a blocking futex wait: the wait must re-compute its
// remaining time from the original deadline and retry, never surface the
// interruption or bust the deadline.  Counter-triggered in tests.
fault::FaultPoint g_fault_futex_wait{"util.futex.wait",
                                     fault::FaultKind::kError};

constexpr uint32_t kWaitBlockMagic = 0x57a17b10;  // "wait blo(ck)"

// The 32-bit words we wait on are std::atomic<uint32_t> living in shared
// memory; both the syscall and the pthread fallback need them to be plain
// lock-free words.
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "futex words must be address-free lock-free atomics");
static_assert(sizeof(std::atomic<uint32_t>) == sizeof(uint32_t),
              "futex words must be bare 32-bit cells");

using SteadyClock = std::chrono::steady_clock;

// ---------------------------------------------------------------------
// kInProcess: hashed Mutex/CondVar buckets.  Wakers acquire the bucket
// mutex before notifying, which orders every wake after any in-progress
// predicate check — the same lost-wakeup discipline the ring used before
// the shim existed.  Blocking routes through CondVar::WaitUntil, so the
// deterministic scheduler and thread-safety analysis still see it.

struct Bucket {
  Mutex mu;
  CondVar cv;
};

constexpr size_t kNumBuckets = 64;

Bucket& BucketFor(const void* addr) {
  static Bucket buckets[kNumBuckets];
  auto h = reinterpret_cast<uintptr_t>(addr);
  h ^= h >> 17;
  h *= 0x9e3779b97f4a7c15ull;
  return buckets[(h >> 32) % kNumBuckets];
}

Status WaitInProcess(const std::atomic<uint32_t>& word, uint32_t expected,
                     SteadyClock::time_point deadline) {
  Bucket& b = BucketFor(&word);
  bool changed = false;
  {
    MutexLock lk(b.mu);
    changed = b.cv.WaitUntil(b.mu, deadline, [&] {
      return word.load(std::memory_order_acquire) != expected;
    });
  }
  if (changed) return Status::OK();
  return Status::Timeout("futex wait timed out");
}

void WakeInProcess(const std::atomic<uint32_t>& word) {
  Bucket& b = BucketFor(&word);
  { MutexLock lk(b.mu); }
  b.cv.NotifyAll();
}

// ---------------------------------------------------------------------
// kSharedCond: PTHREAD_PROCESS_SHARED pair in the caller's segment.  The
// mutex is robust: a waiter SIGKILLed inside the (tiny) critical section
// leaves EOWNERDEAD behind, which the next party repairs with
// pthread_mutex_consistent instead of wedging the whole ring.

Status LockShared(SharedWaitBlock* shared) {
  int rc = pthread_mutex_lock(&shared->mu);
  if (rc == EOWNERDEAD) {
    pthread_mutex_consistent(&shared->mu);
    rc = 0;
  }
  if (rc != 0) return ErrnoStatus("pthread_mutex_lock(shared)", rc);
  return Status::OK();
}

Status WaitSharedCond(const std::atomic<uint32_t>& word, uint32_t expected,
                      SteadyClock::time_point deadline,
                      SharedWaitBlock* shared) {
  if (shared == nullptr || !shared->IsInitialized()) {
    return Status::FailedPrecondition(
        "kSharedCond futex wait without an initialized SharedWaitBlock");
  }
  CODLOCK_RETURN_IF_ERROR(LockShared(shared));
  Status result;
  for (;;) {
    if (word.load(std::memory_order_acquire) != expected) break;
    const auto now = SteadyClock::now();
    if (now >= deadline) {
      result = Status::Timeout("futex wait timed out");
      break;
    }
    // The condvar clock is CLOCK_MONOTONIC (set at Init), so the absolute
    // deadline converts through clock_gettime, immune to wall-clock jumps.
    const auto remaining = deadline - now;
    struct timespec abs;
    clock_gettime(CLOCK_MONOTONIC, &abs);
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(remaining)
            .count();
    abs.tv_sec += ns / 1000000000;
    abs.tv_nsec += ns % 1000000000;
    if (abs.tv_nsec >= 1000000000) {
      abs.tv_sec += 1;
      abs.tv_nsec -= 1000000000;
    }
    int rc = pthread_cond_timedwait(&shared->cv, &shared->mu, &abs);
    if (rc == EOWNERDEAD) {
      pthread_mutex_consistent(&shared->mu);
      rc = 0;
    }
    if (rc == ETIMEDOUT || rc == EINTR || rc == 0) continue;  // re-check
    result = ErrnoStatus("pthread_cond_timedwait", rc);
    break;
  }
  pthread_mutex_unlock(&shared->mu);
  return result;
}

Status WakeSharedCond(SharedWaitBlock* shared) {
  if (shared == nullptr || !shared->IsInitialized()) {
    return Status::FailedPrecondition(
        "kSharedCond futex wake without an initialized SharedWaitBlock");
  }
  CODLOCK_RETURN_IF_ERROR(LockShared(shared));
  pthread_cond_broadcast(&shared->cv);
  pthread_mutex_unlock(&shared->mu);
  return Status::OK();
}

// ---------------------------------------------------------------------
// kSyscall: futex(2), no FUTEX_PRIVATE_FLAG so the wait matches wakers in
// other processes mapping the same physical page.

#if defined(__linux__)

Status WaitSyscallOnce(const std::atomic<uint32_t>& word, uint32_t expected,
                       SteadyClock::duration remaining, bool* timed_out) {
  struct timespec ts;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(remaining).count();
  ts.tv_sec = ns / 1000000000;
  ts.tv_nsec = ns % 1000000000;
  // std::atomic<uint32_t> is layout-compatible with its word
  // (static_asserted above); the kernel compares the value at the address.
  auto* uaddr = reinterpret_cast<const uint32_t*>(&word);
  long rc = syscall(SYS_futex, uaddr, FUTEX_WAIT, expected, &ts, nullptr, 0);
  if (rc == 0) return Status::OK();
  const int err = errno;
  switch (err) {
    case EAGAIN:  // value no longer == expected: that is a successful wait
      return Status::OK();
    case ETIMEDOUT:
      *timed_out = true;
      return Status::OK();
    case EINTR:  // caller loop re-computes remaining and retries
      return Status::OK();
    default:
      return ErrnoStatus("futex(FUTEX_WAIT)", err);
  }
}

Status WakeSyscall(const std::atomic<uint32_t>& word) {
  auto* uaddr = reinterpret_cast<const uint32_t*>(&word);
  long rc = syscall(SYS_futex, uaddr, FUTEX_WAKE, INT32_MAX, nullptr, nullptr,
                    0);
  if (rc < 0) return ErrnoStatus("futex(FUTEX_WAKE)", errno);
  return Status::OK();
}

#endif  // __linux__

}  // namespace

Status SharedWaitBlock::Init() {
  pthread_mutexattr_t ma;
  int rc = pthread_mutexattr_init(&ma);
  if (rc != 0) return ErrnoStatus("pthread_mutexattr_init", rc);
  pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
  pthread_mutexattr_setrobust(&ma, PTHREAD_MUTEX_ROBUST);
  rc = pthread_mutex_init(&mu, &ma);
  pthread_mutexattr_destroy(&ma);
  if (rc != 0) return ErrnoStatus("pthread_mutex_init(shared)", rc);

  pthread_condattr_t ca;
  rc = pthread_condattr_init(&ca);
  if (rc != 0) {
    pthread_mutex_destroy(&mu);
    return ErrnoStatus("pthread_condattr_init", rc);
  }
  pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
  pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
  rc = pthread_cond_init(&cv, &ca);
  pthread_condattr_destroy(&ca);
  if (rc != 0) {
    pthread_mutex_destroy(&mu);
    return ErrnoStatus("pthread_cond_init(shared)", rc);
  }
  initialized = kWaitBlockMagic;
  return Status::OK();
}

bool SharedWaitBlock::IsInitialized() const {
  return initialized == kWaitBlockMagic;
}

bool SyscallSupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

Status Wait(Backend backend, const std::atomic<uint32_t>& word,
            uint32_t expected, uint64_t timeout_us, SharedWaitBlock* shared) {
  const auto deadline =
      SteadyClock::now() + std::chrono::microseconds(timeout_us);
  for (;;) {
    if (word.load(std::memory_order_acquire) != expected) return Status::OK();
    const auto now = SteadyClock::now();
    if (now >= deadline) return Status::Timeout("futex wait timed out");
    if (g_fault_futex_wait.Fire()) {
      // Simulated EINTR: fall through to the top of the loop, which
      // re-checks the word and the *original* deadline before blocking
      // again with the re-computed remaining time.
      continue;
    }
    switch (backend) {
      case Backend::kInProcess:
        return WaitInProcess(word, expected, deadline);
      case Backend::kSyscall: {
#if defined(__linux__)
        bool timed_out = false;
        CODLOCK_RETURN_IF_ERROR(
            WaitSyscallOnce(word, expected, deadline - now, &timed_out));
        if (timed_out) return Status::Timeout("futex wait timed out");
        // Woken, value changed, EINTR or spurious: loop re-checks both
        // the word and the deadline.
        continue;
#else
        return WaitSharedCond(word, expected, deadline, shared);
#endif
      }
      case Backend::kSharedCond:
        return WaitSharedCond(word, expected, deadline, shared);
    }
    return Status::Internal("unknown futex backend");
  }
}

Status WakeAll(Backend backend, const std::atomic<uint32_t>& word,
               SharedWaitBlock* shared) {
  switch (backend) {
    case Backend::kInProcess:
      WakeInProcess(word);
      return Status::OK();
    case Backend::kSyscall:
#if defined(__linux__)
      return WakeSyscall(word);
#else
      return WakeSharedCond(shared);
#endif
    case Backend::kSharedCond:
      return WakeSharedCond(shared);
  }
  return Status::Internal("unknown futex backend");
}

}  // namespace codlock::futex
