/// \file metrics.h
/// \brief Counters and latency histograms used by the lock manager,
/// protocols, and the simulation harness.

#ifndef CODLOCK_UTIL_METRICS_H_
#define CODLOCK_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace codlock {

/// \brief A monotonically increasing, thread-safe counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Fixed-bucket log2 latency histogram (nanoseconds), thread-safe.
///
/// Bucket i covers [2^i, 2^(i+1)) ns; 64 buckets cover the full uint64
/// range.  Percentile reads are approximate (bucket midpoint) which is
/// sufficient for the relative comparisons the benchmarks report.
class LatencyHistogram {
 public:
  /// Records one sample of \p nanos nanoseconds.
  void Record(uint64_t nanos);

  /// Total number of recorded samples.
  uint64_t count() const;

  /// Mean of all samples (exact, from a running sum).
  double mean() const;

  /// Approximate \p q-quantile (0 < q < 1) in nanoseconds.
  uint64_t Quantile(double q) const;

  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  void Reset();

  /// Merges \p other into this histogram.
  void Merge(const LatencyHistogram& other);

 private:
  static constexpr int kBuckets = 64;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> max_{0};
};

/// \brief Statistics kept by the lock manager and protocols.
///
/// One instance is shared by all components of a running configuration; the
/// benchmark harness snapshots and diffs it.
struct LockStats {
  Counter requests;           ///< Slow-path lock requests received; total
                              ///< requests = requests + cache_hits.
  Counter grants;             ///< Slow-path grants (immediate or after wait);
                              ///< total grants = grants + cache_hits.
  Counter immediate_grants;   ///< Slow-path grants that never blocked.
  Counter cache_hits;         ///< Grants answered by a per-txn lock cache
                              ///< (no shard mutex touched).
  Counter fastpath_grants;    ///< Grants by the optimistic compatible-mode
                              ///< fast path (seqlock-validated, no shard
                              ///< mutex; also counted in grants).
  Counter fastpath_failures;  ///< Fast-path attempts that failed seqlock
                              ///< revalidation and fell back to the slow
                              ///< path after undoing their claim.
  Counter combine_published;  ///< Propagation batches published into a
                              ///< per-shard flat-combining slot.
  Counter combine_drained;    ///< Published batches applied by a combiner
                              ///< other than their publisher.
  Counter waits;              ///< Requests that blocked at least once.
  Counter conflicts;          ///< Compatibility-test failures.
  Counter compat_tests;       ///< Compatibility tests executed.
  Counter deadlocks;          ///< Requests denied by deadlock detection.
  Counter timeouts;           ///< Requests denied by deadline expiry.
  Counter sheds;              ///< Requests rejected by overload shedding
                              ///< (blocked-waiter cap reached).
  Counter releases;           ///< Individual lock releases.
  Counter escalations;        ///< Run-time lock escalations performed.
  Counter deescalations;      ///< De-escalations (coarse lock narrowed).
  Counter upward_propagations;    ///< Implicit upward propagation lock ops.
  Counter downward_propagations;  ///< Implicit downward propagation lock ops.
  Counter parent_searches;    ///< Objects scanned to find referencing parents
                              ///< (naive DAG protocol on shared data).

  // Transaction-level failure accounting (maintained by the txn layer and
  // harnesses that own the abort/retry loop, not by the lock manager).
  Counter aborts_timeout;     ///< Transactions aborted because a lock wait
                              ///< exceeded its deadline.
  Counter aborts_deadlock;    ///< Transactions aborted as deadlock victims
                              ///< (incl. wound-wait preemptions, wait-die).
  Counter aborts_shed;        ///< Transactions aborted by overload shedding.
  Counter retries;            ///< Transparent re-runs of aborted txns.

  // Workstation liveness (leases over check-outs; maintained by ws::Server).
  Counter leases_granted;     ///< Check-out leases issued.
  Counter leases_renewed;     ///< Successful lease renewals (incl. resumes).
  Counter leases_expired;     ///< Leases that ran past deadline + grace.
  Counter fenced_checkins;    ///< Check-in/renew/resume attempts rejected
                              ///< with a stale fencing epoch (zombies).
  Counter reclaimed_long_locks;  ///< Long locks released by the lease
                                 ///< reclamation sweep (stranded capacity
                                 ///< recovered from dead workstations).

  // Out-of-process serving (shared-memory job ring; maintained by
  // ws::ShmRing / ws::Host).
  Counter ring_published;        ///< Job frames published into the ring.
  Counter ring_consumed;         ///< Frames claimed by a worker with a
                                 ///< valid CRC (executed or executing).
  Counter ring_salvaged_frames;  ///< Torn frames (CRC mismatch — the
                                 ///< writer died mid-write) detected by a
                                 ///< consumer and their slots salvaged.
  Counter handles_fenced;        ///< Client handles fenced by the
                                 ///< dead-handle sweep or a host restart.
  Counter jobs_shed_per_handle;  ///< Jobs rejected by ring admission
                                 ///< control (per-handle or global
                                 ///< in-flight cap; also counted in
                                 ///< `sheds`).

  LatencyHistogram wait_ns;   ///< Time spent blocked per waiting request.

  /// Number of distinct lock-table entries currently held (gauge).
  std::atomic<int64_t> held_locks{0};
  /// High-water mark of held_locks.
  std::atomic<int64_t> max_held_locks{0};

  void Reset();

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// Flat JSON object with every counter (`codlock_dbtool stats --json`,
  /// bench harnesses).
  std::string ToJson() const;
};

/// \brief Simple stopwatch returning elapsed nanoseconds.
class Stopwatch {
 public:
  Stopwatch();
  /// Nanoseconds since construction or the last Restart().
  uint64_t ElapsedNanos() const;
  void Restart();

 private:
  uint64_t start_ns_;
};

/// Current monotonic time in nanoseconds.
uint64_t MonotonicNanos();

}  // namespace codlock

#endif  // CODLOCK_UTIL_METRICS_H_
