/// \file result.h
/// \brief `Result<T>`: a value or a non-OK `Status`.

#ifndef CODLOCK_UTIL_RESULT_H_
#define CODLOCK_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace codlock {

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Usage:
/// \code
///   Result<RelationId> r = catalog.FindRelation("cells");
///   if (!r.ok()) return r.status();
///   RelationId id = r.value();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result; \p status must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or \p fallback if this is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a `Result` expression, otherwise assigns the
/// value to \p lhs.
#define CODLOCK_ASSIGN_OR_RETURN(lhs, expr)          \
  auto CODLOCK_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!CODLOCK_CONCAT_(_res_, __LINE__).ok())        \
    return CODLOCK_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(CODLOCK_CONCAT_(_res_, __LINE__)).value()

#define CODLOCK_CONCAT_(a, b) CODLOCK_CONCAT_IMPL_(a, b)
#define CODLOCK_CONCAT_IMPL_(a, b) a##b

}  // namespace codlock

#endif  // CODLOCK_UTIL_RESULT_H_
