/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis attribute macros.
///
/// The concurrency-critical core (lock manager, long-lock store,
/// transaction manager, workstation–server layer) annotates which mutex
/// protects which member and which lock a function expects to be held.
/// Building with Clang and `-Wthread-safety` turns these declarations into
/// compile-time race checks; on other compilers every macro expands to
/// nothing.
///
/// The macro set follows the attribute names of the Clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
/// `CODLOCK_` to stay out of other libraries' way.  Annotations only fire
/// on capability-annotated types — use `codlock::Mutex` from util/mutex.h,
/// not a bare `std::mutex`, for members that should be analyzed.

#ifndef CODLOCK_UTIL_THREAD_ANNOTATIONS_H_
#define CODLOCK_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CODLOCK_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CODLOCK_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (a lockable type).
#define CODLOCK_CAPABILITY(x) CODLOCK_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define CODLOCK_SCOPED_CAPABILITY CODLOCK_THREAD_ANNOTATION__(scoped_lockable)

/// Member may only be accessed while holding the given capability.
#define CODLOCK_GUARDED_BY(x) CODLOCK_THREAD_ANNOTATION__(guarded_by(x))

/// Pointed-to data may only be accessed while holding the capability.
#define CODLOCK_PT_GUARDED_BY(x) CODLOCK_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define CODLOCK_ACQUIRED_BEFORE(...) \
  CODLOCK_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define CODLOCK_ACQUIRED_AFTER(...) \
  CODLOCK_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held (exclusively / shared) on
/// entry and does not release it.
#define CODLOCK_REQUIRES(...) \
  CODLOCK_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define CODLOCK_REQUIRES_SHARED(...) \
  CODLOCK_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define CODLOCK_ACQUIRE(...) \
  CODLOCK_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define CODLOCK_ACQUIRE_SHARED(...) \
  CODLOCK_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define CODLOCK_RELEASE(...) \
  CODLOCK_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define CODLOCK_RELEASE_SHARED(...) \
  CODLOCK_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define CODLOCK_RELEASE_GENERIC(...) \
  CODLOCK_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define CODLOCK_TRY_ACQUIRE(...) \
  CODLOCK_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define CODLOCK_TRY_ACQUIRE_SHARED(...) \
  CODLOCK_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant protection).
#define CODLOCK_EXCLUDES(...) \
  CODLOCK_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define CODLOCK_ASSERT_CAPABILITY(x) \
  CODLOCK_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define CODLOCK_RETURN_CAPABILITY(x) \
  CODLOCK_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of analysis (e.g. lock juggling the checker cannot
/// follow); use sparingly and document why.
#define CODLOCK_NO_THREAD_SAFETY_ANALYSIS \
  CODLOCK_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // CODLOCK_UTIL_THREAD_ANNOTATIONS_H_
