/// \file det_hooks.h
/// \brief Process-wide hook that lets a deterministic scheduler virtualize
/// condition-variable blocking (the model checker's interposition point).
///
/// The model checker (`src/mc`) re-executes small multi-transaction
/// workloads under every distinguishable thread interleaving.  For that it
/// must control *when* a thread blocks and resumes — which, in this
/// codebase, happens in exactly one place: `CondVar::Wait`/`WaitUntil`
/// (every lock-manager wait parks on a per-waiter condition variable).
///
/// A registered `BlockingObserver` turns those waits into cooperative
/// scheduling points:
///
///  * a controlled thread that would block releases the mutex and parks in
///    `OnCondVarBlock` until the scheduler runs it again — so at most one
///    controlled thread executes at any time;
///  * `NotifyOne`/`NotifyAll` forward to `OnCondVarNotify` *before* the
///    native notify, letting the scheduler mark parked threads runnable
///    without actually resuming them mid-step (deferred resumption keeps
///    the interleaving sequentialized).
///
/// When no observer is registered (the production case) the only cost is
/// one relaxed atomic load per notify/wait — the wrappers otherwise compile
/// to the plain std calls.
///
/// The parked thread holds **no mutex** while in `OnCondVarBlock` (the
/// caller released it first), so the whole lock-manager state is quiescent
/// and auditable whenever every controlled thread is parked or yielded.

#ifndef CODLOCK_UTIL_DET_HOOKS_H_
#define CODLOCK_UTIL_DET_HOOKS_H_

#include <atomic>
#include <cstdint>

namespace codlock {

/// \brief Scheduler interposition interface for condition-variable waits.
class BlockingObserver {
 public:
  /// How a parked thread was resumed.
  enum class WakeKind : uint8_t {
    kNotified,  ///< a notify marked it runnable; re-check the predicate
    kTimeout,   ///< the scheduler injected a timeout for this wait
  };

  virtual ~BlockingObserver() = default;

  /// True when the calling thread is one the observer schedules.  Waits on
  /// uncontrolled threads (the controller itself, unrelated test threads)
  /// take the native path.
  virtual bool ControlsCurrentThread() const = 0;

  /// Called by a controlled thread instead of blocking on \p cv.  The
  /// caller holds no mutex.  Returns when the scheduler runs this thread
  /// again, with the reason it was resumed.
  virtual WakeKind OnCondVarBlock(const void* cv) = 0;

  /// Called (from any thread, possibly holding unrelated mutexes) right
  /// before the native notify on \p cv.  Implementations must only take
  /// their own leaf mutex here.
  virtual void OnCondVarNotify(const void* cv) = 0;

  /// The registered observer, or nullptr (production).
  static BlockingObserver* Get() {
    return observer_.load(std::memory_order_acquire);
  }

  /// Registers \p obs process-wide (nullptr to deregister).  Only one
  /// observer may be registered at a time; the registrant must deregister
  /// before destruction and after every controlled thread has exited.
  static void Set(BlockingObserver* obs) {
    observer_.store(obs, std::memory_order_release);
  }

 private:
  static inline std::atomic<BlockingObserver*> observer_{nullptr};
};

}  // namespace codlock

#endif  // CODLOCK_UTIL_DET_HOOKS_H_
