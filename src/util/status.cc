#include "util/status.h"

#include <cstring>

namespace codlock {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnauthorized:
      return "Unauthorized";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kShed:
      return "Shed";
    case StatusCode::kFenced:
      return "Fenced";
    case StatusCode::kCorrupt:
      return "Corrupt";
  }
  return "Unknown";
}

Status ErrnoStatus(std::string_view op, int err) {
  std::string msg(op);
  msg += " failed: ";
  msg += std::strerror(err);
  msg += " (errno ";
  msg += std::to_string(err);
  msg += ")";
  return Status::Internal(std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace codlock
