/// \file status.h
/// \brief Error handling primitives for codlock (RocksDB-style Status).
///
/// All fallible operations in the library return a `Status` (or a
/// `Result<T>`, see result.h) instead of throwing exceptions.  The set of
/// codes mirrors the failure classes that occur in a lock manager /
/// transaction system: lock conflicts, deadlocks, timeouts, authorization
/// failures, and plain usage errors.

#ifndef CODLOCK_UTIL_STATUS_H_
#define CODLOCK_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace codlock {

/// Failure classes returned by codlock operations.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// A referenced entity (relation, object, node, transaction) is unknown.
  kNotFound,
  /// The caller violated an API precondition (bad schema, bad path, ...).
  kInvalidArgument,
  /// An entity with the same identifier already exists.
  kAlreadyExists,
  /// A lock request could not be granted within its deadline.
  kTimeout,
  /// A lock request would close a cycle in the waits-for graph.
  kDeadlock,
  /// A lock request conflicts and the caller asked not to wait.
  kConflict,
  /// The transaction lacks the access right required for the operation.
  kUnauthorized,
  /// The operation is illegal in the current state (e.g. protocol rule
  /// violation: requesting S on a node whose parent is not IS-locked).
  kFailedPrecondition,
  /// The transaction was aborted (by deadlock victim selection or user).
  kAborted,
  /// Internal invariant violation; indicates a bug in codlock itself.
  kInternal,
  /// The request was rejected by overload shedding: the lock manager's
  /// blocked-waiter cap is reached and queuing further requests would
  /// collapse throughput instead of preserving it.  Distinct from
  /// kConflict/kTimeout so callers can retry with backoff (the conflict
  /// may clear) or report the rejection to the client.
  kShed,
  /// The operation presented a stale fencing epoch: the check-out lease it
  /// belongs to was reclaimed (and the data possibly re-granted to another
  /// workstation) after the caller lost contact.  A fenced operation must
  /// never be retried with the same ticket — the workstation has to check
  /// the data out again.  Distinct from kAborted so zombie clients can be
  /// told apart from ordinary victims.
  kFenced,
  /// Persistent or shared state failed its integrity check (bad magic, CRC
  /// mismatch, truncated segment) and no salvageable generation remains.
  /// The operation fails closed: the caller must rebuild the state from
  /// scratch rather than trust any part of it.  Distinct from kInternal —
  /// corruption is an expected consequence of crashes and torn writes, not
  /// a codlock bug.
  kCorrupt,
};

/// \brief Human-readable name of a status code ("Ok", "Deadlock", ...).
std::string_view StatusCodeName(StatusCode code);

/// \brief Result of an operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// heap-allocated message only on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with \p code and \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unauthorized(std::string msg) {
    return Status(StatusCode::kUnauthorized, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Shed(std::string msg) {
    return Status(StatusCode::kShed, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsUnauthorized() const { return code_ == StatusCode::kUnauthorized; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsShed() const { return code_ == StatusCode::kShed; }
  bool IsFenced() const { return code_ == StatusCode::kFenced; }
  bool IsCorrupt() const { return code_ == StatusCode::kCorrupt; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Builds the canonical errno-context status for a failed system call:
/// `Internal: <op> failed: <strerror(err)> (errno <err>)`.  Every syscall
/// site in the library routes its failure through this so no errno is
/// ever dropped on the floor.
Status ErrnoStatus(std::string_view op, int err);

/// Propagates a non-OK status to the caller.
#define CODLOCK_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::codlock::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace codlock

#endif  // CODLOCK_UTIL_STATUS_H_
