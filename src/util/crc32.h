/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used to frame long-lock store records so a torn or corrupted write is
/// *detected* at load time instead of silently installing garbage locks.
/// Table-driven, one table built at static init; no dependencies.

#ifndef CODLOCK_UTIL_CRC32_H_
#define CODLOCK_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace codlock {

namespace internal {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace internal

/// CRC-32 of \p data continuing from \p crc (pass 0 to start).
inline uint32_t Crc32(std::string_view data, uint32_t crc = 0) {
  const auto& table = internal::Crc32Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace codlock

#endif  // CODLOCK_UTIL_CRC32_H_
