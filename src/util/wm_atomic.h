/// \file wm_atomic.h
/// \brief `wm::Atomic<T>` — the only way the lock-free surface spells an
/// atomic.
///
/// Normal builds: a zero-cost passthrough to the underlying C++ atomic,
/// same layout, same codegen (every member is a one-line forwarder the
/// compiler inlines; see the shim-cost benchmark recapture in
/// EXPERIMENTS.md).  Under `CODLOCK_WMC` the name instead resolves to the
/// weak-memory checker's `ModelAtomic<T>` (src/wm/model_atomic.h), which
/// records every access — location, order, value — into the exploration
/// runtime so `codlock_wmc` can enumerate the consistent executions of a
/// litmus harness.
///
/// Two deliberate deviations from the std API:
///
///  * Every access takes an explicit `wm::MemoryOrder` — there are no
///    seq_cst defaults.  The orders on this surface are load-bearing and
///    reviewed (DESIGN.md §12); an accidental default is exactly the bug
///    class the checker exists for.
///  * The model-build face is a *differently named* class aliased in, not
///    a second definition of `wm::Atomic`.  Production libraries are only
///    ever compiled with the passthrough, checker targets only with the
///    model, and the distinct mangled names make it an error — not a
///    silent ODR fold — to link the two worlds together.
///
/// `wm::Var<T>` is the companion wrapper for *non-atomic* fields that a
/// litmus harness wants race-checked: a plain variable in normal builds,
/// a vector-clock-instrumented location under `CODLOCK_WMC`.
///
/// The atomics-discipline lint (`tools/check_atomics.py`) forbids raw
/// `std::atomic` / `std::memory_order` tokens under src/lock/ and src/wm/;
/// this header and util/wm_order.h are the sanctioned vocabulary.

#ifndef CODLOCK_UTIL_WM_ATOMIC_H_
#define CODLOCK_UTIL_WM_ATOMIC_H_

#ifdef CODLOCK_WMC

#include "wm/model_atomic.h"

namespace codlock::wm {
template <typename T>
using Atomic = ModelAtomic<T>;
template <typename T>
using Var = ModelVar<T>;
}  // namespace codlock::wm

#else  // !CODLOCK_WMC — the zero-cost passthrough.

#include <atomic>

#include "util/wm_order.h"

namespace codlock::wm {

template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept = default;
  constexpr Atomic(T v) noexcept : a_(v) {}  // NOLINT(runtime/explicit)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(MemoryOrder mo) const noexcept { return a_.load(mo); }
  void store(T v, MemoryOrder mo) noexcept { a_.store(v, mo); }

  T exchange(T v, MemoryOrder mo) noexcept { return a_.exchange(v, mo); }

  bool compare_exchange_strong(T& expected, T desired,
                               MemoryOrder mo) noexcept {
    return a_.compare_exchange_strong(expected, desired, mo);
  }
  bool compare_exchange_strong(T& expected, T desired, MemoryOrder success,
                               MemoryOrder failure) noexcept {
    return a_.compare_exchange_strong(expected, desired, success, failure);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             MemoryOrder mo) noexcept {
    return a_.compare_exchange_weak(expected, desired, mo);
  }
  bool compare_exchange_weak(T& expected, T desired, MemoryOrder success,
                             MemoryOrder failure) noexcept {
    return a_.compare_exchange_weak(expected, desired, success, failure);
  }

  // Arithmetic/bitwise RMWs.  Deliberately take and return T, never a
  // deduced type: `fetch_add(1, ...)` on an Atomic<uint64_t> must not
  // deduce int and truncate the returned value (class-template members
  // are instantiated lazily, so Atomic<bool> etc. stay valid as long as
  // these are never called).
  T fetch_add(T v, MemoryOrder mo) noexcept { return a_.fetch_add(v, mo); }
  T fetch_sub(T v, MemoryOrder mo) noexcept { return a_.fetch_sub(v, mo); }
  T fetch_or(T v, MemoryOrder mo) noexcept { return a_.fetch_or(v, mo); }
  T fetch_and(T v, MemoryOrder mo) noexcept { return a_.fetch_and(v, mo); }

 private:
  std::atomic<T> a_;
};

/// Plain (non-atomic) location that the model build instruments for data
/// races.  In normal builds it is exactly a `T`.
template <typename T>
class Var {
 public:
  constexpr Var() noexcept = default;
  constexpr Var(T v) noexcept : v_(v) {}  // NOLINT(runtime/explicit)

  T Get() const noexcept { return v_; }
  void Set(T v) noexcept { v_ = v; }

 private:
  T v_{};
};

}  // namespace codlock::wm

#endif  // CODLOCK_WMC

#endif  // CODLOCK_UTIL_WM_ATOMIC_H_
