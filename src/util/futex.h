/// \file futex.h
/// \brief Process-shared futex-style wait/wake on 32-bit atomic words.
///
/// The shared-memory job ring (ws/shm_ring.h) parks waiters on its slot
/// state words and doorbell counters.  When the ring memory is a real
/// `shm_open` segment those words are visible to several *processes*, so
/// the wait primitive must be process-shared too.  Three backends sit
/// behind one API:
///
///  * `kInProcess` — an address-hashed table of annotated `Mutex`/`CondVar`
///    buckets.  This is the default for unit tests and the deterministic
///    scheduler: blocking goes through `CondVar::WaitUntil`, so Clang
///    thread-safety analysis, the model checker's `BlockingObserver` and
///    TSAN all see it exactly as before.
///  * `kSyscall` — `futex(2)` `FUTEX_WAIT`/`FUTEX_WAKE` on the word itself
///    (no `FUTEX_PRIVATE_FLAG`, so waits cross process boundaries).  Linux
///    only; selecting it elsewhere falls back to `kSharedCond`.
///  * `kSharedCond` — a `PTHREAD_PROCESS_SHARED` mutex + condvar pair
///    (`SharedWaitBlock`) placed in the shared segment by the caller.  The
///    portable fallback, and a second implementation to cross-check the
///    syscall path in tests.
///
/// Wait contract (all backends): block while `word == expected`, up to
/// `timeout_us`.  Returns OK when woken or when the value already differs
/// (the caller re-checks its predicate in a loop — spurious wakeups are
/// expected), `Status::Timeout` when the deadline passes, and an
/// errno-context Status on real syscall failure.  EINTR never surfaces:
/// the wait retries with the remaining time re-computed from the original
/// deadline (fault point `util.futex.wait` injects simulated EINTRs so the
/// retry loop is unit-testable).

#ifndef CODLOCK_UTIL_FUTEX_H_
#define CODLOCK_UTIL_FUTEX_H_

#include <pthread.h>

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace codlock::futex {

enum class Backend : uint8_t {
  kInProcess = 0,  ///< hashed Mutex/CondVar buckets (TSA/mc/TSAN visible)
  kSyscall,        ///< futex(2) without FUTEX_PRIVATE_FLAG (Linux)
  kSharedCond,     ///< PTHREAD_PROCESS_SHARED mutex+cond in shared memory
};

/// \brief A process-shared mutex+condvar pair for the `kSharedCond`
/// backend.  POD layout so it can live inside an mmap'd segment; exactly
/// one party (the segment creator) calls `Init()` before anyone waits.
struct SharedWaitBlock {
  pthread_mutex_t mu;
  pthread_cond_t cv;
  uint32_t initialized;  ///< magic sentinel written by Init()

  /// Initializes with PTHREAD_PROCESS_SHARED attributes.  Returns an
  /// errno-context Status on failure (no partial init is left behind).
  Status Init();
  bool IsInitialized() const;
};

/// Blocks while `word == expected` (process-shared where the backend
/// supports it).  See the file comment for the full contract.
/// `shared` is required for `kSharedCond` and ignored otherwise.
Status Wait(Backend backend, const std::atomic<uint32_t>& word,
            uint32_t expected, uint64_t timeout_us,
            SharedWaitBlock* shared = nullptr);

/// Wakes every waiter parked on `word`.  Never blocks (beyond the shared
/// mutex hand-off in the fallback backends).
Status WakeAll(Backend backend, const std::atomic<uint32_t>& word,
               SharedWaitBlock* shared = nullptr);

/// True when futex(2) is available on this build (Linux).  `kSyscall`
/// silently degrades to `kSharedCond` when false.
bool SyscallSupported();

}  // namespace codlock::futex

#endif  // CODLOCK_UTIL_FUTEX_H_
