#include "util/metrics.h"

#include <chrono>
#include <cmath>
#include <sstream>

namespace codlock {

namespace {
int BucketFor(uint64_t nanos) {
  if (nanos == 0) return 0;
  return 63 - __builtin_clzll(nanos);
}
}  // namespace

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < nanos &&
         !max_.compare_exchange_weak(prev, nanos, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean() const {
  uint64_t c = count();
  if (c == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(c);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  uint64_t c = count();
  if (c == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(c));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      // Bucket midpoint: 1.5 * 2^i.
      return (1ULL << i) + (1ULL << i) / 2;
    }
  }
  return max();
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  uint64_t om = other.max();
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < om &&
         !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
  }
}

void LockStats::Reset() {
  requests.Reset();
  grants.Reset();
  immediate_grants.Reset();
  cache_hits.Reset();
  fastpath_grants.Reset();
  fastpath_failures.Reset();
  combine_published.Reset();
  combine_drained.Reset();
  waits.Reset();
  conflicts.Reset();
  compat_tests.Reset();
  deadlocks.Reset();
  timeouts.Reset();
  sheds.Reset();
  releases.Reset();
  escalations.Reset();
  deescalations.Reset();
  upward_propagations.Reset();
  downward_propagations.Reset();
  parent_searches.Reset();
  aborts_timeout.Reset();
  aborts_deadlock.Reset();
  aborts_shed.Reset();
  retries.Reset();
  leases_granted.Reset();
  leases_renewed.Reset();
  leases_expired.Reset();
  fenced_checkins.Reset();
  reclaimed_long_locks.Reset();
  ring_published.Reset();
  ring_consumed.Reset();
  ring_salvaged_frames.Reset();
  handles_fenced.Reset();
  jobs_shed_per_handle.Reset();
  wait_ns.Reset();
  held_locks.store(0, std::memory_order_relaxed);
  max_held_locks.store(0, std::memory_order_relaxed);
}

std::string LockStats::ToString() const {
  std::ostringstream os;
  os << "requests=" << requests.value() << " grants=" << grants.value()
     << " immediate=" << immediate_grants.value()
     << " cache_hits=" << cache_hits.value()
     << " fastpath=" << fastpath_grants.value()
     << " fastpath_fail=" << fastpath_failures.value()
     << " combine_pub=" << combine_published.value()
     << " combine_drained=" << combine_drained.value()
     << " waits=" << waits.value()
     << " conflicts=" << conflicts.value()
     << " compat_tests=" << compat_tests.value()
     << " deadlocks=" << deadlocks.value() << " timeouts=" << timeouts.value()
     << " sheds=" << sheds.value() << " releases=" << releases.value()
     << " escalations=" << escalations.value()
     << " deescalations=" << deescalations.value()
     << " up_prop=" << upward_propagations.value()
     << " down_prop=" << downward_propagations.value()
     << " parent_searches=" << parent_searches.value()
     << " aborts_timeout=" << aborts_timeout.value()
     << " aborts_deadlock=" << aborts_deadlock.value()
     << " aborts_shed=" << aborts_shed.value()
     << " retries=" << retries.value()
     << " leases_granted=" << leases_granted.value()
     << " leases_renewed=" << leases_renewed.value()
     << " leases_expired=" << leases_expired.value()
     << " fenced_checkins=" << fenced_checkins.value()
     << " reclaimed_long_locks=" << reclaimed_long_locks.value()
     << " ring_published=" << ring_published.value()
     << " ring_consumed=" << ring_consumed.value()
     << " ring_salvaged_frames=" << ring_salvaged_frames.value()
     << " handles_fenced=" << handles_fenced.value()
     << " jobs_shed_per_handle=" << jobs_shed_per_handle.value()
     << " max_held=" << max_held_locks.load(std::memory_order_relaxed)
     << " wait_mean_us=" << wait_ns.mean() / 1000.0;
  return os.str();
}

std::string LockStats::ToJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto field = [&](const char* name, uint64_t value) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << value;
  };
  field("requests", requests.value());
  field("grants", grants.value());
  field("immediate_grants", immediate_grants.value());
  field("cache_hits", cache_hits.value());
  field("fastpath_grants", fastpath_grants.value());
  field("fastpath_failures", fastpath_failures.value());
  field("combine_published", combine_published.value());
  field("combine_drained", combine_drained.value());
  field("waits", waits.value());
  field("conflicts", conflicts.value());
  field("compat_tests", compat_tests.value());
  field("deadlocks", deadlocks.value());
  field("timeouts", timeouts.value());
  field("sheds", sheds.value());
  field("releases", releases.value());
  field("escalations", escalations.value());
  field("deescalations", deescalations.value());
  field("upward_propagations", upward_propagations.value());
  field("downward_propagations", downward_propagations.value());
  field("parent_searches", parent_searches.value());
  field("aborts_timeout", aborts_timeout.value());
  field("aborts_deadlock", aborts_deadlock.value());
  field("aborts_shed", aborts_shed.value());
  field("retries", retries.value());
  field("leases_granted", leases_granted.value());
  field("leases_renewed", leases_renewed.value());
  field("leases_expired", leases_expired.value());
  field("fenced_checkins", fenced_checkins.value());
  field("reclaimed_long_locks", reclaimed_long_locks.value());
  field("ring_published", ring_published.value());
  field("ring_consumed", ring_consumed.value());
  field("ring_salvaged_frames", ring_salvaged_frames.value());
  field("handles_fenced", handles_fenced.value());
  field("jobs_shed_per_handle", jobs_shed_per_handle.value());
  field("held_locks",
        static_cast<uint64_t>(held_locks.load(std::memory_order_relaxed)));
  field("max_held_locks",
        static_cast<uint64_t>(max_held_locks.load(std::memory_order_relaxed)));
  if (!first) os << ", ";
  os << "\"wait_mean_us\": " << wait_ns.mean() / 1000.0;
  os << "}";
  return os.str();
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Stopwatch::Stopwatch() : start_ns_(MonotonicNanos()) {}

uint64_t Stopwatch::ElapsedNanos() const {
  return MonotonicNanos() - start_ns_;
}

void Stopwatch::Restart() { start_ns_ = MonotonicNanos(); }

}  // namespace codlock
