/// \file wm_order.h
/// \brief Memory-order spellings shared by the `wm::Atomic` shim and the
/// weak-memory checker.
///
/// The atomics-discipline lint (`tools/check_atomics.py`) forbids the raw
/// tokens `std::atomic` and `std::memory_order` everywhere under
/// `src/lock/` and `src/wm/`: every atomic access on the lock-free surface
/// must flow through `wm::Atomic` (src/util/wm_atomic.h) so that one
/// greppable vocabulary covers the whole surface and the `CODLOCK_WMC`
/// model build can interpose on it.  These aliases are that vocabulary —
/// `wm::acquire` instead of `std::memory_order_acquire` — and live in
/// their own header because both faces of the shim (the passthrough and
/// the model `Atomic`) need them without including each other.
///
/// The lint's JSON inventory keys off these spellings: keep them the only
/// way orders are written in converted code.

#ifndef CODLOCK_UTIL_WM_ORDER_H_
#define CODLOCK_UTIL_WM_ORDER_H_

#include <atomic>

namespace codlock::wm {

/// The C++ memory-order type under the shim's name, so checker internals
/// can store and pass orders without spelling the std token.
using MemoryOrder = std::memory_order;

inline constexpr MemoryOrder relaxed = std::memory_order_relaxed;
inline constexpr MemoryOrder acquire = std::memory_order_acquire;
inline constexpr MemoryOrder release = std::memory_order_release;
inline constexpr MemoryOrder acq_rel = std::memory_order_acq_rel;
inline constexpr MemoryOrder seq_cst = std::memory_order_seq_cst;

constexpr const char* MemoryOrderName(MemoryOrder mo) {
  switch (mo) {
    case std::memory_order_relaxed:
      return "relaxed";
    case std::memory_order_consume:
      return "consume";
    case std::memory_order_acquire:
      return "acquire";
    case std::memory_order_release:
      return "release";
    case std::memory_order_acq_rel:
      return "acq_rel";
    case std::memory_order_seq_cst:
      return "seq_cst";
  }
  return "?";
}

/// True when \p mo gives a load acquire semantics.
constexpr bool IsAcquire(MemoryOrder mo) {
  return mo == acquire || mo == acq_rel || mo == seq_cst;
}

/// True when \p mo gives a store release semantics.
constexpr bool IsRelease(MemoryOrder mo) {
  return mo == release || mo == acq_rel || mo == seq_cst;
}

constexpr bool IsSeqCst(MemoryOrder mo) { return mo == seq_cst; }

}  // namespace codlock::wm

#endif  // CODLOCK_UTIL_WM_ORDER_H_
