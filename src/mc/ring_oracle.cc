#include "mc/ring_oracle.h"

#include <set>
#include <string>
#include <vector>

#include "ws/shm_ring.h"

namespace codlock::mc {

namespace {

/// One atomic step of the scenario, attributed to its actor.
enum class Step : uint8_t {
  kP1Publish,  ///< P1: claim + write + publish one frame
  kP1Take,     ///< P1: take its response (no-op while not done)
  kP2Publish,  ///< P2: the never-crashing neighbour's publish
  kP2Take,     ///< P2: its take
  kConsume,    ///< C: consume one published frame and complete it
  kReap,       ///< R: the PID reaper (acts only once P1 is dead)
};

/// Where P1 dies, crossed against every interleaving.  Each flavor
/// strands its slot in exactly the state a SIGKILL there would.
enum class CrashFlavor : uint8_t {
  kAlive = 0,    ///< P1 completes its round trip
  kAtClaimed,    ///< dead at "publish.claimed": kWriting, owner stamped
  kMidWrite,     ///< PublishFault::kDieMidWrite: kWriting, half a frame
  kTornWrite,    ///< publishes a torn frame, then dies (CRC mismatch)
  kAtCopied,     ///< dead at "publish.copied": kWriting, frame complete
  kAtPublished,  ///< dead at "publish.published": kPublished, counted
  kAtTaking,     ///< dead at "take.taking": kTaking, response pending
};

const char* StepName(Step s) {
  switch (s) {
    case Step::kP1Publish:
      return "p1-publish";
    case Step::kP1Take:
      return "p1-take";
    case Step::kP2Publish:
      return "p2-publish";
    case Step::kP2Take:
      return "p2-take";
    case Step::kConsume:
      return "consume";
    case Step::kReap:
      return "reap";
  }
  return "?";
}

const char* FlavorName(CrashFlavor f) {
  switch (f) {
    case CrashFlavor::kAlive:
      return "alive";
    case CrashFlavor::kAtClaimed:
      return "die@publish.claimed";
    case CrashFlavor::kMidWrite:
      return "die-mid-write";
    case CrashFlavor::kTornWrite:
      return "torn-write";
    case CrashFlavor::kAtCopied:
      return "die@publish.copied";
    case CrashFlavor::kAtPublished:
      return "die@publish.published";
    case CrashFlavor::kAtTaking:
      return "die@take.taking";
  }
  return "?";
}

std::string ScheduleName(CrashFlavor flavor,
                         const std::vector<Step>& schedule) {
  std::string out = FlavorName(flavor);
  out += ":";
  for (Step s : schedule) {
    out += " ";
    out += StepName(s);
  }
  return out;
}

/// Enumerates every order-preserving merge of the actor scripts.
void Interleave(const std::vector<std::vector<Step>>& actors,
                std::vector<size_t>& pos, std::vector<Step>& prefix,
                std::vector<std::vector<Step>>& out) {
  bool done = true;
  for (size_t a = 0; a < actors.size(); ++a) {
    if (pos[a] >= actors[a].size()) continue;
    done = false;
    prefix.push_back(actors[a][pos[a]]);
    ++pos[a];
    Interleave(actors, pos, prefix, out);
    --pos[a];
    prefix.pop_back();
  }
  if (done) out.push_back(prefix);
}

/// Thrown out of the crash hook: unwinding out of Publish/TakeResponse
/// leaves the slot in exactly the state a SIGKILL at that point would.
struct P1Dies {};

/// Replays one schedule × flavor on a fresh ring; appends violations.
void RunSchedule(CrashFlavor flavor, const std::vector<Step>& schedule,
                 RingExploreStats& stats, std::set<std::string>& messages,
                 size_t max_messages) {
  ws::RingOptions opts;
  opts.slots = 4;
  opts.payload_capacity = 64;
  ws::ShmRing ring(opts);

  auto fail = [&](const std::string& msg) {
    if (messages.size() < max_messages) {
      messages.insert(msg +
                      " [schedule: " + ScheduleName(flavor, schedule) + "]");
    }
    ++stats.violating_executions;
  };

  // The hook fires for every party; it is armed only around P1's calls.
  const char* armed = nullptr;
  ring.SetCrashHook([&](std::string_view point) {
    if (armed != nullptr && point == armed) throw P1Dies{};
  });

  bool p1_dead = false, p1_took = false, p2_took = false;
  bool p1_published = false, p2_published = false;
  size_t p1_slot = 0, p2_slot = 0;
  bool reclaimed_any = false;
  std::vector<ws::ShmRing::SalvagedFrame> salvaged;

  // Oracle (a): once the reaper has processed dead P1, none of its slots
  // may remain in a state the reclaim was supposed to cover.
  auto reap = [&] {
    if (!p1_dead) return;  // the PID probe cannot see a live process dead
    ws::ReclaimScope scope;
    scope.taking = true;  // P1 is SIGKILLed: no thread is inside a take
    if (ring.ReclaimHandleSlots(1, scope) > 0) reclaimed_any = true;
    for (size_t i = 0; i < ring.slots(); ++i) {
      const ws::SlotState st = ring.StateOf(i);
      if (st == ws::SlotState::kFree || st == ws::SlotState::kExecuting) {
        continue;
      }
      if (ring.OwnerOf(i) == 1) {
        fail(std::string("reap left dead P1's slot in ") +
             std::string(ws::SlotStateName(st)));
      }
    }
  };

  auto consume_one = [&] {
    Result<ws::ShmRing::Job> job = ring.Consume(&salvaged);
    if (job.ok()) ring.Complete(job->slot, "resp");
  };

  auto p1_publish = [&] {
    if (p1_dead) return;
    ws::FrameHeader h;
    h.handle_id = 1;
    h.job_id = 11;
    switch (flavor) {
      case CrashFlavor::kMidWrite:
        (void)ring.Publish(h, "p1", ws::PublishFault::kDieMidWrite);
        p1_dead = true;
        return;
      case CrashFlavor::kTornWrite:
        (void)ring.Publish(h, "p1-torn", ws::PublishFault::kTornFrame);
        p1_dead = true;  // a torn frame *is* a mid-write death
        return;
      case CrashFlavor::kAtClaimed:
        armed = "publish.claimed";
        break;
      case CrashFlavor::kAtCopied:
        armed = "publish.copied";
        break;
      case CrashFlavor::kAtPublished:
        armed = "publish.published";
        break;
      default:
        break;
    }
    try {
      Result<size_t> slot = ring.Publish(h, "p1");
      armed = nullptr;
      if (slot.ok()) {
        p1_published = true;
        p1_slot = *slot;
      }
    } catch (const P1Dies&) {
      armed = nullptr;
      p1_dead = true;
    }
  };

  auto p1_take = [&] {
    if (p1_dead || !p1_published || p1_took) return;
    if (flavor == CrashFlavor::kAtTaking) armed = "take.taking";
    try {
      Result<std::string> r = ring.TakeResponse(p1_slot, 11);
      armed = nullptr;
      if (r.ok()) p1_took = true;
    } catch (const P1Dies&) {
      armed = nullptr;
      p1_dead = true;
    }
  };

  auto p2_publish = [&] {
    ws::FrameHeader h;
    h.handle_id = 2;
    h.job_id = 22;
    Result<size_t> slot = ring.Publish(h, "p2");
    if (slot.ok()) {
      p2_published = true;
      p2_slot = *slot;
    } else {
      fail("P2's publish failed: " + slot.status().ToString());
    }
  };

  auto p2_take = [&] {
    if (!p2_published || p2_took) return;
    if (ring.TakeResponse(p2_slot, 22).ok()) p2_took = true;
  };

  for (Step step : schedule) {
    switch (step) {
      case Step::kP1Publish:
        p1_publish();
        break;
      case Step::kP1Take:
        p1_take();
        break;
      case Step::kP2Publish:
        p2_publish();
        break;
      case Step::kP2Take:
        p2_take();
        break;
      case Step::kConsume:
        consume_one();
        break;
      case Step::kReap:
        reap();
        break;
    }
  }

  // Post-mortem convergence: the host's sweep discipline — reap dead
  // handles, drain what remains, let survivors pick up their responses —
  // iterated until quiescent.  Oracle (c) bounds the rounds.
  for (int round = 0; round < 6; ++round) {
    reap();
    for (size_t i = 0; i < ring.slots() + 1; ++i) consume_one();
    p2_take();
    p1_take();
    if (ring.InFlight() == 0 && (p2_took || !p2_published)) break;
  }

  if (ring.InFlight() != 0) {
    fail("ring not quiescent after the convergence loop");
  }
  if (p2_published && !p2_took) {
    fail("survivor P2 never took its response");  // oracle (d)
  }
  if (!p1_dead && p1_published && !p1_took) {
    fail("alive P1 never took its response");
  }

  // Oracle (b): the ledger balances at quiescence.
  const ws::ShmRing::Counters c = ring.counters();
  if (c.published != c.consumed + c.salvaged + c.reclaimed_published) {
    fail("conservation: published != consumed+salvaged+reclaimed_published");
  }
  if (c.consumed != c.completed + c.reclaimed_executing) {
    fail("conservation: consumed != completed+reclaimed_executing");
  }
  if (c.completed != c.taken + c.reclaimed_done) {
    fail("conservation: completed != taken+reclaimed_done");
  }

  if (p1_took) ++stats.p1_take_ok;
  if (reclaimed_any) ++stats.p1_reclaimed;
  stats.frames_salvaged += salvaged.size();
}

}  // namespace

RingExploreStats ExploreRingProtocol(const RingExploreOptions& opts) {
  const std::vector<std::vector<Step>> actors = {
      {Step::kP1Publish, Step::kP1Take},
      {Step::kP2Publish, Step::kP2Take},
      {Step::kConsume, Step::kConsume, Step::kConsume},
      {Step::kReap}};
  std::vector<std::vector<Step>> schedules;
  std::vector<size_t> pos(actors.size(), 0);
  std::vector<Step> prefix;
  Interleave(actors, pos, prefix, schedules);

  RingExploreStats stats;
  std::set<std::string> messages;
  for (CrashFlavor flavor :
       {CrashFlavor::kAlive, CrashFlavor::kAtClaimed, CrashFlavor::kMidWrite,
        CrashFlavor::kTornWrite, CrashFlavor::kAtCopied,
        CrashFlavor::kAtPublished, CrashFlavor::kAtTaking}) {
    for (const std::vector<Step>& schedule : schedules) {
      const uint64_t before = stats.violating_executions;
      RunSchedule(flavor, schedule, stats, messages,
                  opts.max_violation_messages);
      // Count each schedule once, however many oracles it tripped.
      if (stats.violating_executions > before) {
        stats.violating_executions = before + 1;
      }
      ++stats.executions;
    }
  }
  stats.violation_messages.assign(messages.begin(), messages.end());
  return stats;
}

}  // namespace codlock::mc
