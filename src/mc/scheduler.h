/// \file scheduler.h
/// \brief Deterministic cooperative scheduler for model-checked executions.
///
/// `DetScheduler` runs N workload threads such that **exactly one** of them
/// executes at any moment, and the controller (the explorer's thread) picks
/// which one runs next at every scheduling point.  Scheduling points are:
///
///  * operation boundaries — the workload runner calls `Yield()` between
///    protocol operations;
///  * condition-variable parks — a controlled thread that would block in
///    `CondVar::Wait`/`WaitUntil` instead parks here via the process-wide
///    `BlockingObserver` hook (`util/det_hooks.h`) and resumes only when
///    the controller steps it again.
///
/// Notifications are **deferred**: `OnCondVarNotify` only marks parked
/// threads runnable (`kNotified`) — they do not start running until the
/// controller explicitly steps them.  This keeps every execution a strict
/// sequence of (thread, step) pairs, which is what makes interleavings
/// enumerable and replayable.
///
/// Timeouts are *injected*, never spontaneous: real deadlines in
/// `WaitUntil` are ignored while a thread is controlled; the controller
/// resolves a parked thread's wait as timed-out with `DeliverTimeout`.
///
/// Threading: one `mu_` protects all scheduler state.  `OnCondVarNotify`
/// may be called while the notifying thread holds a lock-manager shard
/// mutex; the scheduler mutex is a leaf (nothing is acquired under it), so
/// this cannot deadlock.  `OnCondVarBlock` is entered with no locks held
/// (the CondVar wrapper releases the mutex first), so whenever every
/// controlled thread is parked or yielded the whole stack under test is
/// quiescent and auditable.

#ifndef CODLOCK_MC_SCHEDULER_H_
#define CODLOCK_MC_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/det_hooks.h"

namespace codlock::mc {

/// \brief What a controlled thread is doing, from the controller's view.
enum class ThreadState : uint8_t {
  kReady,     ///< at an op boundary (or not yet started); can be stepped
  kRunning,   ///< currently executing (transient; controller is waiting)
  kParked,    ///< blocked in a CondVar wait; needs notify or timeout
  kNotified,  ///< parked but marked runnable by a notify; can be stepped
  kDone,      ///< body returned
};

/// \brief Cooperative deterministic scheduler.  See file comment.
///
/// Single-controller discipline: all public methods except `Yield` must be
/// called from the controller thread (the one that called `Launch`), and
/// never while a step is in flight.
class DetScheduler final : public BlockingObserver {
 public:
  DetScheduler() = default;
  ~DetScheduler() override;

  DetScheduler(const DetScheduler&) = delete;
  DetScheduler& operator=(const DetScheduler&) = delete;

  /// Spawns one controlled thread per body and registers this scheduler as
  /// the process-wide blocking observer.  No body runs until `Step`.
  void Launch(std::vector<std::function<void()>> bodies);

  /// Runs thread \p tid (which must be `kReady` or `kNotified`) until its
  /// next scheduling point: the next `Yield`, a park, or completion.
  /// Returns the threads whose parked waits were notified during the step,
  /// in notification order (they are now `kNotified`, not running).
  std::vector<int> Step(int tid);

  /// Resolves parked thread \p tid's wait as timed out and runs it until
  /// its next scheduling point.  Returns threads notified during the step
  /// (a timed-out waiter may release locks it already held... it does not
  /// here, but a granted-but-unnotified waiter unwinds by observing its
  /// predicate true and proceeding as granted).
  std::vector<int> DeliverTimeout(int tid);

  /// Threads that can be stepped right now (`kReady` or `kNotified`),
  /// ascending.
  std::vector<int> Enabled() const;

  /// Threads currently parked (`kParked`), ascending.
  std::vector<int> Parked() const;

  ThreadState StateOf(int tid) const;
  bool AllDone() const;
  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Id of the controlled thread calling, or -1 from any other thread.
  static int CurrentTid();

  /// Called by controlled threads between operations to hand control back.
  void Yield();

  /// Force-runs every thread to completion (stepping enabled threads,
  /// injecting timeouts into parked ones) so that join can succeed.  Gives
  /// up after a step budget; see `drain_incomplete()`.
  void Drain();

  /// True when `Drain` hit its step budget with live threads remaining —
  /// an execution that cannot terminate even with timeouts (a scheduler or
  /// lock-manager bug; tests assert this stays false).
  bool drain_incomplete() const { return drain_incomplete_; }

  // BlockingObserver:
  bool ControlsCurrentThread() const override;
  WakeKind OnCondVarBlock(const void* cv) override;
  void OnCondVarNotify(const void* cv) override;

 private:
  struct PerThread {
    ThreadState state = ThreadState::kReady;
    const void* parked_on = nullptr;
    WakeKind wake = WakeKind::kNotified;
    std::condition_variable cv;
  };

  /// Wakes thread \p tid with \p wake and blocks until it reaches its next
  /// scheduling point.  Caller holds `lk`.
  void RunUntilSuspend(std::unique_lock<std::mutex>& lk, int tid,
                       WakeKind wake);

  /// Body-side suspension: publish \p state, wake the controller, wait for
  /// our turn.  Caller holds `lk`.
  void SuspendSelf(std::unique_lock<std::mutex>& lk, int tid,
                   ThreadState state);

  mutable std::mutex mu_;
  std::condition_variable controller_cv_;
  std::vector<std::unique_ptr<PerThread>> slots_;
  std::vector<std::thread> threads_;
  int active_ = -1;  ///< tid allowed to run, or -1 (controller's turn)
  std::vector<int> step_notified_;
  bool drain_incomplete_ = false;
  bool launched_ = false;
};

}  // namespace codlock::mc

#endif  // CODLOCK_MC_SCHEDULER_H_
