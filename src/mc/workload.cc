#include "mc/workload.h"

#include <cassert>
#include <utility>

namespace codlock::mc {

using lock::LockMode;

WorkloadSpec SharedEffectorWorkload() {
  WorkloadSpec w;
  w.name = "shared-effector";
  // Q2 and Q3 of Figure 7: X on robots r1/r2, implicit S on the shared
  // effector e2 via rule 4′ (neither may modify "effectors").
  TxnSpec q2;
  q2.user = 2;
  q2.ops = {OpSpec::LockRobot("r1", LockMode::kX), OpSpec::Commit()};
  TxnSpec q3;
  q3.user = 3;
  q3.ops = {OpSpec::LockRobot("r2", LockMode::kX), OpSpec::Commit()};
  w.txns = {std::move(q2), std::move(q3)};
  return w;
}

WorkloadSpec SideEntryWorkload() {
  WorkloadSpec w;
  w.name = "side-entry";
  // T1: robot writer — rule 4′ leaves implicit S on e1/e2.
  TxnSpec t1;
  t1.user = 2;
  t1.ops = {OpSpec::LockRobot("r1", LockMode::kX), OpSpec::Commit()};
  // T2: from-the-side writer of the shared effector e2 (explicit X on the
  // inner unit's entry point) — conflicts with T1's implicit S.
  TxnSpec t2;
  t2.user = 4;
  t2.can_modify_effectors = true;
  t2.ops = {OpSpec::LockEffector("e2", LockMode::kX), OpSpec::Commit()};
  // T3: relation-level writer — X on "effectors".  Only the IS/IX that
  // *upward propagation* put on the relation makes T1's and T2's inner-
  // unit locks visible to this request; skipping that propagation is
  // exactly the invisible-implicit-lock failure of §3.2.2.
  TxnSpec t3;
  t3.user = 5;
  t3.can_modify_effectors = true;
  t3.ops = {OpSpec::LockRelation(LockMode::kX), OpSpec::Commit()};
  w.txns = {std::move(t1), std::move(t2), std::move(t3)};
  return w;
}

WorkloadSpec CrossDeadlockWorkload() {
  WorkloadSpec w;
  w.name = "cross-deadlock";
  TxnSpec t1;
  t1.user = 2;
  t1.ops = {OpSpec::LockRobot("r1", LockMode::kX),
            OpSpec::LockRobot("r2", LockMode::kX), OpSpec::Commit()};
  TxnSpec t2;
  t2.user = 3;
  t2.ops = {OpSpec::LockRobot("r2", LockMode::kX),
            OpSpec::LockRobot("r1", LockMode::kX), OpSpec::Commit()};
  w.txns = {std::move(t1), std::move(t2)};
  return w;
}

std::vector<WorkloadSpec> AllWorkloads() {
  return {SharedEffectorWorkload(), SideEntryWorkload(),
          CrossDeadlockWorkload()};
}

WorkloadRun::WorkloadRun(const WorkloadSpec& spec, const RunOptions& opts)
    : spec_(spec),
      opts_(opts),
      fixture_(sim::BuildFigure7Instance()),
      graph_(logra::LockGraph::Build(*fixture_.catalog)),
      lm_([&] {
        lock::LockManager::Options o;
        o.num_shards = 4;  // tiny fixture; fewer shards, denser conflicts
        o.deadlock_policy = opts.policy;
        return o;
      }()),
      tm_(&lm_) {
  proto::ComplexObjectProtocol::Options po;
  po.use_rule4_prime = opts.use_rule4_prime;
  po.use_txn_cache = opts.use_txn_cache;
  proto_ = std::make_unique<proto::ComplexObjectProtocol>(
      &graph_, fixture_.store.get(), &lm_, &authz_, po);
  // Begin every transaction up front so ids (= ages, for wound-wait and
  // wait-die) are fixed by script position, independent of the schedule.
  for (const TxnSpec& t : spec_.txns) {
    if (t.can_modify_cells) {
      Status s = authz_.Grant(t.user, fixture_.cells, authz::Right::kModify);
      assert(s.ok());
      (void)s;
    }
    if (t.can_modify_effectors) {
      Status s =
          authz_.Grant(t.user, fixture_.effectors, authz::Right::kModify);
      assert(s.ok());
      (void)s;
    }
    txns_.push_back(tm_.Begin(t.user));
    outcomes_.push_back(TxnOutcome::kRunning);
  }
}

Result<proto::LockTarget> WorkloadRun::TargetFor(const OpSpec& op) {
  const nf2::InstanceStore& store = *fixture_.store;
  switch (op.kind) {
    case OpSpec::Kind::kLockRobot: {
      Result<const nf2::Object*> c1 = store.FindByKey(fixture_.cells, "c1");
      if (!c1.ok()) return c1.status();
      Result<nf2::ResolvedPath> rp = store.Navigate(
          fixture_.cells, (*c1)->id, {nf2::PathStep::Elem("robots", op.key)});
      if (!rp.ok()) return rp.status();
      return proto::MakeTarget(graph_, *fixture_.catalog, *rp);
    }
    case OpSpec::Kind::kLockEffector: {
      Result<const nf2::Object*> e = store.FindByKey(fixture_.effectors, op.key);
      if (!e.ok()) return e.status();
      return proto::MakeObjectTarget(graph_, *fixture_.catalog, store,
                                     fixture_.effectors, (*e)->id);
    }
    case OpSpec::Kind::kLockRelation:
      return proto::MakeSingletonTarget(
          graph_, graph_.RelationNode(fixture_.effectors));
    case OpSpec::Kind::kCommit:
      break;
  }
  return Status::InvalidArgument("op has no lock target");
}

bool WorkloadRun::ExecOp(int i, const OpSpec& op) {
  txn::Transaction* txn = txns_[i];
  if (op.kind == OpSpec::Kind::kCommit) {
    Status s = tm_.Commit(txn);
    outcomes_[i] = s.ok() ? TxnOutcome::kCommitted : TxnOutcome::kAborted;
    return false;
  }
  Result<proto::LockTarget> target = TargetFor(op);
  assert(target.ok());
  Status s = proto_->Lock(*txn, *target, op.mode);
  if (!s.ok()) {
    // Deadlock victim, wound, or injected timeout: strict 2PL abort.
    (void)tm_.Abort(txn);
    outcomes_[i] = TxnOutcome::kAborted;
    return false;
  }
  proto::HistoryOp h;
  h.txn = txn->id();
  h.cov = proto::ExpandLockCoverage(
      graph_, *fixture_.store,
      lock::ResourceId{target->target_node(), target->target_iid()}, op.mode);
  {
    std::lock_guard<std::mutex> lk(history_mu_);
    history_.push_back(std::move(h));
  }
  return true;
}

void WorkloadRun::RunTxn(int i, const std::function<void()>& yield) {
  const TxnSpec& t = spec_.txns[i];
  for (size_t k = 0; k < t.ops.size(); ++k) {
    if (k > 0) yield();
    if (!ExecOp(i, t.ops[k])) break;
  }
  if (outcomes_[i] == TxnOutcome::kRunning) {
    (void)tm_.Abort(txns_[i]);
    outcomes_[i] = TxnOutcome::kAborted;
  }
}

std::vector<std::function<void()>> WorkloadRun::MakeBodies(
    std::function<void()> yield) {
  std::vector<std::function<void()>> bodies;
  bodies.reserve(txns_.size());
  for (int i = 0; i < num_txns(); ++i) {
    bodies.push_back([this, i, yield] { RunTxn(i, yield); });
  }
  return bodies;
}

std::unordered_set<lock::TxnId> WorkloadRun::CommittedIds() const {
  std::unordered_set<lock::TxnId> out;
  for (size_t i = 0; i < txns_.size(); ++i) {
    if (outcomes_[i] == TxnOutcome::kCommitted) out.insert(txns_[i]->id());
  }
  return out;
}

std::vector<proto::HistoryOp> WorkloadRun::History() const {
  std::lock_guard<std::mutex> lk(history_mu_);
  return history_;
}

}  // namespace codlock::mc
