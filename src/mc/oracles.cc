#include "mc/oracles.h"

#include <unordered_map>
#include <utility>

namespace codlock::mc {

using lock::LockMode;

bool PristineCompatible(LockMode a, LockMode b) {
  // §3, Fig. 2 — [GLPT76].  Row/column order: NL IS IX S SIX X.
  static constexpr bool kMatrix[6][6] = {
      /* NL  */ {true, true, true, true, true, true},
      /* IS  */ {true, true, true, true, true, false},
      /* IX  */ {true, true, true, false, false, false},
      /* S   */ {true, true, false, true, false, false},
      /* SIX */ {true, true, false, false, false, false},
      /* X   */ {true, false, false, false, false, false},
  };
  return kMatrix[static_cast<int>(a)][static_cast<int>(b)];
}

void OracleSuite::AddViolation(std::string msg) {
  violations_.push_back(std::move(msg));
}

void OracleSuite::CheckStep(bool quiescent) {
  CheckCompatibility();
  CheckCacheCoherence();
  if (quiescent) CheckVisibility();
}

void OracleSuite::CheckTerminal() {
  proto::SerializabilityVerdict v = proto::CheckConflictSerializable(
      run_->History(), run_->CommittedIds());
  if (!v.serializable) {
    std::string msg = "serializability: committed history has cycle";
    for (lock::TxnId t : v.cycle) msg += " ->" + std::to_string(t);
    AddViolation(std::move(msg));
  }
}

void OracleSuite::NoteForcedTimeout() {
  if (run_->options().policy != lock::DeadlockPolicy::kTimeoutOnly) {
    AddViolation(
        std::string("termination: schedule stalled under policy ") +
        std::string(lock::DeadlockPolicyName(run_->options().policy)) +
        " (lost wakeup or unhandled deadlock; timeout had to be injected)");
  }
}

void OracleSuite::NoteNonTermination() {
  AddViolation("termination: execution exceeded its step budget");
}

void OracleSuite::CheckCompatibility() {
  std::unordered_map<lock::ResourceId,
                     std::vector<std::pair<lock::TxnId, LockMode>>,
                     lock::ResourceIdHash>
      by_res;
  for (const lock::LongLockRecord& rec :
       run_->lock_manager().SnapshotAllLocks()) {
    by_res[rec.resource].emplace_back(rec.txn, rec.mode);
  }
  for (const auto& [res, holders] : by_res) {
    for (size_t i = 0; i < holders.size(); ++i) {
      for (size_t j = i + 1; j < holders.size(); ++j) {
        if (holders[i].first == holders[j].first) continue;
        if (!PristineCompatible(holders[i].second, holders[j].second)) {
          AddViolation("compatibility: txn " +
                       std::to_string(holders[i].first) + " holds " +
                       std::string(lock::LockModeName(holders[i].second)) +
                       " and txn " + std::to_string(holders[j].first) +
                       " holds " +
                       std::string(lock::LockModeName(holders[j].second)) +
                       " on " + res.ToString());
        }
      }
    }
  }
}

void OracleSuite::CheckVisibility() {
  proto::ProtocolValidator validator(&run_->graph(), &run_->store());
  for (const proto::Violation& v : validator.Check(run_->lock_manager())) {
    AddViolation("visibility: " + v.ToString());
  }
}

void OracleSuite::CheckCacheCoherence() {
  for (int i = 0; i < run_->num_txns(); ++i) {
    txn::Transaction* t = run_->txn(i);
    for (const lock::TxnLockCache::Slot& s :
         t->lock_cache().AuditSnapshot()) {
      if (s.mode == LockMode::kNL) continue;
      LockMode held = run_->lock_manager().HeldMode(t->id(), s.res);
      if (!lock::Covers(held, s.mode)) {
        AddViolation("cache: txn " + std::to_string(t->id()) +
                     " cache claims " +
                     std::string(lock::LockModeName(s.mode)) + " on " +
                     s.res.ToString() + " but shard holds " +
                     std::string(lock::LockModeName(held)));
      }
    }
  }
}

}  // namespace codlock::mc
