#include "mc/lease_oracle.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "proto/validator.h"
#include "sim/fixtures.h"
#include "ws/server.h"

namespace codlock::mc {

namespace {

/// One atomic step of the scenario, attributed to its actor.
enum class Step : uint8_t {
  kAdvancePastGrace,  ///< time: clock jumps past W1's deadline + grace
  kCrash,             ///< server: CrashAndRestart (optional)
  kSweep,             ///< server: SweepExpiredLeases
  kW2CheckOut,        ///< W2: exclusive check-out of the same cell
  kW2CheckIn,         ///< W2: check its (possibly absent) ticket back in
  kW1CheckIn,         ///< W1: the zombie's late check-in
};

const char* StepName(Step s) {
  switch (s) {
    case Step::kAdvancePastGrace:
      return "advance";
    case Step::kCrash:
      return "crash";
    case Step::kSweep:
      return "sweep";
    case Step::kW2CheckOut:
      return "w2-checkout";
    case Step::kW2CheckIn:
      return "w2-checkin";
    case Step::kW1CheckIn:
      return "w1-checkin";
  }
  return "?";
}

std::string ScheduleName(const std::vector<Step>& schedule) {
  std::string out;
  for (Step s : schedule) {
    if (!out.empty()) out += " ";
    out += StepName(s);
  }
  return out;
}

/// Enumerates every order-preserving merge of the actor scripts.
void Interleave(const std::vector<std::vector<Step>>& actors,
                std::vector<size_t>& pos, std::vector<Step>& prefix,
                std::vector<std::vector<Step>>& out) {
  bool done = true;
  for (size_t a = 0; a < actors.size(); ++a) {
    if (pos[a] >= actors[a].size()) continue;
    done = false;
    prefix.push_back(actors[a][pos[a]]);
    ++pos[a];
    Interleave(actors, pos, prefix, out);
    --pos[a];
    prefix.pop_back();
  }
  if (done) out.push_back(prefix);
}

query::Query CellUpdateQuery(const sim::CellsFixture& fx) {
  query::Query q;
  q.name = "lease-mc";
  q.relation = fx.cells;
  q.object_key = "c1";
  q.path = {nf2::PathStep::Field("c_objects")};
  q.kind = query::AccessKind::kUpdate;
  return q;
}

/// Replays one schedule on a fresh stack; appends violations.
void RunSchedule(const std::vector<Step>& schedule,
                 LeaseExploreStats& stats,
                 std::set<std::string>& messages,
                 size_t max_messages) {
  sim::CellsFixture fx = sim::BuildFigure7Instance();
  ws::Server::Options opts;
  // A conflicting check-out must fail fast (single-threaded replay), not
  // park: 1 ms is the shortest expressible deadline.
  opts.lock_manager.default_timeout_ms = 1;
  opts.lease.duration_ms = 1000;
  opts.lease.grace_ms = 500;
  ws::Server server(fx.catalog.get(), fx.store.get(), std::move(opts));

  auto fail = [&](const std::string& msg) {
    if (messages.size() < max_messages) {
      messages.insert(msg + " [schedule: " + ScheduleName(schedule) + "]");
    }
    ++stats.violating_executions;
  };

  std::unordered_map<lock::ResourceId, uint64_t, lock::ResourceIdHash>
      max_epoch;
  auto epochs_monotonic = [&](const char* when) -> bool {
    for (const lock::FenceEpochRecord& rec :
         server.stable_storage().FenceEpochs()) {
      uint64_t& seen = max_epoch[rec.root];
      if (rec.epoch < seen) {
        fail(std::string("epoch of ") + rec.root.ToString() +
             " regressed " + when);
        return false;
      }
      if (rec.epoch > seen) seen = rec.epoch;
    }
    return true;
  };

  Result<ws::CheckOutTicket> w1 =
      server.CheckOut(1, CellUpdateQuery(fx), ws::CheckOutMode::kExclusive);
  if (!w1.ok()) {
    fail("setup: W1 check-out failed: " + w1.status().ToString());
    return;
  }

  bool expired = false;        // advance step has run
  bool swept_expired = false;  // a sweep ran while expired
  bool w1_in = false, w2_out = false;
  ws::CheckOutTicket w2_ticket;

  for (Step step : schedule) {
    switch (step) {
      case Step::kAdvancePastGrace:
        server.clock().AdvanceMs(server.leases().options().duration_ms +
                                 server.leases().options().grace_ms + 1);
        expired = true;
        break;
      case Step::kCrash: {
        Status s = server.CrashAndRestart();
        if (!s.ok()) fail("crash recovery failed: " + s.ToString());
        // The restart reissues surviving leases: W1 is only "expired"
        // afterwards if it was already reclaimed.
        if (server.leases().Has(w1->txn)) expired = false;
        if (!epochs_monotonic("across crash")) return;
        break;
      }
      case Step::kSweep: {
        server.SweepExpiredLeases();
        if (expired && !swept_expired) {
          swept_expired = true;
          // Oracle (c): the expired lease and its locks must be gone.
          if (server.leases().Has(w1->txn)) {
            fail("sweep left the expired lease of W1 alive");
          }
          if (!server.lock_manager().LocksOf(w1->txn).empty()) {
            fail("sweep left W1's long locks behind");
          }
        }
        if (!epochs_monotonic("after sweep")) return;
        break;
      }
      case Step::kW2CheckOut: {
        const bool w1_holds =
            !server.lock_manager().LocksOf(w1->txn).empty();
        Result<ws::CheckOutTicket> t = server.CheckOut(
            2, CellUpdateQuery(fx), ws::CheckOutMode::kExclusive);
        if (t.ok()) {
          if (w1_holds) {
            // Oracle (b): two exclusive check-outs of the same cell.
            fail("W2 checked out while W1 still held its locks");
          }
          w2_out = true;
          w2_ticket = *t;
        }
        break;
      }
      case Step::kW2CheckIn: {
        if (!w2_out) break;
        // W2 never renews in this script, so the advance step expires
        // its lease as well — a fenced/refused check-in is then correct;
        // only a failure *with a live lease* is a violation.
        const bool w2_alive = server.leases().Has(w2_ticket.txn);
        Status s = server.CheckIn(w2_ticket);
        if (!s.ok() && w2_alive) {
          fail("W2's check-in failed with a live lease: " + s.ToString());
        }
        break;
      }
      case Step::kW1CheckIn: {
        const bool lease_alive = server.leases().Has(w1->txn);
        Status s = server.CheckIn(*w1);
        if (s.ok()) {
          w1_in = true;
          if (!lease_alive) {
            fail("W1's check-in succeeded after its lease was reclaimed");
          }
          if (w2_out) {
            // Oracle (a): W2 already owns the cell; W1's write-back is
            // the lost update.
            fail("lost update: W1 checked in after W2's check-out");
          }
        } else if (w2_out && !s.IsFenced() && !s.IsNotFound()) {
          fail("W1's late check-in failed with unexpected status: " +
               s.ToString());
        }
        break;
      }
    }
  }

  if (w1_in) ++stats.w1_checkin_ok;
  if (!w1_in) ++stats.w1_fenced;
  if (w2_out) ++stats.w2_checkout_ok;

  // Oracle (e): whatever the schedule did, the grant set is consistent.
  proto::ProtocolValidator validator(&server.graph(), fx.store.get());
  for (const proto::Violation& v : validator.Check(server.lock_manager())) {
    fail("protocol validator: " + v.ToString());
  }
}

}  // namespace

LeaseExploreStats ExploreLeaseProtocol(const LeaseExploreOptions& opts) {
  // The crash is its own actor so it can land anywhere: before expiry
  // (lease reissued), between expiry and sweep (ditto), after the sweep
  // (the reclaim + epoch bumps must survive), around W2's operations.
  std::vector<std::vector<Step>> actors = {
      {Step::kAdvancePastGrace, Step::kSweep},
      {Step::kW2CheckOut, Step::kW2CheckIn},
      {Step::kW1CheckIn}};
  if (opts.with_server_crash) actors.push_back({Step::kCrash});
  std::vector<std::vector<Step>> schedules;
  std::vector<size_t> pos(actors.size(), 0);
  std::vector<Step> prefix;
  Interleave(actors, pos, prefix, schedules);

  LeaseExploreStats stats;
  std::set<std::string> messages;
  for (const std::vector<Step>& schedule : schedules) {
    const uint64_t before = stats.violating_executions;
    RunSchedule(schedule, stats, messages, opts.max_violation_messages);
    // Count each schedule once, however many oracles it tripped.
    if (stats.violating_executions > before) {
      stats.violating_executions = before + 1;
    }
    ++stats.executions;
  }
  stats.violation_messages.assign(messages.begin(), messages.end());
  return stats;
}

}  // namespace codlock::mc
