/// \file oracles.h
/// \brief Correctness oracles checked on every explored interleaving.
///
/// The model checker replays each schedule through the real lock-manager /
/// protocol / transaction-manager stack and judges the observed states
/// against five independent oracles:
///
///  (a) **compatibility soundness** — at every step, any two granted locks
///      of distinct transactions on the same resource are compatible under
///      a *pristine* copy of the §3 matrix (the production matrix is a
///      mutation target and cannot be trusted to judge itself);
///  (b) **implicit-lock visibility** — at quiescent points (no transaction
///      mid-operation), the grant-set auditor (`proto::ProtocolValidator`)
///      finds no undetected conflict: the §4.4 side-entry guarantee.
///      Mid-operation states are skipped because partially propagated lock
///      sets legally show conflicting *coverage* until the op completes;
///  (c) **conflict-serializability** — at the end of the execution, the
///      recorded history of committed transactions has an acyclic
///      precedence graph (what strict 2PL must deliver);
///  (d) **cache coherence** — at every step, every slot a transaction's
///      lock cache would trust is covered by the shard table's ground
///      truth (catches dropped invalidations, e.g. after a commit);
///  (e) **termination / policy soundness** — every schedule terminates,
///      and under every policy except timeout-only it terminates without
///      the explorer having to inject a timeout (a needed injection means
///      a lost wakeup or an unhandled deadlock).

#ifndef CODLOCK_MC_ORACLES_H_
#define CODLOCK_MC_ORACLES_H_

#include <string>
#include <vector>

#include "mc/workload.h"

namespace codlock::mc {

/// \brief Pristine §3 compatibility matrix, independent of
/// `lock::Compatible` (see oracle (a) above).
bool PristineCompatible(lock::LockMode a, lock::LockMode b);

/// \brief Runs oracles (a)–(e) against one `WorkloadRun`.  The explorer
/// calls `CheckStep` after every scheduler step (when every controlled
/// thread is suspended) and `CheckTerminal` once the run completed.
class OracleSuite {
 public:
  explicit OracleSuite(WorkloadRun* run) : run_(run) {}

  /// Per-step oracles.  \p quiescent: no thread is mid-operation (all at
  /// op boundaries or done) — enables the visibility oracle (b).
  void CheckStep(bool quiescent);

  /// End-of-execution oracles (serializability of the committed history).
  void CheckTerminal();

  /// The explorer had to inject a timeout to make progress (oracle (e)):
  /// a violation under every policy except kTimeoutOnly.
  void NoteForcedTimeout();

  /// The execution exceeded its step budget (oracle (e)).
  void NoteNonTermination();

  bool clean() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void AddViolation(std::string msg);
  void CheckCompatibility();  // (a)
  void CheckVisibility();     // (b)
  void CheckCacheCoherence(); // (d)

  WorkloadRun* run_;
  std::vector<std::string> violations_;
};

}  // namespace codlock::mc

#endif  // CODLOCK_MC_ORACLES_H_
