#include "mc/explorer.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mc/oracles.h"
#include "mc/scheduler.h"

namespace codlock::mc {
namespace {

using lock::LockMode;
using lock::ResourceId;
using lock::TxnId;

/// Lock-table delta of one scheduler step, as seen from the controller.
struct Footprint {
  std::vector<std::pair<ResourceId, LockMode>> acquired;
  std::vector<ResourceId> released;
  /// Cross-thread effects (notify, kill, timeout injection, wound-wait
  /// side channels): dependent with every other step.
  bool global = false;
};

/// A deferred branch choice: thread \p tid, with the footprint its step
/// had when it was explored.
struct SleepEntry {
  int tid = -1;
  Footprint fp;
};

using LockSnapshot =
    std::unordered_map<TxnId,
                       std::unordered_map<ResourceId, LockMode,
                                          lock::ResourceIdHash>>;

LockSnapshot Snapshot(const lock::LockManager& lm) {
  LockSnapshot snap;
  for (const lock::LongLockRecord& rec : lm.SnapshotAllLocks()) {
    snap[rec.txn][rec.resource] = rec.mode;
  }
  return snap;
}

bool TouchesResource(const Footprint& fp, const ResourceId& r) {
  for (const auto& [res, mode] : fp.acquired) {
    if (res == r) return true;
  }
  return std::find(fp.released.begin(), fp.released.end(), r) !=
         fp.released.end();
}

/// Steps commute unless one released a resource the other touches, or
/// they acquired incompatible modes on a common resource.
bool Dependent(const Footprint& a, const Footprint& b) {
  if (a.global || b.global) return true;
  for (const ResourceId& r : a.released) {
    if (TouchesResource(b, r)) return true;
  }
  for (const ResourceId& r : b.released) {
    if (TouchesResource(a, r)) return true;
  }
  for (const auto& [ra, ma] : a.acquired) {
    for (const auto& [rb, mb] : b.acquired) {
      if (ra == rb && !PristineCompatible(ma, mb)) return true;
    }
  }
  return false;
}

/// One decision point of an execution.
struct DepthRec {
  std::vector<int> candidates;  ///< enabled and awake (includes chosen)
  int chosen = -1;
  Footprint fp;  ///< footprint of the chosen step
};

struct ExecResult {
  std::vector<DepthRec> depths;
  bool sleep_blocked = false;
  bool completed = false;
  uint64_t sibling_prunes = 0;  ///< enabled-but-asleep counts along the path
};

class Explorer {
 public:
  Explorer(const WorkloadSpec& spec, const ExploreOptions& opts)
      : spec_(spec), opts_(opts) {
    por_enabled_ = opts_.use_por &&
                   opts_.run.policy != lock::DeadlockPolicy::kWoundWait;
  }

  ExploreStats Run() {
    Dfs({}, {});
    return std::move(stats_);
  }

 private:
  /// Computes the footprint of the step the thread of \p txn just took,
  /// from before/after lock-table snapshots.  Changes to *other*
  /// transactions' entries mean the step killed or granted someone else's
  /// waiter — a cross-thread effect.
  Footprint DiffFootprint(const LockSnapshot& before,
                          const LockSnapshot& after, TxnId txn,
                          bool had_notifies, bool was_timeout) {
    Footprint fp;
    if (!por_enabled_ || had_notifies || was_timeout) fp.global = true;
    std::unordered_set<TxnId> ids;
    for (const auto& [t, _] : before) ids.insert(t);
    for (const auto& [t, _] : after) ids.insert(t);
    static const std::unordered_map<ResourceId, LockMode,
                                    lock::ResourceIdHash>
        kEmpty;
    for (TxnId t : ids) {
      auto bi = before.find(t);
      auto ai = after.find(t);
      const auto& b = bi == before.end() ? kEmpty : bi->second;
      const auto& a = ai == after.end() ? kEmpty : ai->second;
      bool changed = false;
      for (const auto& [res, mode] : a) {
        auto it = b.find(res);
        if (it == b.end() || it->second != mode) {
          changed = true;
          if (t == txn) fp.acquired.emplace_back(res, mode);
        }
      }
      for (const auto& [res, mode] : b) {
        auto it = a.find(res);
        if (it == a.end() ||
            (it->second != mode && !lock::Covers(it->second, mode))) {
          changed = true;
          if (t == txn) fp.released.push_back(res);
        }
      }
      if (changed && t != txn) fp.global = true;
    }
    return fp;
  }

  static bool Quiescent(const DetScheduler& sched) {
    for (int i = 0; i < sched.num_threads(); ++i) {
      ThreadState s = sched.StateOf(i);
      if (s != ThreadState::kReady && s != ThreadState::kDone) return false;
    }
    return true;
  }

  /// Drops sleepers woken by a dependent step.
  static void FilterSleep(std::vector<SleepEntry>* sleep,
                          const Footprint& step) {
    sleep->erase(std::remove_if(sleep->begin(), sleep->end(),
                                [&](const SleepEntry& e) {
                                  return Dependent(e.fp, step);
                                }),
                 sleep->end());
  }

  /// Runs one execution: replays \p forced, then extends with the default
  /// policy (lowest awake candidate) until done.  \p injected[k] are sleep
  /// entries to add at decision depth k (explored siblings of ancestors).
  ExecResult Execute(const std::vector<int>& forced,
                     const std::vector<std::vector<SleepEntry>>& injected) {
    ExecResult res;
    auto run = std::make_unique<WorkloadRun>(spec_, opts_.run);
    OracleSuite oracles(run.get());
    {
      DetScheduler sched;
      sched.Launch(run->MakeBodies([&sched] { sched.Yield(); }));
      std::vector<SleepEntry> sleep;
      int steps = 0;
      size_t depth = 0;
      while (!sched.AllDone()) {
        if (++steps > opts_.max_steps) {
          oracles.NoteNonTermination();
          break;
        }
        std::vector<int> enabled = sched.Enabled();
        if (enabled.empty()) {
          // Global stall: forced timeout injection (not a decision).
          std::vector<int> parked = sched.Parked();
          if (parked.empty()) break;  // cannot happen
          oracles.NoteForcedTimeout();
          int tid = parked.front();
          LockSnapshot before = Snapshot(run->lock_manager());
          std::vector<int> notified = sched.DeliverTimeout(tid);
          Footprint fp =
              DiffFootprint(before, Snapshot(run->lock_manager()),
                            run->txn(tid)->id(), !notified.empty(), true);
          FilterSleep(&sleep, fp);
          oracles.CheckStep(Quiescent(sched));
          continue;
        }
        if (depth < injected.size()) {
          sleep.insert(sleep.end(), injected[depth].begin(),
                       injected[depth].end());
        }
        std::vector<int> candidates;
        for (int t : enabled) {
          bool asleep = std::any_of(
              sleep.begin(), sleep.end(),
              [&](const SleepEntry& e) { return e.tid == t; });
          if (asleep) {
            ++res.sibling_prunes;
          } else {
            candidates.push_back(t);
          }
        }
        if (candidates.empty()) {
          // Every enabled thread is asleep: all extensions of this path
          // are covered by already-explored orderings.
          res.sleep_blocked = true;
          break;
        }
        int chosen =
            depth < forced.size() ? forced[depth] : candidates.front();
        LockSnapshot before = Snapshot(run->lock_manager());
        std::vector<int> notified = sched.Step(chosen);
        DepthRec rec;
        rec.candidates = std::move(candidates);
        rec.chosen = chosen;
        rec.fp = DiffFootprint(before, Snapshot(run->lock_manager()),
                               run->txn(chosen)->id(), !notified.empty(),
                               false);
        FilterSleep(&sleep, rec.fp);
        res.depths.push_back(std::move(rec));
        ++depth;
        oracles.CheckStep(Quiescent(sched));
      }
      res.completed = sched.AllDone();
      if (res.completed && !res.sleep_blocked) oracles.CheckTerminal();
      // The scheduler destructor drains and joins before `run` dies.
    }
    ++stats_.executions;
    if (res.completed && !res.sleep_blocked) ++stats_.terminals;
    if (res.sleep_blocked) ++stats_.sleep_blocked;
    stats_.sibling_prunes += res.sibling_prunes;
    stats_.max_depth =
        std::max(stats_.max_depth, static_cast<int>(res.depths.size()));
    if (!oracles.clean()) {
      ++stats_.violating_executions;
      for (const std::string& v : oracles.violations()) {
        if (stats_.violation_messages.size() >=
            opts_.max_violation_messages) {
          break;
        }
        if (std::find(stats_.violation_messages.begin(),
                      stats_.violation_messages.end(),
                      v) == stats_.violation_messages.end()) {
          stats_.violation_messages.push_back(v);
        }
      }
    }
    return res;
  }

  bool AtCap() const {
    return opts_.max_executions != 0 &&
           stats_.executions >= opts_.max_executions;
  }

  /// Depth-first exploration.  Executes the forced prefix once (default
  /// extension = one schedule), then branches every un-slept sibling at
  /// every decision depth at or below the prefix.
  ExecResult Dfs(const std::vector<int>& forced,
                 const std::vector<std::vector<SleepEntry>>& injected) {
    ExecResult r = Execute(forced, injected);
    for (size_t d = forced.size(); d < r.depths.size(); ++d) {
      const DepthRec& rec = r.depths[d];
      if (rec.candidates.size() < 2) continue;
      std::vector<SleepEntry> explored{{rec.chosen, rec.fp}};
      for (int c : rec.candidates) {
        if (c == rec.chosen) continue;
        if (AtCap()) {
          stats_.hit_execution_cap = true;
          return r;
        }
        std::vector<int> child_forced;
        child_forced.reserve(d + 1);
        for (size_t k = 0; k < d; ++k) {
          child_forced.push_back(r.depths[k].chosen);
        }
        child_forced.push_back(c);
        std::vector<std::vector<SleepEntry>> child_injected(
            injected.begin(),
            injected.begin() +
                std::min(injected.size(), static_cast<size_t>(d) + 1));
        child_injected.resize(d + 1);
        child_injected[d].insert(child_injected[d].end(), explored.begin(),
                                 explored.end());
        ExecResult child = Dfs(child_forced, child_injected);
        if (child.depths.size() > d) {
          explored.push_back({c, child.depths[d].fp});
        }
      }
    }
    return r;
  }

  WorkloadSpec spec_;
  ExploreOptions opts_;
  bool por_enabled_ = true;
  ExploreStats stats_;
};

}  // namespace

ExploreStats Explore(const WorkloadSpec& spec, const ExploreOptions& opts) {
  return Explorer(spec, opts).Run();
}

}  // namespace codlock::mc
