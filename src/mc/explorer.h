/// \file explorer.h
/// \brief Exhaustive schedule exploration (stateless model checking).
///
/// `Explore` enumerates every distinguishable interleaving of a scripted
/// workload by depth-first search over scheduler decisions.  The state
/// space is explored *statelessly*: each schedule re-executes the whole
/// stack from scratch (fresh fixture, lock manager, transactions) and
/// replays a forced decision prefix before continuing with the default
/// policy (lowest enabled thread).  Oracles (`mc/oracles.h`) are checked
/// after every step of every execution.
///
/// A *decision* is "which enabled thread runs next".  Two situations are
/// explicitly **not** decisions:
///
///  * parked threads are not steppable until notified — blocking is part
///    of the semantics, not of the schedule;
///  * timeout injection is forced, never chosen: only when *no* thread is
///    enabled does the explorer inject a timeout into the lowest parked
///    thread (and oracle (e) flags that under non-timeout policies).
///
/// ## Partial-order reduction (sleep sets)
///
/// Each step's *footprint* — the lock-table delta it caused, plus whether
/// it had cross-thread effects (notify, kill, timeout) — is computed from
/// controller-side snapshots.  Two steps are independent when their
/// footprints only acquire pristine-compatible modes on common resources
/// and neither had cross-thread effects; exploring both orders of an
/// independent pair is redundant, and classic sleep sets prune the second
/// order: after exploring thread `t` at a state, `t` (with its footprint)
/// is put to sleep for the sibling branches and only woken by a dependent
/// step.  Under wound-wait the wound flag is invisible to lock-table
/// snapshots, so footprints are conservatively global (POR disabled).

#ifndef CODLOCK_MC_EXPLORER_H_
#define CODLOCK_MC_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mc/workload.h"

namespace codlock::mc {

/// \brief Exploration knobs.
struct ExploreOptions {
  RunOptions run;
  /// Sleep-set partial-order reduction (auto-disabled under kWoundWait).
  bool use_por = true;
  /// Safety cap on the number of executions (0 = unlimited).
  uint64_t max_executions = 200000;
  /// Per-execution step budget; exceeding it is an oracle (e) violation.
  int max_steps = 2000;
  /// At most this many violation messages are kept verbatim.
  size_t max_violation_messages = 20;
};

/// \brief Exploration outcome.
struct ExploreStats {
  uint64_t executions = 0;        ///< schedules actually run
  uint64_t terminals = 0;         ///< executions that ran to completion
  uint64_t sleep_blocked = 0;     ///< executions cut short by sleep sets
  uint64_t sibling_prunes = 0;    ///< branch candidates skipped (asleep)
  uint64_t violating_executions = 0;
  int max_depth = 0;              ///< longest decision sequence seen
  bool hit_execution_cap = false;
  std::vector<std::string> violation_messages;  ///< capped, deduplicated

  bool clean() const { return violating_executions == 0; }
};

/// Exhaustively explores \p spec under \p opts.  See file comment.
ExploreStats Explore(const WorkloadSpec& spec, const ExploreOptions& opts);

}  // namespace codlock::mc

#endif  // CODLOCK_MC_EXPLORER_H_
