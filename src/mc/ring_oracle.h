/// \file ring_oracle.h
/// \brief Exhaustive interleaving exploration of the ring slot protocol.
///
/// The job ring's crash story (shm_ring.h) is a state machine of atomic
/// words plus a reclaimer: a party may die at any protocol point and the
/// sweep must put its slot back without losing or double-counting a
/// frame.  The procchaos harness exercises that with real SIGKILLed
/// processes but can only sample schedules; this explorer enumerates the
/// *whole* space of a small scenario — every order-preserving merge of
///
///   P1 {publish, take} × P2 {publish, take} × C {consume×3} × R {reap}
///
/// crossed with every crash flavor for P1 (alive, die at
/// `publish.claimed` / mid-write / torn-write / `publish.copied` /
/// `publish.published` / `take.taking`) — and replays each one against a
/// fresh in-process ring.  Crash points strand the slot in exactly the
/// state a SIGKILL there would (the hook unwinds out of the call), and
/// the reap step models the PID reaper: it only acts once P1 is dead,
/// with `ReclaimScope::taking` set (the owner is provably gone).
///
/// Oracles, checked on every schedule:
///
///  (a) **reclaim completeness** — after a reap of dead P1 returns, no
///      slot owned by P1 remains in a reclaimable state (kWriting,
///      kPublished, kDone, kTaking).  This is the oracle that kills the
///      `ring.skip-reclaim` mutant: a skipped kPublished strand is later
///      executed on behalf of a corpse.
///  (b) **frame conservation** — at quiescence the ledger balances:
///      published == consumed + salvaged + reclaimed_published,
///      consumed == completed + reclaimed_executing,
///      completed == taken + reclaimed_done.
///  (c) **quiescence** — the post-mortem convergence loop (reap → drain
///      → final takes, the host's sweep discipline) reaches
///      InFlight() == 0 within a bounded number of rounds.
///  (d) **survivor liveness** — P2, which never crashes, completes its
///      round trip (publish → response taken) in every schedule; a
///      neighbour's death never wedges it.

#ifndef CODLOCK_MC_RING_ORACLE_H_
#define CODLOCK_MC_RING_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace codlock::mc {

/// \brief Ring-protocol exploration knobs.
struct RingExploreOptions {
  /// At most this many violation messages are kept verbatim.
  size_t max_violation_messages = 20;
};

/// \brief Outcome of a ring-protocol exploration.
struct RingExploreStats {
  uint64_t executions = 0;
  uint64_t violating_executions = 0;
  /// Terminal diversity (sanity: the space must reach both the graceful
  /// and every post-mortem path).
  uint64_t p1_take_ok = 0;       ///< P1 survived and took its response
  uint64_t p1_reclaimed = 0;     ///< schedules where the reap freed >= 1 slot
  uint64_t frames_salvaged = 0;  ///< torn publishes caught by the consumer
  std::vector<std::string> violation_messages;  ///< capped, deduplicated

  bool clean() const { return violating_executions == 0; }
};

/// Explores every interleaving × crash flavor of the ring scenario.
RingExploreStats ExploreRingProtocol(const RingExploreOptions& opts);

}  // namespace codlock::mc

#endif  // CODLOCK_MC_RING_ORACLE_H_
