/// \file lease_oracle.h
/// \brief Exhaustive interleaving exploration of the lease protocol.
///
/// The main explorer (`mc/explorer.h`) enumerates thread schedules at
/// lock-operation granularity.  The lease protocol's steps — clock
/// advance, reclamation sweep, server crash, a second workstation's
/// check-out/check-in, the zombie's late check-in — are synchronous
/// server calls, so its state space is explored more directly: every
/// interleaving (order-preserving merge) of the per-actor scripts is
/// enumerated and each one is replayed against a fresh server stack.
///
/// The scenario is the lost-update race the fencing epochs exist to
/// close.  Workstation W1 checks a cell out exclusively, then goes
/// silent.  Time passes, the sweep reclaims, workstation W2 checks the
/// same cell out, modifies it and checks it in.  W1 then wakes up and
/// tries to check in its stale ticket.  The oracles, checked on every
/// interleaving:
///
///  (a) **no lost update through a fenced check-in** — once W2's
///      check-out succeeded, W1's late check-in must fail (kFenced or
///      the transaction being gone); both check-ins succeeding with
///      W1's ordered after W2's check-out is the lost update;
///  (b) **mutual exclusion** — W2's check-out must not succeed while W1
///      still holds its long locks;
///  (c) **reclaim completeness** — after a sweep that ran with W1's
///      lease expired beyond grace, W1 holds no locks and no lease
///      (reclaim-abort policy);
///  (d) **epoch monotonicity** — fencing epochs never decrease at any
///      step, crashes included;
///  (e) the protocol validator finds the final grant set consistent.

#ifndef CODLOCK_MC_LEASE_ORACLE_H_
#define CODLOCK_MC_LEASE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace codlock::mc {

/// \brief Lease-protocol exploration knobs.
struct LeaseExploreOptions {
  /// Also interleave a server crash+restart into the schedule (bigger
  /// space: the crash may land before/after expiry, sweep, W2's ops).
  bool with_server_crash = false;
  /// At most this many violation messages are kept verbatim.
  size_t max_violation_messages = 20;
};

/// \brief Outcome of a lease-protocol exploration.
struct LeaseExploreStats {
  uint64_t executions = 0;
  uint64_t violating_executions = 0;
  /// How often each interesting terminal was reached (sanity: the space
  /// must contain both the reclaim path and the graceful path).
  uint64_t w1_checkin_ok = 0;      ///< W1 checked in before losing the lease
  uint64_t w1_fenced = 0;          ///< W1's late check-in was fenced/refused
  uint64_t w2_checkout_ok = 0;     ///< W2 got the cell (after reclaim/checkin)
  std::vector<std::string> violation_messages;  ///< capped, deduplicated

  bool clean() const { return violating_executions == 0; }
};

/// Explores every interleaving of the lease scenario.  See file comment.
LeaseExploreStats ExploreLeaseProtocol(const LeaseExploreOptions& opts);

}  // namespace codlock::mc

#endif  // CODLOCK_MC_LEASE_ORACLE_H_
