#include "mc/scheduler.h"

#include <cassert>

namespace codlock::mc {

namespace {
// Identity of the controlled thread, if any.  Set once per worker before
// its body runs; the scheduler pointer doubles as the "am I controlled by
// *this* scheduler" check so unrelated threads (and the controller itself)
// always take native blocking paths.
thread_local DetScheduler* tls_owner = nullptr;
thread_local int tls_tid = -1;
}  // namespace

DetScheduler::~DetScheduler() {
  if (launched_) {
    Drain();
    for (std::thread& t : threads_) t.join();
    BlockingObserver::Set(nullptr);
  }
}

void DetScheduler::Launch(std::vector<std::function<void()>> bodies) {
  assert(!launched_);
  launched_ = true;
  slots_.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    slots_.push_back(std::make_unique<PerThread>());
  }
  // Register before any controlled thread can reach a CondVar.
  BlockingObserver::Set(this);
  for (size_t i = 0; i < bodies.size(); ++i) {
    threads_.emplace_back([this, i, body = std::move(bodies[i])]() {
      tls_owner = this;
      tls_tid = static_cast<int>(i);
      {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait for our first turn; state is already kReady.
        slots_[i]->cv.wait(lk, [&] { return active_ == static_cast<int>(i); });
        slots_[i]->state = ThreadState::kRunning;
      }
      body();
      std::unique_lock<std::mutex> lk(mu_);
      slots_[i]->state = ThreadState::kDone;
      active_ = -1;
      controller_cv_.notify_one();
    });
  }
}

void DetScheduler::RunUntilSuspend(std::unique_lock<std::mutex>& lk, int tid,
                                   WakeKind wake) {
  PerThread& pt = *slots_[tid];
  step_notified_.clear();
  pt.wake = wake;
  active_ = tid;
  pt.cv.notify_one();
  controller_cv_.wait(lk, [&] { return active_ == -1; });
}

std::vector<int> DetScheduler::Step(int tid) {
  std::unique_lock<std::mutex> lk(mu_);
  ThreadState s = slots_[tid]->state;
  assert(s == ThreadState::kReady || s == ThreadState::kNotified);
  (void)s;
  RunUntilSuspend(lk, tid, WakeKind::kNotified);
  return step_notified_;
}

std::vector<int> DetScheduler::DeliverTimeout(int tid) {
  std::unique_lock<std::mutex> lk(mu_);
  assert(slots_[tid]->state == ThreadState::kParked);
  RunUntilSuspend(lk, tid, WakeKind::kTimeout);
  return step_notified_;
}

std::vector<int> DetScheduler::Enabled() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<int> out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    ThreadState s = slots_[i]->state;
    if (s == ThreadState::kReady || s == ThreadState::kNotified) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> DetScheduler::Parked() const {
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<int> out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->state == ThreadState::kParked) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

ThreadState DetScheduler::StateOf(int tid) const {
  std::unique_lock<std::mutex> lk(mu_);
  return slots_[tid]->state;
}

bool DetScheduler::AllDone() const {
  std::unique_lock<std::mutex> lk(mu_);
  for (const auto& pt : slots_) {
    if (pt->state != ThreadState::kDone) return false;
  }
  return true;
}

int DetScheduler::CurrentTid() { return tls_tid; }

void DetScheduler::SuspendSelf(std::unique_lock<std::mutex>& lk, int tid,
                               ThreadState state) {
  slots_[tid]->state = state;
  active_ = -1;
  controller_cv_.notify_one();
  slots_[tid]->cv.wait(lk, [&] { return active_ == tid; });
  slots_[tid]->state = ThreadState::kRunning;
}

void DetScheduler::Yield() {
  int tid = tls_tid;
  assert(tls_owner == this && tid >= 0);
  std::unique_lock<std::mutex> lk(mu_);
  SuspendSelf(lk, tid, ThreadState::kReady);
}

void DetScheduler::Drain() {
  // Generous budget: real executions take tens of steps; hitting this cap
  // means a livelock (reported via drain_incomplete()).
  int budget = 100000;
  while (!AllDone() && budget-- > 0) {
    std::vector<int> enabled = Enabled();
    if (!enabled.empty()) {
      Step(enabled.front());
      continue;
    }
    std::vector<int> parked = Parked();
    if (!parked.empty()) {
      DeliverTimeout(parked.front());
      continue;
    }
    break;  // nothing ready, nothing parked, not all done: impossible
  }
  drain_incomplete_ = !AllDone();
  // A wedged execution would make join() hang; there is no safe way to
  // kill a std::thread, so assert loudly instead of hanging silently.
  assert(!drain_incomplete_ && "DetScheduler::Drain could not finish");
}

bool DetScheduler::ControlsCurrentThread() const {
  return tls_owner == this && tls_tid >= 0;
}

BlockingObserver::WakeKind DetScheduler::OnCondVarBlock(const void* cv) {
  int tid = tls_tid;
  std::unique_lock<std::mutex> lk(mu_);
  slots_[tid]->parked_on = cv;
  SuspendSelf(lk, tid, ThreadState::kParked);
  slots_[tid]->parked_on = nullptr;
  return slots_[tid]->wake;
}

void DetScheduler::OnCondVarNotify(const void* cv) {
  // Leaf lock only: callers may hold a lock-manager shard mutex.
  std::unique_lock<std::mutex> lk(mu_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    PerThread& pt = *slots_[i];
    if (pt.state == ThreadState::kParked && pt.parked_on == cv) {
      pt.state = ThreadState::kNotified;
      step_notified_.push_back(static_cast<int>(i));
    }
  }
}

}  // namespace codlock::mc
