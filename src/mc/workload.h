/// \file workload.h
/// \brief Scripted multi-transaction workloads for the model checker.
///
/// A `WorkloadSpec` is a small, fixed script: 2–4 transactions, each a
/// sequence of protocol operations against the Figure-1/Figure-7 fixture
/// (whose robots share effectors — the non-disjoint case the paper's
/// protocol exists for).  A `WorkloadRun` instantiates one complete fresh
/// stack — fixture, lock graph, lock manager, transaction manager,
/// protocol — and compiles the script into per-transaction thread bodies
/// for the `DetScheduler`.  The explorer re-runs a `WorkloadRun` from
/// scratch for every schedule it explores (stateless model checking).
///
/// The runner records the *logical data operations* of the execution (one
/// `proto::HistoryOp` per successful lock call, in execution order — the
/// cooperative scheduler makes that order well defined) so the oracles can
/// decide conflict-serializability of the committed schedule, and keeps
/// finished `Transaction` objects alive so the cache-coherence oracle can
/// audit their lock caches *after* commit (the window where a dropped
/// invalidation leaves stale slots behind).

#ifndef CODLOCK_MC_WORKLOAD_H_
#define CODLOCK_MC_WORKLOAD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "authz/authz.h"
#include "lock/lock_manager.h"
#include "proto/co_protocol.h"
#include "proto/validator.h"
#include "sim/fixtures.h"
#include "txn/txn_manager.h"

namespace codlock::mc {

/// \brief One scripted protocol operation.
struct OpSpec {
  enum class Kind : uint8_t {
    kLockRobot,     ///< Lock a robot of cell "c1" by key (access path)
    kLockEffector,  ///< Lock a shared effector object by key (side entry)
    kLockRelation,  ///< Lock the "effectors" relation singleton
    kCommit,        ///< Commit the transaction
  };
  Kind kind = Kind::kCommit;
  std::string key;  ///< robot/effector key for the lock kinds
  lock::LockMode mode = lock::LockMode::kS;

  static OpSpec LockRobot(std::string key, lock::LockMode mode) {
    return OpSpec{Kind::kLockRobot, std::move(key), mode};
  }
  static OpSpec LockEffector(std::string key, lock::LockMode mode) {
    return OpSpec{Kind::kLockEffector, std::move(key), mode};
  }
  static OpSpec LockRelation(lock::LockMode mode) {
    return OpSpec{Kind::kLockRelation, {}, mode};
  }
  static OpSpec Commit() { return OpSpec{Kind::kCommit, {}, lock::LockMode::kNL}; }
};

/// \brief One scripted transaction.
struct TxnSpec {
  authz::UserId user = 1;
  bool can_modify_cells = true;
  bool can_modify_effectors = false;
  std::vector<OpSpec> ops;  ///< last op should be kCommit
};

/// \brief A complete scripted workload.
struct WorkloadSpec {
  std::string name;
  std::vector<TxnSpec> txns;
};

/// Two robot writers sharing effector e2 (Q2 ∥ Q3 of Figure 7): the
/// smallest non-disjoint workload; exercises rule 4′ and both propagation
/// directions.
WorkloadSpec SharedEffectorWorkload();

/// The §4.4 side-entry scenario, three transactions: a robot writer
/// (implicit S on its effectors), a from-the-side effector writer
/// (explicit X on the shared entry point) and a relation-level reader
/// (S on relation "effectors", downward-propagating onto every entry
/// point).  The implicit/explicit lock collisions are exactly what the
/// visibility oracle checks.
WorkloadSpec SideEntryWorkload();

/// Two transactions acquiring robots r1/r2 in opposite orders — the
/// canonical deadlock; every deadlock policy must terminate it.
WorkloadSpec CrossDeadlockWorkload();

/// All of the above (CLI convenience).
std::vector<WorkloadSpec> AllWorkloads();

/// \brief Per-execution knobs (the explorer crosses these).
struct RunOptions {
  lock::DeadlockPolicy policy = lock::DeadlockPolicy::kDetect;
  bool use_txn_cache = true;
  bool use_rule4_prime = true;
};

/// \brief One fresh instantiation of the full stack plus the compiled
/// script.  See file comment.
class WorkloadRun {
 public:
  enum class TxnOutcome : uint8_t { kRunning, kCommitted, kAborted };

  WorkloadRun(const WorkloadSpec& spec, const RunOptions& opts);

  /// One body per scripted transaction, for `DetScheduler::Launch`.  Each
  /// body runs its ops in order, calling `yield` between consecutive ops
  /// (the operation-boundary scheduling point); a failed op aborts the
  /// transaction and ends the body.
  std::vector<std::function<void()>> MakeBodies(std::function<void()> yield);

  int num_txns() const { return static_cast<int>(txns_.size()); }
  txn::Transaction* txn(int i) { return txns_[i]; }
  TxnOutcome outcome(int i) const { return outcomes_[i]; }

  const logra::LockGraph& graph() const { return graph_; }
  const nf2::InstanceStore& store() const { return *fixture_.store; }
  lock::LockManager& lock_manager() { return lm_; }
  const lock::LockManager& lock_manager() const { return lm_; }
  const RunOptions& options() const { return opts_; }

  /// Committed transaction ids (stable once the run is quiescent).
  std::unordered_set<lock::TxnId> CommittedIds() const;

  /// The logical history so far.  Caller must be quiescent (controller
  /// between steps); the vector is appended to only by the single running
  /// controlled thread.
  std::vector<proto::HistoryOp> History() const;

 private:
  void RunTxn(int i, const std::function<void()>& yield);
  Result<proto::LockTarget> TargetFor(const OpSpec& op);
  /// Executes one op; returns false when the transaction is finished
  /// (committed, or aborted after a failed lock).
  bool ExecOp(int i, const OpSpec& op);

  WorkloadSpec spec_;
  RunOptions opts_;
  sim::CellsFixture fixture_;
  logra::LockGraph graph_;
  lock::LockManager lm_;
  txn::TxnManager tm_;
  authz::AuthorizationManager authz_;
  std::unique_ptr<proto::ComplexObjectProtocol> proto_;
  std::vector<txn::Transaction*> txns_;
  std::vector<TxnOutcome> outcomes_;

  mutable std::mutex history_mu_;
  std::vector<proto::HistoryOp> history_;
};

}  // namespace codlock::mc

#endif  // CODLOCK_MC_WORKLOAD_H_
