/// \file key_index.h
/// \brief Ordered key index with action-oriented latches and next-key
/// locking — the §5 future-work item "the integration of indexes into the
/// proposed technique", combined with "a solution of the phantom problem"
/// at the predicate level.
///
/// Two separate mechanisms, exactly as the paper distinguishes them (§1:
/// "action-oriented locks, e.g. on indexes [BaSc77], are not addressed" by
/// transaction locking):
///
///  * **Latches** — every structure operation (lookup, scan, insert,
///    remove) takes a short reader/writer latch for the duration of the
///    operation only.  Latches protect the index's physical integrity and
///    are never held across user waits.
///
///  * **Key / next-key transaction locks** — index entries are instances
///    of the relation's *index node* in the lock graph (Fig. 2).  A range
///    scan S-locks every entry in the range **plus the next entry after
///    it**; an insert X-locks the new key **and the next existing entry**.
///    The insert's next-key lock collides with any scanner whose range
///    covers the gap, so phantoms cannot appear inside a scanned range —
///    classic key-value locking.
///
/// The end-of-index gap is protected by a reserved +∞ sentinel entry.

#ifndef CODLOCK_IDX_KEY_INDEX_H_
#define CODLOCK_IDX_KEY_INDEX_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "lock/lock_manager.h"
#include "logra/lock_graph.h"
#include "nf2/store.h"
#include "txn/txn_manager.h"
#include "util/result.h"

namespace codlock::idx {

/// \brief Ordered (key → object) index of one relation.
class OrderedKeyIndex {
 public:
  /// Creates an empty index for \p rel, locking entries as instances of
  /// the lock graph's index node.
  OrderedKeyIndex(const logra::LockGraph* graph, lock::LockManager* lm,
                  nf2::RelationId rel)
      : graph_(graph),
        lm_(lm),
        relation_(rel),
        index_node_(graph->IndexNode(rel)) {}

  OrderedKeyIndex(const OrderedKeyIndex&) = delete;
  OrderedKeyIndex& operator=(const OrderedKeyIndex&) = delete;

  /// Bulk-loads the index from the current store contents (no locks; run
  /// before the workload, like a CREATE INDEX under an exclusive schema
  /// lock).
  Status BuildFromStore(const nf2::InstanceStore& store);

  /// Point lookup: S- or X-locks the entry (mode per the access kind),
  /// then returns the object id.  Missing keys lock the *gap* (next key),
  /// so a repeated negative lookup stays negative (no phantom insert).
  Result<nf2::ObjectId> Lookup(txn::Transaction& txn, const std::string& key,
                               lock::LockMode mode);

  /// Range scan over [lo, hi]: S/X-locks every entry in the range plus the
  /// next entry beyond \p hi, then returns the entries.
  Result<std::vector<std::pair<std::string, nf2::ObjectId>>> RangeScan(
      txn::Transaction& txn, const std::string& lo, const std::string& hi,
      lock::LockMode mode);

  /// Inserts (key → object): X-locks the new key and the next existing
  /// entry (the gap a scanner may have protected), then updates the
  /// structure under the writer latch.
  Status Insert(txn::Transaction& txn, const std::string& key,
                nf2::ObjectId object);

  /// Removes a key: X-locks the entry and its successor (the delete
  /// merges two gaps), then updates the structure.
  Status Remove(txn::Transaction& txn, const std::string& key);

  /// Number of entries (excluding the +∞ sentinel).
  size_t size() const;

  /// Lock resource of \p key's index entry (tests, diagnostics).
  lock::ResourceId ResourceFor(const std::string& key) const {
    return {index_node_, KeyInstance(key)};
  }
  /// Lock resource of the +∞ sentinel (end-of-index gap).
  lock::ResourceId InfinityResource() const {
    return {index_node_, kInfinityInstance};
  }

  nf2::RelationId relation() const { return relation_; }

 private:
  /// Instance id of a key's lock resource (stable hash; the +∞ sentinel
  /// id is reserved).
  static uint64_t KeyInstance(const std::string& key);
  static constexpr uint64_t kInfinityInstance = ~0ULL;

  /// Lock resource of the first entry strictly greater than \p key, or
  /// the +∞ sentinel.  Reads the structure under the reader latch.
  lock::ResourceId NextKeyResource(const std::string& key) const;

  Status LockEntry(txn::Transaction& txn, lock::ResourceId res,
                   lock::LockMode mode);

  const logra::LockGraph* graph_;
  lock::LockManager* lm_;
  nf2::RelationId relation_;
  logra::NodeId index_node_;

  /// Action-oriented latch [BaSc77]: short, operation-scoped.
  mutable std::shared_mutex latch_;
  std::map<std::string, nf2::ObjectId> entries_;
};

}  // namespace codlock::idx

#endif  // CODLOCK_IDX_KEY_INDEX_H_
