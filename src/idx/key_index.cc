#include "idx/key_index.h"

namespace codlock::idx {

using lock::LockMode;

uint64_t OrderedKeyIndex::KeyInstance(const std::string& key) {
  // FNV-1a; the +∞ sentinel id is reserved (a collision would merely make
  // one key share the end-of-index lock — conservative, never unsound).
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  if (h == kInfinityInstance) h = 0xC0D10C4ULL;
  return h;
}

Status OrderedKeyIndex::BuildFromStore(const nf2::InstanceStore& store) {
  std::unique_lock latch(latch_);
  entries_.clear();
  for (nf2::ObjectId id : store.ObjectsOf(relation_)) {
    Result<const nf2::Object*> obj = store.Get(relation_, id);
    if (!obj.ok()) continue;
    if ((*obj)->key.empty()) {
      return Status::FailedPrecondition(
          "relation has keyless objects; cannot build a key index");
    }
    entries_[(*obj)->key] = id;
  }
  return Status::OK();
}

Status OrderedKeyIndex::LockEntry(txn::Transaction& txn,
                                  lock::ResourceId res, LockMode mode) {
  // Key locks live below the index node, which carries the matching
  // intention (and the segment/database chain above it — rules 1/2).
  lock::AcquireOptions opts;
  opts.duration = txn.lock_duration();
  const LockMode intention = lock::IntentionFor(mode);
  // Root-to-leaf: database, segment, index node, entry.
  std::vector<logra::NodeId> chain = graph_->SuperunitChain(index_node_);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    CODLOCK_RETURN_IF_ERROR(
        lm_->Acquire(txn.id(), {*it, 0}, intention, opts));
  }
  CODLOCK_RETURN_IF_ERROR(
      lm_->Acquire(txn.id(), {index_node_, 0}, intention, opts));
  return lm_->Acquire(txn.id(), res, mode, opts);
}

lock::ResourceId OrderedKeyIndex::NextKeyResource(
    const std::string& key) const {
  std::shared_lock latch(latch_);
  auto it = entries_.upper_bound(key);
  if (it == entries_.end()) return InfinityResource();
  return {index_node_, KeyInstance(it->first)};
}

Result<nf2::ObjectId> OrderedKeyIndex::Lookup(txn::Transaction& txn,
                                              const std::string& key,
                                              LockMode mode) {
  if (mode != LockMode::kS && mode != LockMode::kX) {
    return Status::InvalidArgument("index lookup needs S or X");
  }
  // Lock first, then read the structure: the entry cannot disappear
  // between lock and read because removal X-locks it too.
  bool exists;
  {
    std::shared_lock latch(latch_);
    exists = entries_.contains(key);
  }
  if (exists) {
    CODLOCK_RETURN_IF_ERROR(LockEntry(txn, ResourceFor(key), mode));
  } else {
    // Negative lookup: protect the gap so the answer stays "not found"
    // for the rest of the transaction.
    CODLOCK_RETURN_IF_ERROR(LockEntry(txn, NextKeyResource(key), mode));
  }
  std::shared_lock latch(latch_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("key '" + key + "' not in index");
  }
  return it->second;
}

Result<std::vector<std::pair<std::string, nf2::ObjectId>>>
OrderedKeyIndex::RangeScan(txn::Transaction& txn, const std::string& lo,
                           const std::string& hi, LockMode mode) {
  if (mode != LockMode::kS && mode != LockMode::kX) {
    return Status::InvalidArgument("index scan needs S or X");
  }
  if (hi < lo) {
    return Status::InvalidArgument("range scan with hi < lo");
  }
  // Snapshot the keys in range + the next key under the latch, then take
  // the transaction locks (latches are never held across lock waits).
  std::vector<std::pair<std::string, nf2::ObjectId>> snapshot;
  lock::ResourceId next = InfinityResource();
  {
    std::shared_lock latch(latch_);
    for (auto it = entries_.lower_bound(lo); it != entries_.end(); ++it) {
      if (it->first > hi) {
        next = {index_node_, KeyInstance(it->first)};
        break;
      }
      snapshot.emplace_back(it->first, it->second);
    }
  }
  for (const auto& [key, obj] : snapshot) {
    CODLOCK_RETURN_IF_ERROR(LockEntry(txn, ResourceFor(key), mode));
  }
  // Next-key lock: the gap beyond `hi` (or end of index).  An insert into
  // the scanned range would need exactly this lock in X.
  CODLOCK_RETURN_IF_ERROR(LockEntry(txn, next, mode));

  // Re-read under the latch: entries may have been inserted before our
  // first lock was granted; the locks now freeze the range.
  std::vector<std::pair<std::string, nf2::ObjectId>> out;
  {
    std::shared_lock latch(latch_);
    for (auto it = entries_.lower_bound(lo); it != entries_.end(); ++it) {
      if (it->first > hi) break;
      out.emplace_back(it->first, it->second);
    }
  }
  return out;
}

Status OrderedKeyIndex::Insert(txn::Transaction& txn, const std::string& key,
                               nf2::ObjectId object) {
  {
    std::shared_lock latch(latch_);
    if (entries_.contains(key)) {
      return Status::AlreadyExists("key '" + key + "' already indexed");
    }
  }
  // X on the new key and on the successor: a scanner protecting the gap
  // holds S on that successor, so the phantom insert blocks.
  CODLOCK_RETURN_IF_ERROR(LockEntry(txn, ResourceFor(key), LockMode::kX));
  CODLOCK_RETURN_IF_ERROR(LockEntry(txn, NextKeyResource(key), LockMode::kX));
  std::unique_lock latch(latch_);
  auto [it, inserted] = entries_.emplace(key, object);
  if (!inserted) {
    return Status::AlreadyExists("key '" + key +
                                 "' was indexed concurrently");
  }
  return Status::OK();
}

Status OrderedKeyIndex::Remove(txn::Transaction& txn,
                               const std::string& key) {
  {
    std::shared_lock latch(latch_);
    if (!entries_.contains(key)) {
      return Status::NotFound("key '" + key + "' not in index");
    }
  }
  CODLOCK_RETURN_IF_ERROR(LockEntry(txn, ResourceFor(key), LockMode::kX));
  CODLOCK_RETURN_IF_ERROR(LockEntry(txn, NextKeyResource(key), LockMode::kX));
  std::unique_lock latch(latch_);
  entries_.erase(key);
  return Status::OK();
}

size_t OrderedKeyIndex::size() const {
  std::shared_lock latch(latch_);
  return entries_.size();
}

}  // namespace codlock::idx
