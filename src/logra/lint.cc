#include "logra/lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace codlock::logra {

namespace {

/// DFS colors for the cycle check.
enum class Color : uint8_t { kWhite, kGray, kBlack };

class Linter {
 public:
  Linter(const LockGraph& graph, const nf2::Catalog& catalog)
      : graph_(graph), catalog_(catalog) {}

  LintReport Run() {
    CheckNodes();
    CheckSolidEdges();
    CheckDashedEdges();
    CheckRegisteredRelations();
    CheckAcyclic();
    CheckEntryPointReachability();
    report_.nodes_checked = graph_.num_nodes();
    report_.relations_checked = catalog_.num_relations();
    return std::move(report_);
  }

 private:
  bool InRange(NodeId id) const { return id < graph_.num_nodes(); }

  std::string Name(NodeId id) const {
    if (!InRange(id)) return "node#" + std::to_string(id) + " (out of range)";
    return graph_.NodeName(id);
  }

  void Add(LintCode code, NodeId node, std::string message) {
    report_.findings.push_back(LintFinding{code, node, std::move(message)});
  }

  /// Invariant 1: derivation rules of §4.3 and the §4.2 hierarchy kinds.
  void CheckNodes() {
    for (const Node& n : graph_.nodes()) {
      switch (n.level) {
        case NodeLevel::kDatabase:
        case NodeLevel::kSegment:
          if (n.kind != NodeKind::kHeLU) {
            Add(LintCode::kDerivationRule, n.id,
                Name(n.id) + ": database/segment must be a HeLU (§4.2)");
          }
          break;
        case NodeLevel::kRelation:
        case NodeLevel::kIndex:
          if (n.kind != NodeKind::kHoLU) {
            Add(LintCode::kDerivationRule, n.id,
                Name(n.id) + ": relation/index must be a HoLU (§4.2)");
          }
          break;
        case NodeLevel::kComplexObject:
        case NodeLevel::kAttribute:
          CheckAttrNode(n);
          break;
      }
    }
  }

  void CheckAttrNode(const Node& n) {
    if (n.attr == nf2::kInvalidAttr || n.attr >= catalog_.num_attrs()) {
      Add(LintCode::kDerivationRule, n.id,
          Name(n.id) + ": attribute node without a backing schema attribute");
      return;
    }
    const nf2::AttrDef& def = catalog_.attr(n.attr);
    switch (def.kind) {
      case nf2::AttrKind::kSet:
      case nf2::AttrKind::kList:
        if (n.kind != NodeKind::kHoLU) {
          Add(LintCode::kDerivationRule, n.id,
              Name(n.id) + ": set/list attribute \"" + def.name +
                  "\" must derive a HoLU (§4.3 rules 1, 2)");
        }
        break;
      case nf2::AttrKind::kTuple:
        if (n.kind != NodeKind::kHeLU) {
          Add(LintCode::kDerivationRule, n.id,
              Name(n.id) + ": tuple attribute \"" + def.name +
                  "\" must derive a HeLU (§4.3 rule 3)");
        }
        break;
      case nf2::AttrKind::kRef:
        if (n.kind != NodeKind::kBLU) {
          Add(LintCode::kDerivationRule, n.id,
              Name(n.id) + ": reference attribute \"" + def.name +
                  "\" must derive a BLU (§4.3)");
        }
        if (n.dashed_target == kInvalidNode) {
          Add(LintCode::kDanglingRef, n.id,
              Name(n.id) + ": reference attribute \"" + def.name +
                  "\" has no dashed edge into the referenced relation");
        }
        break;
      default:  // atomic
        if (n.kind != NodeKind::kBLU) {
          Add(LintCode::kDerivationRule, n.id,
              Name(n.id) + ": atomic attribute \"" + def.name +
                  "\" must derive a BLU (§4.3 rule 4)");
        }
        if (n.dashed_target != kInvalidNode) {
          Add(LintCode::kDerivationRule, n.id,
              Name(n.id) + ": atomic attribute \"" + def.name +
                  "\" must not carry a dashed reference edge");
        }
        break;
    }
  }

  /// Invariant 5 (plus bookkeeping): solid edges stay inside one unit and
  /// the System R hierarchy; both edge endpoints agree; BLUs are leaves.
  void CheckSolidEdges() {
    for (const Node& parent : graph_.nodes()) {
      if (parent.kind == NodeKind::kBLU && !parent.solid_children.empty()) {
        Add(LintCode::kBluHasChildren, parent.id,
            Name(parent.id) + ": a BLU is a leaf but has " +
                std::to_string(parent.solid_children.size()) +
                " solid children");
      }
      for (NodeId child_id : parent.solid_children) {
        if (!InRange(child_id)) {
          Add(LintCode::kParentChildMismatch, parent.id,
              Name(parent.id) + ": solid child " + Name(child_id));
          continue;
        }
        const Node& child = graph_.node(child_id);
        if (child.solid_parent != parent.id) {
          Add(LintCode::kParentChildMismatch, child_id,
              "solid edge " + Name(parent.id) + " -> " + Name(child_id) +
                  " is not mirrored by the child's solid_parent");
        }
        CheckSolidEdgeLegal(parent, child);
      }
      if (parent.solid_parent != kInvalidNode) {
        if (!InRange(parent.solid_parent)) {
          Add(LintCode::kParentChildMismatch, parent.id,
              Name(parent.id) + ": solid parent out of range");
        } else {
          const auto& siblings = graph_.node(parent.solid_parent).solid_children;
          if (std::find(siblings.begin(), siblings.end(), parent.id) ==
              siblings.end()) {
            Add(LintCode::kParentChildMismatch, parent.id,
                Name(parent.id) + ": solid parent " +
                    Name(parent.solid_parent) +
                    " does not list it as a child");
          }
        }
      } else if (parent.level != NodeLevel::kDatabase) {
        Add(LintCode::kParentChildMismatch, parent.id,
            Name(parent.id) + ": only database nodes may lack a solid parent");
      }
    }
  }

  void CheckSolidEdgeLegal(const Node& parent, const Node& child) {
    bool legal = false;
    switch (parent.level) {
      case NodeLevel::kDatabase:
        legal = child.level == NodeLevel::kSegment;
        break;
      case NodeLevel::kSegment:
        legal = child.level == NodeLevel::kRelation ||
                child.level == NodeLevel::kIndex;
        break;
      case NodeLevel::kRelation:
        legal = child.level == NodeLevel::kComplexObject &&
                child.relation == parent.relation;
        break;
      case NodeLevel::kIndex:
        legal = false;  // index entries are instances, not schema nodes
        break;
      case NodeLevel::kComplexObject:
      case NodeLevel::kAttribute:
        // Containment never leaves the relation's schema tree: a solid
        // edge into another relation's nodes (or into an entry point)
        // crosses a unit boundary — only dashed edges may do that.
        legal = child.level == NodeLevel::kAttribute &&
                child.relation == parent.relation;
        break;
    }
    if (!legal) {
      Add(LintCode::kSolidCrossUnit, parent.id,
          "solid edge " + Name(parent.id) + " -> " + Name(child.id) +
              " crosses a unit boundary (§4.4.1: only dashed edges connect "
              "units)");
    }
  }

  /// Invariants 3 and 4: dashed edges land exactly on registered inner-unit
  /// entry points, with consistent back-edges.
  void CheckDashedEdges() {
    for (const Node& n : graph_.nodes()) {
      if (n.dashed_target != kInvalidNode) CheckRefBlu(n);
      for (NodeId ref : n.dashed_in) {
        if (!InRange(ref) || graph_.node(ref).dashed_target != n.id) {
          Add(LintCode::kParentChildMismatch, n.id,
              Name(n.id) + ": dashed back-edge from " + Name(ref) +
                  " is not mirrored by that node's dashed_target");
        }
      }
    }
  }

  void CheckRefBlu(const Node& n) {
    if (!InRange(n.dashed_target)) {
      Add(LintCode::kDanglingRef, n.id,
          Name(n.id) + ": dashed edge dangles at " + Name(n.dashed_target));
      return;
    }
    const Node& target = graph_.node(n.dashed_target);
    if (target.level != NodeLevel::kComplexObject) {
      Add(LintCode::kMultipleEntryPoints, n.id,
          "dashed edge " + Name(n.id) + " -> " + Name(target.id) +
              " enters a unit at a non-root node: the inner unit would have "
              "a second entry point (§4.4.1)");
      return;
    }
    // The target must be the *registered* entry of the declared relation.
    nf2::RelationId declared = nf2::kInvalidRelation;
    if (n.attr != nf2::kInvalidAttr && n.attr < catalog_.num_attrs() &&
        catalog_.attr(n.attr).kind == nf2::AttrKind::kRef) {
      declared = catalog_.attr(n.attr).ref_target;
    }
    if (declared != nf2::kInvalidRelation &&
        (declared >= catalog_.num_relations() ||
         graph_.ComplexObjectNode(declared) != target.id)) {
      Add(LintCode::kDanglingRef, n.id,
          Name(n.id) + ": dashed edge targets " + Name(target.id) +
              ", not the registered entry point of the declared relation");
    }
  }

  /// Every relation's registered node triple is wired into the hierarchy.
  void CheckRegisteredRelations() {
    for (nf2::RelationId rel = 0; rel < catalog_.num_relations(); ++rel) {
      NodeId rel_node = graph_.RelationNode(rel);
      NodeId co = graph_.ComplexObjectNode(rel);
      if (InRange(co) && InRange(rel_node) &&
          graph_.node(co).solid_parent != rel_node) {
        Add(LintCode::kSolidCrossUnit, co,
            Name(co) + ": registered entry point is not contained in " +
                Name(rel_node));
      }
    }
  }

  /// Invariant 2: the solid+dashed graph is a DAG.
  void CheckAcyclic() {
    std::vector<Color> color(graph_.num_nodes(), Color::kWhite);
    struct Frame {
      NodeId node;
      size_t next_edge;
    };
    for (NodeId root = 0; root < graph_.num_nodes(); ++root) {
      if (color[root] != Color::kWhite) continue;
      std::vector<Frame> stack{{root, 0}};
      color[root] = Color::kGray;
      while (!stack.empty()) {
        Frame& frame = stack.back();
        std::vector<NodeId> edges = EdgesOf(frame.node);
        if (frame.next_edge >= edges.size()) {
          color[frame.node] = Color::kBlack;
          stack.pop_back();
          continue;
        }
        NodeId next = edges[frame.next_edge++];
        if (color[next] == Color::kGray) {
          // Back edge: report the cycle once and stop — one broken edge
          // tends to produce many overlapping cycles.
          std::ostringstream os;
          os << "lock graph is cyclic: ";
          bool in_cycle = false;
          for (const Frame& f : stack) {
            if (f.node == next) in_cycle = true;
            if (in_cycle) os << Name(f.node) << " -> ";
          }
          os << Name(next);
          Add(LintCode::kCycle, next, os.str());
          return;
        }
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back({next, 0});
        }
      }
    }
  }

  /// Every inner-unit entry point must be reachable from an outer-unit
  /// root: BFS from the database nodes over solid containment and dashed
  /// reference edges (the paths implicit propagation travels).
  void CheckEntryPointReachability() {
    std::vector<bool> reached(graph_.num_nodes(), false);
    std::vector<NodeId> frontier;
    for (const Node& n : graph_.nodes()) {
      if (n.level == NodeLevel::kDatabase) {
        reached[n.id] = true;
        frontier.push_back(n.id);
      }
    }
    while (!frontier.empty()) {
      NodeId id = frontier.back();
      frontier.pop_back();
      for (NodeId next : EdgesOf(id)) {
        if (!reached[next]) {
          reached[next] = true;
          frontier.push_back(next);
        }
      }
    }
    for (const Node& n : graph_.nodes()) {
      if (n.level == NodeLevel::kComplexObject && !reached[n.id]) {
        Add(LintCode::kUnreachableEntryPoint, n.id,
            Name(n.id) +
                ": entry point unreachable from every database root — "
                "implicit locks can never arrive here (§4.3 rule 4, "
                "§4.4.2)");
      }
    }
  }

  std::vector<NodeId> EdgesOf(NodeId id) const {
    std::vector<NodeId> edges;
    const Node& n = graph_.node(id);
    for (NodeId child : n.solid_children) {
      if (InRange(child)) edges.push_back(child);
    }
    if (n.dashed_target != kInvalidNode && InRange(n.dashed_target)) {
      edges.push_back(n.dashed_target);
    }
    return edges;
  }

  const LockGraph& graph_;
  const nf2::Catalog& catalog_;
  LintReport report_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view LintCodeName(LintCode code) {
  switch (code) {
    case LintCode::kDerivationRule:
      return "derivation-rule";
    case LintCode::kCycle:
      return "cycle";
    case LintCode::kMultipleEntryPoints:
      return "multiple-entry-points";
    case LintCode::kDanglingRef:
      return "dangling-ref";
    case LintCode::kSolidCrossUnit:
      return "solid-cross-unit";
    case LintCode::kParentChildMismatch:
      return "parent-child-mismatch";
    case LintCode::kBluHasChildren:
      return "blu-has-children";
    case LintCode::kUnreachableEntryPoint:
      return "unreachable-entry-point";
  }
  return "?";
}

std::string LintReport::ToJson() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok() ? "true" : "false")
     << ",\"nodes\":" << nodes_checked
     << ",\"relations\":" << relations_checked << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    if (i > 0) os << ',';
    os << "{\"code\":\"" << LintCodeName(f.code) << "\",\"node\":";
    if (f.node == kInvalidNode) {
      os << "null";
    } else {
      os << f.node;
    }
    os << ",\"message\":\"" << JsonEscape(f.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string LintReport::ToString() const {
  std::ostringstream os;
  if (ok()) {
    os << "lock graph OK (" << nodes_checked << " nodes, "
       << relations_checked << " relations checked)\n";
    return os.str();
  }
  os << findings.size() << " lock-graph violation(s):\n";
  for (const LintFinding& f : findings) {
    os << "  [" << LintCodeName(f.code) << "] " << f.message << '\n';
  }
  return os.str();
}

LintReport LintLockGraph(const LockGraph& graph, const nf2::Catalog& catalog) {
  return Linter(graph, catalog).Run();
}

}  // namespace codlock::logra
