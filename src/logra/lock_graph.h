/// \file lock_graph.h
/// \brief Lock graphs for disjoint and non-disjoint complex objects.
///
/// Implements §4.2–§4.4.1 of the paper:
///
///  * the **general lock graph** (Fig. 4) defines three node kinds —
///    *basic lockable units* (BLU), *homogeneous lockable units* (HoLU:
///    sets/lists) and *heterogeneous lockable units* (HeLU: complex
///    tuples);
///  * an **object-specific lock graph** (Fig. 5) is derived per relation
///    from the general graph, catalog information and the derivation rules
///    of §4.3 (list→HoLU, set→HoLU, tuple→HeLU, atomic→BLU; a reference
///    BLU carries a *dashed* edge into the referenced relation's graph);
///  * the **unit decomposition** of §4.4.1 (Fig. 6): outer unit, inner
///    units with *entry points*, *immediate parents* (solid edges only)
///    and *superunits* (a unit's root plus its immediate-parent chain up
///    to and including the database node).
///
/// One `LockGraph` covers a whole catalog; the object-specific lock graph
/// of a relation is the subgraph reachable from the database node through
/// that relation (plus the dashed closure into shared relations).  Because
/// schema graphs are static, the builder runs once at DDL time — the
/// paper's "Construction of Object-Specific Lock Graphs" phase (§4.6,
/// advantage 6a).
///
/// Lockable *resources* are instances of graph nodes: singleton granules
/// (database/segment/relation) use instance id 0; nodes inside complex
/// objects use the instance id of the corresponding value node; a shared
/// complex object's entry point uses the root instance id of the target
/// object, independent of the path used to reach it.

#ifndef CODLOCK_LOGRA_LOCK_GRAPH_H_
#define CODLOCK_LOGRA_LOCK_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lock/resource.h"
#include "nf2/schema.h"
#include "nf2/store.h"
#include "util/result.h"

namespace codlock::logra {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Node kinds of the general lock graph (Fig. 4).
enum class NodeKind : uint8_t {
  kBLU,   ///< basic lockable unit (atomic attribute or reference)
  kHoLU,  ///< homogeneous lockable unit (set, list, relation)
  kHeLU,  ///< heterogeneous lockable unit (tuple, segment, database)
};

/// Structural role of a node (diagnostics and instance mapping).
enum class NodeLevel : uint8_t {
  kDatabase,
  kSegment,
  kRelation,
  kIndex,          ///< key index of a relation (Fig. 2: "Indexes")
  kComplexObject,  ///< root tuple of a relation's objects
  kAttribute,      ///< any attribute node below the complex-object root
};

std::string_view NodeKindName(NodeKind kind);

/// \brief One lockable unit in the (catalog-wide) lock graph.
struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kBLU;
  NodeLevel level = NodeLevel::kAttribute;
  std::string label;

  nf2::DatabaseId database = 0;
  nf2::SegmentId segment = 0;
  nf2::RelationId relation = nf2::kInvalidRelation;
  /// Backing schema attribute (kInvalidAttr for db/seg/rel nodes).
  nf2::AttrId attr = nf2::kInvalidAttr;

  /// Immediate parent: "the parent node from which the dependent node can
  /// be reached exclusively by following a single solid line" (§4.4.1).
  NodeId solid_parent = kInvalidNode;
  std::vector<NodeId> solid_children;

  /// Ref BLUs only: the entry point (complex-object node) of the
  /// referenced relation — a *dashed* edge, i.e. a unit boundary.
  NodeId dashed_target = kInvalidNode;
  /// Entry points only: ref BLU nodes referencing this node.
  std::vector<NodeId> dashed_in;

  bool is_ref_blu() const { return dashed_target != kInvalidNode; }
};

/// \brief The catalog-wide lock graph with unit decomposition.
class LockGraph {
 public:
  /// Builds the graph for every database/segment/relation in \p catalog
  /// using the derivation rules of §4.3.
  static LockGraph Build(const nf2::Catalog& catalog);

  const Node& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  NodeId DatabaseNode(nf2::DatabaseId db) const { return db_nodes_.at(db); }
  NodeId SegmentNode(nf2::SegmentId seg) const { return seg_nodes_.at(seg); }
  NodeId RelationNode(nf2::RelationId rel) const { return rel_nodes_.at(rel); }
  /// The HeLU representing one complex object of \p rel (Fig. 5's
  /// "HeLU (C.O. ...)" directly under the relation HoLU).
  NodeId ComplexObjectNode(nf2::RelationId rel) const {
    return co_nodes_.at(rel);
  }
  /// Node backing schema attribute \p attr (the relation's root attr maps
  /// to the complex-object node).
  NodeId NodeForAttr(nf2::AttrId attr) const { return attr_nodes_.at(attr); }

  /// The key-index node of \p rel (Fig. 2's "Indexes", a sibling of the
  /// relation under its segment).  Index *entries* are locked as instances
  /// of this node by `idx::OrderedKeyIndex` (next-key locking); index
  /// *structure* is protected by short action-oriented latches [BaSc77],
  /// not by these transaction locks.
  NodeId IndexNode(nf2::RelationId rel) const { return idx_nodes_.at(rel); }

  /// True if \p id is the root of (potential) inner units: the
  /// complex-object node of a relation referenced from somewhere.
  bool IsEntryPoint(NodeId id) const;

  /// Immediate-parent chain of \p id, nearest first, up to and including
  /// the database node.  For an entry point this is exactly the node set
  /// implicit upward propagation must lock (minus the entry point itself):
  /// its relation, segment and database nodes (§4.4.1: superunit).
  std::vector<NodeId> SuperunitChain(NodeId id) const;

  /// Ref-BLU nodes in the subtree of \p id *within the same unit*
  /// (descending solid edges only).  Their dashed targets are the entry
  /// points of the lower (dependent) inner units reachable via \p id —
  /// the schema-level footprint of implicit downward propagation.
  std::vector<NodeId> RefBlusUnder(NodeId id) const;

  /// Distinct relations whose entry points are reachable from \p id via
  /// one dashed hop (transitively closed over nested sharing).
  std::vector<nf2::RelationId> ReachableSharedRelations(NodeId id) const;

  /// Nodes of the object-specific lock graph of \p rel: the database,
  /// segment and relation chain, the relation's own subtree, and the
  /// dashed closure into shared relations (Fig. 5 for "cells").
  std::vector<NodeId> ObjectSpecificNodes(nf2::RelationId rel) const;

  /// Lock resource for the singleton instance of a database/segment/
  /// relation node.
  lock::ResourceId SingletonResource(NodeId node) const {
    return lock::ResourceId{node, 0};
  }

  /// Lock resource for instance \p iid of node \p node.
  lock::ResourceId Resource(NodeId node, nf2::Iid iid) const {
    return lock::ResourceId{node, iid};
  }

  /// GraphViz rendering of the object-specific lock graph of \p rel
  /// (solid containment edges, dashed reference edges).
  std::string ToDot(nf2::RelationId rel, const nf2::Catalog& catalog) const;

  /// Human-readable node name ("HoLU(robots)", "HeLU(C.O. effectors)", ...).
  std::string NodeName(NodeId id) const;

  /// Direct mutable access to a node.  `Build` output is immutable in
  /// production; this hook exists solely so lint tests can seed structural
  /// violations (cycles, rewired edges) into an otherwise valid graph.
  Node& MutableNodeForTest(NodeId id) { return nodes_[id]; }

 private:
  NodeId AddNode(Node node);
  NodeId BuildAttrSubtree(const nf2::Catalog& catalog, nf2::AttrId attr,
                          NodeId parent, NodeLevel level);

  std::vector<Node> nodes_;
  std::unordered_map<nf2::DatabaseId, NodeId> db_nodes_;
  std::unordered_map<nf2::SegmentId, NodeId> seg_nodes_;
  std::unordered_map<nf2::RelationId, NodeId> rel_nodes_;
  std::unordered_map<nf2::RelationId, NodeId> co_nodes_;
  std::unordered_map<nf2::RelationId, NodeId> idx_nodes_;
  std::unordered_map<nf2::AttrId, NodeId> attr_nodes_;
};

}  // namespace codlock::logra

#endif  // CODLOCK_LOGRA_LOCK_GRAPH_H_
