#include "logra/prove.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "authz/authz.h"

namespace codlock::logra {

using lock::LockMode;

namespace {

constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIS = LockMode::kIS;
constexpr LockMode kIX = LockMode::kIX;
constexpr LockMode kS = LockMode::kS;
constexpr LockMode kSIX = LockMode::kSIX;
constexpr LockMode kX = LockMode::kX;

constexpr std::array<LockMode, lock::kNumModes> kAllModes = {
    kNL, kIS, kIX, kS, kSIX, kX};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ModePair(LockMode a, LockMode b) {
  std::string out;
  out += lock::LockModeName(a);
  out += ", ";
  out += lock::LockModeName(b);
  return out;
}

// ---------------------------------------------------------------------------
// (a) Mode-algebra laws.
// ---------------------------------------------------------------------------

/// Collects at most one violation per law.
class LawChecker {
 public:
  explicit LawChecker(const ModeAlgebra& alg) : alg_(alg) {}

  ProverReport Run() {
    CompatLaws();
    SupLaws();
    IntentionLaws();
    report_.laws_checked = laws_checked_;
    return std::move(report_);
  }

 private:
  void Fail(const char* law, std::string message) {
    ProverFinding f;
    f.check = ProofCheck::kModeAlgebra;
    f.law = law;
    f.message = std::move(message);
    report_.findings.push_back(std::move(f));
  }

  /// Runs one universally quantified law: \p body returns an empty string
  /// when the law holds and the counterexample text otherwise.
  template <typename Fn>
  void Law(const char* law, Fn&& body) {
    ++laws_checked_;
    std::string counterexample = body();
    if (!counterexample.empty()) Fail(law, std::move(counterexample));
  }

  void CompatLaws() {
    Law("compat-nl", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (!alg_.Compatible(kNL, m) || !alg_.Compatible(m, kNL)) {
          return std::string("NL must be compatible with ") +
                 std::string(lock::LockModeName(m));
        }
      }
      return {};
    });
    Law("compat-symmetry", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (alg_.Compatible(a, b) != alg_.Compatible(b, a)) {
            return "Compat(" + ModePair(a, b) + ") != Compat(" +
                   ModePair(b, a) + ")";
          }
        }
      }
      return {};
    });
    Law("compat-x-exclusive", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (m != kNL && alg_.Compatible(kX, m)) {
          return std::string("X must conflict with ") +
                 std::string(lock::LockModeName(m));
        }
      }
      return {};
    });
    // The granting rule the whole hierarchy rests on: a weaker mode can
    // never see conflicts a stronger one does not (so `Covers` implies
    // the held lock is at least as restrictive to others).
    Law("compat-downward-closed", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (!alg_.Leq(a, b)) continue;
          for (LockMode c : kAllModes) {
            if (alg_.Compatible(b, c) && !alg_.Compatible(a, c)) {
              return std::string(lock::LockModeName(a)) + " <= " +
                     std::string(lock::LockModeName(b)) + " but Compat(" +
                     ModePair(b, c) + ") and !Compat(" + ModePair(a, c) + ")";
            }
          }
        }
      }
      return {};
    });
  }

  void SupLaws() {
    Law("sup-identity", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (alg_.Sup(kNL, m) != m || alg_.Sup(m, kNL) != m) {
          return std::string("Sup(NL, ") +
                 std::string(lock::LockModeName(m)) + ") != " +
                 std::string(lock::LockModeName(m));
        }
      }
      return {};
    });
    Law("sup-commutative", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (alg_.Sup(a, b) != alg_.Sup(b, a)) {
            return "Sup(" + ModePair(a, b) + ") != Sup(" + ModePair(b, a) +
                   ")";
          }
        }
      }
      return {};
    });
    Law("sup-idempotent", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (alg_.Sup(m, m) != m) {
          return std::string("Sup(m, m) != m for m = ") +
                 std::string(lock::LockModeName(m));
        }
      }
      return {};
    });
    Law("sup-associative", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          for (LockMode c : kAllModes) {
            if (alg_.Sup(alg_.Sup(a, b), c) != alg_.Sup(a, alg_.Sup(b, c))) {
              return "Sup not associative at (" + ModePair(a, b) + ", " +
                     std::string(lock::LockModeName(c)) + ")";
            }
          }
        }
      }
      return {};
    });
    Law("sup-upper-bound", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          LockMode s = alg_.Sup(a, b);
          if (!alg_.Leq(a, s) || !alg_.Leq(b, s)) {
            return "Sup(" + ModePair(a, b) + ") = " +
                   std::string(lock::LockModeName(s)) +
                   " is not an upper bound";
          }
        }
      }
      return {};
    });
    Law("sup-least", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          LockMode s = alg_.Sup(a, b);
          for (LockMode c : kAllModes) {
            if (alg_.Leq(a, c) && alg_.Leq(b, c) && !alg_.Leq(s, c)) {
              return std::string(lock::LockModeName(c)) +
                     " is an upper bound of {" + ModePair(a, b) +
                     "} below Sup = " + std::string(lock::LockModeName(s));
            }
          }
        }
      }
      return {};
    });
    Law("sup-top-x", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (alg_.Sup(kX, m) != kX || alg_.Sup(m, kX) != kX) {
          return std::string("Sup(X, ") +
                 std::string(lock::LockModeName(m)) + ") != X";
        }
      }
      return {};
    });
    Law("sup-six", [&]() -> std::string {
      if (alg_.Sup(kS, kIX) != kSIX || alg_.Sup(kIX, kS) != kSIX) {
        return std::string("SIX != Sup(S, IX) (got ") +
               std::string(lock::LockModeName(alg_.Sup(kS, kIX))) + ")";
      }
      return {};
    });
  }

  void IntentionLaws() {
    Law("intention-nl", [&]() -> std::string {
      if (alg_.IntentionFor(kNL) != kNL) return "IntentionOf(NL) != NL";
      return {};
    });
    Law("intention-pure", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        LockMode i = alg_.IntentionFor(m);
        if (m != kNL && i != kIS && i != kIX) {
          return std::string("IntentionOf(") +
                 std::string(lock::LockModeName(m)) + ") = " +
                 std::string(lock::LockModeName(i)) +
                 " is not a pure intention mode";
        }
      }
      return {};
    });
    Law("intention-idempotent", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        LockMode i = alg_.IntentionFor(m);
        if (alg_.IntentionFor(i) != i) {
          return std::string("IntentionOf not idempotent at ") +
                 std::string(lock::LockModeName(m));
        }
      }
      return {};
    });
    Law("intention-monotone", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (alg_.Leq(a, b) &&
              !alg_.Leq(alg_.IntentionFor(a), alg_.IntentionFor(b))) {
            return "IntentionOf not monotone over " + ModePair(a, b);
          }
        }
      }
      return {};
    });
    Law("intention-below", [&]() -> std::string {
      for (LockMode m : kAllModes) {
        if (!alg_.Leq(alg_.IntentionFor(m), m)) {
          return std::string("IntentionOf(") +
                 std::string(lock::LockModeName(m)) + ") above its argument";
        }
      }
      return {};
    });
    // The DAG-protocol linchpin: two conflicting accesses must be able to
    // *descend* to their conflict — the conflict is re-detected at the
    // deeper node, so the intention announcements themselves must not
    // block each other.
    Law("intention-conflict-compat", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (!alg_.Compatible(a, b) &&
              !alg_.Compatible(alg_.IntentionFor(a), alg_.IntentionFor(b))) {
            return "conflicting modes (" + ModePair(a, b) +
                   ") have conflicting intention modes";
          }
        }
      }
      return {};
    });
    // A writer's intention must still exclude whole-subtree access modes
    // that the write conflicts with — otherwise an S holder on an ancestor
    // can't see a descendant write coming (IntentionOf(X) = IS breaks
    // exactly this).
    Law("intention-write-preserved", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode acc : {kS, kX}) {
          if (!alg_.Compatible(a, acc) &&
              alg_.Compatible(alg_.IntentionFor(a), acc)) {
            return std::string(lock::LockModeName(a)) + " conflicts with " +
                   std::string(lock::LockModeName(acc)) +
                   " but IntentionOf(a) = " +
                   std::string(lock::LockModeName(alg_.IntentionFor(a))) +
                   " does not";
          }
        }
      }
      return {};
    });
    // An intention announcement can never conflict where its access mode
    // does not.
    Law("intention-compat-weaker", [&]() -> std::string {
      for (LockMode a : kAllModes) {
        for (LockMode b : kAllModes) {
          if (alg_.Compatible(a, b) &&
              !alg_.Compatible(alg_.IntentionFor(a), b)) {
            return "Compat(" + ModePair(a, b) + ") but IntentionOf(" +
                   std::string(lock::LockModeName(a)) + ") conflicts";
          }
        }
      }
      return {};
    });
  }

  const ModeAlgebra& alg_;
  ProverReport report_;
  size_t laws_checked_ = 0;
};

std::string WitnessJson(const AccessWitness& w) {
  std::ostringstream os;
  os << "{\"access\":\"" << JsonEscape(w.description) << "\",\"locks\":[";
  for (size_t i = 0; i < w.locks.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"node\":" << w.locks[i].first << ",\"mode\":\""
       << lock::LockModeName(w.locks[i].second) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string FindingJson(const ProverFinding& f) {
  std::ostringstream os;
  os << "{\"check\":\"" << ProofCheckName(f.check) << "\"";
  if (!f.law.empty()) os << ",\"law\":\"" << f.law << "\"";
  os << ",\"node\":";
  if (f.node == kInvalidNode) {
    os << "null";
  } else {
    os << f.node;
  }
  os << ",\"message\":\"" << JsonEscape(f.message) << "\"";
  if (!f.left.description.empty()) {
    os << ",\"left\":" << WitnessJson(f.left)
       << ",\"right\":" << WitnessJson(f.right);
  }
  if (!f.cycle.empty()) {
    os << ",\"cycle\":[";
    for (size_t i = 0; i < f.cycle.size(); ++i) {
      if (i > 0) os << ',';
      os << f.cycle[i];
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

// ---------------------------------------------------------------------------
// (b)/(c) Symbolic access enumeration.
// ---------------------------------------------------------------------------

/// How rule 4′'s modifiability predicate is instantiated for one access.
enum class AuthzProfile : uint8_t {
  kFull,         ///< may modify every relation (rule 4 everywhere)
  kPrimaryOnly,  ///< may modify only the access's own relation (4′ fires
                 ///< on every referenced unit)
  kConcrete,     ///< evaluate a real AuthorizationManager for one user
};

std::string_view ProfileName(AuthzProfile p) {
  switch (p) {
    case AuthzProfile::kFull:
      return "authz=full";
    case AuthzProfile::kPrimaryOnly:
      return "authz=primary-only";
    case AuthzProfile::kConcrete:
      return "authz=user";
  }
  return "?";
}

/// One symbolic access: the locks the protocol-under-test lands (per
/// schema node, joined), the acquisition sequence, and the *semantic*
/// read/write footprint under the true paper semantics (independent of
/// the model under test — this is what keeps a mutated model from
/// redefining the theorem it is checked against).
struct Access {
  std::string description;
  std::vector<std::pair<NodeId, LockMode>> seq;
  std::vector<std::pair<NodeId, LockMode>> landed;  // sorted by node
  std::vector<uint64_t> reads, writes;              // bitsets over NodeId
  std::vector<bool> via_ref;  // node touched through a dashed edge
  bool any_write = false;
};

void SetBit(std::vector<uint64_t>& bits, NodeId n) {
  bits[n >> 6] |= uint64_t{1} << (n & 63);
}

bool IsSingletonLevel(const Node& n) {
  return n.level == NodeLevel::kDatabase || n.level == NodeLevel::kSegment ||
         n.level == NodeLevel::kRelation || n.level == NodeLevel::kIndex;
}

using Route = std::vector<NodeId>;  // ref BLUs, outermost first

class Prover {
 public:
  Prover(const LockGraph& graph, const nf2::Catalog& catalog,
         const ModeAlgebra& alg, const ProtocolModel& model,
         const ProverOptions& opts, const authz::AuthorizationManager* authz,
         uint64_t user)
      : graph_(graph),
        catalog_(catalog),
        alg_(alg),
        model_(model),
        opts_(opts),
        authz_(authz),
        user_(user),
        words_((graph.num_nodes() + 63) / 64) {}

  ProverReport Run() {
    if (opts_.check_mode_algebra) {
      ProverReport laws = LawChecker(alg_).Run();
      report_.laws_checked = laws.laws_checked;
      for (ProverFinding& f : laws.findings) {
        if (!AddFinding(std::move(f))) break;
      }
    }
    for (const Node& n : graph_.nodes()) {
      if (graph_.IsEntryPoint(n.id)) ++report_.entry_points;
    }
    if (opts_.check_side_entry) CheckSideEntry();
    if (opts_.check_visibility || opts_.check_order) {
      BuildRefsInto();
      EnumerateAccesses();
    }
    if (opts_.check_visibility) CheckVisibility();
    if (opts_.check_order) CheckOrder();
    return std::move(report_);
  }

 private:
  // -- findings ------------------------------------------------------------

  bool AddFinding(ProverFinding f) {
    if (report_.findings.size() >= opts_.max_findings) return false;
    report_.findings.push_back(std::move(f));
    return report_.findings.size() < opts_.max_findings;
  }

  // -- structural precondition --------------------------------------------

  void CheckSideEntry() {
    for (const Node& n : graph_.nodes()) {
      if (n.dashed_target == kInvalidNode) continue;
      const Node& target = graph_.node(n.dashed_target);
      if (target.level == NodeLevel::kComplexObject) continue;
      ProverFinding f;
      f.check = ProofCheck::kSideEntry;
      f.node = n.id;
      f.message = "reference " + graph_.NodeName(n.id) +
                  " enters its target unit at interior node " +
                  graph_.NodeName(target.id) +
                  "; propagation rules require entry at the unit root";
      if (!AddFinding(std::move(f))) return;
    }
  }

  // -- route enumeration ---------------------------------------------------

  void BuildRefsInto() {
    for (const Node& n : graph_.nodes()) {
      if (n.dashed_target == kInvalidNode) continue;
      refs_into_[graph_.node(n.dashed_target).relation].push_back(n.id);
    }
    for (auto& [rel, refs] : refs_into_) std::sort(refs.begin(), refs.end());
  }

  /// All reference routes (outermost ref first) whose last ref enters
  /// \p rel.  Memoized; an on-stack guard keeps reference cycles (the
  /// kCyclicReference mutant) from recursing forever.
  const std::vector<Route>& Routes(nf2::RelationId rel) {
    static const std::vector<Route> kEmpty;
    auto it = route_memo_.find(rel);
    if (it != route_memo_.end()) return it->second;
    if (route_stack_.count(rel)) return kEmpty;
    route_stack_.insert(rel);
    std::vector<Route> out;
    auto refs = refs_into_.find(rel);
    if (refs != refs_into_.end()) {
      for (NodeId b : refs->second) {
        if (out.size() >= opts_.max_routes_per_unit) break;
        out.push_back(Route{b});
        for (const Route& prefix : Routes(graph_.node(b).relation)) {
          if (out.size() >= opts_.max_routes_per_unit) break;
          Route r = prefix;
          r.push_back(b);
          out.push_back(std::move(r));
        }
      }
    }
    route_stack_.erase(rel);
    report_.routes_enumerated += out.size();
    return route_memo_.emplace(rel, std::move(out)).first->second;
  }

  // -- per-access lock-set computation (the model under test) --------------

  struct BuildCtx {
    Access a;
    /// Entry points already implicitly propagated into → strongest mode.
    std::unordered_map<NodeId, LockMode> visited;
    std::unordered_map<NodeId, LockMode> landed;
    bool in_ref = false;
    AuthzProfile profile = AuthzProfile::kFull;
    nf2::RelationId primary_rel = nf2::kInvalidRelation;
  };

  bool CanModify(const BuildCtx& ctx, nf2::RelationId rel) const {
    switch (ctx.profile) {
      case AuthzProfile::kFull:
        return true;
      case AuthzProfile::kPrimaryOnly:
        return rel == ctx.primary_rel;
      case AuthzProfile::kConcrete:
        return authz_ != nullptr && rel != nf2::kInvalidRelation &&
               authz_->CanModify(user_, rel);
    }
    return false;
  }

  LockMode Weaken(const BuildCtx& ctx, LockMode m, nf2::RelationId rel) const {
    if (m != kX) return m;
    return CanModify(ctx, rel) ? model_.x_on_modifiable
                               : model_.x_on_nonmodifiable;
  }

  void Add(BuildCtx& ctx, NodeId n, LockMode m) const {
    if (m == kNL) return;
    ctx.a.seq.emplace_back(n, m);
    auto [it, fresh] = ctx.landed.emplace(n, m);
    if (!fresh) it->second = alg_.Sup(it->second, m);
    if (ctx.in_ref) ctx.a.via_ref[n] = true;
  }

  /// Rules 1/2: implicit locks on the superunit chain, outermost first.
  void ChainUp(BuildCtx& ctx, NodeId n, LockMode intent) const {
    if (!model_.upward_propagation) return;
    std::vector<NodeId> chain = graph_.SuperunitChain(n);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      Add(ctx, *it, intent);
    }
  }

  /// The basic root-to-leaf protocol (always in force: this is explicit
  /// locking, not propagation).
  void ExplicitPath(BuildCtx& ctx, NodeId target, LockMode m) const {
    std::vector<NodeId> chain = graph_.SuperunitChain(target);
    LockMode intent = alg_.IntentionFor(m);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      Add(ctx, *it, intent);
    }
    Add(ctx, target, m);
  }

  /// Ref BLUs under \p n ordered by (target relation DESCENDING, node
  /// id) — the deterministic global propagation order co_protocol.cc
  /// uses.  Descending relation id is a topological order of the
  /// reference DAG (targets are created before referencers), so implicit
  /// propagation enters units outermost-first, exactly like explicit
  /// traversals through reference chains — which is what keeps the
  /// acquisition-order graph acyclic across units.
  std::vector<NodeId> SortedRefsUnder(NodeId n) const {
    std::vector<NodeId> refs = graph_.RefBlusUnder(n);
    std::sort(refs.begin(), refs.end(), [&](NodeId a, NodeId b) {
      nf2::RelationId ra = graph_.node(graph_.node(a).dashed_target).relation;
      nf2::RelationId rb = graph_.node(graph_.node(b).dashed_target).relation;
      return ra != rb ? ra > rb : a < b;
    });
    return refs;
  }

  /// Rules 3/4/4′: implicit downward propagation into referenced units.
  void Downward(BuildCtx& ctx, NodeId target, LockMode m) const {
    if (!model_.downward_propagation) return;
    if (m != kS && m != kX) return;
    for (NodeId b : SortedRefsUnder(target)) {
      Propagate(ctx, graph_.node(b).dashed_target, m);
    }
  }

  void Propagate(BuildCtx& ctx, NodeId ep, LockMode m) const {
    LockMode epm = Weaken(ctx, m, graph_.node(ep).relation);
    if (epm == kNL) return;
    auto it = ctx.visited.find(ep);
    if (it != ctx.visited.end()) {
      if (alg_.Leq(epm, it->second)) return;
      it->second = alg_.Sup(it->second, epm);
    } else {
      ctx.visited.emplace(ep, epm);
    }
    ChainUp(ctx, ep, alg_.IntentionFor(epm));
    Add(ctx, ep, epm);
    if (epm == kS || epm == kX) {
      for (NodeId b : SortedRefsUnder(ep)) {
        Propagate(ctx, graph_.node(b).dashed_target, epm);
      }
    }
  }

  /// Locks the solid path \p ep (exclusive) → \p target: intermediate
  /// nodes at \p intent, the target at \p final_mode.
  void WithinPath(BuildCtx& ctx, NodeId ep, NodeId target, LockMode intent,
                  LockMode final_mode) const {
    std::vector<NodeId> path;
    NodeId cur = graph_.node(target).solid_parent;
    while (cur != kInvalidNode && cur != ep &&
           !IsSingletonLevel(graph_.node(cur))) {
      path.push_back(cur);
      cur = graph_.node(cur).solid_parent;
    }
    if (cur == ep) {
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        Add(ctx, *it, intent);
      }
    }
    Add(ctx, target, final_mode);
  }

  // -- semantic footprint (true paper semantics, model-independent) --------

  void SemSubtree(BuildCtx& ctx, NodeId root, bool write,
                  std::vector<NodeId>* refs) const {
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      SetBit(ctx.a.reads, n);
      if (write) SetBit(ctx.a.writes, n);
      if (ctx.in_ref) ctx.a.via_ref[n] = true;
      const Node& node = graph_.node(n);
      if (node.is_ref_blu() && refs) refs->push_back(n);
      for (NodeId c : node.solid_children) stack.push_back(c);
    }
  }

  void SemEnter(BuildCtx& ctx, NodeId ep, LockMode m,
                std::unordered_map<NodeId, LockMode>& visited) const {
    LockMode eff = m;
    if (m == kX && !CanModify(ctx, graph_.node(ep).relation)) eff = kS;
    auto it = visited.find(ep);
    if (it != visited.end() && !(eff == kX && it->second == kS)) return;
    visited[ep] = eff;
    std::vector<NodeId> refs;
    SemSubtree(ctx, ep, eff == kX, &refs);
    for (NodeId b : refs) {
      SemEnter(ctx, graph_.node(b).dashed_target, eff, visited);
    }
  }

  /// Reads/writes of "access target in mode m" under the *paper's*
  /// semantics: S/X cover the solid subtree; references are followed with
  /// X truly weakened to S on units the access may not modify (a
  /// transaction without the right never writes them, whatever the
  /// model-under-test locks).
  void Semantics(BuildCtx& ctx, NodeId target, LockMode m) const {
    bool saved = ctx.in_ref;
    ctx.in_ref = saved;  // target subtree keeps the caller's context
    std::vector<NodeId> refs;
    SemSubtree(ctx, target, m == kX, &refs);
    ctx.in_ref = true;
    std::unordered_map<NodeId, LockMode> visited;
    for (NodeId b : refs) {
      SemEnter(ctx, graph_.node(b).dashed_target, m, visited);
    }
    ctx.in_ref = saved;
  }

  // -- access construction -------------------------------------------------

  BuildCtx NewCtx(AuthzProfile profile, nf2::RelationId primary) const {
    BuildCtx ctx;
    ctx.profile = profile;
    ctx.primary_rel = primary;
    ctx.a.reads.assign(words_, 0);
    ctx.a.writes.assign(words_, 0);
    ctx.a.via_ref.assign(graph_.num_nodes(), false);
    return ctx;
  }

  void Finish(BuildCtx& ctx) {
    ctx.a.landed.assign(ctx.landed.begin(), ctx.landed.end());
    std::sort(ctx.a.landed.begin(), ctx.a.landed.end());
    for (uint64_t w : ctx.a.writes) {
      if (w) ctx.a.any_write = true;
    }
    accesses_.push_back(std::move(ctx.a));
    ++report_.accesses_enumerated;
  }

  void BuildDirect(NodeId target, LockMode m, AuthzProfile profile) {
    nf2::RelationId primary = graph_.node(target).relation;
    if (m == kX && !CanModify(NewCtx(profile, primary), primary) &&
        profile == AuthzProfile::kConcrete) {
      return;  // not an authorized access; nothing to enumerate
    }
    BuildCtx ctx = NewCtx(profile, primary);
    ctx.a.description = std::string(lock::LockModeName(m)) + " on " +
                        graph_.NodeName(target) + " (direct, " +
                        std::string(ProfileName(profile)) + ")";
    ExplicitPath(ctx, target, m);
    ctx.in_ref = true;
    Downward(ctx, target, m);
    ctx.in_ref = false;
    Semantics(ctx, target, m);
    Finish(ctx);
  }

  void BuildThrough(const Route& route, NodeId target, LockMode m,
                    AuthzProfile profile) {
    nf2::RelationId primary = graph_.node(target).relation;
    BuildCtx ctx = NewCtx(profile, primary);
    if (m == kX && !CanModify(ctx, primary)) return;
    LockMode intent = alg_.IntentionFor(m);
    std::string via;
    for (NodeId b : route) {
      if (!via.empty()) via += " -> ";
      via += graph_.NodeName(b);
    }
    ctx.a.description = std::string(lock::LockModeName(m)) + " on " +
                        graph_.NodeName(target) + " through " + via + " (" +
                        std::string(ProfileName(profile)) + ")";
    ExplicitPath(ctx, route[0], intent);
    ctx.in_ref = true;
    for (size_t i = 0; i < route.size(); ++i) {
      NodeId ep = graph_.node(route[i]).dashed_target;
      if (ep == kInvalidNode) return;
      bool last = i + 1 == route.size();
      if (!last) {
        ChainUp(ctx, ep, intent);
        Add(ctx, ep, intent);
        WithinPath(ctx, ep, route[i + 1], intent, intent);
        continue;
      }
      if (target == ep) {
        // Explicit LockEntryPoint: 4′ weakening applies to the requested
        // mode itself (the implementation weakens explicit entry X too).
        LockMode epm = Weaken(ctx, m, graph_.node(ep).relation);
        if (epm != kNL) {
          ChainUp(ctx, ep, alg_.IntentionFor(epm));
          Add(ctx, ep, epm);
          if (epm == kS || epm == kX) {
            for (NodeId b : SortedRefsUnder(ep)) {
              Propagate(ctx, graph_.node(b).dashed_target, epm);
            }
          }
        }
      } else {
        ChainUp(ctx, ep, intent);
        Add(ctx, ep, intent);
        WithinPath(ctx, ep, target, intent, m);
        Downward(ctx, target, m);
      }
    }
    Semantics(ctx, target, m);
    ctx.in_ref = false;
    Finish(ctx);
  }

  // -- enumeration ---------------------------------------------------------

  std::vector<NodeId> TargetsOf(nf2::RelationId rel) const {
    std::vector<NodeId> targets;
    NodeId co = graph_.ComplexObjectNode(rel);
    targets.push_back(co);
    const Node& co_node = graph_.node(co);
    if (!co_node.solid_children.empty()) {
      targets.push_back(co_node.solid_children[0]);
    }
    NodeId leaf = co;
    while (!graph_.node(leaf).solid_children.empty()) {
      leaf = graph_.node(leaf).solid_children[0];
    }
    targets.push_back(leaf);
    for (NodeId b : graph_.RefBlusUnder(co)) {
      targets.push_back(b);
      NodeId parent = graph_.node(b).solid_parent;
      if (parent != kInvalidNode && !IsSingletonLevel(graph_.node(parent))) {
        targets.push_back(parent);
      }
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    return targets;
  }

  void ForEachModeProfile(const std::function<void(LockMode, AuthzProfile)>& fn)
      const {
    if (authz_ != nullptr) {
      fn(kS, AuthzProfile::kConcrete);
      fn(kX, AuthzProfile::kConcrete);
      return;
    }
    fn(kS, AuthzProfile::kFull);
    fn(kX, AuthzProfile::kFull);
    fn(kX, AuthzProfile::kPrimaryOnly);
  }

  void EnumerateAccesses() {
    std::vector<NodeId> hierarchy;
    for (const Node& n : graph_.nodes()) {
      if (n.level == NodeLevel::kDatabase || n.level == NodeLevel::kSegment) {
        hierarchy.push_back(n.id);
      }
    }
    for (NodeId t : hierarchy) {
      ForEachModeProfile(
          [&](LockMode m, AuthzProfile p) { BuildDirect(t, m, p); });
    }
    for (nf2::RelationId rel = 0; rel < catalog_.num_relations(); ++rel) {
      std::vector<NodeId> targets = TargetsOf(rel);
      targets.push_back(graph_.RelationNode(rel));
      for (NodeId t : targets) {
        ForEachModeProfile(
            [&](LockMode m, AuthzProfile p) { BuildDirect(t, m, p); });
      }
      NodeId co = graph_.ComplexObjectNode(rel);
      if (!graph_.IsEntryPoint(co)) continue;
      // Through-targets: the entry point itself plus interior nodes a
      // navigational access can land on.
      std::vector<NodeId> through = TargetsOf(rel);
      for (const Route& route : Routes(rel)) {
        for (NodeId t : through) {
          ForEachModeProfile(
              [&](LockMode m, AuthzProfile p) { BuildThrough(route, t, m, p); });
        }
      }
    }
  }

  // -- (b) visibility ------------------------------------------------------

  void CheckVisibility() {
    std::vector<uint64_t> conflict(words_);
    for (size_t i = 0; i < accesses_.size(); ++i) {
      for (size_t j = i; j < accesses_.size(); ++j) {
        const Access& a = accesses_[i];
        const Access& b = accesses_[j];
        if (!a.any_write && !b.any_write) continue;
        bool any = false;
        for (size_t w = 0; w < words_; ++w) {
          conflict[w] = (a.writes[w] & (b.reads[w] | b.writes[w])) |
                        (b.writes[w] & a.reads[w]);
          any |= conflict[w] != 0;
        }
        if (!any) continue;
        ++report_.pairs_checked;
        if (!CheckPair(a, b, conflict)) return;
      }
    }
  }

  /// Returns false when the finding budget is exhausted.
  bool CheckPair(const Access& a, const Access& b,
                 const std::vector<uint64_t>& conflict) {
    // Incompatible landed collisions, classified by instance validity:
    // singleton-level nodes always denote the same instance; a collision
    // inside a unit protects exactly the conflicts in that unit (the
    // conflicting instance is the one both accesses entered).
    bool singleton_hit = false;
    std::unordered_set<nf2::RelationId> unit_hit;
    size_t ia = 0, ib = 0;
    while (ia < a.landed.size() && ib < b.landed.size()) {
      if (a.landed[ia].first < b.landed[ib].first) {
        ++ia;
      } else if (b.landed[ib].first < a.landed[ia].first) {
        ++ib;
      } else {
        NodeId n = a.landed[ia].first;
        if (!alg_.Compatible(a.landed[ia].second, b.landed[ib].second)) {
          const Node& node = graph_.node(n);
          if (IsSingletonLevel(node)) {
            singleton_hit = true;
          } else {
            unit_hit.insert(node.relation);
          }
        }
        ++ia;
        ++ib;
      }
    }
    if (singleton_hit) return true;
    for (size_t w = 0; w < words_; ++w) {
      uint64_t bits = conflict[w];
      while (bits) {
        NodeId n = static_cast<NodeId>(w * 64 +
                                       __builtin_ctzll(bits));
        bits &= bits - 1;
        const Node& node = graph_.node(n);
        nf2::RelationId rel = node.relation;
        if (unit_hit.count(rel)) continue;
        // In the conflicting instantiation both accesses touch the same
        // instance at n, yet no lock they hold collides on any node of
        // that instance's unit (nor on a singleton): invisible conflict.
        ProverFinding f;
        f.check = ProofCheck::kVisibility;
        f.node = n;
        f.message = "conflicting accesses never collide: both touch " +
                    graph_.NodeName(n) +
                    " (one writing) but no common node is locked in "
                    "incompatible modes";
        f.left.description = a.description;
        f.left.locks = a.seq;
        f.right.description = b.description;
        f.right.locks = b.seq;
        return AddFinding(std::move(f));
      }
    }
    return true;
  }

  // -- (c) acquisition order ----------------------------------------------

  /// Per-access acquisition history at event granularity.
  struct OrderInfo {
    struct Ev {
      NodeId node;
      LockMode req;  ///< cumulative mode requested at this event
    };
    std::vector<Ev> events;  ///< first acquisitions + strict upgrades
    std::unordered_map<NodeId, size_t> pos;    ///< node -> first event idx
    std::unordered_map<NodeId, LockMode> first;  ///< first requested mode
    std::unordered_map<NodeId, LockMode> joined;
  };

  /// Deadlock analysis over lock contention, not raw acquisition order.
  ///
  /// A transaction can only wait at a node both it and another access
  /// lock in incompatible modes, and such a wait is impossible when an
  /// earlier common node *shields* it: if both accesses acquire node s
  /// before the wait point and their first-acquisition modes at s are
  /// incompatible, they can never both be past s concurrently (modes
  /// only ever strengthen), so the deeper wait can never arise.  The
  /// root-to-leaf rule makes this powerful: accesses that conflict at
  /// the database or segment node serialize right there and contribute
  /// no deeper wait edges.  Unshielded waits become hold-and-wait edges
  /// (held contended node -> wait node); a cycle is a potential deadlock
  /// and is reported with a per-edge access witness.
  void CheckOrder() {
    std::vector<OrderInfo> info(accesses_.size());
    for (size_t idx = 0; idx < accesses_.size(); ++idx) {
      OrderInfo& oi = info[idx];
      for (const auto& [n, m] : accesses_[idx].seq) {
        auto it = oi.joined.find(n);
        if (it == oi.joined.end()) {
          oi.joined.emplace(n, m);
          oi.pos.emplace(n, oi.events.size());
          oi.first.emplace(n, m);
          oi.events.push_back({n, m});
        } else if (!alg_.Leq(m, it->second)) {
          // A strict upgrade is a fresh wait point: it re-enters the
          // queue for the stronger mode.
          it->second = alg_.Sup(it->second, m);
          oi.events.push_back({n, it->second});
        }
      }
    }

    // Live (unshielded) waits per access and the nodes at which each
    // access can block somebody else.
    std::vector<std::vector<std::pair<size_t, NodeId>>> waits(info.size());
    std::vector<std::unordered_set<NodeId>> blocks(info.size());
    auto collect = [&](size_t i, size_t j,
                       const std::vector<NodeId>& shield) {
      const OrderInfo& a = info[i];
      const OrderInfo& b = info[j];
      for (size_t k = 0; k < a.events.size(); ++k) {
        const OrderInfo::Ev& e = a.events[k];
        auto bj = b.joined.find(e.node);
        if (bj == b.joined.end()) continue;
        if (alg_.Compatible(e.req, bj->second)) continue;
        size_t bpos = b.pos.at(e.node);
        bool shielded = false;
        for (NodeId s : shield) {
          if (s != e.node && a.pos.at(s) < k && b.pos.at(s) < bpos) {
            shielded = true;
            break;
          }
        }
        if (!shielded) {
          waits[i].emplace_back(k, e.node);
          blocks[j].insert(e.node);
        }
      }
    };
    for (size_t i = 0; i < info.size(); ++i) {
      for (size_t j = i + 1; j < info.size(); ++j) {
        // Common nodes whose first-acquisition modes are incompatible:
        // the two accesses are never concurrently past any of them.
        std::vector<NodeId> shield;
        const Access& la = accesses_[i];
        const Access& lb = accesses_[j];
        size_t ia = 0, ib = 0;
        while (ia < la.landed.size() && ib < lb.landed.size()) {
          if (la.landed[ia].first < lb.landed[ib].first) {
            ++ia;
          } else if (lb.landed[ib].first < la.landed[ia].first) {
            ++ib;
          } else {
            NodeId n = la.landed[ia].first;
            if (!alg_.Compatible(info[i].first.at(n), info[j].first.at(n))) {
              shield.push_back(n);
            }
            ++ia;
            ++ib;
          }
        }
        collect(i, j, shield);
        collect(j, i, shield);
      }
    }

    std::unordered_map<uint64_t, size_t> edge_sample;  // edge -> access idx
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    std::unordered_set<uint64_t> edges;
    for (size_t i = 0; i < info.size(); ++i) {
      for (const auto& [k, v] : waits[i]) {
        for (NodeId u : blocks[i]) {
          if (u == v) continue;
          auto up = info[i].pos.find(u);
          if (up == info[i].pos.end() || up->second >= k) continue;
          uint64_t key = (uint64_t{u} << 32) | v;
          if (edges.insert(key).second) {
            adj[u].push_back(v);
            edge_sample.emplace(key, i);
          }
        }
      }
    }
    report_.order_nodes = adj.size();
    report_.order_edges = edges.size();

    // Iterative 3-color DFS; on a back edge, the stack segment from the
    // back-edge target is the witness cycle.
    std::unordered_map<NodeId, int> color;  // 0 white, 1 grey, 2 black
    std::vector<NodeId> stack;
    std::function<bool(NodeId)> dfs = [&](NodeId u) -> bool {
      color[u] = 1;
      stack.push_back(u);
      auto it = adj.find(u);
      if (it != adj.end()) {
        for (NodeId v : it->second) {
          int c = color[v];
          if (c == 1) {
            ProverFinding f;
            f.check = ProofCheck::kAcquisitionOrder;
            f.node = v;
            auto pos = std::find(stack.begin(), stack.end(), v);
            f.cycle.assign(pos, stack.end());
            f.cycle.push_back(v);
            std::string names;
            for (NodeId n : f.cycle) {
              if (!names.empty()) names += " -> ";
              names += graph_.NodeName(n);
            }
            f.message = "acquisition order cycle: " + names;
            // Witness: one access per edge that acquires in that order.
            for (size_t k = 1; k < f.cycle.size(); ++k) {
              uint64_t ek =
                  (uint64_t{f.cycle[k - 1]} << 32) | f.cycle[k];
              auto sample = edge_sample.find(ek);
              if (sample == edge_sample.end()) continue;
              f.message += "; edge " + graph_.NodeName(f.cycle[k - 1]) +
                           " -> " + graph_.NodeName(f.cycle[k]) +
                           " from access \"" +
                           accesses_[sample->second].description + "\"";
            }
            AddFinding(std::move(f));
            return true;
          }
          if (c == 0 && dfs(v)) return true;
        }
      }
      stack.pop_back();
      color[u] = 2;
      return false;
    };
    std::vector<NodeId> roots;
    for (const auto& [u, _] : adj) roots.push_back(u);
    std::sort(roots.begin(), roots.end());
    for (NodeId u : roots) {
      if (color[u] == 0 && dfs(u)) return;
    }
  }

  const LockGraph& graph_;
  const nf2::Catalog& catalog_;
  const ModeAlgebra& alg_;
  const ProtocolModel& model_;
  const ProverOptions& opts_;
  const authz::AuthorizationManager* authz_;
  uint64_t user_;
  size_t words_;
  ProverReport report_;
  std::vector<Access> accesses_;
  std::unordered_map<nf2::RelationId, std::vector<NodeId>> refs_into_;
  std::unordered_map<nf2::RelationId, std::vector<Route>> route_memo_;
  std::unordered_set<nf2::RelationId> route_stack_;
};

}  // namespace

ModeAlgebra ModeAlgebra::Shipped() {
  ModeAlgebra alg;
  for (LockMode a : kAllModes) {
    alg.intention[static_cast<int>(a)] = lock::IntentionFor(a);
    for (LockMode b : kAllModes) {
      alg.compat[static_cast<int>(a)][static_cast<int>(b)] =
          lock::Compatible(a, b);
      alg.sup[static_cast<int>(a)][static_cast<int>(b)] =
          lock::Supremum(a, b);
    }
  }
  return alg;
}

ProverReport CheckModeAlgebra(const ModeAlgebra& algebra) {
  return LawChecker(algebra).Run();
}

std::string_view ProofCheckName(ProofCheck check) {
  switch (check) {
    case ProofCheck::kModeAlgebra:
      return "mode-algebra";
    case ProofCheck::kSideEntry:
      return "side-entry";
    case ProofCheck::kVisibility:
      return "visibility";
    case ProofCheck::kAcquisitionOrder:
      return "acquisition-order";
  }
  return "?";
}

std::string_view ProverMutantName(ProverMutant m) {
  switch (m) {
    case ProverMutant::kCompatSX:
      return "compat-sx";
    case ProverMutant::kCompatAsymmetric:
      return "compat-asymmetric";
    case ProverMutant::kSupremumSIX:
      return "supremum-six";
    case ProverMutant::kIntentionXToIS:
      return "intention-x-to-is";
    case ProverMutant::kSkipUpwardPropagation:
      return "skip-upward-propagation";
    case ProverMutant::kSkipDownwardPropagation:
      return "skip-downward-propagation";
    case ProverMutant::kRule4PrimeNoLock:
      return "rule4prime-no-lock";
    case ProverMutant::kRule4PrimeIntentOnly:
      return "rule4prime-intent-only";
    case ProverMutant::kRule4PrimeOverWeaken:
      return "rule4prime-over-weaken";
    case ProverMutant::kDashedIntoInterior:
      return "dashed-into-interior";
    case ProverMutant::kCyclicReference:
      return "cyclic-reference";
    case ProverMutant::kNumProverMutants:
      break;
  }
  return "?";
}

std::string ProverReport::ToJson() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok() ? "true" : "false")
     << ",\"laws_checked\":" << laws_checked
     << ",\"entry_points\":" << entry_points
     << ",\"routes\":" << routes_enumerated
     << ",\"accesses\":" << accesses_enumerated
     << ",\"pairs\":" << pairs_checked << ",\"order_nodes\":" << order_nodes
     << ",\"order_edges\":" << order_edges << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) os << ',';
    os << FindingJson(findings[i]);
  }
  os << "]}";
  return os.str();
}

std::string ProverReport::ToString() const {
  std::ostringstream os;
  if (ok()) {
    os << "protocol proof OK (" << laws_checked << " laws, " << entry_points
       << " entry points, " << routes_enumerated << " routes, "
       << accesses_enumerated << " accesses, " << pairs_checked
       << " conflicting pairs, order graph " << order_nodes << " nodes/"
       << order_edges << " edges)\n";
    return os.str();
  }
  os << findings.size() << " refuted theorem(s):\n";
  for (const ProverFinding& f : findings) {
    os << "  [" << ProofCheckName(f.check);
    if (!f.law.empty()) os << '/' << f.law;
    os << "] " << f.message << '\n';
    if (!f.left.description.empty()) {
      os << "    left:  " << f.left.description << '\n';
      os << "    right: " << f.right.description << '\n';
    }
  }
  return os.str();
}

ProverReport ProveProtocol(const LockGraph& graph, const nf2::Catalog& catalog,
                           const ModeAlgebra& algebra,
                           const ProtocolModel& model,
                           const ProverOptions& options) {
  return Prover(graph, catalog, algebra, model, options, nullptr, 0).Run();
}

ProverReport ProveProtocol(const LockGraph& graph, const nf2::Catalog& catalog,
                           const ProverOptions& options) {
  return ProveProtocol(graph, catalog, ModeAlgebra::Shipped(),
                       ProtocolModel::Paper(), options);
}

ProverReport ProveProtocolForUser(const LockGraph& graph,
                                  const nf2::Catalog& catalog,
                                  const authz::AuthorizationManager& authz,
                                  uint64_t user,
                                  const ProverOptions& options) {
  return Prover(graph, catalog, ModeAlgebra::Shipped(),
                ProtocolModel::Paper(), options, &authz, user)
      .Run();
}

namespace {

/// Rewires one reference into an interior node of its target unit.
bool MutateDashedIntoInterior(LockGraph& g) {
  for (const Node& n : g.nodes()) {
    if (!n.is_ref_blu()) continue;
    const Node& ep = g.node(n.dashed_target);
    if (ep.solid_children.empty()) continue;
    NodeId interior = ep.solid_children[0];
    Node& mep = g.MutableNodeForTest(ep.id);
    mep.dashed_in.erase(
        std::remove(mep.dashed_in.begin(), mep.dashed_in.end(), n.id),
        mep.dashed_in.end());
    g.MutableNodeForTest(n.id).dashed_target = interior;
    g.MutableNodeForTest(interior).dashed_in.push_back(n.id);
    return true;
  }
  return false;
}

/// Turns an atomic BLU of a shared relation into a reference back to the
/// unit that references it: a schema-level reference cycle.
bool MutateCyclicReference(LockGraph& g) {
  for (const Node& ep : g.nodes()) {
    if (ep.level != NodeLevel::kComplexObject || ep.dashed_in.empty()) {
      continue;
    }
    NodeId outer_co =
        g.ComplexObjectNode(g.node(ep.dashed_in[0]).relation);
    if (outer_co == ep.id) continue;
    // Find an atomic (non-ref) BLU leaf inside the shared unit.
    std::vector<NodeId> stack{ep.id};
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      const Node& node = g.node(id);
      for (NodeId c : node.solid_children) stack.push_back(c);
      if (id != ep.id && node.kind == NodeKind::kBLU && !node.is_ref_blu()) {
        g.MutableNodeForTest(id).dashed_target = outer_co;
        g.MutableNodeForTest(outer_co).dashed_in.push_back(id);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<ProverKillResult> RunProverKillSuite(
    const LockGraph& graph, const nf2::Catalog& catalog,
    const ProverOptions& options) {
  const ModeAlgebra shipped = ModeAlgebra::Shipped();
  const ProtocolModel paper = ProtocolModel::Paper();
  const bool base_ok =
      ProveProtocol(graph, catalog, shipped, paper, options).ok();

  constexpr int iS = static_cast<int>(lock::LockMode::kS);
  constexpr int iIX = static_cast<int>(lock::LockMode::kIX);
  constexpr int iX = static_cast<int>(lock::LockMode::kX);

  std::vector<ProverKillResult> out;
  for (size_t i = 0; i < kNumProverMutants; ++i) {
    ProverMutant mutant = static_cast<ProverMutant>(i);
    ProverKillResult res;
    res.mutant = mutant;

    ModeAlgebra alg = shipped;
    ProtocolModel model = paper;
    bool applicable = true;
    ProverReport report;
    switch (mutant) {
      case ProverMutant::kCompatSX:
        alg.compat[iS][iX] = alg.compat[iX][iS] = true;
        break;
      case ProverMutant::kCompatAsymmetric:
        alg.compat[iX][iS] = true;
        break;
      case ProverMutant::kSupremumSIX:
        alg.sup[iS][iIX] = alg.sup[iIX][iS] = lock::LockMode::kX;
        break;
      case ProverMutant::kIntentionXToIS:
        alg.intention[iX] = lock::LockMode::kIS;
        break;
      case ProverMutant::kSkipUpwardPropagation:
        model.upward_propagation = false;
        break;
      case ProverMutant::kSkipDownwardPropagation:
        model.downward_propagation = false;
        break;
      case ProverMutant::kRule4PrimeNoLock:
        model.x_on_nonmodifiable = lock::LockMode::kNL;
        break;
      case ProverMutant::kRule4PrimeIntentOnly:
        model.x_on_nonmodifiable = lock::LockMode::kIS;
        break;
      case ProverMutant::kRule4PrimeOverWeaken:
        model.x_on_modifiable = lock::LockMode::kS;
        break;
      case ProverMutant::kDashedIntoInterior:
      case ProverMutant::kCyclicReference: {
        LockGraph mutated = graph;
        applicable = mutant == ProverMutant::kDashedIntoInterior
                         ? MutateDashedIntoInterior(mutated)
                         : MutateCyclicReference(mutated);
        if (applicable) {
          report = ProveProtocol(mutated, catalog, shipped, paper, options);
        }
        break;
      }
      case ProverMutant::kNumProverMutants:
        applicable = false;
        break;
    }
    if (mutant != ProverMutant::kDashedIntoInterior &&
        mutant != ProverMutant::kCyclicReference && applicable) {
      report = ProveProtocol(graph, catalog, alg, model, options);
    }

    if (!applicable) {
      res.caught_by = "mutation-not-applicable";
    } else {
      res.killed = base_ok && !report.ok();
      res.findings = report.findings.size();
      if (!report.findings.empty()) {
        const ProverFinding& f = report.findings.front();
        res.caught_by = std::string(ProofCheckName(f.check));
        if (!f.law.empty()) res.caught_by += "/" + f.law;
        res.witness_json = FindingJson(f);
      }
    }
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace codlock::logra
