/// \file lint.h
/// \brief Static linter for object-specific lock graphs.
///
/// The soundness of the paper's locking protocols rests on structural
/// invariants of the derived lock graphs (§4.3, §4.4):
///
///  1. **Derivation rules (§4.3)** — every schema attribute maps to the
///     right node kind: set/list → HoLU (rules 1, 2), tuple → HeLU
///     (rule 3), atomic → BLU (rule 4); a reference attribute is a BLU
///     whose dashed edge points at the referenced relation's complex-object
///     node.  The System R hierarchy above (database HeLU, segment HeLU,
///     relation HoLU, index HoLU) must match §4.2 as well.
///  2. **Acyclicity** — the full graph (solid containment edges plus
///     dashed reference edges) must be a DAG; the paper restricts itself
///     to non-recursive complex objects (§2) and the DAG protocol's
///     correctness argument (§3.2.2) depends on it.
///  3. **One entry point per inner unit (§4.4.1)** — a dashed edge may
///     only enter an inner unit at its root (the referenced relation's
///     complex-object node).  A dashed edge landing on an interior node
///     would give the unit a second entry point and break implicit lock
///     propagation.
///  4. **Registered targets** — every ref BLU must dangle into a
///     registered inner unit: a valid node that is the complex-object node
///     of the attribute's declared target relation, with consistent
///     back-edges.
///  5. **Unit boundaries** — no solid edge may cross a unit boundary:
///     solid containment stays within one relation's schema tree (or the
///     database→segment→relation/index hierarchy); only dashed edges
///     connect units.
///
/// `LintLockGraph` verifies all of the above for a built `LockGraph`
/// against its catalog, and reports findings machine-readably (JSON) so
/// CI and `ctest` can gate on them.  A graph freshly produced by
/// `LockGraph::Build` must always lint clean; the linter guards against
/// regressions in the builder and validates hand-constructed or mutated
/// graphs in tests.

#ifndef CODLOCK_LOGRA_LINT_H_
#define CODLOCK_LOGRA_LINT_H_

#include <string>
#include <vector>

#include "logra/lock_graph.h"
#include "nf2/schema.h"

namespace codlock::logra {

/// Violation classes detected by the linter.
enum class LintCode : uint8_t {
  /// §4.3 rule 1–4 violation: node kind contradicts the backing attribute
  /// (or hierarchy node kind contradicts §4.2).
  kDerivationRule,
  /// The graph (solid + dashed edges) contains a cycle.
  kCycle,
  /// A dashed edge enters a unit at a non-root node: the inner unit would
  /// have more than one entry point (§4.4.1).
  kMultipleEntryPoints,
  /// A ref BLU whose dashed target is missing, out of range, or not the
  /// registered complex-object node of the declared target relation.
  kDanglingRef,
  /// A solid edge crosses a unit boundary (or the System R hierarchy is
  /// miswired).
  kSolidCrossUnit,
  /// Solid parent/child bookkeeping is inconsistent (edge recorded on one
  /// side only).
  kParentChildMismatch,
  /// A BLU has solid children (basic lockable units are leaves).
  kBluHasChildren,
  /// An inner-unit entry point (complex-object node) is not reachable from
  /// any outer-unit root (database node) via solid containment and dashed
  /// reference edges.  An unreachable entry point can never receive the
  /// implicit locks of §4.4.2 — its unit is dead weight at best, and a
  /// protocol bug at worst (a ref BLU that should point at it dangles
  /// elsewhere, §4.3 rule 4).
  kUnreachableEntryPoint,
};

std::string_view LintCodeName(LintCode code);

/// \brief One structural violation.
struct LintFinding {
  LintCode code = LintCode::kDerivationRule;
  /// Primary node the finding anchors at (kInvalidNode for whole-graph
  /// findings without a representative node).
  NodeId node = kInvalidNode;
  /// Human-readable explanation including node names.
  std::string message;
};

/// \brief Result of linting one lock graph.
struct LintReport {
  std::vector<LintFinding> findings;
  size_t nodes_checked = 0;
  size_t relations_checked = 0;

  bool ok() const { return findings.empty(); }

  /// Machine-readable report:
  /// `{"ok":bool,"nodes":N,"relations":N,"findings":[{...},...]}`.
  std::string ToJson() const;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Verifies the structural invariants above for \p graph built from
/// \p catalog.  Checks the whole catalog-wide graph; per-relation
/// object-specific graphs are subgraphs of it, so a clean report covers
/// every relation's derived graph too.
LintReport LintLockGraph(const LockGraph& graph, const nf2::Catalog& catalog);

}  // namespace codlock::logra

#endif  // CODLOCK_LOGRA_LINT_H_
