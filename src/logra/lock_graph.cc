#include "logra/lock_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>

namespace codlock::logra {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kBLU:
      return "BLU";
    case NodeKind::kHoLU:
      return "HoLU";
    case NodeKind::kHeLU:
      return "HeLU";
  }
  return "?";
}

NodeId LockGraph::AddNode(Node node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  if (node.solid_parent != kInvalidNode) {
    nodes_[node.solid_parent].solid_children.push_back(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

NodeId LockGraph::BuildAttrSubtree(const nf2::Catalog& catalog,
                                   nf2::AttrId attr, NodeId parent,
                                   NodeLevel level) {
  const nf2::AttrDef& def = catalog.attr(attr);
  Node node;
  node.level = level;
  node.label = def.name;
  node.relation = def.relation;
  node.database = catalog.relation(def.relation).database;
  node.segment = catalog.relation(def.relation).segment;
  node.attr = attr;
  node.solid_parent = parent;

  // Derivation rules of §4.3.
  switch (def.kind) {
    case nf2::AttrKind::kSet:
    case nf2::AttrKind::kList:
      node.kind = NodeKind::kHoLU;  // rules 1 and 2
      break;
    case nf2::AttrKind::kTuple:
      node.kind = NodeKind::kHeLU;  // rule 3
      break;
    default:
      node.kind = NodeKind::kBLU;  // rule 4 (atomic) and references
      break;
  }

  NodeId id = AddNode(std::move(node));
  attr_nodes_[attr] = id;

  if (def.kind == nf2::AttrKind::kRef) {
    // Dashed edge to the referenced relation's complex-object node.  The
    // catalog forbids forward/recursive references, so the target's nodes
    // already exist (relations are built in creation order).
    NodeId target = co_nodes_.at(def.ref_target);
    nodes_[id].dashed_target = target;
    nodes_[target].dashed_in.push_back(id);
  } else if (!nf2::IsAtomic(def.kind)) {
    for (nf2::AttrId child : def.children) {
      BuildAttrSubtree(catalog, child, id, NodeLevel::kAttribute);
    }
  }
  return id;
}

LockGraph LockGraph::Build(const nf2::Catalog& catalog) {
  LockGraph g;
  for (nf2::DatabaseId db = 0; db < catalog.num_databases(); ++db) {
    Node n;
    n.kind = NodeKind::kHeLU;  // §4.2: "database can be regarded as a HeLU"
    n.level = NodeLevel::kDatabase;
    n.label = catalog.database(db).name;
    n.database = db;
    g.db_nodes_[db] = g.AddNode(std::move(n));
  }
  for (nf2::SegmentId seg = 0; seg < catalog.num_segments(); ++seg) {
    Node n;
    n.kind = NodeKind::kHeLU;
    n.level = NodeLevel::kSegment;
    n.label = catalog.segment(seg).name;
    n.database = catalog.segment(seg).database;
    n.segment = seg;
    n.solid_parent = g.db_nodes_.at(n.database);
    g.seg_nodes_[seg] = g.AddNode(std::move(n));
  }
  for (nf2::RelationId rel = 0; rel < catalog.num_relations(); ++rel) {
    const nf2::RelationDef& rdef = catalog.relation(rel);
    Node n;
    n.kind = NodeKind::kHoLU;  // §4.2: "'relations' is a HoLU"
    n.level = NodeLevel::kRelation;
    n.label = rdef.name;
    n.database = rdef.database;
    n.segment = rdef.segment;
    n.relation = rel;
    n.solid_parent = g.seg_nodes_.at(rdef.segment);
    NodeId rel_node = g.AddNode(std::move(n));
    g.rel_nodes_[rel] = rel_node;

    // The complex-object HeLU is the subtree built from the root tuple.
    NodeId co =
        g.BuildAttrSubtree(catalog, rdef.root, rel_node,
                           NodeLevel::kComplexObject);
    g.nodes_[co].label = "C.O. " + rdef.name;
    g.co_nodes_[rel] = co;

    // Fig. 2: indexes hang under the segment, siblings of the relation.
    Node idx;
    idx.kind = NodeKind::kHoLU;
    idx.level = NodeLevel::kIndex;
    idx.label = "idx " + rdef.name;
    idx.database = rdef.database;
    idx.segment = rdef.segment;
    idx.relation = rel;
    idx.solid_parent = g.seg_nodes_.at(rdef.segment);
    g.idx_nodes_[rel] = g.AddNode(std::move(idx));
  }
  return g;
}

bool LockGraph::IsEntryPoint(NodeId id) const {
  return !nodes_[id].dashed_in.empty();
}

std::vector<NodeId> LockGraph::SuperunitChain(NodeId id) const {
  std::vector<NodeId> chain;
  for (NodeId cur = nodes_[id].solid_parent; cur != kInvalidNode;
       cur = nodes_[cur].solid_parent) {
    chain.push_back(cur);
  }
  return chain;
}

std::vector<NodeId> LockGraph::RefBlusUnder(NodeId id) const {
  std::vector<NodeId> out;
  std::deque<NodeId> work{id};
  while (!work.empty()) {
    NodeId cur = work.front();
    work.pop_front();
    const Node& n = nodes_[cur];
    if (n.is_ref_blu()) out.push_back(cur);
    // Solid edges only: never descend across a unit boundary here.
    for (NodeId child : n.solid_children) work.push_back(child);
  }
  return out;
}

std::vector<nf2::RelationId> LockGraph::ReachableSharedRelations(
    NodeId id) const {
  std::vector<nf2::RelationId> out;
  std::unordered_set<nf2::RelationId> seen;
  std::deque<NodeId> roots{id};
  while (!roots.empty()) {
    NodeId root = roots.front();
    roots.pop_front();
    for (NodeId ref : RefBlusUnder(root)) {
      NodeId target = nodes_[ref].dashed_target;
      nf2::RelationId rel = nodes_[target].relation;
      if (seen.insert(rel).second) {
        out.push_back(rel);
        roots.push_back(target);  // common data may again contain common data
      }
    }
  }
  return out;
}

std::vector<NodeId> LockGraph::ObjectSpecificNodes(nf2::RelationId rel) const {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  auto add = [&](NodeId id) {
    if (seen.insert(id).second) out.push_back(id);
  };
  NodeId rel_node = rel_nodes_.at(rel);
  // Ancestor chain (database, segment), root first for readability.
  std::vector<NodeId> chain = SuperunitChain(rel_node);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) add(*it);
  // The relation subtree plus the dashed closure.
  std::deque<NodeId> work{rel_node};
  while (!work.empty()) {
    NodeId cur = work.front();
    work.pop_front();
    add(cur);
    const Node& n = nodes_[cur];
    for (NodeId child : n.solid_children) work.push_back(child);
    if (n.is_ref_blu()) {
      NodeId target = n.dashed_target;
      // Include the shared relation's superunit chain (Fig. 5 shows
      // "Segment seg2" and "HoLU (Relation effectors)" in cells' graph).
      for (NodeId anc : SuperunitChain(target)) add(anc);
      if (!seen.contains(target)) work.push_back(target);
    }
  }
  return out;
}

std::string LockGraph::NodeName(NodeId id) const {
  const Node& n = nodes_[id];
  std::string name(NodeKindName(n.kind));
  name += '(';
  switch (n.level) {
    case NodeLevel::kDatabase:
      name += "Database \"" + n.label + "\"";
      break;
    case NodeLevel::kSegment:
      name += "Segment \"" + n.label + "\"";
      break;
    case NodeLevel::kRelation:
      name += "Relation \"" + n.label + "\"";
      break;
    case NodeLevel::kIndex:
      name += "Index \"" + n.label + "\"";
      break;
    case NodeLevel::kComplexObject:
      name += "\"" + n.label + "\"";
      break;
    case NodeLevel::kAttribute:
      name += "\"" + n.label + "\"";
      break;
  }
  name += ')';
  return name;
}

std::string LockGraph::ToDot(nf2::RelationId rel,
                             const nf2::Catalog& catalog) const {
  std::ostringstream os;
  os << "digraph \"lock graph of " << catalog.relation(rel).name << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  std::vector<NodeId> nodes = ObjectSpecificNodes(rel);
  std::unordered_set<NodeId> included(nodes.begin(), nodes.end());
  auto escape = [](std::string s) {
    std::string out;
    for (char c : s) {
      if (c == '"') out += '\\';
      out += c;
    }
    return out;
  };
  for (NodeId id : nodes) {
    const Node& n = nodes_[id];
    os << "  n" << id << " [label=\"" << escape(NodeName(id)) << "\"";
    if (IsEntryPoint(id)) os << ", style=bold, color=blue";
    if (n.kind == NodeKind::kBLU) os << ", shape=ellipse";
    os << "];\n";
  }
  for (NodeId id : nodes) {
    const Node& n = nodes_[id];
    for (NodeId child : n.solid_children) {
      if (included.contains(child)) {
        os << "  n" << id << " -> n" << child << ";\n";
      }
    }
    if (n.is_ref_blu() && included.contains(n.dashed_target)) {
      os << "  n" << id << " -> n" << n.dashed_target
         << " [style=dashed, color=blue];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace codlock::logra
