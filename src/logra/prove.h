/// \file prove.h
/// \brief Symbolic protocol prover for the paper's lock technique.
///
/// The linter (`logra/lint`) checks the *shape* of derived lock graphs and
/// the model checker (`mc/`) checks concrete *executions*; this pass
/// statically proves, per schema, the theorems the protocol's correctness
/// actually rests on — parameterized over the mode matrices and the
/// authorization predicate, so any future matrix drop-in is machine
/// checked before an execution ever runs:
///
///  (a) **Mode-algebra laws.**  The compatibility matrix must be symmetric
///      and downward closed under the supremum order; the supremum must be
///      a join-semilattice (commutative/associative/idempotent) with NL as
///      identity and X as absorbing top, and every `sup` a *least* upper
///      bound; `SIX == Sup(S, IX)`; `IntentionOf` must map every non-NL
///      mode to a pure intention mode monotonically, stay below its
///      argument, preserve write intent against implicit readers, and —
///      the DAG-protocol linchpin — conflicting access modes must have
///      *compatible* intention modes (the conflict is re-detected deeper).
///
///  (b) **Side-entry visibility (§3.2.2 / §4.4.2).**  Every inner unit is
///      reachable both "from above" (through a referencing unit) and "from
///      the side" (through its own relation's hierarchy).  The prover
///      enumerates every route to every shared entry point, symbolically
///      computes the lock set rules 1–5 + 4′ acquire along each route —
///      including implicit upward and downward propagation — and proves
///      that every pair of semantically conflicting accesses collides on
///      some common node in incompatible modes.  A failure produces a
///      concrete two-path counterexample witness (both access paths with
///      their full symbolic lock sets).
///
///  (c) **Acquisition-order analysis.**  Root-to-leaf requests plus
///      propagation-induced acquisitions induce a per-schema order over
///      lock-graph nodes.  The union of all acquisition sequences must be
///      acyclic: a cycle means two transactions can acquire the same two
///      nodes in opposite orders — a potential deadlock site — and is
///      reported with the cycle and a contributing sequence as witness.
///      (Instance-level deadlocks *within* one node — two transactions
///      locking two robots in opposite key order — are out of scope here;
///      those are what the runtime deadlock policies and `codlock_mc`'s
///      cross-deadlock workload handle.)
///
/// A structural precondition check (side entries must land on unit roots)
/// guards (b): the propagation laws are only meaningful when every dashed
/// edge enters an inner unit at its entry point.
///
/// The prover kill-suite (`RunProverKillSuite`) mirrors the model
/// checker's runtime mutants statically: seeded broken matrices, dropped
/// propagation rules, broken 4′ weakening tables and corrupted graphs must
/// each be *refuted* — i.e. produce at least one finding with a
/// machine-readable witness — on a schema with shared inner units.

#ifndef CODLOCK_LOGRA_PROVE_H_
#define CODLOCK_LOGRA_PROVE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lock/mode.h"
#include "logra/lock_graph.h"
#include "nf2/schema.h"

namespace codlock::authz {
class AuthorizationManager;
}  // namespace codlock::authz

namespace codlock::logra {

/// \brief A mode algebra as explicit tables: the object the laws quantify
/// over.
///
/// `Shipped()` samples the production functions in `lock/mode.h`, so the
/// prover always judges the matrix the lock manager actually uses —
/// including any runtime mutation (`mutation::kCompatSX`) currently
/// enabled, which is what lets the static and runtime kill-suites
/// cross-check each other.
struct ModeAlgebra {
  std::array<std::array<bool, lock::kNumModes>, lock::kNumModes> compat{};
  std::array<std::array<lock::LockMode, lock::kNumModes>, lock::kNumModes>
      sup{};
  std::array<lock::LockMode, lock::kNumModes> intention{};

  static ModeAlgebra Shipped();

  bool Compatible(lock::LockMode a, lock::LockMode b) const {
    return compat[static_cast<int>(a)][static_cast<int>(b)];
  }
  lock::LockMode Sup(lock::LockMode a, lock::LockMode b) const {
    return sup[static_cast<int>(a)][static_cast<int>(b)];
  }
  lock::LockMode IntentionFor(lock::LockMode m) const {
    return intention[static_cast<int>(m)];
  }
  /// Lattice order defined by the join: a <= b iff sup(a,b) == b.
  bool Leq(lock::LockMode a, lock::LockMode b) const {
    return Sup(a, b) == b;
  }
};

/// \brief The protocol variant under proof: which of rules 1–5 + 4′ are in
/// force, and the 4′ weakening table.
///
/// `Paper()` is the protocol of §4.4.2; the kill-suite proves the theorems
/// *fail* when a rule is dropped or the 4′ table is corrupted.
struct ProtocolModel {
  /// Rules 1/2: entry-point locks implicitly lock the superunit chain.
  bool upward_propagation = true;
  /// Rules 3/4: S/X locks implicitly lock reachable entry points.
  bool downward_propagation = true;
  /// Mode landed on an entry point when X propagates onto a unit the
  /// transaction may modify (rule 4: X).
  lock::LockMode x_on_modifiable = lock::LockMode::kX;
  /// Mode landed when the transaction has no modify right on the unit
  /// (rule 4′: weakened to S so the data stays readable-stable).
  lock::LockMode x_on_nonmodifiable = lock::LockMode::kS;

  static ProtocolModel Paper() { return ProtocolModel{}; }
};

/// The theorem a finding refutes.
enum class ProofCheck : uint8_t {
  kModeAlgebra,       ///< one of the algebra laws fails
  kSideEntry,         ///< a dashed edge enters a unit at a non-root node
  kVisibility,        ///< two conflicting accesses never collide
  kAcquisitionOrder,  ///< the acquisition order graph has a cycle
};

std::string_view ProofCheckName(ProofCheck check);

/// One symbolically computed access path: the witness half of a
/// visibility counterexample.
struct AccessWitness {
  /// Human-readable description, e.g.
  /// "X on HeLU(\"robot\") via HoLU(cells) -> ref, writer of effectors".
  std::string description;
  /// Full symbolic lock set in acquisition order (node, landed mode).
  std::vector<std::pair<NodeId, lock::LockMode>> locks;
};

/// \brief One refuted theorem with its machine-readable witness.
struct ProverFinding {
  ProofCheck check = ProofCheck::kModeAlgebra;
  /// kModeAlgebra: the law identifier ("compat-symmetry", "sup-assoc",
  /// "intention-conflict-compat", ...).  Empty otherwise.
  std::string law;
  /// Anchor node: the shared entry point (kVisibility), the offending ref
  /// BLU (kSideEntry), a node on the cycle (kAcquisitionOrder).
  NodeId node = kInvalidNode;
  std::string message;
  /// kVisibility: the two conflicting accesses and their lock sets.
  AccessWitness left, right;
  /// kAcquisitionOrder: the node cycle (first node repeated at the end).
  std::vector<NodeId> cycle;
};

/// \brief Proof statistics + findings for one schema.
struct ProverReport {
  std::vector<ProverFinding> findings;
  size_t laws_checked = 0;
  size_t entry_points = 0;        ///< shared entry points analyzed
  size_t routes_enumerated = 0;   ///< distinct routes to inner units
  size_t accesses_enumerated = 0; ///< symbolic access specs
  size_t pairs_checked = 0;       ///< conflicting pairs collision-checked
  size_t order_nodes = 0;
  size_t order_edges = 0;

  bool ok() const { return findings.empty(); }

  /// `{"ok":bool,...,"findings":[{"check":...,"witness":{...}},...]}`.
  std::string ToJson() const;
  std::string ToString() const;
};

struct ProverOptions {
  /// Cap on distinct reference routes enumerated per inner unit (deep
  /// diamond chains are exponential; a capped enumeration is reported in
  /// the stats, never silently).
  size_t max_routes_per_unit = 64;
  /// Stop after this many findings (a broken matrix fails hundreds of
  /// pairs; one witness per theorem is what the kill-suite needs).
  size_t max_findings = 16;
  bool check_mode_algebra = true;
  bool check_side_entry = true;
  bool check_visibility = true;
  bool check_order = true;
};

/// Verifies the algebra laws of (a) alone — the standalone checker the
/// `mode_algebra_test` ctest runs over the shipped §3 matrix.
ProverReport CheckModeAlgebra(const ModeAlgebra& algebra);

/// Proves (a)–(c) for \p graph built from \p catalog under \p algebra and
/// \p model.  A graph fresh from `LockGraph::Build` with the shipped
/// algebra and `ProtocolModel::Paper()` must always prove clean.
ProverReport ProveProtocol(const LockGraph& graph, const nf2::Catalog& catalog,
                           const ModeAlgebra& algebra,
                           const ProtocolModel& model,
                           const ProverOptions& options = ProverOptions());

/// Convenience: shipped algebra, paper protocol.
ProverReport ProveProtocol(const LockGraph& graph, const nf2::Catalog& catalog,
                           const ProverOptions& options = ProverOptions());

/// Concrete-authz variant: instead of the two symbolic authorization
/// profiles, 4′ weakening is evaluated against \p authz for user \p user
/// (the witness a DBA would ask for: "can *this* user's accesses race?").
ProverReport ProveProtocolForUser(const LockGraph& graph,
                                  const nf2::Catalog& catalog,
                                  const authz::AuthorizationManager& authz,
                                  uint64_t user,
                                  const ProverOptions& options =
                                      ProverOptions());

// ---------------------------------------------------------------------------
// Prover kill-suite: seeded static mutants, each of which must be refuted.
// ---------------------------------------------------------------------------

enum class ProverMutant : uint8_t {
  /// One flipped compatibility cell: S ~ X (both directions) — the static
  /// twin of `mutation::Mutant::kCompatSX`.
  kCompatSX = 0,
  /// Compat(X, S) flipped in one direction only: symmetry broken.
  kCompatAsymmetric,
  /// Sup(S, IX) = X instead of SIX: the join is no longer least.
  kSupremumSIX,
  /// IntentionOf(X) = IS: write descent announced as read intent.
  kIntentionXToIS,
  /// Rules 1/2 dropped (static twin of kSkipUpwardPropagation).
  kSkipUpwardPropagation,
  /// Rules 3/4 dropped (static twin of kSkipDownwardPropagation).
  kSkipDownwardPropagation,
  /// Broken 4′ row: X onto a non-modifiable unit lands NL (no lock).
  kRule4PrimeNoLock,
  /// Broken 4′ row: X onto a non-modifiable unit lands IS (no implicit
  /// coverage of the unit the transaction still reads).
  kRule4PrimeIntentOnly,
  /// Broken 4′ row: X onto a *modifiable* unit over-weakened to S (lost
  /// write exclusion).
  kRule4PrimeOverWeaken,
  /// Graph mutant: one dashed edge rewired into an interior node of its
  /// target unit (a second entry point).
  kDashedIntoInterior,
  /// Graph mutant: an atomic BLU of a shared relation turned into a back
  /// reference — a reference cycle the acquisition order must report.
  kCyclicReference,
  kNumProverMutants,
};

inline constexpr size_t kNumProverMutants =
    static_cast<size_t>(ProverMutant::kNumProverMutants);

std::string_view ProverMutantName(ProverMutant m);

/// \brief Outcome of one kill-suite entry.
struct ProverKillResult {
  ProverMutant mutant = ProverMutant::kCompatSX;
  bool killed = false;          ///< the prover refuted the mutant
  size_t findings = 0;
  /// The refuting theorem + law of the first finding, e.g.
  /// "mode-algebra/compat-downward-closed" or "visibility".
  std::string caught_by;
  /// First finding's witness, JSON (empty if survived).
  std::string witness_json;
};

/// Runs every seeded mutant against \p graph / \p catalog (which must
/// contain at least one shared inner unit — e.g. the Figure 7 schema) and
/// returns one result per mutant.  The unmutated baseline is proved first;
/// if it is not clean, every result reports `killed == false` so a broken
/// baseline can never masquerade as a passing suite.
std::vector<ProverKillResult> RunProverKillSuite(
    const LockGraph& graph, const nf2::Catalog& catalog,
    const ProverOptions& options = ProverOptions());

}  // namespace codlock::logra

#endif  // CODLOCK_LOGRA_PROVE_H_
