/// \file txn_lock_cache.h
/// \brief Transaction-local cache of held lock modes (the acquisition fast
/// path).
///
/// Every protocol operation of §4.4.2 locks a root-to-leaf chain, and
/// upward/downward propagation re-acquires the same intention locks over
/// and over.  Those re-entrant acquisitions of an equal-or-weaker mode are
/// the overwhelmingly common case, yet each one pays a shard-mutex round
/// trip.  A `TxnLockCache` remembers (resource → granted mode) for one
/// transaction so that a covered re-acquisition returns without touching
/// any shard.
///
/// ## Ownership and threading
///
/// The cache is owned by the transaction (see `txn::Transaction`) and its
/// map is read and written **only by the transaction's own thread** — the
/// thread driving that transaction's protocol calls.  Other threads never
/// touch the map; they *invalidate* the cache through a single atomic
/// epoch counter.  The lock manager keeps a registry of attached caches
/// (`LockManager::AttachCache`) so that cross-thread events that can
/// shrink the held set — `Wound`, a foreign-path `Release`, `Downgrade`,
/// `ReleaseAll` — bump the epoch.  The owner detects the bump on its next
/// lookup and discards the whole map, falling back to the authoritative
/// slow path.
///
/// Clang Thread Safety Analysis cannot express "single owner thread"
/// directly, so the contract is encoded as an annotation-only capability:
/// `slots_`/`seen_epoch_` are `GUARDED_BY(owner_)` and every owner-thread
/// method asserts the capability (zero-cost — the assert function is an
/// empty inline).  Any future accessor of the map that forgets to declare
/// itself an owner-thread method is flagged under `-Wthread-safety`;
/// `Invalidate` needs no assertion because it only touches the atomic.
///
/// ## Coherence rules (kept provably simple)
///
///  1. An entry is written only after the slow path *granted* that mode —
///     the cache can never claim more than the shard holds.
///  2. A lookup answers only requests *covered* by the cached mode; any
///     stronger request goes to the slow path (which refreshes the entry).
///  3. Any event that can weaken or drop a held lock invalidates: the
///     owner erases the entry in place (same thread), every other path
///     bumps the epoch which discards the entire cache.
///  4. Fast-path grants are counted locally (`pending`); a matching
///     `Release` consumes a pending count first, so the shard-side hold
///     count only ever pairs with slow-path acquisitions.
///  5. A wound invalidates the whole cache, so a wounded transaction's
///     next acquisition reaches the slow path and fails with kAborted —
///     the cache never masks a wound or deadlock kill.

#ifndef CODLOCK_LOCK_TXN_LOCK_CACHE_H_
#define CODLOCK_LOCK_TXN_LOCK_CACHE_H_

#include <cstdint>
#include <vector>

#include "lock/mode.h"
#include "lock/resource.h"
#include "util/thread_annotations.h"
#include "util/wm_atomic.h"

namespace codlock::lock {

/// \brief Annotation-only capability standing in for "the owning thread is
/// the caller".  Never actually locked; owner-thread methods assert it so
/// the analysis can police access to owner-only state.
class CODLOCK_CAPABILITY("owner-thread") OwnerThreadCap {};

/// \brief Per-transaction held-lock cache.  See file comment for the
/// threading contract.
///
/// Storage is a flat array scanned linearly: transactions hold few locks
/// (a root-to-leaf path is ~4–13 resources) and a bounded scan over
/// contiguous slots beats hashing.  The array is capped at `kMaxEntries`;
/// once full, further grants simply are not cached — a miss is always
/// safe (rule 2) and the cap bounds the scan cost of misses.
class TxnLockCache {
 public:
  /// Most entries a cache will hold; beyond this, new grants go uncached.
  static constexpr size_t kMaxEntries = 64;

  TxnLockCache() = default;
  TxnLockCache(const TxnLockCache&) = delete;
  TxnLockCache& operator=(const TxnLockCache&) = delete;

  /// Cached slot for one resource.
  struct Slot {
    ResourceId res;
    LockMode mode = LockMode::kNL;
    uint8_t duration = 0;   ///< 1 when the shard-side holder is long.
    uint8_t fastpath = 0;   ///< 1 when an optimistic fast-path slot may
                            ///< back this mode (release probes the entry).
    uint8_t registered = 0; ///< 1 once the (txn, resource) pair is in the
                            ///< lock manager's held-lock registry.
    uint32_t pending = 0;   ///< fast-path grants not yet released
  };

  /// Mode this transaction is known to hold on \p r (kNL on miss or after
  /// an invalidation).  Owner thread only.
  LockMode CachedMode(const ResourceId& r) {
    AssertOwner();
    if (!Fresh()) return LockMode::kNL;
    const Slot* s = Find(r);
    return s == nullptr ? LockMode::kNL : s->mode;
  }

  /// True when the cached slot can absorb a request for \p mode with
  /// duration \p want_long: the cached mode covers it and a long request
  /// never piggybacks on a short-duration holder (the slow path must
  /// upgrade the holder's duration for crash survival).  On success the
  /// grant is counted locally.  Owner thread only.
  bool TryHit(const ResourceId& r, LockMode mode, bool want_long) {
    AssertOwner();
    if (!Fresh()) return false;
    Slot* s = Find(r);
    if (s == nullptr || !Covers(s->mode, mode)) return false;
    if (want_long && s->duration == 0) return false;
    ++s->pending;
    return true;
  }

  /// Records a slow-path grant of \p mode on \p r.  Owner thread only.
  void Note(const ResourceId& r, LockMode mode, bool is_long) {
    AssertOwner();
    Fresh();  // start a fresh array if an invalidation raced the grant
    Slot* s = FindOrCreate(r);
    if (s == nullptr) return;  // full: stay uncached
    s->mode = Supremum(s->mode, mode);
    s->registered = 1;  // the slow path records the pair itself
    if (is_long) s->duration = 1;
  }

  /// Records an optimistic fast-path grant of \p mode on \p r (always
  /// short duration).  Returns true when the caller must still register
  /// the (txn, resource) pair in the held-lock registry — i.e. on the
  /// first fast-path grant for this resource.  Owner thread only.
  bool NoteFastpath(const ResourceId& r, LockMode mode) {
    AssertOwner();
    Fresh();
    Slot* s = FindOrCreate(r);
    if (s == nullptr) return true;  // full: caller registers defensively
    s->mode = Supremum(s->mode, mode);
    s->fastpath = 1;
    const bool need_record = s->registered == 0;
    s->registered = 1;
    return need_record;
  }

  /// True when a release of \p r should probe the entry's fast-path slots
  /// before taking the shard mutex.  Conservative: an invalidated cache or
  /// an uncached resource answers true (probe; a miss is cheap and the
  /// slow path handles fast-path slots too).  Owner thread only.
  bool MaybeFastpathHeld(const ResourceId& r) {
    AssertOwner();
    if (!Fresh()) return true;
    const Slot* s = Find(r);
    if (s == nullptr) return true;
    return s->fastpath != 0;
  }

  /// Consumes one fast-path grant of \p r if any is pending; the caller
  /// skips the shard entirely when this returns true.  Owner thread only.
  bool ConsumeRelease(const ResourceId& r) {
    AssertOwner();
    if (!Fresh()) return false;
    Slot* s = Find(r);
    if (s == nullptr || s->pending == 0) return false;
    --s->pending;
    return true;
  }

  /// Drops the entry for \p r (owner-thread release/downgrade).
  void Erase(const ResourceId& r) {
    AssertOwner();
    if (!Fresh()) return;
    Slot* s = Find(r);
    if (s == nullptr) return;
    *s = slots_.back();
    slots_.pop_back();
  }

  /// Drops everything (EOT).  Owner thread only.
  void Clear() {
    AssertOwner();
    slots_.clear();
    seen_epoch_ = epoch_.load(wm::acquire);
  }

  /// Cross-thread invalidation: the owner discards the array on its next
  /// access.  Safe from any thread.
  void Invalidate() { epoch_.fetch_add(1, wm::release); }

  /// Number of live cached entries (test/inspection; owner thread only).
  size_t size() {
    AssertOwner();
    if (!Fresh()) return 0;
    return slots_.size();
  }

  /// The slots a fast-path lookup would currently trust: empty if a
  /// pending invalidation would discard the array first, the live array
  /// otherwise.  This is the cache-coherence oracle's view — every
  /// returned slot must be covered by the shard table's ground truth.
  ///
  /// Caller contract: the owning transaction's thread must be quiescent
  /// (the model checker audits only when every scheduled thread is parked
  /// or at an operation boundary), making this effectively an owner-thread
  /// read even when issued from the controller.
  std::vector<Slot> AuditSnapshot() const CODLOCK_NO_THREAD_SAFETY_ANALYSIS {
    if (epoch_.load(wm::acquire) != seen_epoch_) return {};
    return slots_;
  }

 private:
  /// Zero-cost capability assertion: calling any owner-thread method *is*
  /// the claim of being the owner; the analysis takes it from here.
  void AssertOwner() CODLOCK_ASSERT_CAPABILITY(owner_) {}

  /// Discards the array if an invalidation happened since the last access.
  /// Returns true when the contents are trustworthy.
  bool Fresh() CODLOCK_REQUIRES(owner_) {
    uint64_t e = epoch_.load(wm::acquire);
    if (e == seen_epoch_) return true;
    slots_.clear();
    seen_epoch_ = e;
    return false;
  }

  Slot* Find(const ResourceId& r) CODLOCK_REQUIRES(owner_) {
    for (Slot& s : slots_) {
      if (s.res == r) return &s;
    }
    return nullptr;
  }

  /// Find, creating an empty slot when absent; nullptr when full.
  Slot* FindOrCreate(const ResourceId& r) CODLOCK_REQUIRES(owner_) {
    Slot* s = Find(r);
    if (s != nullptr) return s;
    if (slots_.size() >= kMaxEntries) return nullptr;
    slots_.push_back(Slot{r, LockMode::kNL, 0, 0, 0, 0});
    return &slots_.back();
  }

  OwnerThreadCap owner_;
  std::vector<Slot> slots_ CODLOCK_GUARDED_BY(owner_);
  wm::Atomic<uint64_t> epoch_{0};
  uint64_t seen_epoch_ CODLOCK_GUARDED_BY(owner_) = 0;
};

}  // namespace codlock::lock

#endif  // CODLOCK_LOCK_TXN_LOCK_CACHE_H_
