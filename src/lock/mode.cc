#include "lock/mode.h"

#include "util/mutation_points.h"

namespace codlock::lock {

namespace {

constexpr int Idx(LockMode m) { return static_cast<int>(m); }

// Compatibility matrix, indexed [requested][held].
constexpr bool kCompat[kNumModes][kNumModes] = {
    //            NL     IS     IX     S      SIX    X
    /* NL  */ {true, true, true, true, true, true},
    /* IS  */ {true, true, true, true, true, false},
    /* IX  */ {true, true, true, false, false, false},
    /* S   */ {true, true, false, true, false, false},
    /* SIX */ {true, true, false, false, false, false},
    /* X   */ {true, false, false, false, false, false},
};

// Supremum (lattice join) matrix.
constexpr LockMode kSup[kNumModes][kNumModes] = {
    //            NL            IS            IX            S             SIX           X
    /* NL  */ {LockMode::kNL, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* IS  */ {LockMode::kIS, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX},
    /* S   */ {LockMode::kS, LockMode::kS, LockMode::kSIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX},
    /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
               LockMode::kX, LockMode::kX},
};

}  // namespace

std::string_view LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNL:
      return "NL";
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool Compatible(LockMode a, LockMode b) {
  if (kCompat[Idx(a)][Idx(b)]) return true;
  // Mutation point (kill-suite only): one flipped matrix cell — S and X
  // pass the compatibility test.  The oracles audit grants against an
  // independent copy of the §3 matrix, so this must surface as two
  // conflicting holders on one resource.
  if (mutation::Enabled(mutation::Mutant::kCompatSX) &&
      ((a == LockMode::kS && b == LockMode::kX) ||
       (a == LockMode::kX && b == LockMode::kS))) {
    return true;
  }
  return false;
}

LockMode Supremum(LockMode a, LockMode b) { return kSup[Idx(a)][Idx(b)]; }

bool Covers(LockMode held, LockMode wanted) {
  return Supremum(held, wanted) == held;
}

bool IsIntention(LockMode m) {
  return m == LockMode::kIS || m == LockMode::kIX;
}

LockMode IntentionFor(LockMode m) {
  switch (m) {
    case LockMode::kNL:
      return LockMode::kNL;
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kX:
      return LockMode::kIX;
  }
  return LockMode::kNL;
}

}  // namespace codlock::lock
