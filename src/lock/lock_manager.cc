#include "lock/lock_manager.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "fault/fault_injector.h"
#include "util/mutation_points.h"

namespace codlock::lock {

namespace {

// Fault points (fault/fault_injector.h).  `lock/waiter-alloc` models an
// allocation failure creating the waiter state; `lock/wait` forces a
// blocked request to time out; `lock/acquire-path` fails AcquirePath
// mid-path (arm with Trigger::Nth to pick the position) to exercise the
// partial-acquisition rollback.
fault::FaultPoint g_fault_waiter_alloc{"lock/waiter-alloc",
                                       fault::FaultKind::kAllocFail};
fault::FaultPoint g_fault_wait{"lock/wait", fault::FaultKind::kForcedTimeout};
fault::FaultPoint g_fault_acquire_path{"lock/acquire-path",
                                       fault::FaultKind::kError};

/// Bumps the held-locks gauge by \p n and its high-water mark (atomics
/// only).  Batched callers pay one RMW for a whole path.
void NoteHoldersAdded(LockStats& stats, int64_t n) {
  int64_t held = stats.held_locks.fetch_add(n, wm::relaxed) + n;
  int64_t prev = stats.max_held_locks.load(wm::relaxed);
  while (prev < held && !stats.max_held_locks.compare_exchange_weak(
                            prev, held, wm::relaxed)) {
  }
}

void NoteHolderAdded(LockStats& stats) { NoteHoldersAdded(stats, 1); }

/// Modes eligible for the optimistic fast path: the shared modes, which
/// are mutually compatible in every combination — concurrent fast-path
/// claims therefore need no ordering among themselves, only against the
/// mutex side (the seqlock summary provides that).
bool FastpathEligible(LockMode mode) {
  return mode == LockMode::kS || mode == LockMode::kIS;
}

}  // namespace

std::string_view DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kTimeoutOnly:
      return "timeout-only";
  }
  return "?";
}

size_t LockManager::DerivedNumShards(unsigned hardware_concurrency) {
  if (hardware_concurrency == 0) return 16;  // unknown: historical default
  const size_t want =
      std::bit_ceil(size_t{4} * static_cast<size_t>(hardware_concurrency));
  return std::clamp(want, size_t{16}, size_t{1024});
}

LockManager::LockManager(Options options)
    : options_(options),
      policy_(options.detect_deadlocks ? options.deadlock_policy
                                       : DeadlockPolicy::kTimeoutOnly),
      shards_(options.num_shards > 0
                  ? std::bit_ceil(static_cast<size_t>(options.num_shards))
                  : DerivedNumShards(std::thread::hardware_concurrency())),
      shard_mask_(shards_.size() - 1),
      shard_bits_(std::countr_zero(shards_.size())) {}

LockManager::~LockManager() {
  // Standard lifetime contract: no concurrent users at destruction.  Take
  // each shard mutex anyway so the analysis is satisfied and any release
  // store is flushed.
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (auto& head : shard.buckets) {
      Entry* e = head.load(wm::relaxed);
      head.store(nullptr, wm::relaxed);
      while (e != nullptr) {
        Entry* next = e->next.load(wm::relaxed);
        delete e;
        e = next;
      }
    }
    for (Entry* e : shard.retired) delete e;
    shard.retired.clear();
  }
}

void LockManager::Wound(TxnId txn) {
  {
    MutexLock lk(wounded_mu_);
    if (!wounded_.insert(txn).second) return;
    wounded_count_.fetch_add(1, wm::relaxed);
  }
  // The wounded transaction must observe the wound on its *next* acquire:
  // drop its fast path before killing any pending wait.
  InvalidateAttachedCache(txn);
  wfg_.Kill(txn, KillReason::kWounded);
}

bool LockManager::IsWounded(TxnId txn) const {
  if (wounded_count_.load(wm::acquire) == 0) return false;
  MutexLock lk(wounded_mu_);
  return wounded_.contains(txn);
}

void LockManager::ClearWound(TxnId txn) {
  if (wounded_count_.load(wm::acquire) == 0) return;
  MutexLock lk(wounded_mu_);
  if (wounded_.erase(txn) > 0) {
    wounded_count_.fetch_sub(1, wm::relaxed);
  }
}

void LockManager::AttachCache(TxnId txn, TxnLockCache* cache) {
  MutexLock lk(caches_mu_);
  caches_[txn] = cache;
  cache_count_.store(caches_.size(), wm::release);
}

void LockManager::DetachCache(TxnId txn) {
  MutexLock lk(caches_mu_);
  caches_.erase(txn);
  cache_count_.store(caches_.size(), wm::release);
}

void LockManager::InvalidateAttachedCache(TxnId txn) {
  // Mutation point (kill-suite only): drop the epoch bump.  Stale cached
  // modes then outlive the shard-side hold (e.g. after ReleaseAll at EOT)
  // and the cache-coherence oracle must see the divergence.
  if (mutation::Enabled(mutation::Mutant::kDropCacheInvalidation)) return;
  // With no cache attached anywhere there is nothing to invalidate; skip
  // the registry mutex (standalone LockManager users never pay for it).
  if (cache_count_.load(wm::acquire) == 0) return;
  MutexLock lk(caches_mu_);
  auto it = caches_.find(txn);
  if (it != caches_.end()) it->second->Invalidate();
}

// ---- Entry index (lock-free bucket chains + epoch-pooled nodes) ----------

LockManager::Entry* LockManager::FindEntry(const Shard& shard,
                                           const ResourceId& res) const {
  // Safe under the shard mutex *or* under an EBR guard: `res` and `next`
  // of a linked node are immutable, and an unlinked node keeps its `next`
  // pointing into the live tail so a reader mid-traversal continues.
  Entry* e = shard.buckets[BucketIndexFor(res)].load(wm::seq_cst);
  while (e != nullptr) {
    if (e->res == res) return e;
    e = e->next.load(wm::seq_cst);
  }
  return nullptr;
}

LockManager::Entry& LockManager::EntryFor(Shard& shard, const ResourceId& res) {
  const size_t b = BucketIndexFor(res);
  Entry* head = shard.buckets[b].load(wm::relaxed);
  for (Entry* e = head; e != nullptr;
       e = e->next.load(wm::relaxed)) {
    if (e->res == res) return *e;
  }
  Entry* e;
  if (!shard.retired.empty() &&
      ebr::Global().SafeToReclaim(shard.retired.front()->retire_stamp)) {
    // The oldest retired node is epoch-safe: no pinned reader can still
    // hold a pointer into it, so its key may be rewritten and its chain
    // link repointed.
    e = shard.retired.front();
    shard.retired.erase(shard.retired.begin());
    e->res = res;
    e->summary.store(0, wm::relaxed);
    e->holders.clear();
    e->waiters.clear();
  } else {
    e = new Entry();
    e->res = res;
  }
  e->next.store(head, wm::relaxed);
  // Publish: the seq_cst store orders the key/link writes above before the
  // node becomes reachable to lock-free readers.
  shard.buckets[b].store(e, wm::seq_cst);
  ++shard.num_entries;
  return *e;
}

void LockManager::RetireEntry(Shard& shard, Entry& entry) {
  const size_t b = BucketIndexFor(entry.res);
  Entry* cur = shard.buckets[b].load(wm::relaxed);
  if (cur == &entry) {
    shard.buckets[b].store(entry.next.load(wm::relaxed),
                           wm::seq_cst);
  } else {
    while (cur != nullptr) {
      Entry* next = cur->next.load(wm::relaxed);
      if (next == &entry) break;
      cur = next;
    }
    if (cur == nullptr) return;  // not linked — nothing to do (defensive)
    cur->next.store(entry.next.load(wm::relaxed),
                    wm::seq_cst);
  }
  // The node's own `next` stays intact: a pinned reader that reached it
  // before the unlink continues through to the live tail of the chain.
  entry.summary.fetch_or(kSummaryRetired, wm::seq_cst);
  entry.holders.clear();
  entry.waiters.clear();
  // Stamp *after* the unlink: a reader pinned at or above the stamp
  // provably validated its pin after the unlink became visible and cannot
  // reach this node any more.
  entry.retire_stamp = ebr::Global().Stamp();
  --shard.num_entries;
  shard.retired.push_back(&entry);
  // Bound the idle pool; only an epoch-safe node may be freed outright.
  if (shard.retired.size() > kEntryPoolSize &&
      ebr::Global().SafeToReclaim(shard.retired.front()->retire_stamp)) {
    delete shard.retired.front();
    shard.retired.erase(shard.retired.begin());
  }
}

void LockManager::MaybeRetireEntry(Shard& shard, Entry& entry) {
  if ((entry.summary.load(wm::relaxed) & kSummaryRetired) != 0) {
    return;  // already unlinked by an earlier repair
  }
  if (entry.holders.empty() && entry.waiters.empty() && FpSlotsEmpty(entry)) {
    RetireEntry(shard, entry);
  }
}

bool LockManager::FpSlotsEmpty(const Entry& entry) {
  for (const FpSlot& slot : entry.fp) {
    // A transient claim (txn set, word still 0) counts as occupied:
    // retiring under it would strand the claimant's revalidation.
    if (slot.txn.load(wm::seq_cst) != kInvalidTxn ||
        slot.word.load(wm::seq_cst) != 0) {
      return false;
    }
  }
  return true;
}

// ---- Grant machinery -----------------------------------------------------

bool LockManager::CompatibleWithHolders(const Shard& shard, const Entry& entry,
                                        TxnId txn, LockMode target) {
  (void)shard;  // capability-only parameter
  bool compatible = true;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;
    stats_.compat_tests.Add();
    if (!Compatible(target, h.mode)) {
      compatible = false;
      break;
    }
  }
  if (compatible) {
    // Fast-path slots are holders too.  A transaction appearing both in
    // the vector and in a slot is conflict-equivalent to holding the
    // supremum of the two modes (the lattice distributes compatibility
    // over suprema), so testing each part separately is exact.
    for (const FpSlot& slot : entry.fp) {
      const TxnId t = slot.txn.load(wm::seq_cst);
      if (t == kInvalidTxn || t == txn) continue;
      const uint64_t w = slot.word.load(wm::seq_cst);
      if (w == 0) continue;  // transient claim: its revalidation sees us
      stats_.compat_tests.Add();
      if (!Compatible(target, FpMode(w))) {
        compatible = false;
        break;
      }
    }
  }
  if (!compatible) stats_.conflicts.Add();
  return compatible;
}

std::vector<TxnId> LockManager::BlockersOf(const Shard& shard,
                                           const Entry& entry, TxnId txn,
                                           LockMode target,
                                           const WaiterState* self) const {
  (void)shard;  // capability-only parameter
  std::vector<TxnId> blockers;
  auto add = [&blockers, txn](TxnId t) {
    if (t == txn) return;
    if (std::find(blockers.begin(), blockers.end(), t) == blockers.end()) {
      blockers.push_back(t);
    }
  };
  for (const Holder& h : entry.holders) {
    if (h.txn != txn && !Compatible(target, h.mode)) add(h.txn);
  }
  for (const FpSlot& slot : entry.fp) {
    const TxnId t = slot.txn.load(wm::seq_cst);
    if (t == kInvalidTxn || t == txn) continue;
    const uint64_t w = slot.word.load(wm::seq_cst);
    if (w != 0 && !Compatible(target, FpMode(w))) add(t);
  }
  if (self == nullptr || !self->is_conversion) {
    // FIFO: a regular request is also gated by every earlier queued waiter.
    for (const auto& w : entry.waiters) {
      if (w.get() == self) break;
      if (!w->granted &&
          w->killed.load(wm::relaxed) == KillReason::kNone) {
        add(w->txn);
      }
    }
  }
  return blockers;
}

void LockManager::GrantWaiters(Shard& shard, Entry& entry) {
  for (auto it = entry.waiters.begin(); it != entry.waiters.end();) {
    const std::shared_ptr<WaiterState>& w = *it;
    if (w->killed.load(wm::relaxed) != KillReason::kNone) {
      // The victim cleans up its own queue entry; skip it here.
      ++it;
      continue;
    }
    if (!CompatibleWithHolders(shard, entry, w->txn, w->wanted)) {
      // Strict FIFO: nobody behind a blocked waiter is granted.
      break;
    }
    Holder* mine = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == w->txn) {
        mine = &h;
        break;
      }
    }
    if (mine != nullptr) {
      mine->mode = Supremum(mine->mode, w->wanted);
      mine->count++;
      if (w->duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{w->txn, w->wanted, 1, w->duration});
      NoteHolderAdded(stats_);
    }
    w->granted = true;
    // Mutation point (kill-suite only): lose the wakeup — the waiter is
    // promoted to holder but never notified.  The schedule wedges and the
    // termination oracle must flag the stuck state.
    if (!mutation::Enabled(mutation::Mutant::kSkipWaiterWakeup)) {
      // Per-waiter wakeup: only the transaction this grant unblocked runs.
      w->cv.NotifyOne();
    }
    it = entry.waiters.erase(it);
  }
}

void LockManager::EraseWaiter(Shard& shard, Entry& entry,
                              const WaiterState* w) {
  (void)shard;  // carries the REQUIRES(shard.mu) annotation
  for (auto it = entry.waiters.begin(); it != entry.waiters.end(); ++it) {
    if (it->get() == w) {
      entry.waiters.erase(it);
      return;
    }
  }
}

void LockManager::RecordHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto& v = txn_locks_[txn];
  if (std::find(v.begin(), v.end(), resource) == v.end()) {
    v.push_back(resource);
  }
}

void LockManager::RecordHeldBatch(TxnId txn,
                                  std::span<const ResourceId> resources) {
  if (resources.empty()) return;
  MutexLock lk(registry_mu_);
  auto& v = txn_locks_[txn];
  for (const ResourceId& resource : resources) {
    if (std::find(v.begin(), v.end(), resource) == v.end()) {
      v.push_back(resource);
    }
  }
}

void LockManager::ForgetHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto it = txn_locks_.find(txn);
  if (it == txn_locks_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), resource), v.end());
  if (v.empty()) txn_locks_.erase(it);
}

// ---- Optimistic compatible-mode fast path --------------------------------

bool LockManager::TryFastpathAcquire(TxnId txn, ResourceId resource,
                                     LockMode mode,
                                     const AcquireOptions& options,
                                     TxnLockCache* cache) {
  (void)options;  // duration gated by the caller (fast-path holds are short)
  if (draining_.load(wm::acquire)) return false;
  ebr::Reclaimer::Guard guard(ebr::Global());
  if (!guard.ok()) return false;  // registration table full: slow path only
  Shard& shard = ShardFor(resource);
  Entry* entry = FindEntry(shard, resource);
  if (entry == nullptr) return false;  // first toucher pays the slow path

  // Mutation point (kill-suite only): grant without the seqlock premise or
  // revalidation.  A shared mode then lands over an exclusive holder and
  // the compatibility oracle must see the impossible pair.
  const bool validate =
      !mutation::Enabled(mutation::Mutant::kFastpathSkipValidation);

  // Order-weakening mutation point (kill-suite only): the premise and
  // revalidation loads must be seq_cst — `codlock_wmc`'s
  // summary_publish_validate harness proves relaxed loads can validate
  // against a stale even summary and grant S over an X holder.
  const wm::MemoryOrder summary_mo = mutation::WeakenedOrder(
      mutation::Mutant::kWmSummaryLoadRelaxed, wm::seq_cst);
  const uint64_t s1 = entry->summary.load(summary_mo);
  if (validate) {
    // Premise: settled summary (even sequence), no queued waiter to be
    // fair to, not retired, and no vector holder whose mode conflicts
    // with ours.  Other *fast-path* holders are always S/IS and therefore
    // compatible by construction.
    if ((s1 & 1) != 0 || (s1 & (kSummaryWaiters | kSummaryRetired)) != 0) {
      return false;
    }
    const uint64_t mask = s1 >> kSummaryMaskShift;
    for (int m = 0; m < kNumModes; ++m) {
      if ((mask & (uint64_t{1} << m)) != 0 &&
          !Compatible(mode, static_cast<LockMode>(m))) {
        return false;
      }
    }
  }

  FpSlot* free_slot = nullptr;
  for (FpSlot& slot : entry->fp) {
    const TxnId owner = slot.txn.load(wm::seq_cst);
    if (owner == txn) {
      // Re-entrant covered acquisition: bump the count.  No revalidation —
      // a covered re-acquisition never changes the entry's conflict set
      // (the slow path bypasses the waiter queue for it too).
      uint64_t w = slot.word.load(wm::seq_cst);
      while (true) {
        if (w == 0 || !Covers(FpMode(w), mode)) return false;  // slow path
        if (slot.word.compare_exchange_weak(w, w + kFpCountOne,
                                            wm::seq_cst)) {
          stats_.fastpath_grants.Add();
          if (cache != nullptr && cache->NoteFastpath(resource, FpMode(w))) {
            RecordHeld(txn, resource);
          }
          return true;
        }
      }
    }
    if (free_slot == nullptr && owner == kInvalidTxn) free_slot = &slot;
  }
  if (free_slot == nullptr) return false;  // slots saturated: slow path

  TxnId expected = kInvalidTxn;
  // Order-weakening mutation point: the claim must sit in the seq_cst
  // total order for the Dekker-style argument below — relaxed, a
  // mutex-side slot scan may legally read the stale empty slot
  // (codlock_wmc: summary_publish_validate, wm.slot-cas-relaxed).
  if (!free_slot->txn.compare_exchange_strong(
          expected, txn,
          mutation::WeakenedOrder(mutation::Mutant::kWmSlotCasRelaxed,
                                  wm::seq_cst))) {
    return false;  // lost the slot race; slow path rather than re-scan
  }
  free_slot->word.store(FpWord(mode, 1), wm::seq_cst);
  if (validate) {
    // Revalidate: a shard-mutex mutation between the two reads bumped the
    // sequence.  Mutators go odd *before* their compatibility scan, so in
    // the seq_cst total order either they see our claim or we see their
    // bump — never neither.
    const uint64_t s2 = entry->summary.load(summary_mo);
    if (s2 != s1) {
      UndoFastpathClaim(shard, *entry, *free_slot, /*fresh_claim=*/true);
      stats_.fastpath_failures.Add();
      return false;
    }
  }
  fastpath_used_.store(true, wm::release);
  stats_.fastpath_grants.Add();
  NoteHolderAdded(stats_);
  if (cache == nullptr || cache->NoteFastpath(resource, mode)) {
    RecordHeld(txn, resource);
  }
  return true;
}

void LockManager::UndoFastpathClaim(Shard& shard, Entry& entry, FpSlot& slot,
                                    bool fresh_claim) {
  slot.word.store(0, wm::seq_cst);
  if (fresh_claim) slot.txn.store(kInvalidTxn, wm::seq_cst);
  // A mutex-side grant decision may have counted the transient claim as a
  // holder (and parked a waiter against it), and the entry may now be
  // empty.  Repair under the mutex so no wakeup is lost.
  MutexLock lk(shard.mu);
  if ((entry.summary.load(wm::relaxed) & kSummaryRetired) != 0) {
    return;  // already unlinked; nothing to repair
  }
  EntryMutation em(entry);
  GrantWaiters(shard, entry);
  MaybeRetireEntry(shard, entry);
}

LockManager::FpRelease LockManager::FastpathRelease(TxnId txn,
                                                    ResourceId resource) {
  ebr::Reclaimer::Guard guard(ebr::Global());
  if (!guard.ok()) return FpRelease::kNoSlot;
  Shard& shard = ShardFor(resource);
  Entry* entry = FindEntry(shard, resource);
  if (entry == nullptr) return FpRelease::kNoSlot;
  for (FpSlot& slot : entry->fp) {
    if (slot.txn.load(wm::seq_cst) != txn) continue;
    uint64_t w = slot.word.load(wm::seq_cst);
    while (true) {
      if (w == 0) return FpRelease::kNoSlot;  // purged concurrently
      const uint64_t next = (w >> 8) > 1 ? w - kFpCountOne : 0;
      if (!slot.word.compare_exchange_weak(w, next,
                                           wm::seq_cst)) {
        continue;
      }
      stats_.releases.Add();
      if (next != 0) return FpRelease::kReleased;
      slot.txn.store(kInvalidTxn, wm::seq_cst);
      stats_.held_locks.fetch_sub(1, wm::relaxed);
      // Freed the last count.  If a waiter parked against this hold — or a
      // grant decision that could park one is in flight (odd sequence) —
      // repair under the mutex; otherwise an X waiter blocked only by our
      // S would sleep to its deadline.  Also repair when the entry is
      // plausibly empty, so it gets retired rather than lingering.
      const uint64_t s = entry->summary.load(wm::seq_cst);
      bool occupied = false;
      for (const FpSlot& other : entry->fp) {
        if (&other == &slot) continue;
        if (other.txn.load(wm::seq_cst) != kInvalidTxn ||
            other.word.load(wm::seq_cst) != 0) {
          occupied = true;
          break;
        }
      }
      const bool maybe_empty = (s >> kSummaryMaskShift) == 0 && !occupied;
      if ((s & 1) != 0 || (s & kSummaryWaiters) != 0 ||
          ((s & kSummaryRetired) == 0 && maybe_empty)) {
        MutexLock lk(shard.mu);
        if ((entry->summary.load(wm::relaxed) &
             kSummaryRetired) == 0) {
          EntryMutation em(*entry);
          GrantWaiters(shard, *entry);
          MaybeRetireEntry(shard, *entry);
        }
      }
      return FpRelease::kReleasedLast;
    }
  }
  return FpRelease::kNoSlot;
}

// ---- Acquire -------------------------------------------------------------

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode,
                            const AcquireOptions& options,
                            TxnLockCache* cache) {
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("invalid transaction id");
  }
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot acquire mode NL");
  }
  // Fast path: a covered re-acquisition is answered from the transaction's
  // own cache without touching any mutex.  A wound invalidates the cache
  // (see Wound), so a wounded transaction always falls through to the
  // slow path and fails there.
  // A hit pays exactly one atomic RMW: cache_hits.  Total requests =
  // requests + cache_hits and total grants = grants + cache_hits (see
  // metrics.h).
  if (cache != nullptr &&
      cache->TryHit(resource, mode, options.duration == LockDuration::kLong)) {
    stats_.cache_hits.Add();
    return Status::OK();
  }
  stats_.requests.Add();

  if (policy_ == DeadlockPolicy::kWoundWait && IsWounded(txn)) {
    return Status::Aborted("transaction " + std::to_string(txn) +
                           " was wounded by an older transaction");
  }
  // Optimistic fast path: a short S/IS request against a settled entry is
  // granted by claiming a fast-path slot, seqlock-validated — no shard
  // mutex.  Gated on an attached cache so releases know to probe the slot.
  if (options_.enable_fastpath && cache != nullptr &&
      options.duration == LockDuration::kShort && FastpathEligible(mode) &&
      TryFastpathAcquire(txn, resource, mode, options, cache)) {
    stats_.grants.Add();
    stats_.immediate_grants.Add();
    return Status::OK();
  }
  return AcquireSlow(txn, resource, mode, options, cache);
}

Status LockManager::AcquireSlow(TxnId txn, ResourceId resource, LockMode mode,
                                const AcquireOptions& options,
                                TxnLockCache* cache) {
  Shard& shard = ShardFor(resource);
  bool record_held = false;
  LockMode granted = LockMode::kNL;
  Status status;
  {
    MutexLock lk(shard.mu);
    status =
        AcquireLocked(shard, txn, resource, mode, options, record_held,
                      granted);
  }
  // Lock order: the registry mutex is only ever taken with no shard held.
  if (status.ok()) {
    if (record_held) RecordHeld(txn, resource);
    if (cache != nullptr) {
      cache->Note(resource, granted, options.duration == LockDuration::kLong);
    }
  }
  return status;
}

Status LockManager::AcquirePath(TxnId txn, std::span<const ResourceId> path,
                                LockMode leaf_mode,
                                const AcquireOptions& options,
                                TxnLockCache* cache) {
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("invalid transaction id");
  }
  if (path.empty()) {
    return Status::InvalidArgument("empty lock path");
  }
  if (leaf_mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot acquire mode NL");
  }
  if (policy_ == DeadlockPolicy::kWoundWait && IsWounded(txn)) {
    return Status::Aborted("transaction " + std::to_string(txn) +
                           " was wounded by an older transaction");
  }
  const LockMode prefix_mode = IntentionFor(leaf_mode);
  const bool want_long = options.duration == LockDuration::kLong;
  const size_t n = path.size();
  auto mode_of = [&](size_t i) { return i + 1 == n ? leaf_mode : prefix_mode; };

  // Batched processing tracks path positions in 64-bit masks on the stack;
  // paths longer than that (never produced by the protocols — hierarchies
  // are ~4–13 levels) fall back to per-resource acquisition.
  constexpr size_t kMaxBatch = 64;
  if (n > kMaxBatch) {
    for (size_t i = 0; i < n; ++i) {
      CODLOCK_RETURN_IF_ERROR(Acquire(txn, path[i], mode_of(i), options,
                                      cache));
    }
    return Status::OK();
  }

  // Pass 1: answer covered re-acquisitions from the cache (no mutex).
  uint32_t shard_of[kMaxBatch];
  uint64_t todo_mask = 0;
  uint64_t hit_mask = 0;
  for (size_t i = 0; i < n; ++i) {
    if (cache != nullptr && cache->TryHit(path[i], mode_of(i), want_long)) {
      hit_mask |= uint64_t{1} << i;
      continue;
    }
    shard_of[i] = static_cast<uint32_t>(ShardIndexFor(path[i]));
    todo_mask |= uint64_t{1} << i;
  }
  // Total requests = requests + cache_hits (see metrics.h): one batched
  // RMW per counter for the whole path.
  const uint64_t hits = static_cast<uint64_t>(std::popcount(hit_mask));
  if (hits != 0) stats_.cache_hits.Add(hits);
  if (n - hits != 0) stats_.requests.Add(n - hits);
  if (todo_mask == 0) return Status::OK();

  // Pass 1.5: optimistic fast path for shared-mode positions (an S leaf
  // makes the *whole* path eligible: IS prefix + S leaf).  Successes are
  // fully accounted inside TryFastpathAcquire except for the batched
  // grants counters below.
  uint64_t fp_mask = 0;
  if (options_.enable_fastpath && cache != nullptr && !want_long) {
    for (uint64_t scan = todo_mask; scan != 0; scan &= scan - 1) {
      const size_t i = static_cast<size_t>(std::countr_zero(scan));
      if (!FastpathEligible(mode_of(i))) continue;
      if (TryFastpathAcquire(txn, path[i], mode_of(i), options, cache)) {
        fp_mask |= uint64_t{1} << i;
        todo_mask &= ~(uint64_t{1} << i);
      }
    }
  }

  // Pass 2: group by shard and visit each shard mutex once — or, for
  // combining-enabled requests (downward propagation), publish the group
  // into the shard's flat-combining mailbox so one combiner applies many
  // propagators' batches under a single mutex acquisition.  Immediate
  // grants may land out of path order; that is invisible to other
  // transactions (each grant only *adds* to this transaction's hold set)
  // and the root-to-leaf order is restored for anything that must wait.
  LockMode granted_of[kMaxBatch];
  ResourceId newly_held[kMaxBatch];
  size_t num_newly_held = 0;
  uint64_t granted_mask = 0;
  uint64_t deferred_mask = 0;
  for (uint64_t rest = todo_mask; rest != 0;) {
    const size_t first = static_cast<size_t>(std::countr_zero(rest));
    const uint32_t shard_idx = shard_of[first];
    Shard& shard = shards_[shard_idx];
    // Gather this shard's group.
    ResourceId group_res[kMaxBatch];
    LockMode group_mode[kMaxBatch];
    size_t group_idx[kMaxBatch];
    size_t g = 0;
    for (uint64_t scan = rest; scan != 0; scan &= scan - 1) {
      const size_t i = static_cast<size_t>(std::countr_zero(scan));
      if (shard_of[i] != shard_idx) continue;
      rest &= ~(uint64_t{1} << i);
      group_res[g] = path[i];
      group_mode[g] = mode_of(i);
      group_idx[g] = i;
      ++g;
    }
    uint32_t cgranted = 0;
    uint32_t crecord = 0;
    LockMode cmodes[kCombineItems];
    bool combined = false;
    if (options.combine && g <= kCombineItems) {
      combined = CombineAcquireShard(
          shard, txn, std::span<const ResourceId>(group_res, g),
          std::span<const LockMode>(group_mode, g), options, &cgranted,
          &crecord, cmodes);
    }
    if (combined) {
      for (size_t k = 0; k < g; ++k) {
        const size_t i = group_idx[k];
        if ((cgranted & (uint32_t{1} << k)) != 0) {
          granted_of[i] = cmodes[k];
          granted_mask |= uint64_t{1} << i;
          if ((crecord & (uint32_t{1} << k)) != 0) {
            newly_held[num_newly_held++] = path[i];
          }
        } else {
          deferred_mask |= uint64_t{1} << i;
        }
      }
      continue;
    }
    MutexLock lk(shard.mu);
    for (size_t k = 0; k < g; ++k) {
      const size_t i = group_idx[k];
      Entry& entry = EntryFor(shard, path[i]);
      bool record_held = false;
      LockMode granted = LockMode::kNL;
      bool ok;
      {
        EntryMutation em(entry);
        ok = TryGrantLocked(shard, entry, txn, group_mode[k], options, granted,
                            record_held);
      }
      if (ok) {
        granted_of[i] = granted;
        granted_mask |= uint64_t{1} << i;
        if (record_held) newly_held[num_newly_held++] = path[i];
      } else {
        deferred_mask |= uint64_t{1} << i;
      }
    }
  }
  const uint64_t immediate = static_cast<uint64_t>(std::popcount(granted_mask) +
                                                   std::popcount(fp_mask));
  if (immediate != 0) {
    stats_.grants.Add(immediate);
    stats_.immediate_grants.Add(immediate);
  }
  if (num_newly_held != 0) {
    NoteHoldersAdded(stats_, static_cast<int64_t>(num_newly_held));
  }

  // One registry lock for the whole batch (instead of one per resource).
  RecordHeldBatch(txn, std::span<const ResourceId>(newly_held, num_newly_held));
  if (cache != nullptr) {
    for (uint64_t scan = granted_mask; scan != 0; scan &= scan - 1) {
      const size_t i = static_cast<size_t>(std::countr_zero(scan));
      cache->Note(path[i], granted_of[i], want_long);
    }
  }

  // Pass 3: whatever conflicted is acquired blocking, in path order
  // (rule 5 root-to-leaf waiting semantics; ascending bits = path order).
  // A mid-path failure (timeout, deadlock, shed, injected fault) rolls
  // back every acquisition *this call* made — cache hits, fast-path and
  // immediate grants and blocking grants — leaf-to-root, so the failed
  // path leaves no new intention locks behind for the retry loop to trip
  // over.
  Status status;
  uint64_t blocking_done = 0;
  for (uint64_t scan = deferred_mask; scan != 0; scan &= scan - 1) {
    const size_t i = static_cast<size_t>(std::countr_zero(scan));
    if (fault::FireResult f = g_fault_acquire_path.Fire()) {
      status = fault::StatusFor(f, g_fault_acquire_path.name());
      break;
    }
    status = AcquireSlow(txn, path[i], mode_of(i), options, cache);
    if (!status.ok()) break;
    blocking_done |= uint64_t{1} << i;
  }
  if (status.ok()) return Status::OK();

  const uint64_t undo = hit_mask | fp_mask | granted_mask | blocking_done;
  for (size_t i = n; i-- > 0;) {
    if ((undo & (uint64_t{1} << i)) == 0) continue;
    // Count-paired: a re-entrant acquisition merely drops back to its
    // previous count; a fresh grant disappears.  Mode upgrades from
    // conversions persist (safe — strictly stronger).
    Release(txn, path[i], cache);
  }
  return status;
}

// ---- Flat combining ------------------------------------------------------

bool LockManager::CombineAcquireShard(Shard& shard, TxnId txn,
                                      std::span<const ResourceId> res,
                                      std::span<const LockMode> modes,
                                      const AcquireOptions& options,
                                      uint32_t* granted, uint32_t* record,
                                      LockMode* granted_modes) {
  CombineRequest* own = nullptr;
  for (CombineRequest& c : shard.combine) {
    uint32_t expected = kCombineEmpty;
    if (c.state.compare_exchange_strong(expected, kCombinePublishing,
                                        wm::acq_rel)) {
      own = &c;
      break;
    }
  }
  if (own == nullptr) return false;  // mailboxes busy: use the direct path
  own->txn = txn;
  own->n = static_cast<uint32_t>(res.size());
  own->duration = options.duration;
  // Drain order: descending root node id — the global acquisition order
  // the deadlock-order proof establishes for propagation chains.
  own->order_key = res[0].node;
  for (size_t i = 0; i < res.size(); ++i) {
    own->res[i] = res[i];
    own->mode[i] = modes[i];
  }
  stats_.combine_published.Add();
  // Order-weakening mutation point: the Published transition carries the
  // plain request fields to the combiner's acquire-claim — relaxed, the
  // batch read races the publisher's writes (codlock_wmc:
  // mailbox_publish_drain, wm.mailbox-publish-relaxed).
  own->state.store(kCombinePublished,
                   mutation::WeakenedOrder(
                       mutation::Mutant::kWmMailboxPublishRelaxed,
                       wm::seq_cst));

  // Combine or be combined: give a running combiner a brief chance to pick
  // the batch up, grabbing the mutex ourselves when it is free.  The
  // blocking fallback is bounded — shard mutex holders never sleep (waits
  // release it) — and self-drains, so a published request always
  // completes regardless of scheduling.
  bool done = false;
  for (int spin = 0; spin < 64; ++spin) {
    const uint32_t st = own->state.load(wm::acquire);
    if (st == kCombineDone) {
      done = true;
      break;
    }
    if (st == kCombinePublished && shard.mu.TryLock()) {
      CombinerDrain(shard, own);
      shard.mu.Unlock();
      done = true;
      break;
    }
    std::this_thread::yield();
  }
  while (!done) {
    shard.mu.Lock();
    CombinerDrain(shard, own);
    shard.mu.Unlock();
    // A concurrent combiner may have claimed the batch before we got the
    // mutex; wait for it to publish the results.
    while (own->state.load(wm::acquire) == kCombineClaimed) {
      std::this_thread::yield();
    }
    done = own->state.load(wm::acquire) == kCombineDone;
  }
  *granted = own->granted_mask;
  *record = own->record_mask;
  for (uint32_t i = 0; i < own->n; ++i) granted_modes[i] = own->granted[i];
  own->state.store(kCombineEmpty, wm::release);
  return true;
}

void LockManager::CombinerDrain(Shard& shard, const CombineRequest* own) {
  CombineRequest* batch[kCombineSlots];
  size_t nb = 0;
  for (CombineRequest& c : shard.combine) {
    uint32_t expected = kCombinePublished;
    if (c.state.compare_exchange_strong(expected, kCombineClaimed,
                                        wm::acq_rel)) {
      batch[nb++] = &c;
    }
  }
  if (nb == 0) return;
  // Insertion sort, descending order_key (at most kCombineSlots = 4
  // elements; also sidesteps std::sort's 16-element insertion threshold
  // tripping -Warray-bounds on the tiny stack array).
  for (size_t i = 1; i < nb; ++i) {
    CombineRequest* key = batch[i];
    size_t j = i;
    while (j > 0 && batch[j - 1]->order_key < key->order_key) {
      batch[j] = batch[j - 1];
      --j;
    }
    batch[j] = key;
  }
  for (size_t bi = 0; bi < nb; ++bi) {
    CombineRequest& req = *batch[bi];
    req.granted_mask = 0;
    req.record_mask = 0;
    // Mutation point (kill-suite only): report every item granted without
    // applying any of them.  The publisher then caches modes the lock
    // table never granted and the cache-coherence oracle must see the
    // phantom claim.
    if (mutation::Enabled(mutation::Mutant::kCombineDropRequest)) {
      for (uint32_t i = 0; i < req.n; ++i) {
        req.granted_mask |= uint32_t{1} << i;
        req.granted[i] = req.mode[i];
      }
      req.state.store(kCombineDone, wm::seq_cst);
      continue;
    }
    AcquireOptions opts;
    opts.duration = req.duration;
    for (uint32_t i = 0; i < req.n; ++i) {
      Entry& entry = EntryFor(shard, req.res[i]);
      bool record_held = false;
      LockMode g = LockMode::kNL;
      bool ok;
      {
        EntryMutation em(entry);
        ok = TryGrantLocked(shard, entry, req.txn, req.mode[i], opts, g,
                            record_held);
      }
      if (ok) {
        req.granted_mask |= uint32_t{1} << i;
        req.granted[i] = g;
        if (record_held) req.record_mask |= uint32_t{1} << i;
      }
      // A failed item stays with its publisher (blocking pass 3); the
      // entry is non-empty when a grant fails, so nothing to retire here.
    }
    if (&req != own) stats_.combine_drained.Add();
    req.state.store(kCombineDone, wm::seq_cst);
  }
}

// ---- Locked grant/wait machinery -----------------------------------------

bool LockManager::TryGrantLocked(Shard& shard, Entry& entry, TxnId txn,
                                 LockMode mode, const AcquireOptions& options,
                                 LockMode& granted, bool& record_held) {
  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      break;
    }
  }

  // Re-entrant acquisition of a covered mode: bump the count.  The caller
  // accounts grants/immediate_grants (batched in AcquirePath).
  if (mine != nullptr && Covers(mine->mode, mode)) {
    mine->count++;
    if (options.duration == LockDuration::kLong) {
      mine->duration = LockDuration::kLong;
    }
    granted = mine->mode;
    return true;
  }

  const LockMode target = mine != nullptr ? Supremum(mine->mode, mode) : mode;
  const bool is_conversion = mine != nullptr;

  const bool queue_clear = [&] {
    if (is_conversion) return true;  // conversions jump the queue
    for (const auto& w : entry.waiters) {
      if (!w->granted &&
          w->killed.load(wm::relaxed) == KillReason::kNone) {
        return false;
      }
    }
    return true;
  }();

  if (queue_clear && CompatibleWithHolders(shard, entry, txn, target)) {
    if (mine != nullptr) {
      mine->mode = target;
      mine->count++;
      if (options.duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{txn, target, 1, options.duration});
      record_held = true;  // caller bumps the held-locks gauge
    }
    granted = target;
    return true;
  }
  return false;
}

Status LockManager::AcquireLocked(Shard& shard, TxnId txn, ResourceId resource,
                                  LockMode mode, const AcquireOptions& options,
                                  bool& record_held, LockMode& granted) {
  Entry& entry = EntryFor(shard, resource);
  std::shared_ptr<WaiterState> waiter;
  LockMode target = mode;
  bool is_conversion = false;
  {
    // One seqlock window spans the grant decision *and* the enqueue: a
    // fast-path release racing our compatibility scan then sees an odd
    // sequence (or the published waiter flag) and repairs under the mutex,
    // so its wakeup cannot fall between our scan and our park.
    EntryMutation em(entry);
    if (TryGrantLocked(shard, entry, txn, mode, options, granted,
                       record_held)) {
      stats_.grants.Add();
      stats_.immediate_grants.Add();
      if (record_held) NoteHolderAdded(stats_);
      return Status::OK();
    }

    Holder* mine = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == txn) {
        mine = &h;
        break;
      }
    }
    target = mine != nullptr ? Supremum(mine->mode, mode) : mode;
    is_conversion = mine != nullptr;

    if (!options.wait) {
      MaybeRetireEntry(shard, entry);
      return Status::Conflict("lock " + std::string(LockModeName(mode)) +
                              " on " + resource.ToString() +
                              " conflicts and wait=false");
    }

    // Crash/restart drain: no new waiter may park once draining started.
    if (draining_.load(wm::acquire)) {
      MaybeRetireEntry(shard, entry);
      return Status::Aborted("lock manager is draining for shutdown");
    }

    // Overload shedding: beyond the blocked-waiter cap, rejecting is
    // kinder than queuing — the convoy would only deepen.  kShed tells the
    // caller "retry with backoff", unlike kConflict/kTimeout.
    if (options_.max_blocked_waiters != 0 &&
        blocked_waiters_.load(wm::acquire) >=
            options_.max_blocked_waiters) {
      stats_.sheds.Add();
      MaybeRetireEntry(shard, entry);
      return Status::Shed("lock wait on " + resource.ToString() + " shed: " +
                          std::to_string(options_.max_blocked_waiters) +
                          " waiters already blocked");
    }

    if (fault::FireResult f = g_fault_waiter_alloc.Fire()) {
      MaybeRetireEntry(shard, entry);
      return fault::StatusFor(f, g_fault_waiter_alloc.name());
    }

    // Enqueue; the window's closing store publishes the has-waiters flag.
    waiter = std::make_shared<WaiterState>();
    waiter->txn = txn;
    waiter->wanted = target;
    waiter->is_conversion = is_conversion;
    waiter->duration = options.duration;
    if (is_conversion) {
      // Conversions wait at the front: they only need current holders to
      // drain, and granting them first avoids needless conversion
      // deadlocks with queued fresh requests.
      entry.waiters.insert(entry.waiters.begin(), waiter);
    } else {
      entry.waiters.push_back(waiter);
    }
    stats_.waits.Add();
    blocked_waiters_.fetch_add(1, wm::acq_rel);
  }

  const uint64_t timeout_ms =
      options.timeout_ms != AcquireOptions::kTimeoutDefault
          ? options.timeout_ms
          : options_.default_timeout_ms;
  const bool infinite = timeout_ms == AcquireOptions::kTimeoutInfinite;
  const auto deadline =
      infinite ? std::chrono::steady_clock::time_point::max()
               : std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  Stopwatch waited;

  if (fault::FireResult f = g_fault_wait.Fire()) {
    // Forced timeout: the wait "expires" immediately, whatever the
    // deadline was.
    blocked_waiters_.fetch_sub(1, wm::acq_rel);
    CleanupFailedWait(shard, entry, txn, waiter.get(), waited);
    stats_.timeouts.Add();
    return fault::StatusFor(f, g_fault_wait.name());
  }

  while (true) {
    switch (policy_) {
      case DeadlockPolicy::kDetect: {
        std::vector<TxnId> blockers =
            BlockersOf(shard, entry, txn, target, waiter.get());
        TxnId victim = wfg_.UpdateAndCheck(txn, std::move(blockers), waiter);
        if (victim == txn) {
          blocked_waiters_.fetch_sub(1, wm::acq_rel);
          CleanupFailedWait(shard, entry, txn, waiter.get(), waited);
          stats_.deadlocks.Add();
          return Status::Deadlock("transaction " + std::to_string(txn) +
                                  " chosen as deadlock victim on " +
                                  resource.ToString());
        }
        break;
      }
      case DeadlockPolicy::kWaitDie: {
        // A requester may wait only for younger transactions; blocked by
        // anything older, it dies (restarts) instead.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker < txn) {
            blocked_waiters_.fetch_sub(1, wm::acq_rel);
            CleanupFailedWait(shard, entry, txn, waiter.get(), waited);
            stats_.deadlocks.Add();
            return Status::Deadlock(
                "wait-die: transaction " + std::to_string(txn) +
                " is younger than blocker " + std::to_string(blocker));
          }
        }
        wfg_.Register(txn, waiter);
        break;
      }
      case DeadlockPolicy::kWoundWait: {
        // An older requester wounds every younger conflicting transaction
        // and then waits for them to release at their (forced) EOT.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker > txn) Wound(blocker);
        }
        wfg_.Register(txn, waiter);
        break;
      }
      case DeadlockPolicy::kTimeoutOnly:
        break;
    }

    auto wake_pred = [&] {
      return waiter->granted ||
             waiter->killed.load(wm::relaxed) !=
                 KillReason::kNone;
    };
    bool in_time = true;
    if (infinite) {
      // No deadline: sleep until granted or killed (never times out).
      waiter->cv.Wait(shard.mu, wake_pred);
    } else {
      in_time = waiter->cv.WaitUntil(shard.mu, deadline, wake_pred);
    }

    if (waiter->granted) {
      blocked_waiters_.fetch_sub(1, wm::acq_rel);
      wfg_.Remove(txn);
      stats_.grants.Add();
      stats_.wait_ns.Record(waited.ElapsedNanos());
      if (!is_conversion) record_held = true;
      granted = target;
      return Status::OK();
    }
    KillReason reason = waiter->killed.load(wm::relaxed);
    if (reason != KillReason::kNone) {
      blocked_waiters_.fetch_sub(1, wm::acq_rel);
      CleanupFailedWait(shard, entry, txn, waiter.get(), waited);
      if (reason == KillReason::kShutdown) {
        return Status::Aborted("lock wait on " + resource.ToString() +
                               " aborted: lock manager draining for "
                               "shutdown");
      }
      stats_.deadlocks.Add();
      if (reason == KillReason::kWounded) {
        return Status::Aborted("transaction " + std::to_string(txn) +
                               " wounded while waiting on " +
                               resource.ToString());
      }
      return Status::Deadlock("transaction " + std::to_string(txn) +
                              " killed as deadlock victim on " +
                              resource.ToString());
    }
    if (!in_time) {
      blocked_waiters_.fetch_sub(1, wm::acq_rel);
      CleanupFailedWait(shard, entry, txn, waiter.get(), waited);
      stats_.timeouts.Add();
      return Status::Timeout("lock wait on " + resource.ToString() +
                             " exceeded " + std::to_string(timeout_ms) + "ms");
    }
    // Spurious wake-up or waits-for refresh: loop.
  }
}

void LockManager::CleanupFailedWait(Shard& shard, Entry& entry, TxnId txn,
                                    const WaiterState* waiter,
                                    const Stopwatch& waited) {
  {
    EntryMutation em(entry);
    EraseWaiter(shard, entry, waiter);
    // Our queue slot may have been the only thing blocking those behind us.
    GrantWaiters(shard, entry);
    MaybeRetireEntry(shard, entry);
  }
  wfg_.Remove(txn);
  stats_.wait_ns.Record(waited.ElapsedNanos());
}

// ---- Release -------------------------------------------------------------

Status LockManager::Release(TxnId txn, ResourceId resource,
                            TxnLockCache* cache) {
  // Fast path: the matching acquisition never reached the shard either.
  if (cache != nullptr && cache->ConsumeRelease(resource)) {
    stats_.releases.Add();
    return Status::OK();
  }
  // Optimistic fast path: release a fast-path slot count without the
  // mutex.  The cache remembers whether a slot may back this resource;
  // without a cache (or after invalidation) the probe runs conservatively.
  if (fastpath_used_.load(wm::acquire) &&
      (cache == nullptr || cache->MaybeFastpathHeld(resource))) {
    switch (FastpathRelease(txn, resource)) {
      case FpRelease::kReleased:
        return Status::OK();
      case FpRelease::kReleasedLast:
        // The slot is gone; a cached mode may have been backed by it
        // alone, so drop it (under-claiming is always safe — the
        // transaction may still hold a vector-side mode here, which the
        // slow path re-notes on its next use).  The registry row stays
        // until EOT; every reader tolerates rows without live holders.
        if (cache != nullptr) cache->Erase(resource);
        return Status::OK();
      case FpRelease::kNoSlot:
        break;
    }
  }
  Shard& shard = ShardFor(resource);
  bool forget = false;
  Status status = [&]() -> Status {
    MutexLock lk(shard.mu);
    Entry* e = FindEntry(shard, resource);
    if (e == nullptr) {
      return Status::NotFound("no lock entry for " + resource.ToString());
    }
    Entry& entry = *e;
    EntryMutation em(entry);
    for (size_t i = 0; i < entry.holders.size(); ++i) {
      if (entry.holders[i].txn != txn) continue;
      stats_.releases.Add();
      if (--entry.holders[i].count > 0) {
        return Status::OK();
      }
      entry.holders.erase(entry.holders.begin() + static_cast<long>(i));
      stats_.held_locks.fetch_sub(1, wm::relaxed);
      GrantWaiters(shard, entry);
      MaybeRetireEntry(shard, entry);
      forget = true;
      return Status::OK();
    }
    // Fast-path slot fallback: reached when the lock-free probe was
    // skipped or failed (EBR registration exhausted, foreign-thread
    // release).  Safe under the mutex: the owner's lock-free ops are
    // CAS-based, so this decrement linearizes against them.
    for (FpSlot& slot : entry.fp) {
      if (slot.txn.load(wm::seq_cst) != txn) continue;
      uint64_t w = slot.word.load(wm::seq_cst);
      while (w != 0) {
        const uint64_t next = (w >> 8) > 1 ? w - kFpCountOne : 0;
        if (!slot.word.compare_exchange_weak(w, next,
                                             wm::seq_cst)) {
          continue;
        }
        stats_.releases.Add();
        if (next == 0) {
          slot.txn.store(kInvalidTxn, wm::seq_cst);
          stats_.held_locks.fetch_sub(1, wm::relaxed);
          GrantWaiters(shard, entry);
          MaybeRetireEntry(shard, entry);
          forget = true;  // no vector holder (scanned above): row is gone
        }
        return Status::OK();
      }
    }
    return Status::NotFound("transaction " + std::to_string(txn) +
                            " holds no lock on " + resource.ToString());
  }();
  if (forget) {
    ForgetHeld(txn, resource);
    // The hold is gone; no cached mode may survive it.
    if (cache != nullptr) {
      cache->Erase(resource);
    } else {
      InvalidateAttachedCache(txn);
    }
  }
  return status;
}

size_t LockManager::ReleaseAll(TxnId txn) {
  // EOT: the cache must not answer for locks about to disappear.
  InvalidateAttachedCache(txn);
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) {
      // A transaction acquires from one thread at a time, so nothing is
      // added concurrently: take the list and drop the registry entry in
      // the same critical section.
      held = std::move(it->second);
      txn_locks_.erase(it);
    }
  }
  // Visit each shard once: group the held set by shard index, hashing each
  // resource a single time.
  std::vector<std::pair<uint32_t, ResourceId>> keyed;
  keyed.reserve(held.size());
  for (const ResourceId& r : held) {
    keyed.emplace_back(static_cast<uint32_t>(ShardIndexFor(r)), r);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t released = 0;
  for (size_t i = 0; i < keyed.size();) {
    const uint32_t shard_idx = keyed[i].first;
    Shard& shard = shards_[shard_idx];
    MutexLock lk(shard.mu);
    for (; i < keyed.size() && keyed[i].first == shard_idx; ++i) {
      Entry* e = FindEntry(shard, keyed[i].second);
      if (e == nullptr) continue;
      Entry& entry = *e;
      EntryMutation em(entry);
      bool changed = false;
      for (size_t h = 0; h < entry.holders.size(); ++h) {
        if (entry.holders[h].txn != txn) continue;
        entry.holders.erase(entry.holders.begin() + static_cast<long>(h));
        ++released;
        changed = true;
        break;
      }
      // Purge any fast-path slot of this transaction as well; the
      // exchange linearizes against the owner's CAS-based count updates.
      for (FpSlot& slot : entry.fp) {
        if (slot.txn.load(wm::seq_cst) != txn) continue;
        const uint64_t w = slot.word.exchange(0, wm::seq_cst);
        slot.txn.store(kInvalidTxn, wm::seq_cst);
        if (w != 0) {
          ++released;
          changed = true;
        }
      }
      if (changed) {
        GrantWaiters(shard, entry);
        MaybeRetireEntry(shard, entry);
      }
    }
  }
  // One RMW per counter for the whole transaction.
  if (released != 0) {
    stats_.held_locks.fetch_sub(static_cast<int64_t>(released),
                                wm::relaxed);
    stats_.releases.Add(released);
  }
  ClearWound(txn);
  return released;
}

size_t LockManager::DrainForShutdown() {
  // From here on AcquireLocked refuses to park new waiters (they fail with
  // kAborted before enqueuing) and the optimistic fast path stands down.
  draining_.store(true, wm::release);
  size_t killed = 0;
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (auto& head : shard.buckets) {
      for (Entry* e = head.load(wm::relaxed); e != nullptr;
           e = e->next.load(wm::relaxed)) {
        for (auto& w : e->waiters) {
          if (w->granted) continue;
          KillReason expected = KillReason::kNone;
          if (w->killed.compare_exchange_strong(expected,
                                                KillReason::kShutdown,
                                                wm::relaxed)) {
            ++killed;
            w->cv.NotifyAll();
          }
        }
      }
    }
  }
  // Each killed waiter unwinds under its shard mutex (dequeue + waits-for
  // removal) and decrements the gauge as it leaves; wait for the last one
  // so the manager can be destroyed without a thread sleeping on a member
  // condition variable.
  while (blocked_waiters_.load(wm::acquire) != 0) {
    std::this_thread::yield();
  }
  return killed;
}

Status LockManager::Downgrade(TxnId txn, ResourceId resource, LockMode mode,
                              TxnLockCache* cache) {
  Shard& shard = ShardFor(resource);
  Status status = [&]() -> Status {
    MutexLock lk(shard.mu);
    Entry* e = FindEntry(shard, resource);
    if (e == nullptr) {
      return Status::NotFound("no lock entry for " + resource.ToString());
    }
    Entry& entry = *e;
    EntryMutation em(entry);
    for (Holder& h : entry.holders) {
      if (h.txn != txn) continue;
      if (!Covers(h.mode, mode)) {
        return Status::InvalidArgument(
            "cannot downgrade " + std::string(LockModeName(h.mode)) + " to " +
            std::string(LockModeName(mode)));
      }
      h.mode = mode;
      // The narrower mode may unblock queued waiters.
      GrantWaiters(shard, entry);
      return Status::OK();
    }
    // Fast-path-only hold: rewrite the slot's mode in place.
    for (FpSlot& slot : entry.fp) {
      if (slot.txn.load(wm::seq_cst) != txn) continue;
      uint64_t w = slot.word.load(wm::seq_cst);
      while (w != 0) {
        if (!Covers(FpMode(w), mode)) {
          return Status::InvalidArgument(
              "cannot downgrade " + std::string(LockModeName(FpMode(w))) +
              " to " + std::string(LockModeName(mode)));
        }
        if (slot.word.compare_exchange_weak(w, FpWord(mode, w >> 8),
                                            wm::seq_cst)) {
          GrantWaiters(shard, entry);
          return Status::OK();
        }
      }
    }
    return Status::NotFound("transaction " + std::to_string(txn) +
                            " holds no lock on " + resource.ToString());
  }();
  if (status.ok()) {
    // The held mode shrank: a cached (stronger) mode must not survive.
    if (cache != nullptr) {
      cache->Erase(resource);
    } else {
      InvalidateAttachedCache(txn);
    }
  }
  return status;
}

// ---- Inspection & snapshots ----------------------------------------------

LockMode LockManager::HeldMode(TxnId txn, ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  Entry* e = FindEntry(shard, resource);
  if (e == nullptr) return LockMode::kNL;
  LockMode m = LockMode::kNL;
  for (const Holder& h : e->holders) {
    if (h.txn == txn) {
      m = h.mode;
      break;
    }
  }
  for (const FpSlot& slot : e->fp) {
    if (slot.txn.load(wm::seq_cst) != txn) continue;
    const uint64_t w = slot.word.load(wm::seq_cst);
    if (w != 0) m = Supremum(m, FpMode(w));
  }
  return m;
}

LockMode LockManager::GroupMode(ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  Entry* e = FindEntry(shard, resource);
  if (e == nullptr) return LockMode::kNL;
  LockMode m = LockMode::kNL;
  for (const Holder& h : e->holders) m = Supremum(m, h.mode);
  for (const FpSlot& slot : e->fp) {
    if (slot.txn.load(wm::seq_cst) == kInvalidTxn) continue;
    const uint64_t w = slot.word.load(wm::seq_cst);
    if (w != 0) m = Supremum(m, FpMode(w));
  }
  return m;
}

std::vector<HeldLock> LockManager::LocksOf(TxnId txn) const {
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) held = it->second;
  }
  std::vector<HeldLock> out;
  out.reserve(held.size());
  for (const ResourceId& resource : held) {
    Shard& shard = ShardFor(resource);
    MutexLock lk(shard.mu);
    Entry* e = FindEntry(shard, resource);
    if (e == nullptr) continue;
    LockMode m = LockMode::kNL;
    LockDuration d = LockDuration::kShort;
    bool found = false;
    for (const Holder& h : e->holders) {
      if (h.txn == txn) {
        m = h.mode;
        d = h.duration;
        found = true;
        break;
      }
    }
    for (const FpSlot& slot : e->fp) {
      if (slot.txn.load(wm::seq_cst) != txn) continue;
      const uint64_t w = slot.word.load(wm::seq_cst);
      if (w != 0) {
        m = Supremum(m, FpMode(w));
        found = true;
      }
    }
    if (found) out.push_back(HeldLock{resource, m, d});
  }
  return out;
}

size_t LockManager::NumEntries() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& head : shard.buckets) {
      for (Entry* e = head.load(wm::relaxed); e != nullptr;
           e = e->next.load(wm::relaxed)) {
        if (!e->holders.empty() || !e->waiters.empty() || !FpSlotsEmpty(*e)) {
          ++n;
        }
      }
    }
  }
  return n;
}

std::vector<LongLockRecord> LockManager::SnapshotLongLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& head : shard.buckets) {
      for (Entry* e = head.load(wm::relaxed); e != nullptr;
           e = e->next.load(wm::relaxed)) {
        // Fast-path slots never contribute: those grants are always short.
        for (const Holder& h : e->holders) {
          if (h.duration == LockDuration::kLong) {
            out.push_back(LongLockRecord{h.txn, e->res, h.mode});
          }
        }
      }
    }
  }
  return out;
}

std::vector<LongLockRecord> LockManager::SnapshotAllLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& head : shard.buckets) {
      for (Entry* e = head.load(wm::relaxed); e != nullptr;
           e = e->next.load(wm::relaxed)) {
        const size_t first_row = out.size();
        for (const Holder& h : e->holders) {
          out.push_back(LongLockRecord{h.txn, e->res, h.mode});
        }
        // Merge fast-path slots: a transaction with both a vector row and
        // a slot on one entry is reported once, at the supremum.
        for (const FpSlot& slot : e->fp) {
          const TxnId t = slot.txn.load(wm::seq_cst);
          if (t == kInvalidTxn) continue;
          const uint64_t w = slot.word.load(wm::seq_cst);
          if (w == 0) continue;
          bool merged = false;
          for (size_t r = first_row; r < out.size(); ++r) {
            if (out[r].txn == t) {
              out[r].mode = Supremum(out[r].mode, FpMode(w));
              merged = true;
              break;
            }
          }
          if (!merged) out.push_back(LongLockRecord{t, e->res, FpMode(w)});
        }
      }
    }
  }
  return out;
}

Status LockManager::RestoreLongLocks(
    const std::vector<LongLockRecord>& records) {
  // Pass 1 — validate without mutating: a record conflicts when any
  // *other* transaction already holds an incompatible mode (e.g. a short
  // lock taken before recovery ran).  All-or-nothing: one conflict and
  // nothing is installed, so a failed restore never leaves a half-adopted
  // lock table behind.
  for (const LongLockRecord& rec : records) {
    if (rec.txn == kInvalidTxn) {
      return Status::InvalidArgument("long-lock record with invalid txn");
    }
    Shard& shard = ShardFor(rec.resource);
    MutexLock lk(shard.mu);
    Entry* e = FindEntry(shard, rec.resource);
    if (e == nullptr) continue;
    if (!CompatibleWithHolders(shard, *e, rec.txn, rec.mode)) {
      return Status::Internal("long-lock restore conflict on " +
                              rec.resource.ToString() + ": txn " +
                              std::to_string(rec.txn) + " wants " +
                              std::string(LockModeName(rec.mode)) +
                              " against an incompatible holder");
    }
  }

  // Pass 2 — install.  Duplicate records for one (txn, resource) merge to
  // the supremum mode.  Runs during recovery quiescence, so the validated
  // facts still hold.
  for (const LongLockRecord& rec : records) {
    Shard& shard = ShardFor(rec.resource);
    bool record_held = false;
    {
      MutexLock lk(shard.mu);
      Entry& entry = EntryFor(shard, rec.resource);
      EntryMutation em(entry);
      Holder* mine = nullptr;
      for (Holder& h : entry.holders) {
        if (h.txn == rec.txn) {
          mine = &h;
          break;
        }
      }
      if (mine != nullptr) {
        mine->mode = Supremum(mine->mode, rec.mode);
        mine->duration = LockDuration::kLong;
      } else {
        entry.holders.push_back(
            Holder{rec.txn, rec.mode, 1, LockDuration::kLong});
        NoteHolderAdded(stats_);
        record_held = true;
      }
    }
    if (record_held) RecordHeld(rec.txn, rec.resource);
  }
  return Status::OK();
}

// ---- Waits-for graph -----------------------------------------------------

TxnId LockManager::WaitsForGraph::UpdateAndCheck(
    TxnId self, std::vector<TxnId> blockers,
    std::shared_ptr<WaiterState> waiter) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers = std::move(blockers);
  rec.waiter = std::move(waiter);

  std::vector<TxnId> cycle;
  if (!FindCycle(self, &cycle)) return kInvalidTxn;

  // Victim selection: the youngest transaction in the cycle (largest id —
  // ids are assigned monotonically), which has done the least work.
  TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  if (victim != self) {
    auto it = waiting_.find(victim);
    if (it == waiting_.end()) {
      // Should be impossible (all cycle members wait); fall back to self.
      victim = self;
    } else {
      it->second.waiter->killed.store(KillReason::kDeadlockVictim,
                                      wm::relaxed);
      it->second.waiter->cv.NotifyAll();
    }
  }
  return victim;
}

void LockManager::WaitsForGraph::Register(TxnId self,
                                          std::shared_ptr<WaiterState> waiter) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers.clear();
  rec.waiter = std::move(waiter);
}

void LockManager::WaitsForGraph::Kill(TxnId txn, KillReason reason) {
  MutexLock lk(mu_);
  auto it = waiting_.find(txn);
  if (it == waiting_.end()) return;
  it->second.waiter->killed.store(reason, wm::relaxed);
  it->second.waiter->cv.NotifyAll();
}

void LockManager::WaitsForGraph::Remove(TxnId self) {
  MutexLock lk(mu_);
  waiting_.erase(self);
}

bool LockManager::WaitsForGraph::FindCycle(TxnId self,
                                           std::vector<TxnId>* cycle) const {
  // Iterative DFS from `self`, looking for a path back to `self`.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;

  struct Frame {
    TxnId txn;
    size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({self, 0});
  path.push_back(self);
  visited.insert(self);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto it = waiting_.find(frame.txn);
    const std::vector<TxnId>* edges =
        it != waiting_.end() ? &it->second.blockers : nullptr;
    // Skip edges of already-killed victims; their requests are unwinding.
    if (edges != nullptr && it->second.waiter != nullptr &&
        it->second.waiter->killed.load(wm::relaxed) !=
            KillReason::kNone) {
      edges = nullptr;
    }
    if (edges == nullptr || frame.next_edge >= edges->size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = (*edges)[frame.next_edge++];
    if (next == self) {
      *cycle = path;
      return true;
    }
    if (visited.insert(next).second) {
      stack.push_back({next, 0});
      path.push_back(next);
    }
  }
  return false;
}

}  // namespace codlock::lock
