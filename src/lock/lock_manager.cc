#include "lock/lock_manager.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "fault/fault_injector.h"
#include "util/mutation_points.h"

namespace codlock::lock {

namespace {

// Fault points (fault/fault_injector.h).  `lock/waiter-alloc` models an
// allocation failure creating the waiter state; `lock/wait` forces a
// blocked request to time out; `lock/acquire-path` fails AcquirePath
// mid-path (arm with Trigger::Nth to pick the position) to exercise the
// partial-acquisition rollback.
fault::FaultPoint g_fault_waiter_alloc{"lock/waiter-alloc",
                                       fault::FaultKind::kAllocFail};
fault::FaultPoint g_fault_wait{"lock/wait", fault::FaultKind::kForcedTimeout};
fault::FaultPoint g_fault_acquire_path{"lock/acquire-path",
                                       fault::FaultKind::kError};

/// Bumps the held-locks gauge by \p n and its high-water mark (atomics
/// only).  Batched callers pay one RMW for a whole path.
void NoteHoldersAdded(LockStats& stats, int64_t n) {
  int64_t held = stats.held_locks.fetch_add(n, std::memory_order_relaxed) + n;
  int64_t prev = stats.max_held_locks.load(std::memory_order_relaxed);
  while (prev < held && !stats.max_held_locks.compare_exchange_weak(
                            prev, held, std::memory_order_relaxed)) {
  }
}

void NoteHolderAdded(LockStats& stats) { NoteHoldersAdded(stats, 1); }

}  // namespace

std::string_view DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kTimeoutOnly:
      return "timeout-only";
  }
  return "?";
}

LockManager::LockManager(Options options)
    : options_(options),
      policy_(options.detect_deadlocks ? options.deadlock_policy
                                       : DeadlockPolicy::kTimeoutOnly),
      shards_(std::bit_ceil(
          static_cast<size_t>(std::max(1, options.num_shards)))),
      shard_mask_(shards_.size() - 1) {}

void LockManager::Wound(TxnId txn) {
  {
    MutexLock lk(wounded_mu_);
    if (!wounded_.insert(txn).second) return;
    wounded_count_.fetch_add(1, std::memory_order_relaxed);
  }
  // The wounded transaction must observe the wound on its *next* acquire:
  // drop its fast path before killing any pending wait.
  InvalidateAttachedCache(txn);
  wfg_.Kill(txn, KillReason::kWounded);
}

bool LockManager::IsWounded(TxnId txn) const {
  if (wounded_count_.load(std::memory_order_acquire) == 0) return false;
  MutexLock lk(wounded_mu_);
  return wounded_.contains(txn);
}

void LockManager::ClearWound(TxnId txn) {
  if (wounded_count_.load(std::memory_order_acquire) == 0) return;
  MutexLock lk(wounded_mu_);
  if (wounded_.erase(txn) > 0) {
    wounded_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

LockManager::~LockManager() = default;

void LockManager::AttachCache(TxnId txn, TxnLockCache* cache) {
  MutexLock lk(caches_mu_);
  caches_[txn] = cache;
  cache_count_.store(caches_.size(), std::memory_order_release);
}

void LockManager::DetachCache(TxnId txn) {
  MutexLock lk(caches_mu_);
  caches_.erase(txn);
  cache_count_.store(caches_.size(), std::memory_order_release);
}

void LockManager::InvalidateAttachedCache(TxnId txn) {
  // Mutation point (kill-suite only): drop the epoch bump.  Stale cached
  // modes then outlive the shard-side hold (e.g. after ReleaseAll at EOT)
  // and the cache-coherence oracle must see the divergence.
  if (mutation::Enabled(mutation::Mutant::kDropCacheInvalidation)) return;
  // With no cache attached anywhere there is nothing to invalidate; skip
  // the registry mutex (standalone LockManager users never pay for it).
  if (cache_count_.load(std::memory_order_acquire) == 0) return;
  MutexLock lk(caches_mu_);
  auto it = caches_.find(txn);
  if (it != caches_.end()) it->second->Invalidate();
}

bool LockManager::CompatibleWithHolders(const Shard& shard, const Entry& entry,
                                        TxnId txn, LockMode target) {
  (void)shard;  // capability-only parameter
  bool compatible = true;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;
    stats_.compat_tests.Add();
    if (!Compatible(target, h.mode)) {
      compatible = false;
      break;
    }
  }
  if (!compatible) stats_.conflicts.Add();
  return compatible;
}

std::vector<TxnId> LockManager::BlockersOf(const Shard& shard,
                                           const Entry& entry, TxnId txn,
                                           LockMode target,
                                           const WaiterState* self) const {
  (void)shard;  // capability-only parameter
  std::vector<TxnId> blockers;
  auto add = [&blockers, txn](TxnId t) {
    if (t == txn) return;
    if (std::find(blockers.begin(), blockers.end(), t) == blockers.end()) {
      blockers.push_back(t);
    }
  };
  for (const Holder& h : entry.holders) {
    if (h.txn != txn && !Compatible(target, h.mode)) add(h.txn);
  }
  if (self == nullptr || !self->is_conversion) {
    // FIFO: a regular request is also gated by every earlier queued waiter.
    for (const auto& w : entry.waiters) {
      if (w.get() == self) break;
      if (!w->granted &&
          w->killed.load(std::memory_order_relaxed) == KillReason::kNone) {
        add(w->txn);
      }
    }
  }
  return blockers;
}

void LockManager::GrantWaiters(Shard& shard, Entry& entry) {
  for (auto it = entry.waiters.begin(); it != entry.waiters.end();) {
    const std::shared_ptr<WaiterState>& w = *it;
    if (w->killed.load(std::memory_order_relaxed) != KillReason::kNone) {
      // The victim cleans up its own queue entry; skip it here.
      ++it;
      continue;
    }
    if (!CompatibleWithHolders(shard, entry, w->txn, w->wanted)) {
      // Strict FIFO: nobody behind a blocked waiter is granted.
      break;
    }
    Holder* mine = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == w->txn) {
        mine = &h;
        break;
      }
    }
    if (mine != nullptr) {
      mine->mode = Supremum(mine->mode, w->wanted);
      mine->count++;
      if (w->duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{w->txn, w->wanted, 1, w->duration});
      NoteHolderAdded(stats_);
    }
    w->granted = true;
    // Mutation point (kill-suite only): lose the wakeup — the waiter is
    // promoted to holder but never notified.  The schedule wedges and the
    // termination oracle must flag the stuck state.
    if (!mutation::Enabled(mutation::Mutant::kSkipWaiterWakeup)) {
      // Per-waiter wakeup: only the transaction this grant unblocked runs.
      w->cv.NotifyOne();
    }
    it = entry.waiters.erase(it);
  }
}

void LockManager::EraseWaiter(Entry& entry, const WaiterState* w) {
  for (auto it = entry.waiters.begin(); it != entry.waiters.end(); ++it) {
    if (it->get() == w) {
      entry.waiters.erase(it);
      return;
    }
  }
}

void LockManager::RecordHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto& v = txn_locks_[txn];
  if (std::find(v.begin(), v.end(), resource) == v.end()) {
    v.push_back(resource);
  }
}

void LockManager::RecordHeldBatch(TxnId txn,
                                  std::span<const ResourceId> resources) {
  if (resources.empty()) return;
  MutexLock lk(registry_mu_);
  auto& v = txn_locks_[txn];
  for (const ResourceId& resource : resources) {
    if (std::find(v.begin(), v.end(), resource) == v.end()) {
      v.push_back(resource);
    }
  }
}

void LockManager::ForgetHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto it = txn_locks_.find(txn);
  if (it == txn_locks_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), resource), v.end());
  if (v.empty()) txn_locks_.erase(it);
}

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode,
                            const AcquireOptions& options,
                            TxnLockCache* cache) {
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("invalid transaction id");
  }
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot acquire mode NL");
  }
  // Fast path: a covered re-acquisition is answered from the transaction's
  // own cache without touching any mutex.  A wound invalidates the cache
  // (see Wound), so a wounded transaction always falls through to the
  // slow path and fails there.
  // A hit pays exactly one atomic RMW: cache_hits.  Total requests =
  // requests + cache_hits and total grants = grants + cache_hits (see
  // metrics.h).
  if (cache != nullptr &&
      cache->TryHit(resource, mode,
                    options.duration == LockDuration::kLong)) {
    stats_.cache_hits.Add();
    return Status::OK();
  }
  stats_.requests.Add();

  if (policy_ == DeadlockPolicy::kWoundWait && IsWounded(txn)) {
    return Status::Aborted("transaction " + std::to_string(txn) +
                           " was wounded by an older transaction");
  }
  return AcquireSlow(txn, resource, mode, options, cache);
}

Status LockManager::AcquireSlow(TxnId txn, ResourceId resource, LockMode mode,
                                const AcquireOptions& options,
                                TxnLockCache* cache) {
  Shard& shard = ShardFor(resource);
  bool record_held = false;
  LockMode granted = LockMode::kNL;
  Status status;
  {
    MutexLock lk(shard.mu);
    status = AcquireLocked(shard, txn, resource, mode, options, record_held,
                           granted);
  }
  // Lock order: the registry mutex is only ever taken with no shard held.
  if (status.ok()) {
    if (record_held) RecordHeld(txn, resource);
    if (cache != nullptr) {
      cache->Note(resource, granted,
                  options.duration == LockDuration::kLong);
    }
  }
  return status;
}

Status LockManager::AcquirePath(TxnId txn, std::span<const ResourceId> path,
                                LockMode leaf_mode,
                                const AcquireOptions& options,
                                TxnLockCache* cache) {
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("invalid transaction id");
  }
  if (path.empty()) {
    return Status::InvalidArgument("empty lock path");
  }
  if (leaf_mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot acquire mode NL");
  }
  if (policy_ == DeadlockPolicy::kWoundWait && IsWounded(txn)) {
    return Status::Aborted("transaction " + std::to_string(txn) +
                           " was wounded by an older transaction");
  }
  const LockMode prefix_mode = IntentionFor(leaf_mode);
  const bool want_long = options.duration == LockDuration::kLong;
  const size_t n = path.size();
  auto mode_of = [&](size_t i) { return i + 1 == n ? leaf_mode : prefix_mode; };

  // Batched processing tracks path positions in 64-bit masks on the stack;
  // paths longer than that (never produced by the protocols — hierarchies
  // are ~4–13 levels) fall back to per-resource acquisition.
  constexpr size_t kMaxBatch = 64;
  if (n > kMaxBatch) {
    for (size_t i = 0; i < n; ++i) {
      CODLOCK_RETURN_IF_ERROR(
          Acquire(txn, path[i], mode_of(i), options, cache));
    }
    return Status::OK();
  }
  // Pass 1: answer covered re-acquisitions from the cache (no mutex).
  uint32_t shard_of[kMaxBatch];
  uint64_t todo_mask = 0;
  uint64_t hit_mask = 0;
  for (size_t i = 0; i < n; ++i) {
    if (cache != nullptr && cache->TryHit(path[i], mode_of(i), want_long)) {
      hit_mask |= uint64_t{1} << i;
      continue;
    }
    shard_of[i] = static_cast<uint32_t>(ShardIndexFor(path[i]));
    todo_mask |= uint64_t{1} << i;
  }
  // Total requests = requests + cache_hits (see metrics.h): one batched
  // RMW per counter for the whole path.
  const uint64_t hits = static_cast<uint64_t>(std::popcount(hit_mask));
  if (hits != 0) stats_.cache_hits.Add(hits);
  if (n - hits != 0) stats_.requests.Add(n - hits);
  if (todo_mask == 0) return Status::OK();

  // Pass 2: group by shard and visit each shard mutex once.  Immediate
  // grants may land out of path order; that is invisible to other
  // transactions (each grant only *adds* to this transaction's hold set)
  // and the root-to-leaf order is restored for anything that must wait.
  LockMode granted_of[kMaxBatch];
  ResourceId newly_held[kMaxBatch];
  size_t num_newly_held = 0;
  uint64_t granted_mask = 0;
  uint64_t deferred_mask = 0;
  for (uint64_t rest = todo_mask; rest != 0;) {
    const size_t first = static_cast<size_t>(std::countr_zero(rest));
    const uint32_t shard_idx = shard_of[first];
    Shard& shard = shards_[shard_idx];
    MutexLock lk(shard.mu);
    for (uint64_t scan = rest; scan != 0; scan &= scan - 1) {
      const size_t i = static_cast<size_t>(std::countr_zero(scan));
      if (shard_of[i] != shard_idx) continue;
      rest &= ~(uint64_t{1} << i);
      Entry& entry = EntryFor(shard, path[i]);
      bool record_held = false;
      LockMode granted = LockMode::kNL;
      if (TryGrantLocked(shard, entry, txn, mode_of(i), options, granted,
                         record_held)) {
        granted_of[i] = granted;
        granted_mask |= uint64_t{1} << i;
        if (record_held) newly_held[num_newly_held++] = path[i];
      } else {
        deferred_mask |= uint64_t{1} << i;
      }
    }
  }
  if (granted_mask != 0) {
    const uint64_t g = static_cast<uint64_t>(std::popcount(granted_mask));
    stats_.grants.Add(g);
    stats_.immediate_grants.Add(g);
  }
  if (num_newly_held != 0) {
    NoteHoldersAdded(stats_, static_cast<int64_t>(num_newly_held));
  }

  // One registry lock for the whole batch (instead of one per resource).
  RecordHeldBatch(txn, std::span<const ResourceId>(newly_held, num_newly_held));
  if (cache != nullptr) {
    for (uint64_t scan = granted_mask; scan != 0; scan &= scan - 1) {
      const size_t i = static_cast<size_t>(std::countr_zero(scan));
      cache->Note(path[i], granted_of[i], want_long);
    }
  }

  // Pass 3: whatever conflicted is acquired blocking, in path order
  // (rule 5 root-to-leaf waiting semantics; ascending bits = path order).
  // A mid-path failure (timeout, deadlock, shed, injected fault) rolls
  // back every acquisition *this call* made — cache hits, immediate
  // grants and blocking grants — leaf-to-root, so the failed path leaves
  // no new intention locks behind for the retry loop to trip over.
  Status status;
  uint64_t blocking_done = 0;
  for (uint64_t scan = deferred_mask; scan != 0; scan &= scan - 1) {
    const size_t i = static_cast<size_t>(std::countr_zero(scan));
    if (fault::FireResult f = g_fault_acquire_path.Fire()) {
      status = fault::StatusFor(f, g_fault_acquire_path.name());
      break;
    }
    status = AcquireSlow(txn, path[i], mode_of(i), options, cache);
    if (!status.ok()) break;
    blocking_done |= uint64_t{1} << i;
  }
  if (status.ok()) return Status::OK();

  const uint64_t undo = hit_mask | granted_mask | blocking_done;
  for (size_t i = n; i-- > 0;) {
    if ((undo & (uint64_t{1} << i)) == 0) continue;
    // Count-paired: a re-entrant acquisition merely drops back to its
    // previous count; a fresh grant disappears.  Mode upgrades from
    // conversions persist (safe — strictly stronger).
    Release(txn, path[i], cache);
  }
  return status;
}

LockManager::Entry& LockManager::EntryFor(Shard& shard, const ResourceId& res) {
  auto it = shard.entries.find(res);
  if (it != shard.entries.end()) return it->second;
  if (!shard.free_nodes.empty()) {
    EntryMap::node_type nh = std::move(shard.free_nodes.back());
    shard.free_nodes.pop_back();
    nh.key() = res;  // node handles expose a mutable key for exactly this
    return shard.entries.insert(std::move(nh)).position->second;
  }
  return shard.entries[res];
}

void LockManager::RetireEntry(Shard& shard, EntryMap::iterator it) {
  if (shard.free_nodes.size() >= kEntryPoolSize) {
    shard.entries.erase(it);
    return;
  }
  EntryMap::node_type nh = shard.entries.extract(it);
  nh.mapped().holders.clear();  // keeps capacity for the next tenant
  nh.mapped().waiters.clear();
  shard.free_nodes.push_back(std::move(nh));
}

bool LockManager::TryGrantLocked(Shard& shard, Entry& entry, TxnId txn,
                                 LockMode mode, const AcquireOptions& options,
                                 LockMode& granted, bool& record_held) {
  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      break;
    }
  }

  // Re-entrant acquisition of a covered mode: bump the count.  The caller
  // accounts grants/immediate_grants (batched in AcquirePath).
  if (mine != nullptr && Covers(mine->mode, mode)) {
    mine->count++;
    if (options.duration == LockDuration::kLong) {
      mine->duration = LockDuration::kLong;
    }
    granted = mine->mode;
    return true;
  }

  const LockMode target = mine != nullptr ? Supremum(mine->mode, mode) : mode;
  const bool is_conversion = mine != nullptr;

  const bool queue_clear = [&] {
    if (is_conversion) return true;  // conversions jump the queue
    for (const auto& w : entry.waiters) {
      if (!w->granted &&
          w->killed.load(std::memory_order_relaxed) == KillReason::kNone) {
        return false;
      }
    }
    return true;
  }();

  if (queue_clear && CompatibleWithHolders(shard, entry, txn, target)) {
    if (mine != nullptr) {
      mine->mode = target;
      mine->count++;
      if (options.duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{txn, target, 1, options.duration});
      record_held = true;  // caller bumps the held-locks gauge
    }
    granted = target;
    return true;
  }
  return false;
}

Status LockManager::AcquireLocked(Shard& shard, TxnId txn, ResourceId resource,
                                  LockMode mode, const AcquireOptions& options,
                                  bool& record_held, LockMode& granted) {
  Entry& entry = EntryFor(shard, resource);

  if (TryGrantLocked(shard, entry, txn, mode, options, granted, record_held)) {
    stats_.grants.Add();
    stats_.immediate_grants.Add();
    if (record_held) NoteHolderAdded(stats_);
    return Status::OK();
  }

  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      break;
    }
  }
  const LockMode target = mine != nullptr ? Supremum(mine->mode, mode) : mode;
  const bool is_conversion = mine != nullptr;

  if (!options.wait) {
    if (entry.holders.empty() && entry.waiters.empty()) {
      RetireEntry(shard, shard.entries.find(resource));
    }
    return Status::Conflict("lock " + std::string(LockModeName(mode)) +
                            " on " + resource.ToString() +
                            " conflicts and wait=false");
  }

  auto maybe_retire = [&] {
    if (entry.holders.empty() && entry.waiters.empty()) {
      RetireEntry(shard, shard.entries.find(resource));
    }
  };

  // Crash/restart drain: no new waiter may park once draining started.
  if (draining_.load(std::memory_order_acquire)) {
    maybe_retire();
    return Status::Aborted("lock manager is draining for shutdown");
  }

  // Overload shedding: beyond the blocked-waiter cap, rejecting is kinder
  // than queuing — the convoy would only deepen.  kShed tells the caller
  // "retry with backoff", unlike kConflict/kTimeout.
  if (options_.max_blocked_waiters != 0 &&
      blocked_waiters_.load(std::memory_order_acquire) >=
          options_.max_blocked_waiters) {
    stats_.sheds.Add();
    maybe_retire();
    return Status::Shed("lock wait on " + resource.ToString() +
                        " shed: " +
                        std::to_string(options_.max_blocked_waiters) +
                        " waiters already blocked");
  }

  if (fault::FireResult f = g_fault_waiter_alloc.Fire()) {
    maybe_retire();
    return fault::StatusFor(f, g_fault_waiter_alloc.name());
  }

  // Enqueue and wait.
  auto waiter = std::make_shared<WaiterState>();
  waiter->txn = txn;
  waiter->wanted = target;
  waiter->is_conversion = is_conversion;
  waiter->duration = options.duration;
  if (is_conversion) {
    entry.waiters.insert(entry.waiters.begin(), waiter);
  } else {
    entry.waiters.push_back(waiter);
  }
  stats_.waits.Add();
  blocked_waiters_.fetch_add(1, std::memory_order_acq_rel);

  const uint64_t timeout_ms =
      options.timeout_ms != AcquireOptions::kTimeoutDefault
          ? options.timeout_ms
          : options_.default_timeout_ms;
  const bool infinite = timeout_ms == AcquireOptions::kTimeoutInfinite;
  const auto deadline =
      infinite ? std::chrono::steady_clock::time_point::max()
               : std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  Stopwatch waited;

  if (fault::FireResult f = g_fault_wait.Fire()) {
    // Forced timeout: the wait "expires" immediately, whatever the
    // deadline was.
    blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
    CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
    stats_.timeouts.Add();
    return fault::StatusFor(f, g_fault_wait.name());
  }

  while (true) {
    switch (policy_) {
      case DeadlockPolicy::kDetect: {
        std::vector<TxnId> blockers =
            BlockersOf(shard, entry, txn, target, waiter.get());
        TxnId victim = wfg_.UpdateAndCheck(txn, std::move(blockers), waiter);
        if (victim == txn) {
          blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
          CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
          stats_.deadlocks.Add();
          return Status::Deadlock("transaction " + std::to_string(txn) +
                                  " chosen as deadlock victim on " +
                                  resource.ToString());
        }
        break;
      }
      case DeadlockPolicy::kWaitDie: {
        // A requester may wait only for younger transactions; blocked by
        // anything older, it dies (restarts) instead.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker < txn) {
            blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
            CleanupFailedWait(shard, resource, entry, txn, waiter.get(),
                              waited);
            stats_.deadlocks.Add();
            return Status::Deadlock(
                "wait-die: transaction " + std::to_string(txn) +
                " is younger than blocker " + std::to_string(blocker));
          }
        }
        wfg_.Register(txn, waiter);
        break;
      }
      case DeadlockPolicy::kWoundWait: {
        // An older requester wounds every younger conflicting transaction
        // and then waits for them to release at their (forced) EOT.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker > txn) Wound(blocker);
        }
        wfg_.Register(txn, waiter);
        break;
      }
      case DeadlockPolicy::kTimeoutOnly:
        break;
    }

    auto wake_pred = [&] {
      return waiter->granted || waiter->killed.load(
                                    std::memory_order_relaxed) !=
                                    KillReason::kNone;
    };
    bool in_time = true;
    if (infinite) {
      // No deadline: sleep until granted or killed (never times out).
      waiter->cv.Wait(shard.mu, wake_pred);
    } else {
      in_time = waiter->cv.WaitUntil(shard.mu, deadline, wake_pred);
    }

    if (waiter->granted) {
      blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
      wfg_.Remove(txn);
      stats_.grants.Add();
      stats_.wait_ns.Record(waited.ElapsedNanos());
      if (!is_conversion) record_held = true;
      granted = target;
      return Status::OK();
    }
    KillReason reason = waiter->killed.load(std::memory_order_relaxed);
    if (reason != KillReason::kNone) {
      blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
      CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
      if (reason == KillReason::kShutdown) {
        return Status::Aborted("lock wait on " + resource.ToString() +
                               " aborted: lock manager draining for "
                               "shutdown");
      }
      stats_.deadlocks.Add();
      if (reason == KillReason::kWounded) {
        return Status::Aborted("transaction " + std::to_string(txn) +
                               " wounded while waiting on " +
                               resource.ToString());
      }
      return Status::Deadlock("transaction " + std::to_string(txn) +
                              " killed as deadlock victim on " +
                              resource.ToString());
    }
    if (!in_time) {
      blocked_waiters_.fetch_sub(1, std::memory_order_acq_rel);
      CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
      stats_.timeouts.Add();
      return Status::Timeout("lock wait on " + resource.ToString() +
                             " exceeded " + std::to_string(timeout_ms) +
                             "ms");
    }
    // Spurious wake-up or waits-for refresh: loop.
  }
}

void LockManager::CleanupFailedWait(Shard& shard, ResourceId resource,
                                    Entry& entry, TxnId txn,
                                    const WaiterState* waiter,
                                    const Stopwatch& waited) {
  EraseWaiter(entry, waiter);
  wfg_.Remove(txn);
  GrantWaiters(shard, entry);
  if (entry.holders.empty() && entry.waiters.empty()) {
    RetireEntry(shard, shard.entries.find(resource));
  }
  stats_.wait_ns.Record(waited.ElapsedNanos());
}

Status LockManager::Release(TxnId txn, ResourceId resource,
                            TxnLockCache* cache) {
  // Fast path: the matching acquisition never reached the shard either.
  if (cache != nullptr && cache->ConsumeRelease(resource)) {
    stats_.releases.Add();
    return Status::OK();
  }
  Shard& shard = ShardFor(resource);
  bool forget = false;
  Status status = [&]() -> Status {
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) {
      return Status::NotFound("no lock entry for " + resource.ToString());
    }
    Entry& entry = it->second;
    for (size_t i = 0; i < entry.holders.size(); ++i) {
      if (entry.holders[i].txn != txn) continue;
      stats_.releases.Add();
      if (--entry.holders[i].count > 0) {
        return Status::OK();
      }
      entry.holders.erase(entry.holders.begin() + static_cast<long>(i));
      stats_.held_locks.fetch_sub(1, std::memory_order_relaxed);
      GrantWaiters(shard, entry);
      if (entry.holders.empty() && entry.waiters.empty()) {
        RetireEntry(shard, it);
      }
      forget = true;
      return Status::OK();
    }
    return Status::NotFound("transaction " + std::to_string(txn) +
                            " holds no lock on " + resource.ToString());
  }();
  if (forget) {
    ForgetHeld(txn, resource);
    // The hold is gone; no cached mode may survive it.
    if (cache != nullptr) {
      cache->Erase(resource);
    } else {
      InvalidateAttachedCache(txn);
    }
  }
  return status;
}

size_t LockManager::ReleaseAll(TxnId txn) {
  // EOT: the cache must not answer for locks about to disappear.
  InvalidateAttachedCache(txn);
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) {
      // A transaction acquires from one thread at a time, so nothing is
      // added concurrently: take the list and drop the registry entry in
      // the same critical section.
      held = std::move(it->second);
      txn_locks_.erase(it);
    }
  }
  // Visit each shard once: group the held set by shard index, hashing each
  // resource a single time.
  std::vector<std::pair<uint32_t, ResourceId>> keyed;
  keyed.reserve(held.size());
  for (const ResourceId& r : held) {
    keyed.emplace_back(static_cast<uint32_t>(ShardIndexFor(r)), r);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t released = 0;
  for (size_t i = 0; i < keyed.size();) {
    const uint32_t shard_idx = keyed[i].first;
    Shard& shard = shards_[shard_idx];
    MutexLock lk(shard.mu);
    for (; i < keyed.size() && keyed[i].first == shard_idx; ++i) {
      auto it = shard.entries.find(keyed[i].second);
      if (it == shard.entries.end()) continue;
      Entry& entry = it->second;
      for (size_t h = 0; h < entry.holders.size(); ++h) {
        if (entry.holders[h].txn != txn) continue;
        entry.holders.erase(entry.holders.begin() + static_cast<long>(h));
        ++released;
        GrantWaiters(shard, entry);
        if (entry.holders.empty() && entry.waiters.empty()) {
          RetireEntry(shard, it);
        }
        break;
      }
    }
  }
  // One RMW per counter for the whole transaction.
  if (released != 0) {
    stats_.held_locks.fetch_sub(static_cast<int64_t>(released),
                                std::memory_order_relaxed);
    stats_.releases.Add(released);
  }
  ClearWound(txn);
  return released;
}

size_t LockManager::DrainForShutdown() {
  // From here on AcquireLocked refuses to park new waiters (they fail
  // with kAborted before enqueuing).
  draining_.store(true, std::memory_order_release);
  size_t killed = 0;
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (auto& [res, entry] : shard.entries) {
      for (auto& w : entry.waiters) {
        if (w->granted) continue;
        KillReason expected = KillReason::kNone;
        if (w->killed.compare_exchange_strong(expected, KillReason::kShutdown,
                                              std::memory_order_relaxed)) {
          ++killed;
          w->cv.NotifyAll();
        }
      }
    }
  }
  // Each killed waiter unwinds under its shard mutex (dequeue + waits-for
  // removal) and decrements the gauge as it leaves; wait for the last one
  // so the manager can be destroyed without a thread sleeping on a member
  // condition variable.
  while (blocked_waiters_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  return killed;
}

Status LockManager::Downgrade(TxnId txn, ResourceId resource, LockMode mode,
                              TxnLockCache* cache) {
  Shard& shard = ShardFor(resource);
  Status status = [&]() -> Status {
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) {
      return Status::NotFound("no lock entry for " + resource.ToString());
    }
    for (Holder& h : it->second.holders) {
      if (h.txn != txn) continue;
      if (!Covers(h.mode, mode)) {
        return Status::InvalidArgument(
            "cannot downgrade " + std::string(LockModeName(h.mode)) + " to " +
            std::string(LockModeName(mode)));
      }
      h.mode = mode;
      GrantWaiters(shard, it->second);
      return Status::OK();
    }
    return Status::NotFound("transaction " + std::to_string(txn) +
                            " holds no lock on " + resource.ToString());
  }();
  if (status.ok()) {
    // The held mode shrank: a cached (stronger) mode must not survive.
    if (cache != nullptr) {
      cache->Erase(resource);
    } else {
      InvalidateAttachedCache(txn);
    }
  }
  return status;
}

LockMode LockManager::HeldMode(TxnId txn, ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  auto it = shard.entries.find(resource);
  if (it == shard.entries.end()) return LockMode::kNL;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) return h.mode;
  }
  return LockMode::kNL;
}

LockMode LockManager::GroupMode(ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  auto it = shard.entries.find(resource);
  if (it == shard.entries.end()) return LockMode::kNL;
  LockMode m = LockMode::kNL;
  for (const Holder& h : it->second.holders) m = Supremum(m, h.mode);
  return m;
}

std::vector<HeldLock> LockManager::LocksOf(TxnId txn) const {
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) held = it->second;
  }
  std::vector<HeldLock> out;
  out.reserve(held.size());
  for (const ResourceId& resource : held) {
    Shard& shard = ShardFor(resource);
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) continue;
    for (const Holder& h : it->second.holders) {
      if (h.txn == txn) {
        out.push_back(HeldLock{resource, h.mode, h.duration});
        break;
      }
    }
  }
  return out;
}

size_t LockManager::NumEntries() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

std::vector<LongLockRecord> LockManager::SnapshotLongLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& [res, entry] : shard.entries) {
      for (const Holder& h : entry.holders) {
        if (h.duration == LockDuration::kLong) {
          out.push_back(LongLockRecord{h.txn, res, h.mode});
        }
      }
    }
  }
  return out;
}

std::vector<LongLockRecord> LockManager::SnapshotAllLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& [res, entry] : shard.entries) {
      for (const Holder& h : entry.holders) {
        out.push_back(LongLockRecord{h.txn, res, h.mode});
      }
    }
  }
  return out;
}

Status LockManager::RestoreLongLocks(
    const std::vector<LongLockRecord>& records) {
  // Pass 1 — validate without mutating: a record conflicts when any
  // *other* transaction already holds an incompatible mode (e.g. a short
  // lock taken before recovery ran).  All-or-nothing: one conflict and
  // nothing is installed, so a failed restore never leaves a half-adopted
  // lock table behind.
  for (const LongLockRecord& rec : records) {
    if (rec.txn == kInvalidTxn) {
      return Status::InvalidArgument("long-lock record with invalid txn");
    }
    Shard& shard = ShardFor(rec.resource);
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(rec.resource);
    if (it == shard.entries.end()) continue;
    if (!CompatibleWithHolders(shard, it->second, rec.txn, rec.mode)) {
      return Status::Internal("long-lock restore conflict on " +
                              rec.resource.ToString() + ": txn " +
                              std::to_string(rec.txn) + " wants " +
                              std::string(LockModeName(rec.mode)) +
                              " against an incompatible holder");
    }
  }

  // Pass 2 — install.  Duplicate records for one (txn, resource) merge to
  // the supremum mode.  Runs during recovery quiescence, so the validated
  // facts still hold.
  for (const LongLockRecord& rec : records) {
    Shard& shard = ShardFor(rec.resource);
    bool record_held = false;
    {
      MutexLock lk(shard.mu);
      Entry& entry = EntryFor(shard, rec.resource);
      Holder* mine = nullptr;
      for (Holder& h : entry.holders) {
        if (h.txn == rec.txn) {
          mine = &h;
          break;
        }
      }
      if (mine != nullptr) {
        mine->mode = Supremum(mine->mode, rec.mode);
        mine->duration = LockDuration::kLong;
      } else {
        entry.holders.push_back(Holder{rec.txn, rec.mode, 1,
                                       LockDuration::kLong});
        stats_.held_locks.fetch_add(1, std::memory_order_relaxed);
        record_held = true;
      }
    }
    if (record_held) RecordHeld(rec.txn, rec.resource);
  }
  return Status::OK();
}

TxnId LockManager::WaitsForGraph::UpdateAndCheck(
    TxnId self, std::vector<TxnId> blockers,
    std::shared_ptr<WaiterState> waiter) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers = std::move(blockers);
  rec.waiter = std::move(waiter);

  std::vector<TxnId> cycle;
  if (!FindCycle(self, &cycle)) return kInvalidTxn;

  TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  if (victim != self) {
    auto it = waiting_.find(victim);
    if (it == waiting_.end()) {
      // Should be impossible (all cycle members wait); fall back to self.
      victim = self;
    } else {
      it->second.waiter->killed.store(KillReason::kDeadlockVictim,
                                      std::memory_order_relaxed);
      it->second.waiter->cv.NotifyAll();
    }
  }
  return victim;
}

void LockManager::WaitsForGraph::Register(TxnId self,
                                          std::shared_ptr<WaiterState> waiter) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers.clear();
  rec.waiter = std::move(waiter);
}

void LockManager::WaitsForGraph::Kill(TxnId txn, KillReason reason) {
  MutexLock lk(mu_);
  auto it = waiting_.find(txn);
  if (it == waiting_.end()) return;
  it->second.waiter->killed.store(reason, std::memory_order_relaxed);
  it->second.waiter->cv.NotifyAll();
}

void LockManager::WaitsForGraph::Remove(TxnId self) {
  MutexLock lk(mu_);
  waiting_.erase(self);
}

bool LockManager::WaitsForGraph::FindCycle(TxnId self,
                                           std::vector<TxnId>* cycle) const {
  // Iterative DFS from `self`, looking for a path back to `self`.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;

  struct Frame {
    TxnId txn;
    size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({self, 0});
  path.push_back(self);
  visited.insert(self);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto it = waiting_.find(frame.txn);
    const std::vector<TxnId>* edges =
        it != waiting_.end() ? &it->second.blockers : nullptr;
    // Skip edges of already-killed victims; their requests are unwinding.
    if (edges != nullptr && it->second.waiter != nullptr &&
        it->second.waiter->killed.load(std::memory_order_relaxed) !=
            KillReason::kNone) {
      edges = nullptr;
    }
    if (edges == nullptr || frame.next_edge >= edges->size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = (*edges)[frame.next_edge++];
    if (next == self) {
      *cycle = path;
      return true;
    }
    if (visited.insert(next).second) {
      stack.push_back({next, 0});
      path.push_back(next);
    }
  }
  return false;
}

}  // namespace codlock::lock
