#include "lock/lock_manager.h"

#include <algorithm>
#include <chrono>

namespace codlock::lock {

namespace {

/// Bumps the held-locks gauge and its high-water mark (atomics only).
void NoteHolderAdded(LockStats& stats) {
  int64_t held = stats.held_locks.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t prev = stats.max_held_locks.load(std::memory_order_relaxed);
  while (prev < held && !stats.max_held_locks.compare_exchange_weak(
                            prev, held, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string_view DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
    case DeadlockPolicy::kTimeoutOnly:
      return "timeout-only";
  }
  return "?";
}

LockManager::LockManager(Options options)
    : options_(options),
      policy_(options.detect_deadlocks ? options.deadlock_policy
                                       : DeadlockPolicy::kTimeoutOnly),
      shards_(static_cast<size_t>(std::max(1, options.num_shards))) {}

void LockManager::Wound(TxnId txn) {
  {
    MutexLock lk(wounded_mu_);
    if (!wounded_.insert(txn).second) return;
  }
  wfg_.Kill(txn, KillReason::kWounded);
}

bool LockManager::IsWounded(TxnId txn) const {
  MutexLock lk(wounded_mu_);
  return wounded_.contains(txn);
}

void LockManager::ClearWound(TxnId txn) {
  MutexLock lk(wounded_mu_);
  wounded_.erase(txn);
}

LockManager::~LockManager() = default;

bool LockManager::CompatibleWithHolders(const Shard& shard, const Entry& entry,
                                        TxnId txn, LockMode target) {
  (void)shard;  // capability-only parameter
  bool compatible = true;
  for (const Holder& h : entry.holders) {
    if (h.txn == txn) continue;
    stats_.compat_tests.Add();
    if (!Compatible(target, h.mode)) {
      compatible = false;
      break;
    }
  }
  if (!compatible) stats_.conflicts.Add();
  return compatible;
}

std::vector<TxnId> LockManager::BlockersOf(const Shard& shard,
                                           const Entry& entry, TxnId txn,
                                           LockMode target,
                                           const WaiterState* self) const {
  (void)shard;  // capability-only parameter
  std::vector<TxnId> blockers;
  auto add = [&blockers, txn](TxnId t) {
    if (t == txn) return;
    if (std::find(blockers.begin(), blockers.end(), t) == blockers.end()) {
      blockers.push_back(t);
    }
  };
  for (const Holder& h : entry.holders) {
    if (h.txn != txn && !Compatible(target, h.mode)) add(h.txn);
  }
  if (self == nullptr || !self->is_conversion) {
    // FIFO: a regular request is also gated by every earlier queued waiter.
    for (const auto& w : entry.waiters) {
      if (w.get() == self) break;
      if (!w->granted &&
          w->killed.load(std::memory_order_relaxed) == KillReason::kNone) {
        add(w->txn);
      }
    }
  }
  return blockers;
}

bool LockManager::GrantWaiters(Shard& shard, Entry& entry) {
  bool any = false;
  for (auto it = entry.waiters.begin(); it != entry.waiters.end();) {
    const std::shared_ptr<WaiterState>& w = *it;
    if (w->killed.load(std::memory_order_relaxed) != KillReason::kNone) {
      // The victim cleans up its own queue entry; skip it here.
      ++it;
      continue;
    }
    if (!CompatibleWithHolders(shard, entry, w->txn, w->wanted)) {
      // Strict FIFO: nobody behind a blocked waiter is granted.
      break;
    }
    Holder* mine = nullptr;
    for (Holder& h : entry.holders) {
      if (h.txn == w->txn) {
        mine = &h;
        break;
      }
    }
    if (mine != nullptr) {
      mine->mode = Supremum(mine->mode, w->wanted);
      mine->count++;
      if (w->duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{w->txn, w->wanted, 1, w->duration});
      NoteHolderAdded(stats_);
    }
    w->granted = true;
    any = true;
    it = entry.waiters.erase(it);
  }
  return any;
}

void LockManager::EraseWaiter(Entry& entry, const WaiterState* w) {
  for (auto it = entry.waiters.begin(); it != entry.waiters.end(); ++it) {
    if (it->get() == w) {
      entry.waiters.erase(it);
      return;
    }
  }
}

void LockManager::RecordHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto& v = txn_locks_[txn];
  if (std::find(v.begin(), v.end(), resource) == v.end()) {
    v.push_back(resource);
  }
}

void LockManager::ForgetHeld(TxnId txn, ResourceId resource) {
  MutexLock lk(registry_mu_);
  auto it = txn_locks_.find(txn);
  if (it == txn_locks_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), resource), v.end());
  if (v.empty()) txn_locks_.erase(it);
}

Status LockManager::Acquire(TxnId txn, ResourceId resource, LockMode mode,
                            const AcquireOptions& options) {
  if (txn == kInvalidTxn) {
    return Status::InvalidArgument("invalid transaction id");
  }
  if (mode == LockMode::kNL) {
    return Status::InvalidArgument("cannot acquire mode NL");
  }
  stats_.requests.Add();

  if (policy_ == DeadlockPolicy::kWoundWait && IsWounded(txn)) {
    return Status::Aborted("transaction " + std::to_string(txn) +
                           " was wounded by an older transaction");
  }

  Shard& shard = ShardFor(resource);
  bool record_held = false;
  Status status;
  {
    MutexLock lk(shard.mu);
    status = AcquireLocked(shard, txn, resource, mode, options, record_held);
  }
  // Lock order: the registry mutex is only ever taken with no shard held.
  if (record_held && status.ok()) RecordHeld(txn, resource);
  return status;
}

Status LockManager::AcquireLocked(Shard& shard, TxnId txn, ResourceId resource,
                                  LockMode mode, const AcquireOptions& options,
                                  bool& record_held) {
  Entry& entry = shard.entries[resource];

  Holder* mine = nullptr;
  for (Holder& h : entry.holders) {
    if (h.txn == txn) {
      mine = &h;
      break;
    }
  }

  // Re-entrant acquisition of a covered mode: bump the count.
  if (mine != nullptr && Covers(mine->mode, mode)) {
    mine->count++;
    if (options.duration == LockDuration::kLong) {
      mine->duration = LockDuration::kLong;
    }
    stats_.grants.Add();
    stats_.immediate_grants.Add();
    return Status::OK();
  }

  const LockMode target = mine != nullptr ? Supremum(mine->mode, mode) : mode;
  const bool is_conversion = mine != nullptr;

  const bool queue_clear = [&] {
    if (is_conversion) return true;  // conversions jump the queue
    for (const auto& w : entry.waiters) {
      if (!w->granted &&
          w->killed.load(std::memory_order_relaxed) == KillReason::kNone) {
        return false;
      }
    }
    return true;
  }();

  if (queue_clear && CompatibleWithHolders(shard, entry, txn, target)) {
    if (mine != nullptr) {
      mine->mode = target;
      mine->count++;
      if (options.duration == LockDuration::kLong) {
        mine->duration = LockDuration::kLong;
      }
    } else {
      entry.holders.push_back(Holder{txn, target, 1, options.duration});
      NoteHolderAdded(stats_);
      record_held = true;
    }
    stats_.grants.Add();
    stats_.immediate_grants.Add();
    return Status::OK();
  }

  if (!options.wait) {
    if (entry.holders.empty() && entry.waiters.empty()) {
      shard.entries.erase(resource);
    }
    return Status::Conflict("lock " + std::string(LockModeName(mode)) +
                            " on " + resource.ToString() +
                            " conflicts and wait=false");
  }

  // Enqueue and wait.
  auto waiter = std::make_shared<WaiterState>();
  waiter->txn = txn;
  waiter->wanted = target;
  waiter->is_conversion = is_conversion;
  waiter->duration = options.duration;
  if (is_conversion) {
    entry.waiters.push_front(waiter);
  } else {
    entry.waiters.push_back(waiter);
  }
  stats_.waits.Add();

  const uint64_t timeout_ms =
      options.timeout_ms != 0 ? options.timeout_ms : options_.default_timeout_ms;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  Stopwatch waited;

  while (true) {
    switch (policy_) {
      case DeadlockPolicy::kDetect: {
        std::vector<TxnId> blockers =
            BlockersOf(shard, entry, txn, target, waiter.get());
        TxnId victim = wfg_.UpdateAndCheck(txn, std::move(blockers), waiter,
                                           &shard.cv);
        if (victim == txn) {
          CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
          stats_.deadlocks.Add();
          return Status::Deadlock("transaction " + std::to_string(txn) +
                                  " chosen as deadlock victim on " +
                                  resource.ToString());
        }
        break;
      }
      case DeadlockPolicy::kWaitDie: {
        // A requester may wait only for younger transactions; blocked by
        // anything older, it dies (restarts) instead.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker < txn) {
            CleanupFailedWait(shard, resource, entry, txn, waiter.get(),
                              waited);
            stats_.deadlocks.Add();
            return Status::Deadlock(
                "wait-die: transaction " + std::to_string(txn) +
                " is younger than blocker " + std::to_string(blocker));
          }
        }
        wfg_.Register(txn, waiter, &shard.cv);
        break;
      }
      case DeadlockPolicy::kWoundWait: {
        // An older requester wounds every younger conflicting transaction
        // and then waits for them to release at their (forced) EOT.
        for (TxnId blocker :
             BlockersOf(shard, entry, txn, target, waiter.get())) {
          if (blocker > txn) Wound(blocker);
        }
        wfg_.Register(txn, waiter, &shard.cv);
        break;
      }
      case DeadlockPolicy::kTimeoutOnly:
        break;
    }

    bool in_time = shard.cv.WaitUntil(shard.mu, deadline, [&] {
      return waiter->granted || waiter->killed.load(
                                    std::memory_order_relaxed) !=
                                    KillReason::kNone;
    });

    if (waiter->granted) {
      wfg_.Remove(txn);
      stats_.grants.Add();
      stats_.wait_ns.Record(waited.ElapsedNanos());
      if (!is_conversion) record_held = true;
      return Status::OK();
    }
    KillReason reason = waiter->killed.load(std::memory_order_relaxed);
    if (reason != KillReason::kNone) {
      CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
      stats_.deadlocks.Add();
      if (reason == KillReason::kWounded) {
        return Status::Aborted("transaction " + std::to_string(txn) +
                               " wounded while waiting on " +
                               resource.ToString());
      }
      return Status::Deadlock("transaction " + std::to_string(txn) +
                              " killed as deadlock victim on " +
                              resource.ToString());
    }
    if (!in_time) {
      CleanupFailedWait(shard, resource, entry, txn, waiter.get(), waited);
      stats_.timeouts.Add();
      return Status::Timeout("lock wait on " + resource.ToString() +
                             " exceeded " + std::to_string(timeout_ms) +
                             "ms");
    }
    // Spurious wake-up or waits-for refresh: loop.
  }
}

void LockManager::CleanupFailedWait(Shard& shard, ResourceId resource,
                                    Entry& entry, TxnId txn,
                                    const WaiterState* waiter,
                                    const Stopwatch& waited) {
  EraseWaiter(entry, waiter);
  wfg_.Remove(txn);
  if (GrantWaiters(shard, entry)) shard.cv.NotifyAll();
  if (entry.holders.empty() && entry.waiters.empty()) {
    shard.entries.erase(resource);
  }
  stats_.wait_ns.Record(waited.ElapsedNanos());
}

Status LockManager::Release(TxnId txn, ResourceId resource) {
  Shard& shard = ShardFor(resource);
  bool forget = false;
  Status status = [&]() -> Status {
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) {
      return Status::NotFound("no lock entry for " + resource.ToString());
    }
    Entry& entry = it->second;
    for (size_t i = 0; i < entry.holders.size(); ++i) {
      if (entry.holders[i].txn != txn) continue;
      stats_.releases.Add();
      if (--entry.holders[i].count > 0) {
        return Status::OK();
      }
      entry.holders.erase(entry.holders.begin() + static_cast<long>(i));
      stats_.held_locks.fetch_sub(1, std::memory_order_relaxed);
      bool granted_any = GrantWaiters(shard, entry);
      if (entry.holders.empty() && entry.waiters.empty()) {
        shard.entries.erase(it);
      }
      if (granted_any) shard.cv.NotifyAll();
      forget = true;
      return Status::OK();
    }
    return Status::NotFound("transaction " + std::to_string(txn) +
                            " holds no lock on " + resource.ToString());
  }();
  if (forget) ForgetHeld(txn, resource);
  return status;
}

size_t LockManager::ReleaseAll(TxnId txn) {
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) held = it->second;
  }
  size_t released = 0;
  for (const ResourceId& resource : held) {
    Shard& shard = ShardFor(resource);
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) continue;
    Entry& entry = it->second;
    for (size_t i = 0; i < entry.holders.size(); ++i) {
      if (entry.holders[i].txn != txn) continue;
      entry.holders.erase(entry.holders.begin() + static_cast<long>(i));
      stats_.held_locks.fetch_sub(1, std::memory_order_relaxed);
      stats_.releases.Add();
      ++released;
      bool granted_any = GrantWaiters(shard, entry);
      if (entry.holders.empty() && entry.waiters.empty()) {
        shard.entries.erase(it);
      }
      if (granted_any) shard.cv.NotifyAll();
      break;
    }
  }
  {
    MutexLock lk(registry_mu_);
    txn_locks_.erase(txn);
  }
  ClearWound(txn);
  return released;
}

Status LockManager::Downgrade(TxnId txn, ResourceId resource, LockMode mode) {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  auto it = shard.entries.find(resource);
  if (it == shard.entries.end()) {
    return Status::NotFound("no lock entry for " + resource.ToString());
  }
  for (Holder& h : it->second.holders) {
    if (h.txn != txn) continue;
    if (!Covers(h.mode, mode)) {
      return Status::InvalidArgument(
          "cannot downgrade " + std::string(LockModeName(h.mode)) + " to " +
          std::string(LockModeName(mode)));
    }
    h.mode = mode;
    if (GrantWaiters(shard, it->second)) shard.cv.NotifyAll();
    return Status::OK();
  }
  return Status::NotFound("transaction " + std::to_string(txn) +
                          " holds no lock on " + resource.ToString());
}

LockMode LockManager::HeldMode(TxnId txn, ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  auto it = shard.entries.find(resource);
  if (it == shard.entries.end()) return LockMode::kNL;
  for (const Holder& h : it->second.holders) {
    if (h.txn == txn) return h.mode;
  }
  return LockMode::kNL;
}

LockMode LockManager::GroupMode(ResourceId resource) const {
  Shard& shard = ShardFor(resource);
  MutexLock lk(shard.mu);
  auto it = shard.entries.find(resource);
  if (it == shard.entries.end()) return LockMode::kNL;
  LockMode m = LockMode::kNL;
  for (const Holder& h : it->second.holders) m = Supremum(m, h.mode);
  return m;
}

std::vector<HeldLock> LockManager::LocksOf(TxnId txn) const {
  std::vector<ResourceId> held;
  {
    MutexLock lk(registry_mu_);
    auto it = txn_locks_.find(txn);
    if (it != txn_locks_.end()) held = it->second;
  }
  std::vector<HeldLock> out;
  out.reserve(held.size());
  for (const ResourceId& resource : held) {
    Shard& shard = ShardFor(resource);
    MutexLock lk(shard.mu);
    auto it = shard.entries.find(resource);
    if (it == shard.entries.end()) continue;
    for (const Holder& h : it->second.holders) {
      if (h.txn == txn) {
        out.push_back(HeldLock{resource, h.mode, h.duration});
        break;
      }
    }
  }
  return out;
}

size_t LockManager::NumEntries() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

std::vector<LongLockRecord> LockManager::SnapshotLongLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& [res, entry] : shard.entries) {
      for (const Holder& h : entry.holders) {
        if (h.duration == LockDuration::kLong) {
          out.push_back(LongLockRecord{h.txn, res, h.mode});
        }
      }
    }
  }
  return out;
}

std::vector<LongLockRecord> LockManager::SnapshotAllLocks() const {
  std::vector<LongLockRecord> out;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& [res, entry] : shard.entries) {
      for (const Holder& h : entry.holders) {
        out.push_back(LongLockRecord{h.txn, res, h.mode});
      }
    }
  }
  return out;
}

Status LockManager::RestoreLongLocks(
    const std::vector<LongLockRecord>& records) {
  for (const LongLockRecord& rec : records) {
    Shard& shard = ShardFor(rec.resource);
    bool record_held = false;
    {
      MutexLock lk(shard.mu);
      Entry& entry = shard.entries[rec.resource];
      if (!CompatibleWithHolders(shard, entry, rec.txn, rec.mode)) {
        return Status::Internal("long-lock restore conflict on " +
                                rec.resource.ToString());
      }
      Holder* mine = nullptr;
      for (Holder& h : entry.holders) {
        if (h.txn == rec.txn) {
          mine = &h;
          break;
        }
      }
      if (mine != nullptr) {
        mine->mode = Supremum(mine->mode, rec.mode);
        mine->duration = LockDuration::kLong;
      } else {
        entry.holders.push_back(Holder{rec.txn, rec.mode, 1,
                                       LockDuration::kLong});
        stats_.held_locks.fetch_add(1, std::memory_order_relaxed);
        record_held = true;
      }
    }
    if (record_held) RecordHeld(rec.txn, rec.resource);
  }
  return Status::OK();
}

TxnId LockManager::WaitsForGraph::UpdateAndCheck(
    TxnId self, std::vector<TxnId> blockers,
    std::shared_ptr<WaiterState> waiter, CondVar* cv) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers = std::move(blockers);
  rec.waiter = std::move(waiter);
  rec.cv = cv;

  std::vector<TxnId> cycle;
  if (!FindCycle(self, &cycle)) return kInvalidTxn;

  TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  if (victim != self) {
    auto it = waiting_.find(victim);
    if (it == waiting_.end()) {
      // Should be impossible (all cycle members wait); fall back to self.
      victim = self;
    } else {
      it->second.waiter->killed.store(KillReason::kDeadlockVictim,
                                      std::memory_order_relaxed);
      it->second.cv->NotifyAll();
    }
  }
  return victim;
}

void LockManager::WaitsForGraph::Register(TxnId self,
                                          std::shared_ptr<WaiterState> waiter,
                                          CondVar* cv) {
  MutexLock lk(mu_);
  WaitRec& rec = waiting_[self];
  rec.blockers.clear();
  rec.waiter = std::move(waiter);
  rec.cv = cv;
}

void LockManager::WaitsForGraph::Kill(TxnId txn, KillReason reason) {
  MutexLock lk(mu_);
  auto it = waiting_.find(txn);
  if (it == waiting_.end()) return;
  it->second.waiter->killed.store(reason, std::memory_order_relaxed);
  it->second.cv->NotifyAll();
}

void LockManager::WaitsForGraph::Remove(TxnId self) {
  MutexLock lk(mu_);
  waiting_.erase(self);
}

bool LockManager::WaitsForGraph::FindCycle(TxnId self,
                                           std::vector<TxnId>* cycle) const {
  // Iterative DFS from `self`, looking for a path back to `self`.
  std::vector<TxnId> path;
  std::unordered_set<TxnId> visited;

  struct Frame {
    TxnId txn;
    size_t next_edge;
  };
  std::vector<Frame> stack;
  stack.push_back({self, 0});
  path.push_back(self);
  visited.insert(self);

  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto it = waiting_.find(frame.txn);
    const std::vector<TxnId>* edges =
        it != waiting_.end() ? &it->second.blockers : nullptr;
    // Skip edges of already-killed victims; their requests are unwinding.
    if (edges != nullptr && it->second.waiter != nullptr &&
        it->second.waiter->killed.load(std::memory_order_relaxed) !=
            KillReason::kNone) {
      edges = nullptr;
    }
    if (edges == nullptr || frame.next_edge >= edges->size()) {
      stack.pop_back();
      path.pop_back();
      continue;
    }
    TxnId next = (*edges)[frame.next_edge++];
    if (next == self) {
      *cycle = path;
      return true;
    }
    if (visited.insert(next).second) {
      stack.push_back({next, 0});
      path.push_back(next);
    }
  }
  return false;
}

}  // namespace codlock::lock
