/// \file lock_manager.h
/// \brief Transaction-oriented lock manager.
///
/// This is the "lock manager" of §4.1: protocols determine *which* granules
/// to lock in *which* mode; the lock manager tests whether a request can be
/// granted, blocks conflicting requests, detects deadlocks on the waits-for
/// graph, and administrates held locks per transaction.
///
/// Features:
///  * modes IS/IX/S/SIX/X with the classical compatibility matrix,
///  * re-entrant acquisition and in-place conversion (upgrade to the
///    supremum of held and requested mode; conversions jump the queue),
///  * FIFO-fair waiting (no reader slips past a queued writer),
///  * deadlock detection: a waits-for graph is maintained while requests
///    block; cycles are resolved by aborting the *youngest* transaction in
///    the cycle (its pending request fails with `StatusCode::kDeadlock`),
///  * per-request deadlines (timeout as a backstop),
///  * short and *long* lock durations; long locks survive a simulated
///    system crash via `SnapshotLongLocks`/`RestoreLongLocks` (§3.1:
///    "long locks must survive system shutdowns and system crashes").

#ifndef CODLOCK_LOCK_LOCK_MANAGER_H_
#define CODLOCK_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/mode.h"
#include "lock/resource.h"
#include "util/metrics.h"
#include "util/status.h"

namespace codlock::lock {

/// Lifetime class of a lock (§3.1).
enum class LockDuration : uint8_t {
  kShort,  ///< released at EOT; lost on crash
  kLong    ///< survives shutdowns/crashes (check-out locks)
};

/// How the manager deals with (potential) deadlocks.
enum class DeadlockPolicy : uint8_t {
  /// Maintain a waits-for graph while requests block; on a cycle, abort
  /// the youngest member (its pending request fails with kDeadlock).
  kDetect,
  /// Wound-wait (preemptive prevention): an older requester *wounds*
  /// younger conflicting transactions — their pending waits are killed
  /// and their next acquire fails with kAborted; a younger requester
  /// waits.  No cycles can form.
  kWoundWait,
  /// Wait-die (non-preemptive prevention): an older requester may wait; a
  /// younger requester dies immediately (kDeadlock) when blocked by an
  /// older transaction.  No cycles can form.
  kWaitDie,
  /// No prevention or detection; the per-request deadline is the only way
  /// out of a deadlock (kTimeout).
  kTimeoutOnly,
};

std::string_view DeadlockPolicyName(DeadlockPolicy policy);

/// Per-request options.
struct AcquireOptions {
  LockDuration duration = LockDuration::kShort;
  /// If false, a conflicting request fails immediately with kConflict.
  bool wait = true;
  /// Deadline for a waiting request, in milliseconds (0 = manager default).
  uint64_t timeout_ms = 0;
};

/// A lock held by a transaction (inspection, Fig. 7 reproduction).
struct HeldLock {
  ResourceId resource;
  LockMode mode = LockMode::kNL;
  LockDuration duration = LockDuration::kShort;
};

/// Snapshot record of a long lock (crash survival).
struct LongLockRecord {
  TxnId txn = kInvalidTxn;
  ResourceId resource;
  LockMode mode = LockMode::kNL;
};

/// \brief The lock manager.
class LockManager {
 public:
  struct Options {
    int num_shards = 16;
    /// Legacy switch: false maps to DeadlockPolicy::kTimeoutOnly.
    bool detect_deadlocks = true;
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
    uint64_t default_timeout_ms = 10'000;
  };

  explicit LockManager(Options options);
  LockManager() : LockManager(Options()) {}
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests \p mode on \p resource for \p txn.
  ///
  /// Re-entrant: if the transaction already holds the resource, the held
  /// mode is upgraded to sup(held, requested) — waiting for conflicting
  /// holders to drain if necessary.  Returns:
  ///  * OK         — granted,
  ///  * kConflict  — incompatible and `options.wait == false`,
  ///  * kDeadlock  — this request was chosen as deadlock victim,
  ///  * kTimeout   — deadline expired while waiting.
  Status Acquire(TxnId txn, ResourceId resource, LockMode mode,
                 const AcquireOptions& options = AcquireOptions());

  /// Releases one acquisition of \p resource (locks are counted; the entry
  /// disappears when the count reaches zero).  The held *mode* is not
  /// recomputed on partial release; use `Downgrade` for de-escalation.
  Status Release(TxnId txn, ResourceId resource);

  /// Releases every lock of \p txn (EOT).  Returns the number released.
  size_t ReleaseAll(TxnId txn);

  /// Reduces the held mode of \p txn on \p resource to \p mode
  /// (de-escalation; mode must be weaker than or equal to the held mode).
  Status Downgrade(TxnId txn, ResourceId resource, LockMode mode);

  /// Mode currently held by \p txn on \p resource (kNL if none).
  LockMode HeldMode(TxnId txn, ResourceId resource) const;

  /// Effective *granted group* mode of \p resource: supremum over all
  /// holders (kNL if the resource is unlocked).
  LockMode GroupMode(ResourceId resource) const;

  /// All locks currently held by \p txn.
  std::vector<HeldLock> LocksOf(TxnId txn) const;

  /// Number of resources with at least one holder or waiter.
  size_t NumEntries() const;

  /// All long locks currently held (for the `LongLockStore`).
  std::vector<LongLockRecord> SnapshotLongLocks() const;

  /// All locks currently held, regardless of duration (used by the
  /// protocol validator to audit global consistency of the grant set).
  std::vector<LongLockRecord> SnapshotAllLocks() const;

  /// Re-installs long locks after a crash into an otherwise empty manager.
  Status RestoreLongLocks(const std::vector<LongLockRecord>& records);

  LockStats& stats() { return stats_; }
  const LockStats& stats() const { return stats_; }

 private:
  enum class KillReason : uint8_t { kNone, kDeadlockVictim, kWounded };

  struct WaiterState {
    TxnId txn = kInvalidTxn;
    LockMode wanted = LockMode::kNL;
    bool is_conversion = false;
    bool granted = false;
    LockDuration duration = LockDuration::kShort;
    std::atomic<KillReason> killed{KillReason::kNone};
  };

  struct Holder {
    TxnId txn = kInvalidTxn;
    LockMode mode = LockMode::kNL;
    uint32_t count = 0;
    LockDuration duration = LockDuration::kShort;
  };

  struct Entry {
    std::vector<Holder> holders;
    std::deque<std::shared_ptr<WaiterState>> waiters;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<ResourceId, Entry, ResourceIdHash> entries;
  };

  /// Waits-for graph over currently blocked transactions.
  class WaitsForGraph {
   public:
    struct WaitRec {
      std::vector<TxnId> blockers;
      std::shared_ptr<WaiterState> waiter;
      std::condition_variable* cv = nullptr;
    };

    /// Registers/updates the blocked set of \p self and searches for a
    /// cycle through \p self.  If one is found, selects the youngest
    /// member as victim: if the victim is another waiting transaction its
    /// waiter is killed and its cv notified; the victim id is returned
    /// either way (kInvalidTxn if no cycle).
    TxnId UpdateAndCheck(TxnId self, std::vector<TxnId> blockers,
                         std::shared_ptr<WaiterState> waiter,
                         std::condition_variable* cv);

    /// Registers \p self as waiting without cycle detection (prevention
    /// policies still need the registry so wounds can find the waiter).
    void Register(TxnId self, std::shared_ptr<WaiterState> waiter,
                  std::condition_variable* cv);

    /// Kills the pending wait of \p txn (wound-wait preemption); no-op if
    /// it is not currently waiting.
    void Kill(TxnId txn, KillReason reason);

    void Remove(TxnId self);

   private:
    bool FindCycle(TxnId self, std::vector<TxnId>* cycle) const;

    std::mutex mu_;
    std::unordered_map<TxnId, WaitRec> waiting_;
  };

  Shard& ShardFor(ResourceId r) const {
    return shards_[ResourceIdHash{}(r) % shards_.size()];
  }

  /// Grant test for (txn, target mode) against all *other* holders.
  /// Counts compatibility tests in stats.
  bool CompatibleWithHolders(const Entry& entry, TxnId txn, LockMode target);

  /// Blockers of (txn, target mode): other holders with incompatible modes,
  /// plus (for non-conversion requests) earlier queued waiters.
  std::vector<TxnId> BlockersOf(const Entry& entry, TxnId txn, LockMode target,
                                const WaiterState* self) const;

  /// Promotes grantable waiters at the front of the queue. Called with the
  /// shard mutex held whenever holders change. Returns true if any waiter
  /// was granted (caller notifies the shard cv).
  bool GrantWaiters(Entry& entry);

  void EraseWaiter(Entry& entry, const WaiterState* w);

  void RecordHeld(TxnId txn, ResourceId resource);
  void ForgetHeld(TxnId txn, ResourceId resource);

  /// Marks \p txn wounded; its next acquire (and current waits) fail.
  void Wound(TxnId txn);
  bool IsWounded(TxnId txn) const;
  void ClearWound(TxnId txn);

  Options options_;
  DeadlockPolicy policy_ = DeadlockPolicy::kDetect;
  mutable std::vector<Shard> shards_;
  WaitsForGraph wfg_;
  LockStats stats_;

  mutable std::mutex wounded_mu_;
  std::unordered_set<TxnId> wounded_;

  mutable std::mutex registry_mu_;
  std::unordered_map<TxnId, std::vector<ResourceId>> txn_locks_;
};

}  // namespace codlock::lock

#endif  // CODLOCK_LOCK_LOCK_MANAGER_H_
