/// \file lock_manager.h
/// \brief Transaction-oriented lock manager.
///
/// This is the "lock manager" of §4.1: protocols determine *which* granules
/// to lock in *which* mode; the lock manager tests whether a request can be
/// granted, blocks conflicting requests, detects deadlocks on the waits-for
/// graph, and administrates held locks per transaction.
///
/// Features:
///  * modes IS/IX/S/SIX/X with the classical compatibility matrix,
///  * re-entrant acquisition and in-place conversion (upgrade to the
///    supremum of held and requested mode; conversions jump the queue),
///  * FIFO-fair waiting (no reader slips past a queued writer),
///  * deadlock detection: a waits-for graph is maintained while requests
///    block; cycles are resolved by aborting the *youngest* transaction in
///    the cycle (its pending request fails with `StatusCode::kDeadlock`),
///  * per-request deadlines (timeout as a backstop),
///  * short and *long* lock durations; long locks survive a simulated
///    system crash via `SnapshotLongLocks`/`RestoreLongLocks` (§3.1:
///    "long locks must survive system shutdowns and system crashes").
///
/// Hot-path machinery (the intention-lock tax of fine-granularity
/// protocols — cf. Malta & Martinez — dominates §4.4.2 workloads):
///  * an optional per-transaction `TxnLockCache` absorbs re-entrant
///    acquisitions of covered modes without touching any shard mutex,
///  * `AcquirePath` locks a root-to-leaf chain in one call, visiting each
///    shard mutex once and updating the held-lock registry in one batch,
///  * waiters carry their own condition variable, so a grant wakes exactly
///    the transactions it unblocked instead of broadcasting to the shard.

#ifndef CODLOCK_LOCK_LOCK_MANAGER_H_
#define CODLOCK_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/mode.h"
#include "lock/resource.h"
#include "lock/txn_lock_cache.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace codlock::lock {

/// Lifetime class of a lock (§3.1).
enum class LockDuration : uint8_t {
  kShort,  ///< released at EOT; lost on crash
  kLong    ///< survives shutdowns/crashes (check-out locks)
};

/// How the manager deals with (potential) deadlocks.
enum class DeadlockPolicy : uint8_t {
  /// Maintain a waits-for graph while requests block; on a cycle, abort
  /// the youngest member (its pending request fails with kDeadlock).
  kDetect,
  /// Wound-wait (preemptive prevention): an older requester *wounds*
  /// younger conflicting transactions — their pending waits are killed
  /// and their next acquire fails with kAborted; a younger requester
  /// waits.  No cycles can form.
  kWoundWait,
  /// Wait-die (non-preemptive prevention): an older requester may wait; a
  /// younger requester dies immediately (kDeadlock) when blocked by an
  /// older transaction.  No cycles can form.
  kWaitDie,
  /// No prevention or detection; the per-request deadline is the only way
  /// out of a deadlock (kTimeout).
  kTimeoutOnly,
};

std::string_view DeadlockPolicyName(DeadlockPolicy policy);

/// Per-request options.
struct AcquireOptions {
  /// `timeout_ms` sentinel: use the manager's `default_timeout_ms`.
  /// Historically `timeout_ms == 0` silently meant "default", making an
  /// explicit zero-length wait unexpressible; the sentinels make the
  /// intent spellable.  0 is kept equal to kTimeoutDefault for backward
  /// compatibility — a true "don't wait" is `wait = false`.
  static constexpr uint64_t kTimeoutDefault = 0;
  /// `timeout_ms` sentinel: wait forever (no deadline).
  static constexpr uint64_t kTimeoutInfinite = ~uint64_t{0};

  LockDuration duration = LockDuration::kShort;
  /// If false, a conflicting request fails immediately with kConflict.
  bool wait = true;
  /// Deadline for a waiting request, in milliseconds.  `kTimeoutDefault`
  /// (= 0) uses the manager default; `kTimeoutInfinite` waits without a
  /// deadline.
  uint64_t timeout_ms = kTimeoutDefault;
};

/// A lock held by a transaction (inspection, Fig. 7 reproduction).
struct HeldLock {
  ResourceId resource;
  LockMode mode = LockMode::kNL;
  LockDuration duration = LockDuration::kShort;
};

/// Snapshot record of a long lock (crash survival).
struct LongLockRecord {
  TxnId txn = kInvalidTxn;
  ResourceId resource;
  LockMode mode = LockMode::kNL;
};

/// \brief The lock manager.
class LockManager {
 public:
  struct Options {
    /// Desired shard count; clamped to >= 1 and rounded up to the next
    /// power of two so `ShardFor` can mask instead of divide.
    int num_shards = 16;
    /// Legacy switch: false maps to DeadlockPolicy::kTimeoutOnly.
    bool detect_deadlocks = true;
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
    /// Default deadline for waiting requests; may be
    /// `AcquireOptions::kTimeoutInfinite`.
    uint64_t default_timeout_ms = 10'000;
    /// Overload shedding: when more than this many requests are blocked
    /// manager-wide, further requests that would have to wait fail with
    /// `StatusCode::kShed` instead of queuing (0 = unlimited).  Bounds the
    /// waiter convoy under overload so admitted work keeps finishing.
    size_t max_blocked_waiters = 0;
  };

  explicit LockManager(Options options);
  LockManager() : LockManager(Options()) {}
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests \p mode on \p resource for \p txn.
  ///
  /// Re-entrant: if the transaction already holds the resource, the held
  /// mode is upgraded to sup(held, requested) — waiting for conflicting
  /// holders to drain if necessary.  Returns:
  ///  * OK         — granted,
  ///  * kConflict  — incompatible and `options.wait == false`,
  ///  * kDeadlock  — this request was chosen as deadlock victim,
  ///  * kTimeout   — deadline expired while waiting.
  ///
  /// \p cache, when given, must be the cache attached for \p txn (see
  /// `AttachCache`) and the call must come from the transaction's own
  /// thread.  Covered re-acquisitions are then answered from the cache
  /// without touching the shard.
  Status Acquire(TxnId txn, ResourceId resource, LockMode mode,
                 const AcquireOptions& options = AcquireOptions(),
                 TxnLockCache* cache = nullptr)
      CODLOCK_EXCLUDES(registry_mu_, caches_mu_, wounded_mu_);

  /// Acquires a root-to-leaf chain in one call (§4.4.2 rule 5): every
  /// element of \p path except the last is locked in `IntentionFor(
  /// leaf_mode)`, the last in \p leaf_mode.  Resources are grouped by
  /// shard and each shard mutex is visited once; resources that cannot be
  /// granted immediately fall back to ordered blocking acquisition
  /// (root-to-leaf), preserving the protocol's waiting behavior.  On
  /// failure the *acquisitions this call made* are rolled back
  /// (leaf-to-root), so a failed path leaves no newly-taken intention
  /// locks behind; mode upgrades a conversion applied to a previously
  /// held lock are not undone (the count is re-paired, the stronger mode
  /// stays until the caller aborts — safe, merely conservative).
  Status AcquirePath(TxnId txn, std::span<const ResourceId> path,
                     LockMode leaf_mode,
                     const AcquireOptions& options = AcquireOptions(),
                     TxnLockCache* cache = nullptr)
      CODLOCK_EXCLUDES(registry_mu_, caches_mu_, wounded_mu_);

  /// Releases one acquisition of \p resource (locks are counted; the entry
  /// disappears when the count reaches zero).  The held *mode* is not
  /// recomputed on partial release; use `Downgrade` for de-escalation.
  /// With \p cache, a release pairing a cache-granted acquisition is
  /// absorbed locally.
  Status Release(TxnId txn, ResourceId resource, TxnLockCache* cache = nullptr)
      CODLOCK_EXCLUDES(registry_mu_, caches_mu_);

  /// Releases every lock of \p txn (EOT).  Returns the number released.
  /// Shards are visited once each; the transaction's attached cache (if
  /// any) is invalidated first.
  size_t ReleaseAll(TxnId txn)
      CODLOCK_EXCLUDES(registry_mu_, caches_mu_, wounded_mu_);

  /// Reduces the held mode of \p txn on \p resource to \p mode
  /// (de-escalation; mode must be weaker than or equal to the held mode).
  /// Waiters that the narrower mode no longer blocks are granted
  /// immediately.
  Status Downgrade(TxnId txn, ResourceId resource, LockMode mode,
                   TxnLockCache* cache = nullptr)
      CODLOCK_EXCLUDES(registry_mu_, caches_mu_);

  /// Registers \p cache as the held-lock cache of \p txn so that
  /// cross-thread events (wound, foreign release/downgrade, ReleaseAll)
  /// invalidate it.  One cache per transaction; re-attaching replaces.
  void AttachCache(TxnId txn, TxnLockCache* cache)
      CODLOCK_EXCLUDES(caches_mu_);

  /// Removes the registration; must be called before the cache is
  /// destroyed.
  void DetachCache(TxnId txn) CODLOCK_EXCLUDES(caches_mu_);

  /// Mode currently held by \p txn on \p resource (kNL if none).
  LockMode HeldMode(TxnId txn, ResourceId resource) const;

  /// Effective *granted group* mode of \p resource: supremum over all
  /// holders (kNL if the resource is unlocked).
  LockMode GroupMode(ResourceId resource) const;

  /// All locks currently held by \p txn.
  std::vector<HeldLock> LocksOf(TxnId txn) const;

  /// Number of resources with at least one holder or waiter.
  size_t NumEntries() const;

  /// Number of shards after clamping/rounding (inspection).
  size_t NumShards() const { return shards_.size(); }

  /// All long locks currently held (for the `LongLockStore`).
  std::vector<LongLockRecord> SnapshotLongLocks() const;

  /// All locks currently held, regardless of duration (used by the
  /// protocol validator to audit global consistency of the grant set).
  std::vector<LongLockRecord> SnapshotAllLocks() const;

  /// Re-installs long locks after a crash.  All-or-nothing: the records
  /// are first validated against the locks currently held (conflicting
  /// short locks of adopted transactions, for example) and nothing is
  /// installed when any record conflicts.  Duplicate records for the same
  /// (txn, resource) merge to the supremum mode.  Intended to run during
  /// recovery quiescence (no concurrent acquires).
  Status RestoreLongLocks(const std::vector<LongLockRecord>& records);

  /// Number of requests currently blocked waiting for a lock.
  size_t NumBlockedWaiters() const {
    return blocked_waiters_.load(std::memory_order_acquire);
  }

  /// Crash/shutdown preparation: rejects requests that would have to wait
  /// from now on (they fail with kAborted), kills every blocked waiter,
  /// and returns once no request is blocked inside the manager.  After
  /// this the manager can be destroyed or abandoned without leaving a
  /// thread sleeping on a member condition variable.  The number of
  /// waiters killed is returned.
  size_t DrainForShutdown();

  LockStats& stats() { return stats_; }
  const LockStats& stats() const { return stats_; }

 private:
  enum class KillReason : uint8_t {
    kNone,
    kDeadlockVictim,
    kWounded,
    kShutdown,  ///< drained by DrainForShutdown (crash/restart)
  };

  /// Shared between the requesting thread and granters/killers.  `granted`
  /// is written and read only under the owning shard's mutex; `killed` is
  /// atomic because the waits-for graph flips it under its own lock.  Each
  /// waiter sleeps on its own condition variable (paired with the shard
  /// mutex), so grants and kills wake exactly one transaction instead of
  /// broadcasting to every waiter of the shard.
  struct WaiterState {
    TxnId txn = kInvalidTxn;
    LockMode wanted = LockMode::kNL;
    bool is_conversion = false;
    bool granted = false;
    LockDuration duration = LockDuration::kShort;
    std::atomic<KillReason> killed{KillReason::kNone};
    CondVar cv;
  };

  struct Holder {
    TxnId txn = kInvalidTxn;
    LockMode mode = LockMode::kNL;
    uint32_t count = 0;
    LockDuration duration = LockDuration::kShort;
  };

  /// Lock-table entry.  Both containers are vectors so that a freshly
  /// created entry performs no allocation at all (a deque allocates its
  /// chunk map eagerly, which dominated entry churn on the hot path);
  /// waiter-queue edits are O(queue length), which stays tiny.
  struct Entry {
    std::vector<Holder> holders;
    std::vector<std::shared_ptr<WaiterState>> waiters;
  };

  using EntryMap = std::unordered_map<ResourceId, Entry, ResourceIdHash>;

  struct Shard {
    mutable Mutex mu;
    EntryMap entries CODLOCK_GUARDED_BY(mu);
    /// Pool of retired map nodes.  Creating and destroying an entry per
    /// acquire/release cycle costs a map-node allocation plus the holder
    /// vector's buffer; recycling extracted node handles (key rewritten in
    /// place) makes the steady-state lock/unlock cycle allocation-free.
    std::vector<EntryMap::node_type> free_nodes CODLOCK_GUARDED_BY(mu);
  };

  /// Per-shard cap on pooled entry nodes (bounds idle memory).
  static constexpr size_t kEntryPoolSize = 32;

  /// Waits-for graph over currently blocked transactions.
  class WaitsForGraph {
   public:
    struct WaitRec {
      std::vector<TxnId> blockers;
      std::shared_ptr<WaiterState> waiter;
    };

    /// Registers/updates the blocked set of \p self and searches for a
    /// cycle through \p self.  If one is found, selects the youngest
    /// member as victim: if the victim is another waiting transaction its
    /// waiter is killed and its cv notified; the victim id is returned
    /// either way (kInvalidTxn if no cycle).
    TxnId UpdateAndCheck(TxnId self, std::vector<TxnId> blockers,
                         std::shared_ptr<WaiterState> waiter);

    /// Registers \p self as waiting without cycle detection (prevention
    /// policies still need the registry so wounds can find the waiter).
    void Register(TxnId self, std::shared_ptr<WaiterState> waiter);

    /// Kills the pending wait of \p txn (wound-wait preemption); no-op if
    /// it is not currently waiting.
    void Kill(TxnId txn, KillReason reason);

    void Remove(TxnId self);

   private:
    bool FindCycle(TxnId self, std::vector<TxnId>* cycle) const
        CODLOCK_REQUIRES(mu_);

    Mutex mu_;
    std::unordered_map<TxnId, WaitRec> waiting_ CODLOCK_GUARDED_BY(mu_);
  };

  size_t ShardIndexFor(ResourceId r) const {
    return ResourceIdHash{}(r) & shard_mask_;
  }

  Shard& ShardFor(ResourceId r) const { return shards_[ShardIndexFor(r)]; }

  /// Finds or creates the entry for \p res, reusing a pooled node when one
  /// is available.
  Entry& EntryFor(Shard& shard, const ResourceId& res)
      CODLOCK_REQUIRES(shard.mu);

  /// Drops an empty entry, returning its node to the shard pool (or freeing
  /// it once the pool is full).
  void RetireEntry(Shard& shard, EntryMap::iterator it)
      CODLOCK_REQUIRES(shard.mu);

  /// Attempts an immediate grant of \p mode (no waiting): re-entrant
  /// covered acquisition, in-place conversion or fresh grant when the
  /// queue is clear and all holders are compatible.  On success sets
  /// \p granted to the mode now held and \p record_held when the caller
  /// must register the new (txn, resource) pair.
  bool TryGrantLocked(Shard& shard, Entry& entry, TxnId txn, LockMode mode,
                      const AcquireOptions& options, LockMode& granted,
                      bool& record_held) CODLOCK_REQUIRES(shard.mu);

  /// Body of `Acquire` once the shard is locked.  Sets \p record_held when
  /// the caller must register a new (txn, resource) pair in the registry
  /// after dropping the shard mutex (lock order: shard before registry),
  /// and \p granted to the mode held on success (for the caller's cache).
  Status AcquireLocked(Shard& shard, TxnId txn, ResourceId resource,
                       LockMode mode, const AcquireOptions& options,
                       bool& record_held, LockMode& granted)
      CODLOCK_REQUIRES(shard.mu);

  /// Slow path of `Acquire` (shard + registry + cache bookkeeping) after
  /// the fast path missed.
  Status AcquireSlow(TxnId txn, ResourceId resource, LockMode mode,
                     const AcquireOptions& options, TxnLockCache* cache)
      CODLOCK_EXCLUDES(registry_mu_);

  /// Unwinds a failed wait: dequeues the waiter, deregisters it from the
  /// waits-for graph, promotes unblocked waiters and drops an empty entry.
  void CleanupFailedWait(Shard& shard, ResourceId resource, Entry& entry,
                         TxnId txn, const WaiterState* waiter,
                         const Stopwatch& waited) CODLOCK_REQUIRES(shard.mu);

  /// Grant test for (txn, target mode) against all *other* holders.
  /// Counts compatibility tests in stats.
  bool CompatibleWithHolders(const Shard& shard, const Entry& entry, TxnId txn,
                             LockMode target) CODLOCK_REQUIRES(shard.mu);

  /// Blockers of (txn, target mode): other holders with incompatible modes,
  /// plus (for non-conversion requests) earlier queued waiters.
  std::vector<TxnId> BlockersOf(const Shard& shard, const Entry& entry,
                                TxnId txn, LockMode target,
                                const WaiterState* self) const
      CODLOCK_REQUIRES(shard.mu);

  /// Promotes grantable waiters at the front of the queue and wakes each
  /// one on its own condition variable.  Called with the shard mutex held
  /// whenever holders change.
  void GrantWaiters(Shard& shard, Entry& entry) CODLOCK_REQUIRES(shard.mu);

  void EraseWaiter(Entry& entry, const WaiterState* w);

  void RecordHeld(TxnId txn, ResourceId resource)
      CODLOCK_EXCLUDES(registry_mu_);
  /// Registers several new (txn, resource) pairs under one registry lock.
  void RecordHeldBatch(TxnId txn, std::span<const ResourceId> resources)
      CODLOCK_EXCLUDES(registry_mu_);
  void ForgetHeld(TxnId txn, ResourceId resource)
      CODLOCK_EXCLUDES(registry_mu_);

  /// Bumps the invalidation epoch of the cache attached for \p txn, if any.
  void InvalidateAttachedCache(TxnId txn) CODLOCK_EXCLUDES(caches_mu_);

  /// Marks \p txn wounded; its next acquire (and current waits) fail.
  void Wound(TxnId txn) CODLOCK_EXCLUDES(wounded_mu_);
  bool IsWounded(TxnId txn) const CODLOCK_EXCLUDES(wounded_mu_);
  void ClearWound(TxnId txn) CODLOCK_EXCLUDES(wounded_mu_);

  Options options_;
  DeadlockPolicy policy_ = DeadlockPolicy::kDetect;
  mutable std::vector<Shard> shards_;
  size_t shard_mask_ = 0;  ///< shards_.size() - 1 (power of two)
  WaitsForGraph wfg_;
  LockStats stats_;

  /// Requests currently blocked in AcquireLocked (shedding + drain).
  std::atomic<size_t> blocked_waiters_{0};
  /// Set by DrainForShutdown: requests that would wait fail instead.
  std::atomic<bool> draining_{false};

  mutable Mutex wounded_mu_;
  std::unordered_set<TxnId> wounded_ CODLOCK_GUARDED_BY(wounded_mu_);
  /// Mirror of wounded_.size(): lets the hot path skip wounded_mu_ when no
  /// wound is outstanding (the overwhelmingly common case).
  std::atomic<size_t> wounded_count_{0};

  mutable Mutex registry_mu_;
  std::unordered_map<TxnId, std::vector<ResourceId>> txn_locks_
      CODLOCK_GUARDED_BY(registry_mu_);

  mutable Mutex caches_mu_;
  std::unordered_map<TxnId, TxnLockCache*> caches_
      CODLOCK_GUARDED_BY(caches_mu_);
  /// Mirror of caches_.size(): lets release paths skip caches_mu_ entirely
  /// when no cache is attached anywhere.
  std::atomic<size_t> cache_count_{0};
};

}  // namespace codlock::lock

#endif  // CODLOCK_LOCK_LOCK_MANAGER_H_
